//! The naming problem across bit-operation models: regenerates the
//! paper's closing table empirically, demonstrates crash tolerance
//! (wait-freedom) and model duality.
//!
//! Run with: `cargo run --example naming_models`

use cfc::bounds::naming::{tight_bound, Measure, ModelClass};
use cfc::bounds::table::TextTable;
use cfc::core::{FaultPlan, Lockstep, ProcessId};
use cfc::naming::{check, Dualized, NamingAlgorithm, TafTree, TasReadSearch, TasScan, TasTarTree};
use cfc::verify::naming_profile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 16usize;

    println!("== Measured naming complexities at n = {n} ==\n");
    let mut table = TextTable::new([
        "algorithm",
        "model",
        "cf steps",
        "cf registers",
        "wc steps",
        "wc registers",
    ])
    .with_title("contention-free = sequential schedule; worst-case = lockstep + random adversaries");

    let mut render = |name: &str, model: String, p: cfc::verify::NamingProfile| {
        table.row([
            name.to_string(),
            model,
            p.contention_free.steps.to_string(),
            p.contention_free.registers.to_string(),
            p.worst_case.steps.to_string(),
            p.worst_case.registers.to_string(),
        ]);
    };

    let scan = TasScan::new(n);
    render("tas-scan", scan.model().to_string(), naming_profile(&scan, 20)?);
    let search = TasReadSearch::new(n);
    render(
        "tas-read-search",
        search.model().to_string(),
        naming_profile(&search, 20)?,
    );
    let tt = TasTarTree::new(n)?;
    render("tas-tar-tree", tt.model().to_string(), naming_profile(&tt, 20)?);
    let taf = TafTree::new(n)?;
    render("taf-tree", taf.model().to_string(), naming_profile(&taf, 20)?);
    println!("{table}");

    println!("== The paper's tight-bound table, evaluated at n = {n} ==\n");
    let mut table = TextTable::new([
        "measure",
        "tas",
        "read+tas",
        "read+tas+tar",
        "taf",
        "rmw",
    ])
    .with_title("Tight bounds for naming (Section 3.3)");
    for measure in Measure::ALL {
        let mut row = vec![measure.to_string()];
        for class in ModelClass::ALL {
            let b = tight_bound(class, measure);
            row.push(format!("{} = {}", b.symbol(), b.eval(n as u64)));
        }
        table.row(row);
    }
    println!("{table}");

    println!("== Wait-freedom under crashes ==\n");
    let faults = FaultPlan::new()
        .with_crash(ProcessId::new(0), 1)
        .with_crash(ProcessId::new(5), 2)
        .with_crash(ProcessId::new(9), 0);
    let run = check::run_checked(&TafTree::new(n)?, Lockstep::new(), faults)?;
    let named = run.names.iter().flatten().count();
    println!(
        "taf-tree with 3 crashed processes: {named}/{n} survivors named uniquely, \
         max steps {}",
        run.steps.iter().max().unwrap()
    );

    println!("\n== Duality (Section 3.2) ==\n");
    let dual = Dualized::new(TasScan::new(8));
    println!(
        "dual(tas-scan) runs in model {{{}}} over bits initialized to 1",
        dual.model()
    );
    let run = check::run_checked(&dual, Lockstep::new(), FaultPlan::new())?;
    println!(
        "its lockstep names: {:?} — identical to tas-scan's, with identical complexity",
        run.names.iter().flatten().collect::<Vec<_>>()
    );
    Ok(())
}
