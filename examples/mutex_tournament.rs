//! Tournament mutual exclusion in depth: Theorem 3's construction across
//! atomicities, with safety stress, worst-case register measurements
//! (the Kessels row of Table 1), and the native tournament on threads.
//!
//! Run with: `cargo run --example mutex_tournament`

use cfc::bounds::table::TextTable;
use cfc::core::ProcessId;
use cfc::mutex::{measure, Tournament};
use cfc::native::{PetersonTree, SlottedMutex};
use cfc::verify::stress_mutex;
use std::sync::atomic::{AtomicU64, Ordering};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Contention-free profile per node kind ==\n");
    let mut table = TextTable::new([
        "n", "l", "arity", "depth", "cf steps", "cf registers", "bit accesses",
    ])
    .with_title("Tournament contention-free cost (Lamport nodes for l >= 2, Peterson for l = 1)");
    for (n, l) in [(64usize, 1u32), (64, 2), (64, 3), (64, 6), (4096, 1), (4096, 4)] {
        let alg = Tournament::sparse(n, l, &[ProcessId::new(0)]);
        let trip = measure::contention_free_trip(&alg, ProcessId::new(0))?;
        table.row([
            n.to_string(),
            l.to_string(),
            alg.arity().to_string(),
            alg.depth().to_string(),
            trip.total.steps.to_string(),
            trip.total.registers.to_string(),
            trip.total.bit_accesses.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "Note the bit-accesses column: no matter how l is chosen, a process\n\
         touches Θ(log n) shared bits before entering — the corollary to\n\
         Theorem 1.\n"
    );

    println!("== Worst-case register complexity under full contention ==\n");
    let mut table = TextTable::new(["n", "depth", "worst registers over all trips", "3*depth bound"])
        .with_title("Peterson tournament (l = 1), all processes competing, fair round-robin");
    for n in [4usize, 8, 16] {
        let alg = Tournament::new(n, 1);
        let trips = measure::contended_round_robin(&alg, 1)?;
        let worst = trips.iter().map(|t| t.total.registers).max().unwrap();
        table.row([
            n.to_string(),
            alg.depth().to_string(),
            worst.to_string(),
            (3 * u64::from(alg.depth())).to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "Even in the worst case a process visits O(log n) distinct registers\n\
         — the [Kes82] row of the paper's mutex table.\n"
    );

    println!("== Randomized safety stress ==\n");
    for (n, l) in [(6usize, 1u32), (9, 2)] {
        let stats = stress_mutex(&Tournament::new(n, l), 1, 25, 10_000)?;
        println!(
            "tournament n={n} l={l}: {} random runs, {} events, mutual exclusion held",
            stats.runs, stats.events
        );
    }

    println!("\n== Native Peterson tournament on real threads ==\n");
    let threads = 8;
    let mutex = PetersonTree::new(threads);
    let counter = AtomicU64::new(0);
    let iters = 20_000u64;
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for slot in 0..threads {
            let (mutex, counter) = (&mutex, &counter);
            s.spawn(move || {
                for _ in 0..iters {
                    mutex.with(slot, || {
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                    });
                }
            });
        }
    });
    let elapsed = start.elapsed();
    assert_eq!(counter.load(Ordering::Relaxed), threads as u64 * iters);
    println!(
        "{} threads x {} critical sections through a depth-{} tree: counter exact \
         ({} total) in {:?}",
        threads,
        iters,
        mutex.depth(),
        counter.load(Ordering::Relaxed),
        elapsed
    );
    Ok(())
}
