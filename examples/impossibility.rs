//! The executable impossibility: without read–modify–write, identical
//! processes cannot break symmetry (Section 3.1's remark, plus the engine
//! of Theorem 6).
//!
//! Run with: `cargo run --example impossibility`

use cfc::core::BitOp;
use cfc::naming::{
    impossibility::lockstep_symmetry_witness, FlipReadAttempt, Model, NamingAlgorithm, TafTree,
    TasScan,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Which of the 256 models can break symmetry? ==\n");
    let breaking = Model::all_models().filter(|m| m.breaks_symmetry()).count();
    println!(
        "{breaking}/256 models contain a mutate-and-return operation \
         (test-and-set, test-and-reset, or test-and-flip);"
    );
    println!("the remaining {} cannot solve naming deterministically.\n", 256 - breaking);
    for ops in [
        vec![BitOp::Read, BitOp::Write0, BitOp::Write1],
        vec![BitOp::Flip, BitOp::Read],
        vec![BitOp::TestAndSet],
    ] {
        let m = Model::new(&ops);
        println!(
            "  {{{m}}} breaks symmetry: {}",
            if m.breaks_symmetry() { "yes" } else { "NO — naming impossible" }
        );
    }

    println!("\n== The impossibility, executed ==\n");
    println!(
        "A plausible attempt: emulate the test-and-flip tree with flip + read\n\
         (flip the node bit, then read it, route on the value).\n"
    );
    let attempt = FlipReadAttempt::new(8)?;
    let w = lockstep_symmetry_witness(&attempt, 10_000)?;
    println!(
        "{}: driven in lockstep for {} rounds — processes stayed bitwise\n\
         identical the whole time: {}\n",
        attempt.name(),
        w.rounds,
        w.stayed_identical
    );

    let taf = TafTree::new(8)?;
    let w = lockstep_symmetry_witness(&taf, 10_000)?;
    println!(
        "taf-tree (real RMW): diverged after round {} — identical? {}",
        w.rounds, w.stayed_identical
    );
    let scan = TasScan::new(8);
    let w = lockstep_symmetry_witness(&scan, 10_000)?;
    println!(
        "tas-scan (real RMW): diverged after round {} — identical? {}",
        w.rounds, w.stayed_identical
    );
    println!(
        "\nOne atomic mutate-and-return is exactly the power needed to hand\n\
         the first and second arrival different answers."
    );
    Ok(())
}
