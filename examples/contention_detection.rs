//! Contention detection (Section 2.3) and the executable lower-bound
//! machinery: the splitter family, the Lemma 1 reduction, the Lemma 2
//! merge attack, and a real torn-write bug found by exhaustive
//! exploration.
//!
//! Run with: `cargo run --example contention_detection`

use cfc::bounds::table::TextTable;
use cfc::core::ProcessId;
use cfc::mutex::{
    measure, BrokenDetector, ChunkedSplitter, DetectionAlgorithm, LamportFast, MutexDetector,
    Splitter, SplitterTree,
};
use cfc::verify::explore::ExploreConfig;
use cfc::verify::{check_detection_safety, merge_attack, ExploreError};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Contention-free cost of detection ==\n");
    let n = 1 << 12;
    let mut table = TextTable::new(["detector", "l", "cf steps", "cf registers"])
        .with_title(format!("solo-run cost at n = {n}"));
    let splitter = Splitter::new(n);
    let c = measure::contention_free_detection(&splitter, ProcessId::new(7))?;
    table.row([
        splitter.name().to_string(),
        splitter.atomicity().to_string(),
        c.steps.to_string(),
        c.registers.to_string(),
    ]);
    for l in [1u32, 3, 6] {
        let tree = SplitterTree::new(n, l);
        let c = measure::contention_free_detection(&tree, ProcessId::new(7))?;
        table.row([
            format!("{} (depth {})", tree.name(), tree.depth()),
            l.to_string(),
            c.steps.to_string(),
            c.registers.to_string(),
        ]);
    }
    let reduction = MutexDetector::new(LamportFast::new(n));
    let c = measure::contention_free_detection(&reduction, ProcessId::new(7))?;
    table.row([
        reduction.name().to_string(),
        reduction.atomicity().to_string(),
        c.steps.to_string(),
        c.registers.to_string(),
    ]);
    println!("{table}");
    println!(
        "Unlike mutual exclusion, detection also has *bounded worst-case*\n\
         step complexity O(ceil(log n / l)) — a splitter-tree process halts\n\
         within 4*depth of its own steps under any schedule.\n"
    );

    println!("== Lemma 2 merge attack ==\n");
    for (name, resists) in [
        ("splitter (n=4)", merge_attack(&Splitter::new(4), ProcessId::new(0), ProcessId::new(1))?.is_none()),
        (
            "detect(lamport-fast) (n=3)",
            merge_attack(
                &MutexDetector::new(LamportFast::new(3)),
                ProcessId::new(0),
                ProcessId::new(2),
            )?
            .is_none(),
        ),
    ] {
        println!("{name}: Lemma 2 condition holds, merge attack impossible = {resists}");
    }
    let witness = merge_attack(&BrokenDetector::new(2), ProcessId::new(0), ProcessId::new(1))?
        .expect("the broken detector must fall");
    println!("\nbroken-constant-detector: ATTACKED — the merged run below has two winners:\n");
    println!("{witness}");

    println!("== A real bug found by exhaustive exploration ==\n");
    println!(
        "The chunked splitter writes its id across ceil(log n / l) sub-atomic\n\
         chunks. It is safe for n = 2 but NOT for n = 3: a straggler's chunk\n\
         write can hand two leaders their own ids from different mixes of x."
    );
    match check_detection_safety(&ChunkedSplitter::new(3, 1), ExploreConfig::default()) {
        Err(ExploreError::Violation(v)) => {
            println!("\nexplorer verdict: UNSAFE — {}", v.message);
            println!("violating schedule ({} events): {v}", v.schedule.len());
        }
        other => println!("unexpected result: {other:?}"),
    }
    let stats = check_detection_safety(&SplitterTree::new(3, 1), ExploreConfig::default())?;
    println!(
        "\nsplitter-tree (the correct construction) explored exhaustively: \
         {} states, {} terminals, safe.",
        stats.states, stats.terminals
    );
    Ok(())
}
