//! Real-thread timing of the paper's algorithms: the contention-free fast
//! path of Lamport's mutex, the Θ(log n) bit-only tournament, and the
//! Discussion-section backoff effect.
//!
//! Run with: `cargo run --release --example native_locks`

use cfc::native::{FastMutex, NamingRegistry, PetersonTree, SlottedMutex, SpinStrategy, TasLock};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

fn uncontended_ns<M: SlottedMutex>(mutex: &M, iters: u64) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        mutex.lock(0);
        mutex.unlock(0);
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn contended_throughput<M: SlottedMutex>(mutex: &M, threads: usize, iters: u64) -> (u64, f64) {
    let counter = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for slot in 0..threads {
            let (mutex, counter) = (&*mutex, &counter);
            s.spawn(move || {
                for _ in 0..iters {
                    mutex.lock(slot);
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    mutex.unlock(slot);
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let total = counter.load(Ordering::Relaxed);
    (total, total as f64 / secs)
}

fn main() {
    let iters = 200_000u64;
    println!("== Uncontended acquire+release latency (the paper's contention-free cost) ==\n");
    let fast = FastMutex::new(8);
    let tree = PetersonTree::new(8);
    let tas = TasLock::new(SpinStrategy::Ttas);
    println!("{:<22} {:>10.1} ns   (constant: 7 accesses)", fast.name(), uncontended_ns(&fast, iters));
    println!(
        "{:<22} {:>10.1} ns   (Θ(log n): depth {} tree)",
        tree.name(),
        uncontended_ns(&tree, iters),
        tree.depth()
    );
    println!("{:<22} {:>10.1} ns   (hardware RMW baseline)", tas.name(), uncontended_ns(&tas, iters));

    println!("\n== Contended throughput, with and without backoff ==\n");
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(8);
    let per_thread = 50_000u64;
    for build in [false, true] {
        let mutex = if build {
            FastMutex::with_backoff(threads)
        } else {
            FastMutex::new(threads)
        };
        let (total, tput) = contended_throughput(&mutex, threads, per_thread);
        assert_eq!(total, threads as u64 * per_thread);
        println!(
            "{:<22} {} threads: {:>12.0} sections/s (counter exact)",
            mutex.name(),
            threads,
            tput
        );
    }

    println!("\n== Wait-free naming on threads ==\n");
    let registry = NamingRegistry::new(threads);
    let names: HashSet<usize> = std::thread::scope(|s| {
        (0..threads)
            .map(|_| s.spawn(|| registry.claim_search().unwrap()))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    println!("{threads} threads claimed names {names:?} — all distinct, wait-free");
}
