//! Quickstart: measure the contention-free complexity of mutual exclusion
//! and compare it against the paper's bounds (Table 1 of Alur &
//! Taubenfeld, PODC 1994), then exhaustively verify a small instance.
//!
//! Run with: `cargo run --example quickstart [-- --progress]`
//!
//! `--progress` turns on the live stderr heartbeat for the exhaustive
//! verification section (equivalent to setting `CFC_PROGRESS=1`).

use cfc::bounds::mutex as bounds;
use cfc::bounds::table::TextTable;
use cfc::mutex::{measure, LamportFast, MutexAlgorithm, Tournament};
use cfc::core::ProcessId;
use cfc::verify::explore::ExploreConfig;
use cfc::verify::{check_mutex_progress, check_mutex_safety};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Lamport's fast mutex: constant contention-free cost ==\n");
    let mut table = TextTable::new(["n", "atomicity l", "cf steps", "cf registers"])
        .with_title("Lamport fast mutex, measured on solo runs (paper: 7 steps, 3 registers)");
    for n in [2usize, 16, 256, 4096, 1 << 16] {
        let alg = LamportFast::new(n);
        let trip = measure::contention_free_trip(&alg, ProcessId::new(0))?;
        table.row([
            n.to_string(),
            alg.atomicity().to_string(),
            trip.total.steps.to_string(),
            trip.total.registers.to_string(),
        ]);
    }
    println!("{table}");

    println!("== Theorem 3 tournament: trading atomicity for steps ==\n");
    let n = 1 << 12;
    let mut table = TextTable::new([
        "l",
        "thm1 lower (step)",
        "measured cf steps",
        "paper upper 7log(n)/l",
        "measured cf regs",
        "upper 3log(n)/l",
    ])
    .with_title(format!("Tournament mutex for n = {n}, sweeping atomicity"));
    for l in [1u32, 2, 4, 8, 12] {
        let alg = Tournament::sparse(n, l, &[ProcessId::new(0)]);
        let trip = measure::contention_free_trip(&alg, ProcessId::new(0))?;
        table.row([
            l.to_string(),
            format!("{:.2}", bounds::thm1_step_lower(n as u64, l)),
            trip.total.steps.to_string(),
            bounds::thm3_step_upper(n as u64, l).to_string(),
            trip.total.registers.to_string(),
            bounds::thm3_register_upper(n as u64, l).to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "Every measured value sits between the Theorem 1/2 lower bounds and\n\
         the Theorem 3 upper bounds; with 1-bit registers the constant-cost\n\
         fast path is impossible, exactly as the paper proves."
    );

    println!("\n== Exhaustive verification: tournament n=4, every interleaving ==\n");
    let progress = std::env::args().any(|a| a == "--progress");
    let cfg = ExploreConfig::reduced()
        .with_max_states(4_000_000)
        .with_progress(progress);
    let alg = Tournament::new(4, 1);
    let safety = check_mutex_safety(&alg, 1, cfg)?;
    println!(
        "safety:   {} states, {} transitions in {:.1}ms ({} states/sec)",
        safety.states,
        safety.transitions,
        safety.wall_ns as f64 / 1e6,
        safety.states_per_sec(),
    );
    let progress_stats = check_mutex_progress(&alg, 1, cfg)?;
    println!(
        "progress: {} states, {} transitions in {:.1}ms ({} states/sec)",
        progress_stats.states,
        progress_stats.transitions,
        progress_stats.wall_ns as f64 / 1e6,
        progress_stats.states_per_sec(),
    );
    println!(
        "\nno interleaving of four single-trip clients violates mutual\n\
         exclusion or deadlock-freedom (POR + symmetry reduced; rerun\n\
         with -- --progress or CFC_PROGRESS=1 for a live heartbeat)."
    );
    Ok(())
}
