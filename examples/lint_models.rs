//! Static reduction-hook lint across every model family.
//!
//! Extracts each process's solo control automaton (`cfc-verify`'s
//! `analysis` module) and checks the hand-written reduction hooks
//! against it: every `may_access` declaration must cover the
//! location's future-access fixpoint, `location` keys must be
//! congruent, and `fingerprint`s must not collide across locations.
//! A clean report is the precondition for trusting any reduced
//! verdict — CI runs this with `--deny-findings`.
//!
//! Run with: `cargo run --example lint_models [-- --deny-findings] [-- --progress]`
//!
//! `--progress` installs a stderr heartbeat sink (the same one
//! `CFC_PROGRESS=1` enables on the exhaustive drivers), so each
//! family's `lint` phase span is visible live; the per-family wall
//! time in the report comes from the same telemetry clock.

use std::hash::Hash;
use std::process::ExitCode;

use cfc::core::{Layout, Process, ProcessId};
use cfc::mutex::{
    Bakery, DetectionAlgorithm, MutexAlgorithm, PetersonTwo, Splitter, Tournament,
};
use cfc::naming::{NamingAlgorithm, TafTree, TasScan};
use cfc::verify::{lint_model, with_telemetry, HeartbeatSink, Telemetry};

fn lint<P>(name: &str, layout: &Layout, procs: &[P]) -> usize
where
    P: Process + Clone + Eq + Hash,
{
    let report = lint_model(layout, procs);
    println!(
        "{name:<14} processes {:>2}   locations {:>4}   findings {:>2}   wall {:>7.3}ms",
        report.processes,
        report.locations,
        report.findings.len(),
        report.wall_ns as f64 / 1e6,
    );
    for f in &report.findings {
        println!("    {f}");
    }
    report.findings.len()
}

fn lint_all() -> usize {
    let mut total = 0usize;

    let peterson = PetersonTwo::new();
    let procs: Vec<_> = (0..2)
        .map(|i| peterson.client_with_cs(ProcessId::new(i), 1, 1))
        .collect();
    total += lint("peterson-two", &peterson.layout(), &procs);

    let bakery = Bakery::new(3);
    let procs: Vec<_> = (0..3)
        .map(|i| bakery.client_with_cs(ProcessId::new(i), 1, 1))
        .collect();
    total += lint("bakery", &bakery.layout(), &procs);

    let tournament = Tournament::new(3, 1);
    let procs: Vec<_> = (0..3)
        .map(|i| tournament.client_with_cs(ProcessId::new(i), 1, 1))
        .collect();
    total += lint("tournament", &tournament.layout(), &procs);

    let scan = TasScan::new(4);
    total += lint("tas-scan", &scan.layout(), &scan.processes());

    let taf = TafTree::new(4).expect("power-of-two size");
    total += lint("taf-tree", &taf.layout(), &taf.processes());

    let splitter = Splitter::new(3);
    let procs: Vec<_> = (0..3).map(|i| splitter.process(ProcessId::new(i))).collect();
    total += lint("splitter", &splitter.layout(), &procs);

    total
}

fn main() -> ExitCode {
    let deny = std::env::args().any(|a| a == "--deny-findings");
    let progress = std::env::args().any(|a| a == "--progress");

    println!("== Reduction-hook lint: solo control automata ==\n");

    let total = if progress {
        let tel = Telemetry::new().with_sink(HeartbeatSink::stderr(1.0));
        with_telemetry(&tel, lint_all)
    } else {
        lint_all()
    };

    println!("\n{total} finding(s) across all families");
    if deny && total > 0 {
        eprintln!("--deny-findings: failing");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
