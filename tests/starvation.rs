//! Starvation exhibits: deadlock freedom is all the paper's algorithms
//! promise, and the difference is observable.
//!
//! Lamport's fast mutex is deadlock-free but **not** starvation-free: a
//! competitor can be overtaken forever by a fast re-entering owner, even
//! under a schedule that gives the victim infinitely many steps (weak
//! fairness). Peterson's algorithm, by contrast, has bounded bypass: the
//! `turn` handshake forces alternation, so the same adversarial pattern
//! cannot starve anyone.

use cfc::core::{Process, ProcessId, Section, Status};
use cfc::mutex::{LamportFast, MutexAlgorithm, PetersonTwo};

/// Drives two clients with an overtaking schedule: the victim only gets a
/// step while the owner sits in its critical section; the owner otherwise
/// runs freely through `trips` trips. Returns (owner finished trips,
/// victim ever entered its critical section, victim steps taken).
fn overtake<A: MutexAlgorithm>(alg: &A, trips: u32) -> (bool, bool, u64) {
    let owner = ProcessId::new(0);
    let victim = ProcessId::new(1);
    let mut exec = cfc::core::Executor::new(
        alg.memory().unwrap(),
        vec![
            alg.client_with_cs(owner, trips, 1),
            alg.client_with_cs(victim, 1, 1),
        ],
    );
    let mut victim_entered = false;
    let mut guard = 0u64;
    while !exec.quiescent() && guard < 500_000 {
        guard += 1;
        if exec.status(owner) == Status::Running {
            // The victim gets its steps exactly while the owner occupies
            // the critical section — then the owner rushes on.
            if exec.process(owner).section() == Some(Section::Critical)
                && exec.status(victim) == Status::Running
            {
                exec.step_process(victim).unwrap();
            }
            exec.step_process(owner).unwrap();
        } else if exec.status(victim) == Status::Running {
            exec.step_process(victim).unwrap();
        }
        if exec.status(victim) == Status::Running
            && exec.process(victim).section() == Some(Section::Critical)
        {
            victim_entered = true;
        }
    }
    (
        exec.status(owner) == Status::Done,
        victim_entered || exec.status(victim) == Status::Done,
        exec.steps_taken(victim),
    )
}

#[test]
fn lamport_fast_is_not_starvation_free() {
    // The owner completes 200 trips while the victim — despite taking a
    // step during every single ownership period — never enters. (It
    // finishes afterwards, once the owner leaves for good: deadlock
    // freedom holds; starvation freedom does not.)
    let alg = LamportFast::new(2);
    let (owner_done, victim_ever_entered_during, victim_steps) = overtake(&alg, 200);
    assert!(owner_done);
    // The victim eventually completes (after the owner's last exit), so
    // we assert on effort: it needed to outlive all 200 ownership
    // periods, taking hundreds of fruitless steps.
    assert!(
        victim_steps >= 200,
        "victim took only {victim_steps} steps across 200 owner trips"
    );
    let _ = victim_ever_entered_during;
}

#[test]
fn lamport_victim_makes_no_progress_while_owner_cycles() {
    // Sharper: cap the victim's participation and verify it is still in
    // its entry section after the owner's 50th trip.
    let alg = LamportFast::new(2);
    let owner = ProcessId::new(0);
    let victim = ProcessId::new(1);
    let mut exec = cfc::core::Executor::new(
        alg.memory().unwrap(),
        vec![
            alg.client_with_cs(owner, 50, 1),
            alg.client_with_cs(victim, 1, 1),
        ],
    );
    while exec.status(owner) == Status::Running {
        let owner_in_cs = exec.process(owner).section() == Some(Section::Critical);
        if owner_in_cs && exec.status(victim) == Status::Running {
            exec.step_process(victim).unwrap();
            assert_ne!(
                exec.process(victim).section(),
                Some(Section::Critical),
                "victim entered while owner cycles — schedule broken"
            );
        }
        exec.step_process(owner).unwrap();
    }
    // Owner finished 50 trips; victim is still stuck in its entry code.
    assert_eq!(exec.status(owner), Status::Done);
    assert_eq!(exec.process(victim).section(), Some(Section::Entry));
    assert!(exec.steps_taken(victim) >= 50);
}

#[test]
fn peterson_has_bounded_bypass() {
    // The same overtaking pattern cannot starve Peterson's victim: after
    // the owner's first exit, the turn bit blocks re-entry until the
    // victim passes. The owner's second entry attempt must wait, so the
    // victim enters within a bounded number of owner trips.
    let alg = PetersonTwo::new();
    let owner = ProcessId::new(0);
    let victim = ProcessId::new(1);
    let mut exec = cfc::core::Executor::new(
        alg.memory().unwrap(),
        vec![
            alg.client_with_cs(owner, 10, 1),
            alg.client_with_cs(victim, 1, 1),
        ],
    );
    let mut victim_entered = false;
    let mut guard = 0u64;
    while !exec.quiescent() && guard < 100_000 {
        guard += 1;
        let owner_running = exec.status(owner) == Status::Running;
        let owner_in_cs =
            owner_running && exec.process(owner).section() == Some(Section::Critical);
        // Prefer the owner except while it occupies the CS — but when the
        // owner is blocked by the turn handshake, the victim runs too.
        if owner_running && !owner_in_cs {
            exec.step_process(owner).unwrap();
        }
        if exec.status(victim) == Status::Running {
            exec.step_process(victim).unwrap();
            if exec.status(victim) == Status::Running
                && exec.process(victim).section() == Some(Section::Critical)
            {
                victim_entered = true;
            }
        }
        if owner_in_cs && exec.status(owner) == Status::Running {
            exec.step_process(owner).unwrap();
        }
    }
    assert!(
        victim_entered || exec.status(victim) == Status::Done,
        "Peterson's bounded bypass should admit the victim"
    );
    assert!(exec.quiescent(), "both must finish (deadlock freedom)");
}
