//! Starvation classification: deadlock freedom is all the paper's
//! algorithms promise, and `cfc-verify`'s fair-cycle liveness checker
//! turns the difference into a mechanical verdict.
//!
//! Lamport's fast mutex is deadlock-free but **not** starvation-free: the
//! checker produces a weakly fair lasso in which a re-entering owner
//! overtakes the victim forever even though the victim takes a step in
//! every revolution. Peterson's algorithm, by contrast, is
//! starvation-free with bypass bound 1 — the `turn` handshake forces
//! alternation. The historical hand-built overtaking schedules survive
//! below as replay regressions: what used to be demonstrated by driving
//! an executor through an ad-hoc loop is now *discovered* as a lasso and
//! replayed mechanically.

use cfc::core::{Process, ProcessId, Section, Status};
use cfc::mutex::{LamportFast, MutexAlgorithm, MutexClient, PetersonTwo};
use cfc::verify::{
    check_mutex_starvation, replay, validate_lasso, ExploreConfig, LivenessSpec, ScheduleStep,
};

/// The mutex liveness spec, mirrored from the checker's wrapper so the
/// tests can re-validate witnesses independently.
fn spec<'a, L: cfc::mutex::LockProcess>() -> LivenessSpec<'a, MutexClient<L>> {
    LivenessSpec {
        pending: &|c: &MutexClient<L>| c.section() == Some(Section::Entry),
        engaged: &|c: &MutexClient<L>| c.engaged(),
        served: &|before: &MutexClient<L>, after: &MutexClient<L>| {
            before.section() != Some(Section::Critical)
                && after.section() == Some(Section::Critical)
        },
        normalize: None,
    }
}

fn cycling_clients<A: MutexAlgorithm>(alg: &A) -> Vec<MutexClient<A::Lock>> {
    (0..alg.n() as u32)
        .map(|i| alg.client_cycling(ProcessId::new(i), 1))
        .collect()
}

#[test]
fn lamport_fast_is_not_starvation_free() {
    // The checker discovers the overtaking schedule the old hand-driven
    // loop scripted: a weakly fair lasso in which the owner re-enters
    // forever while the victim — stepping in every revolution — never
    // leaves its entry section.
    let alg = LamportFast::new(2);
    let report = check_mutex_starvation(&alg, ExploreConfig::default()).unwrap();
    let witness = report.witness().expect("lamport-fast must be starvable");
    validate_lasso(&alg.memory().unwrap(), &cycling_clients(&alg), witness, &spec()).unwrap();

    // Replay regression of the discovered lasso: fifty revolutions are a
    // plain schedule. The victim takes at least one step per revolution
    // (weak fairness) yet is still in its entry section at the end,
    // while the owner has been served over and over.
    let victim = witness.victim;
    let victim_steps_per_lap = witness
        .lasso
        .cycle
        .iter()
        .filter(|s| matches!(s, ScheduleStep::Step(p) if *p == victim))
        .count();
    assert!(victim_steps_per_lap >= 1);
    let mut schedule = witness.lasso.stem.clone();
    for _ in 0..50 {
        schedule.extend(witness.lasso.cycle.iter().copied());
    }
    let replayed = replay(alg.memory().unwrap(), cycling_clients(&alg), &schedule).unwrap();
    assert_eq!(replayed.status[victim.index()], Status::Running);
    assert_eq!(
        replayed.procs[victim.index()].section(),
        Some(Section::Entry),
        "victim must still be trying after 50 overtaking revolutions"
    );
}

#[test]
fn lamport_victim_makes_no_progress_while_owner_cycles() {
    // Replay regression of the original hand schedule: the victim only
    // gets steps while the owner occupies the critical section, and is
    // still stuck in its entry code after the owner's 50th trip. No
    // ad-hoc step guard: the owner's trips bound the loop.
    let alg = LamportFast::new(2);
    let owner = ProcessId::new(0);
    let victim = ProcessId::new(1);
    let mut exec = cfc::core::Executor::new(
        alg.memory().unwrap(),
        vec![
            alg.client_with_cs(owner, 50, 1),
            alg.client_with_cs(victim, 1, 1),
        ],
    );
    while exec.status(owner) == Status::Running {
        let owner_in_cs = exec.process(owner).section() == Some(Section::Critical);
        if owner_in_cs && exec.status(victim) == Status::Running {
            exec.step_process(victim).unwrap();
            assert_ne!(
                exec.process(victim).section(),
                Some(Section::Critical),
                "victim entered while owner cycles — schedule broken"
            );
        }
        exec.step_process(owner).unwrap();
    }
    assert_eq!(exec.status(owner), Status::Done);
    assert_eq!(exec.process(victim).section(), Some(Section::Entry));
    assert!(exec.steps_taken(victim) >= 50);
}

#[test]
fn peterson_is_starvation_free_in_every_reduction_mode() {
    // The same overtaking pattern cannot starve Peterson's victim, and
    // the checker proves it across *every* schedule rather than one
    // scripted pattern: no weakly fair cycle keeps either side pending,
    // and an engaged waiter is overtaken at most once before the `turn`
    // handshake blocks the owner. (The plain-config classification is
    // unit-tested in cfc-verify; here the verdict must survive every
    // reduction mode.)
    for config in [
        ExploreConfig::default(),
        ExploreConfig::reduced(),
        ExploreConfig {
            por: true,
            ..ExploreConfig::default()
        },
    ] {
        let report = check_mutex_starvation(&PetersonTwo::new(), config).unwrap();
        assert!(report.is_starvation_free());
        assert_eq!(report.bypass(), Some(Some(1)));
        // Both sides are checked in every mode (their lock states embed
        // a side, so the victim-per-class shortcut must not collapse
        // them).
        assert_eq!(report.stats.victims, 2);
    }
}

#[test]
fn discovered_lasso_is_minimal_evidence_not_an_accident() {
    // Tampering sanity for the replay regression itself: dropping the
    // victim's spin steps from the loop must break validation (the loop
    // stops being weakly fair), so the regression above really does pin
    // a *fair* overtaking run and not an arbitrary unfair one.
    let alg = LamportFast::new(2);
    let report = check_mutex_starvation(&alg, ExploreConfig::default()).unwrap();
    let mut witness = report.witness().unwrap().clone();
    let victim = witness.victim;
    witness
        .lasso
        .cycle
        .retain(|s| !matches!(s, ScheduleStep::Step(p) if *p == victim));
    let err = validate_lasso(&alg.memory().unwrap(), &cycling_clients(&alg), &witness, &spec())
        .unwrap_err();
    assert!(err.contains("not weakly fair") || err.contains("never steps"), "{err}");
}
