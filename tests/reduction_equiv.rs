//! Differential test harness for the explorer's state-space reductions:
//! on every small mutex/naming configuration, the reduced explorer (any
//! combination of partial-order and symmetry reduction) must report a
//! violation **iff** the baseline explorer does — and when both report
//! one, each schedule must replay under the un-reduced semantics to a
//! state exhibiting the same violation, with an identical multiset of
//! violating outputs.
//!
//! The harness is the executable soundness argument for the ample-set
//! conditions: pruned interleavings only reorder independent, invisible
//! steps, and canonicalized orbits stand for permuted-but-equivalent
//! states, so no verdict can flip. A seeded mutation test plants a
//! lost-update bug into the `test-and-set` scan at a seed-chosen bit and
//! checks both explorers catch it.

mod common;

use cfc::core::{Process, ProcessId, Section};
use cfc::mutex::{
    Bakery, BrokenDetector, Dijkstra, ExitOrder, LamportFast, MutexAlgorithm, PetersonTwo,
    Tournament,
};
use cfc::naming::{NamingAlgorithm, TafTree, TasReadSearch, TasScan, TasTarTree};
use cfc::verify::{
    check_detection_safety, check_mutex_safety, check_naming_uniqueness, replay, ExploreError,
    ExploreStats, ScheduleStep,
};
use common::{budget, output_multiset, reduced, reduced_variants as variants, MutatedTasScan};

/// A verdict a run can end with; budget/memory failures always panic.
fn verdict(r: &Result<ExploreStats, ExploreError>, what: &str) -> bool {
    match r {
        Ok(_) => true,
        Err(ExploreError::Violation(_)) => false,
        Err(other) => panic!("{what}: unexpected exploration failure: {other}"),
    }
}

fn schedule_of(r: Result<ExploreStats, ExploreError>) -> Vec<ScheduleStep> {
    match r {
        Err(ExploreError::Violation(v)) => v.schedule,
        other => panic!("expected a violation, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Safe configurations: every variant must agree with the baseline.
// ---------------------------------------------------------------------

fn assert_mutex_agrees<A>(alg: &A, trips: u32, max_states: usize)
where
    A: MutexAlgorithm,
    A::Lock: Clone + Eq + std::hash::Hash,
{
    let base = check_mutex_safety(alg, trips, budget(max_states));
    let base_safe = verdict(&base, alg.name());
    for (label, cfg) in variants(max_states) {
        let red = check_mutex_safety(alg, trips, cfg);
        assert_eq!(
            base_safe,
            verdict(&red, alg.name()),
            "{} with {label}: verdict flipped (baseline {base:?})",
            alg.name()
        );
    }
}

fn assert_naming_agrees<A>(alg: &A, crashes: u32, max_states: usize)
where
    A: NamingAlgorithm,
    A::Proc: Clone + Eq + std::hash::Hash,
{
    let base = check_naming_uniqueness(alg, crashes, budget(max_states));
    let base_safe = verdict(&base, alg.name());
    for (label, cfg) in variants(max_states) {
        let red = check_naming_uniqueness(alg, crashes, cfg);
        assert_eq!(
            base_safe,
            verdict(&red, alg.name()),
            "{} with {label}: verdict flipped",
            alg.name()
        );
    }
}

#[test]
fn safe_mutex_configs_agree_across_reductions() {
    assert_mutex_agrees(&PetersonTwo::new(), 2, 200_000);
    assert_mutex_agrees(&LamportFast::new(2), 1, 200_000);
    assert_mutex_agrees(&LamportFast::new(3), 1, 200_000);
    assert_mutex_agrees(&Bakery::new(2), 1, 200_000);
    assert_mutex_agrees(&Dijkstra::new(2), 1, 200_000);
    assert_mutex_agrees(&Tournament::new(3, 1), 1, 200_000);
    assert_mutex_agrees(&Tournament::new(4, 1), 1, 200_000);
}

#[test]
fn safe_naming_configs_agree_across_reductions() {
    for crashes in 0..=1 {
        assert_naming_agrees(&TasScan::new(2), crashes, 100_000);
        assert_naming_agrees(&TasScan::new(3), crashes, 100_000);
        assert_naming_agrees(&TafTree::new(2).unwrap(), crashes, 100_000);
        assert_naming_agrees(&TafTree::new(4).unwrap(), crashes, 100_000);
        assert_naming_agrees(&TasTarTree::new(2).unwrap(), crashes, 100_000);
        assert_naming_agrees(&TasReadSearch::new(3), crashes, 100_000);
    }
}

// ---------------------------------------------------------------------
// Violating configurations: every variant must find the bug, and the
// violation must reproduce under the un-reduced semantics.
// ---------------------------------------------------------------------

#[test]
fn planted_mutex_bug_caught_by_all_variants() {
    // The paper's literal leaf-to-root exit order is unsafe for composed
    // Peterson nodes at n = 4: a known, reproducible safety bug.
    let alg = Tournament::new(4, 1).with_exit_order(ExitOrder::LeafToRoot);
    let base = check_mutex_safety(&alg, 1, budget(200_000));
    assert!(!verdict(&base, "tournament leaf-to-root"));
    for (label, cfg) in variants(200_000) {
        let red = check_mutex_safety(&alg, 1, cfg);
        let schedule = schedule_of(red);
        // Replay against the un-reduced semantics: the reached state must
        // exhibit the very violation the reduced explorer reported.
        let clients: Vec<_> = (0..4)
            .map(|i| alg.client_with_cs(ProcessId::new(i), 1, 1))
            .collect();
        let replayed = replay(alg.memory().unwrap(), clients, &schedule).unwrap();
        let in_cs = replayed
            .procs
            .iter()
            .filter(|c| c.section() == Some(Section::Critical))
            .count();
        assert!(
            in_cs >= 2,
            "{label}: replayed state has {in_cs} processes in the critical section"
        );
    }
}

#[test]
fn broken_detector_caught_by_all_variants() {
    let alg = BrokenDetector::new(2);
    assert!(!verdict(
        &check_detection_safety(&alg, budget(100_000)),
        "broken detector"
    ));
    for (label, cfg) in variants(100_000) {
        let red = check_detection_safety(&alg, cfg);
        assert!(!verdict(&red, "broken detector"), "{label}: bug missed");
    }
}

// ---------------------------------------------------------------------
// Seeded mutation: a lost-update bug planted into the TAS scan (the
// shared `common::MutatedTasScan` fixture).
// ---------------------------------------------------------------------

#[test]
fn seeded_mutation_caught_by_all_variants_with_identical_outputs() {
    for seed in 0..3u64 {
        let alg = MutatedTasScan::new(4, seed);
        let base = check_naming_uniqueness(&alg, 0, budget(100_000));
        let base_schedule = schedule_of(base);
        let base_replay = replay(alg.memory().unwrap(), alg.processes(), &base_schedule).unwrap();
        let base_outputs = output_multiset(&base_replay.procs);
        assert!(
            base_outputs.values().any(|&c| c >= 2),
            "seed {seed}: baseline violation has no duplicate name ({base_outputs:?})"
        );
        for (label, cfg) in variants(100_000) {
            let red = check_naming_uniqueness(&alg, 0, cfg);
            let schedule = schedule_of(red);
            let replayed = replay(alg.memory().unwrap(), alg.processes(), &schedule).unwrap();
            let outputs = output_multiset(&replayed.procs);
            assert_eq!(
                base_outputs, outputs,
                "seed {seed}, {label}: violating-output multiset differs"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Regression: violations found under full reduction replay to the same
// violating state under the un-reduced semantics (the `replay()` fix:
// it now returns the reached memory and statuses for re-checking).
// ---------------------------------------------------------------------

#[test]
fn reduced_violation_replays_to_the_same_violating_state() {
    let alg = MutatedTasScan::new(3, 1);
    let err = check_naming_uniqueness(&alg, 0, reduced(100_000)).unwrap_err();
    let ExploreError::Violation(v) = err else {
        panic!("expected a violation");
    };
    let replayed = replay(alg.memory().unwrap(), alg.processes(), &v.schedule).unwrap();
    // The reported message names the duplicate; the replayed state must
    // contain exactly that duplicate.
    let outputs = output_multiset(&replayed.procs);
    let (dup, count) = outputs
        .iter()
        .find(|(_, &c)| c >= 2)
        .map(|(k, v)| (*k, *v))
        .expect("replayed state has a duplicate name");
    assert!(
        v.message.contains(&format!("duplicate name {dup}")),
        "message {:?} vs replayed duplicate {dup} (x{count})",
        v.message
    );
    // And the replayed view re-fails the very uniqueness check: the
    // memory and statuses returned by replay() are the violating state's.
    let view = replayed.view();
    let mut seen = std::collections::HashSet::new();
    assert!(
        view.outputs().into_iter().flatten().any(|v| !seen.insert(v.raw())),
        "replayed view does not re-fail the uniqueness check"
    );
}
