//! E2/E9: regenerate the paper's "Tight bounds for naming" table from
//! measured runs and check every cell against the symbolic bound.

use cfc::bounds::naming::{tight_bound, Bound, Measure, ModelClass};
use cfc::core::BitOp;
use cfc::naming::{Dualized, NamingAlgorithm, TafTree, TasReadSearch, TasScan, TasTarTree};
use cfc::verify::{naming_profile, NamingProfile};

const SEEDS: u64 = 25;

fn ceil_log2(n: u64) -> u64 {
    u64::from(64 - (n - 1).leading_zeros())
}

/// The measured value of one of the four measures.
fn measured(p: &NamingProfile, m: Measure) -> u64 {
    match m {
        Measure::CfRegister => p.contention_free.registers,
        Measure::CfStep => p.contention_free.steps,
        Measure::WcRegister => p.worst_case.registers,
        Measure::WcStep => p.worst_case.steps,
    }
}

#[test]
fn tas_only_column_is_linear_in_n() {
    // {test-and-set}: n-1 is tight on all four measures; tas-scan
    // realizes it exactly (upper bound), and Theorems 6/7 say nothing
    // smaller is possible.
    for n in [4usize, 8, 16, 32] {
        let p = naming_profile(&TasScan::new(n), SEEDS).unwrap();
        for m in Measure::ALL {
            let bound = tight_bound(ModelClass::TasOnly, m).eval(n as u64);
            assert_eq!(measured(&p, m), bound, "n={n} {m}");
        }
    }
}

#[test]
fn read_tas_column_has_log_contention_free_linear_worst() {
    for n in [8usize, 16, 64, 256] {
        let p = naming_profile(&TasReadSearch::new(n), SEEDS).unwrap();
        let log_n = ceil_log2(n as u64);
        // Contention-free: within one step of log n (the final TAS may
        // probe both candidates; the paper's own algorithm shares this
        // +1 — see EXPERIMENTS.md).
        assert!(
            measured(&p, Measure::CfStep) <= log_n + 1,
            "n={n}: cf steps {}",
            measured(&p, Measure::CfStep)
        );
        assert!(measured(&p, Measure::CfRegister) <= log_n + 1);
        // Worst case is linear: Theorem 6's lower bound is n-1, and the
        // scan fallback keeps the algorithm within O(n).
        assert!(measured(&p, Measure::WcStep) >= log_n);
        assert!(measured(&p, Measure::WcStep) <= 2 * n as u64 + log_n);
    }
}

#[test]
fn tas_tar_tree_achieves_log_worst_case_registers() {
    for n in [4usize, 8, 16, 32] {
        let p = naming_profile(&TasTarTree::new(n).unwrap(), SEEDS).unwrap();
        let log_n = ceil_log2(n as u64);
        // The headline: worst-case REGISTER complexity log n, even though
        // step complexity exceeds it under contention.
        assert_eq!(measured(&p, Measure::WcRegister), log_n, "n={n}");
        assert_eq!(measured(&p, Measure::CfRegister), log_n, "n={n}");
        assert!(measured(&p, Measure::WcStep) >= log_n);
    }
}

#[test]
fn taf_column_is_logarithmic_on_all_four_measures() {
    for n in [4usize, 8, 16, 64] {
        let p = naming_profile(&TafTree::new(n).unwrap(), SEEDS).unwrap();
        let expected = tight_bound(ModelClass::Taf, Measure::WcStep).eval(n as u64);
        for m in Measure::ALL {
            assert_eq!(measured(&p, m), expected, "n={n} {m}");
        }
    }
}

#[test]
fn theorem5_lower_bound_no_algorithm_beats_log_n_registers() {
    // Theorem 5: contention-free register complexity >= log n in EVERY
    // model. Check every implemented algorithm.
    let n = 16usize;
    let log_n = ceil_log2(n as u64);
    let profiles = [
        naming_profile(&TasScan::new(n), 5).unwrap(),
        naming_profile(&TasReadSearch::new(n), 5).unwrap(),
        naming_profile(&TasTarTree::new(n).unwrap(), 5).unwrap(),
        naming_profile(&TafTree::new(n).unwrap(), 5).unwrap(),
    ];
    for p in profiles {
        assert!(
            p.contention_free.registers >= log_n,
            "Theorem 5 violated: {} < {log_n}",
            p.contention_free.registers
        );
    }
}

#[test]
fn theorem6_lockstep_forces_linear_steps_without_taf() {
    // Every implemented algorithm that lacks test-and-flip shows
    // worst-case step complexity >= n - 1 for some process... for the
    // tree algorithms the bound applies to the MODEL, realized by
    // tas-scan; here we check the adversary actually drives tas-scan to
    // exactly n - 1 and the taf tree stays at log n.
    for n in [8usize, 16] {
        let scan = naming_profile(&TasScan::new(n), 0).unwrap();
        assert_eq!(scan.worst_case.steps, n as u64 - 1);
        let taf = naming_profile(&TafTree::new(n).unwrap(), 0).unwrap();
        assert_eq!(taf.worst_case.steps, ceil_log2(n as u64));
    }
}

#[test]
fn theorem7_sequential_runs_force_linear_registers_for_tas_only() {
    for n in [4usize, 8, 32] {
        let p = naming_profile(&TasScan::new(n), 0).unwrap();
        assert_eq!(
            p.contention_free.registers,
            n as u64 - 1,
            "Theorem 7: the last sequential process must touch n-1 bits"
        );
    }
}

#[test]
fn dual_models_have_identical_measured_complexity() {
    // Section 3.2: bounds transfer to dual models. Measure an algorithm
    // and its dual under identical schedules.
    let n = 16usize;
    let base = naming_profile(&TasScan::new(n), 10).unwrap();
    let dual = naming_profile(&Dualized::new(TasScan::new(n)), 10).unwrap();
    assert_eq!(base.contention_free, dual.contention_free);
    assert_eq!(base.worst_case, dual.worst_case);

    let base = naming_profile(&TafTree::new(n).unwrap(), 10).unwrap();
    let dual = naming_profile(&Dualized::new(TafTree::new(n).unwrap()), 10).unwrap();
    assert_eq!(base.contention_free, dual.contention_free);
    assert_eq!(base.worst_case, dual.worst_case);
}

#[test]
fn models_match_table_columns() {
    assert_eq!(TasScan::new(4).model(), cfc::naming::Model::TAS_ONLY);
    assert_eq!(TasReadSearch::new(4).model(), cfc::naming::Model::READ_TAS);
    assert!(cfc::naming::Model::READ_TAS_TAR
        .superset_of(TasTarTree::new(4).unwrap().model()));
    assert_eq!(TafTree::new(4).unwrap().model(), cfc::naming::Model::TAF_ONLY);
    assert!(cfc::naming::Model::RMW.superset_of(TafTree::new(4).unwrap().model()));
    assert!(TafTree::new(4).unwrap().model().contains(BitOp::TestAndFlip));
}

#[test]
fn bound_symbols_evaluate_consistently() {
    for n in [4u64, 16, 64] {
        assert_eq!(Bound::Linear.eval(n), n - 1);
        assert_eq!(Bound::Log.eval(n), ceil_log2(n));
    }
}
