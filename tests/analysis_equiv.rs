//! Differential evidence for the control-automaton may-access mode
//! (`MayAccessMode::Automaton`): the per-location future-access sets the
//! solo havoc extraction computes, plugged into ample-set selection,
//! against the hand-written `may_access` hooks (`MayAccessMode::Declared`,
//! the oracle).
//!
//! The two modes explore **different but equally sound** reduced graphs:
//! a sharper future set lets more processes qualify as ample singletons,
//! so the automaton may legally visit fewer states (and never an unsound
//! subset — every verdict must agree). That dictates the assertion
//! shape:
//!
//! * without partial-order reduction the future sets are never consulted,
//!   so every count must match **exactly**;
//! * with POR, verdicts must agree, and on the families whose declared
//!   hooks are location-insensitive (bakery's whole-array footprint, the
//!   splitter's whole-protocol set) the automaton must prune at least as
//!   much — strictly more on the named configurations below;
//! * liveness verdicts (starvation-free + bypass bound, or starvable)
//!   must be mode-invariant even where graph counts are not.

mod common;

use cfc::mutex::{Bakery, LamportFast, PetersonTwo, Splitter, Tournament};
use cfc::naming::{TafTree, TasScan};
use cfc::verify::{
    check_detection_safety, check_mutex_progress, check_mutex_safety, check_mutex_starvation,
    check_naming_lockout, check_naming_progress, check_naming_uniqueness, ExploreConfig,
    ExploreStats, LivenessReport, LivenessVerdict, MayAccessMode,
};

fn counts(s: &ExploreStats) -> (usize, u64, usize, u64, u64) {
    (
        s.states,
        s.transitions,
        s.terminals,
        s.states_pruned_por,
        s.orbits_merged,
    )
}

fn liveness_verdict(r: &LivenessReport) -> String {
    match &r.verdict {
        LivenessVerdict::StarvationFree { bypass, .. } => format!("free bypass={bypass:?}"),
        LivenessVerdict::Starvable(w) => format!("starvable cycle={}", w.lasso.cycle.len()),
    }
}

/// Runs one safety check under both may-access modes across every
/// reduction variant; exact equality without POR, sound agreement with.
fn assert_modes_agree<F>(label: &str, run: F)
where
    F: Fn(ExploreConfig) -> ExploreStats,
{
    for (variant, cfg) in common::labeled_variants(200_000) {
        let declared = run(cfg);
        let automaton = run(cfg.with_may_access(MayAccessMode::Automaton));
        if cfg.por {
            // Different ample choices, both sound: the graphs may differ,
            // but an automaton run may never *lose* reduction power.
            assert!(
                automaton.states <= declared.states,
                "{label} [{variant}]: automaton visited more states \
                 ({} vs {})",
                automaton.states,
                declared.states
            );
            assert!(automaton.states > 0, "{label} [{variant}]: empty exploration");
        } else {
            // The future sets are never consulted: bit-for-bit identical.
            assert_eq!(
                counts(&automaton),
                counts(&declared),
                "{label} [{variant}]: automaton mode must be inert without POR"
            );
        }
    }
}

#[test]
fn modes_agree_on_mutex_safety() {
    assert_modes_agree("peterson", |cfg| {
        check_mutex_safety(&PetersonTwo::new(), 2, cfg).unwrap()
    });
    assert_modes_agree("bakery", |cfg| {
        check_mutex_safety(&Bakery::new(2), 1, cfg).unwrap()
    });
    assert_modes_agree("tournament", |cfg| {
        check_mutex_safety(&Tournament::new(3, 1), 1, cfg).unwrap()
    });
}

#[test]
fn modes_agree_on_naming_and_detection() {
    assert_modes_agree("tas-scan", |cfg| {
        check_naming_uniqueness(&TasScan::new(3), 1, cfg).unwrap()
    });
    assert_modes_agree("taf-tree", |cfg| {
        check_naming_uniqueness(&TafTree::new(4).unwrap(), 0, cfg).unwrap()
    });
    assert_modes_agree("splitter", |cfg| {
        check_detection_safety(&Splitter::new(3), cfg).unwrap()
    });
}

/// The acceptance configurations: families whose declared hooks are
/// deliberately location-insensitive, where the automaton's per-location
/// future sets must buy **strictly** more pruning.
#[test]
fn automaton_strictly_sharpens_bakery_and_splitter() {
    let strict = [
        ("bakery n=3", {
            let cfg = common::por_only(400_000);
            let run = |c: ExploreConfig| check_mutex_safety(&Bakery::new(3), 1, c).unwrap();
            (run(cfg), run(cfg.with_may_access(MayAccessMode::Automaton)))
        }),
        ("splitter n=3", {
            let cfg = common::por_only(200_000);
            let run = |c: ExploreConfig| check_detection_safety(&Splitter::new(3), c).unwrap();
            (run(cfg), run(cfg.with_may_access(MayAccessMode::Automaton)))
        }),
    ];
    for (label, (declared, automaton)) in strict {
        assert!(
            automaton.states < declared.states,
            "{label}: automaton future sets must strictly shrink the reduced \
             graph ({} vs {} states)",
            automaton.states,
            declared.states
        );
    }
}

#[test]
fn modes_agree_on_progress_graphs() {
    for (variant, cfg) in common::labeled_variants(60_000) {
        for label in ["peterson", "bakery", "tas-scan"] {
            let run = |c: ExploreConfig| match label {
                "peterson" => check_mutex_progress(&PetersonTwo::new(), 2, c).unwrap(),
                "bakery" => check_mutex_progress(&Bakery::new(2), 1, c).unwrap(),
                _ => check_naming_progress(&TasScan::new(3), 1, c).unwrap(),
            };
            let declared = run(cfg);
            let automaton = run(cfg.with_may_access(MayAccessMode::Automaton));
            if cfg.por {
                assert!(
                    automaton.states <= declared.states,
                    "{label} [{variant}]: automaton progress graph grew \
                     ({} vs {})",
                    automaton.states,
                    declared.states
                );
            } else {
                assert_eq!(
                    (declared.states, declared.transitions, declared.terminals),
                    (automaton.states, automaton.transitions, automaton.terminals),
                    "{label} [{variant}]: automaton mode must be inert without POR"
                );
            }
        }
    }
}

/// Liveness is the deepest consumer: per-victim graphs, Tarjan, witness
/// re-derivation. The *verdict* — starvation-free with its exact bypass
/// bound, or starvable — must be identical whichever ample sets shaped
/// the graph.
#[test]
fn modes_agree_on_liveness_verdicts() {
    for (variant, cfg) in common::labeled_variants(60_000) {
        for label in ["peterson", "lamport", "taf-tree"] {
            let run = |c: ExploreConfig| match label {
                "peterson" => check_mutex_starvation(&PetersonTwo::new(), c).unwrap(),
                "lamport" => check_mutex_starvation(&LamportFast::new(2), c).unwrap(),
                _ => check_naming_lockout(&TafTree::new(4).unwrap(), 0, c).unwrap(),
            };
            let declared = run(cfg);
            let automaton = run(cfg.with_may_access(MayAccessMode::Automaton));
            assert_eq!(
                liveness_verdict(&declared),
                liveness_verdict(&automaton),
                "{label} [{variant}]: liveness verdict depends on the may-access mode"
            );
        }
    }
}

/// The seven-player single-bit tournament at tournament scale: the
/// automaton mode must agree with the declared oracle on a reduced graph
/// far past what the fast suites visit, and still win on pruning.
#[test]
#[ignore = "large automaton differential; run via cargo test --release -- --ignored"]
fn exhaustive_tournament_seven_automaton() {
    let alg = Tournament::new(7, 1);
    // The automaton-reduced graph alone holds ~74.9M states (and the
    // declared one slightly more), so the budget must match the 80M the
    // un-reduced tournament-7 run in tests/exploration.rs uses — the
    // original 40M exhausted before either traversal completed.
    let cfg = common::por_only(80_000_000);
    let declared = check_mutex_safety(&alg, 1, cfg).unwrap();
    let automaton =
        check_mutex_safety(&alg, 1, cfg.with_may_access(MayAccessMode::Automaton)).unwrap();
    assert!(
        automaton.states <= declared.states,
        "automaton lost reduction power at scale ({} vs {})",
        automaton.states,
        declared.states
    );
    assert!(automaton.states > 100_000, "unexpectedly small exploration");
}
