//! Differential test harness for reduction-aware progress checking: on
//! every small mutex/naming/detection configuration the baseline can
//! still reach, the reduced progress checker (any combination of
//! partial-order and symmetry reduction) must return the same verdict —
//! and when a violation is reported, its schedule must replay under the
//! un-reduced semantics to a genuinely non-quiescent state. The
//! acceptance configuration at the bottom exceeds the un-reduced state
//! budget and verifies only on the reduced graph.
//!
//! This is the progress-side sibling of `tests/reduction_equiv.rs`: the
//! executable soundness evidence for running deadlock-freedom checks on
//! the reduced state graph (symmetry quotients by a bisimulation;
//! partial-order reduction keeps independence and the fresh-successor
//! proviso while dropping invisibility — see the README "Verification
//! pipeline" section for the argument).

mod common;

use cfc::core::Status;
use cfc::mutex::{
    Bakery, Dijkstra, DetectionAlgorithm, LamportFast, MutexAlgorithm, MutexDetector,
    PetersonTwo, Splitter, SplitterTree, Tournament,
};
use cfc::naming::{NamingAlgorithm, TafTree, TasReadSearch, TasScan, TasTarTree};
use cfc::verify::{
    check_detection_progress, check_mutex_progress, check_naming_progress, replay, ExploreError,
    ProgressStats, ScheduleStep,
};
use common::{budget, reduced, reduced_variants as variants};

/// A verdict a run can end with; budget/memory failures always panic.
fn verdict(r: &Result<ProgressStats, ExploreError>, what: &str) -> bool {
    match r {
        Ok(_) => true,
        Err(ExploreError::Violation(_)) => false,
        Err(other) => panic!("{what}: unexpected progress-check failure: {other}"),
    }
}

fn assert_mutex_progress_agrees<A>(alg: &A, trips: u32, max_states: usize)
where
    A: MutexAlgorithm,
    A::Lock: Clone + Eq + std::hash::Hash,
{
    let base = check_mutex_progress(alg, trips, budget(max_states));
    let base_ok = verdict(&base, alg.name());
    for (label, cfg) in variants(max_states) {
        let red = check_mutex_progress(alg, trips, cfg);
        assert_eq!(
            base_ok,
            verdict(&red, alg.name()),
            "{} with {label}: progress verdict flipped (baseline {base:?})",
            alg.name()
        );
    }
}

fn assert_naming_progress_agrees<A>(alg: &A, crashes: u32, max_states: usize)
where
    A: NamingAlgorithm,
    A::Proc: Clone + Eq + std::hash::Hash,
{
    let base = check_naming_progress(alg, crashes, budget(max_states));
    let base_ok = verdict(&base, alg.name());
    for (label, cfg) in variants(max_states) {
        let red = check_naming_progress(alg, crashes, cfg);
        assert_eq!(
            base_ok,
            verdict(&red, alg.name()),
            "{} with {label} (crashes={crashes}): progress verdict flipped",
            alg.name()
        );
    }
}

// ---------------------------------------------------------------------
// Deadlock-free configurations: every variant must agree (all Ok).
// ---------------------------------------------------------------------

#[test]
fn mutex_progress_agrees_across_reductions() {
    assert_mutex_progress_agrees(&PetersonTwo::new(), 2, 200_000);
    assert_mutex_progress_agrees(&LamportFast::new(2), 1, 200_000);
    assert_mutex_progress_agrees(&LamportFast::new(3), 1, 200_000);
    assert_mutex_progress_agrees(&Bakery::new(2), 1, 200_000);
    assert_mutex_progress_agrees(&Dijkstra::new(2), 1, 200_000);
    assert_mutex_progress_agrees(&Tournament::new(3, 1), 1, 200_000);
    assert_mutex_progress_agrees(&Tournament::new(4, 1), 1, 200_000);
}

#[test]
fn naming_progress_agrees_across_reductions() {
    for crashes in 0..=1 {
        assert_naming_progress_agrees(&TasScan::new(3), crashes, 100_000);
        assert_naming_progress_agrees(&TafTree::new(4).unwrap(), crashes, 100_000);
        assert_naming_progress_agrees(&TasTarTree::new(2).unwrap(), crashes, 100_000);
        assert_naming_progress_agrees(&TasReadSearch::new(3), crashes, 100_000);
    }
}

#[test]
fn detection_progress_agrees_across_reductions() {
    // Splitters always terminate: progress holds for every participant.
    for (label, cfg) in variants(200_000) {
        let r = check_detection_progress(&Splitter::new(3), cfg);
        assert!(verdict(&r, "splitter"), "{label}");
        let r = check_detection_progress(&SplitterTree::new(4, 1), cfg);
        assert!(verdict(&r, "splitter tree"), "{label}");
    }
    check_detection_progress(&Splitter::new(3), budget(200_000)).unwrap();
    check_detection_progress(&SplitterTree::new(4, 1), budget(200_000)).unwrap();
}

// ---------------------------------------------------------------------
// A genuinely non-progressing system: the Lemma 1 mutex-derived detector
// (losers busy-wait forever). Every variant must find a stuck state, and
// the schedule must replay to a non-quiescent state under the un-reduced
// semantics.
// ---------------------------------------------------------------------

#[test]
fn lemma1_detector_violation_replays_in_every_variant() {
    let alg = MutexDetector::new(PetersonTwo::new());
    let base = check_detection_progress(&alg, budget(100_000));
    assert!(!verdict(&base, "lemma-1 detector"));
    let mut runs: Vec<(&str, Result<ProgressStats, ExploreError>)> = vec![("baseline", base)];
    for (label, cfg) in variants(100_000) {
        runs.push((label, check_detection_progress(&alg, cfg)));
    }
    for (label, run) in runs {
        let Err(ExploreError::Violation(v)) = run else {
            panic!("{label}: expected a progress violation");
        };
        assert!(
            !v.schedule.is_empty(),
            "{label}: stuck state must be reached by a concrete schedule"
        );
        let procs: Vec<_> = (0..alg.n() as u32)
            .map(|i| alg.process(cfc::core::ProcessId::new(i)))
            .collect();
        let replayed = replay(alg.memory().unwrap(), procs, &v.schedule).unwrap();
        // The replayed state is not quiescent — someone is still spinning
        // in the mutex entry code with the claim already taken.
        assert!(
            replayed.status.contains(&Status::Running),
            "{label}: replayed state is quiescent, so it cannot be stuck"
        );
        assert!(
            v.schedule
                .iter()
                .all(|s| matches!(s, ScheduleStep::Step(_))),
            "{label}: crash-free check must produce a crash-free schedule"
        );
    }
}

// ---------------------------------------------------------------------
// The acceptance configuration: a process count whose un-reduced
// progress graph exceeds the state budget, verified on the reduced
// graph. (Measured: tournament n=5 builds ~455k un-reduced progress
// states but ~284k reduced ones.)
// ---------------------------------------------------------------------

#[test]
fn tournament_five_progress_exceeds_unreduced_budget_but_verifies_reduced() {
    let cap = 300_000;
    match check_mutex_progress(&Tournament::new(5, 1), 1, budget(cap)) {
        Err(ExploreError::StateBudget(n)) => assert!(n > cap),
        other => panic!("expected the un-reduced graph to overflow, got {other:?}"),
    }
    let stats = check_mutex_progress(&Tournament::new(5, 1), 1, reduced(cap)).unwrap();
    assert!(stats.states <= cap, "{stats:?}");
    assert!(stats.states_pruned_por > 0, "{stats:?}");
    assert!(stats.terminals >= 1);
}

#[test]
fn eight_walker_progress_verifies_only_reduced() {
    // The eight-walker taf-tree progress graph is ~15^8 joint states
    // un-reduced; under the canonical quotient it collapses to well under
    // the same 50k budget that the baseline overflows.
    let cap = 50_000;
    match check_naming_progress(&TafTree::new(8).unwrap(), 0, budget(cap)) {
        Err(ExploreError::StateBudget(n)) => assert!(n > cap),
        other => panic!("expected the un-reduced graph to overflow, got {other:?}"),
    }
    let stats = check_naming_progress(&TafTree::new(8).unwrap(), 0, reduced(cap)).unwrap();
    assert!(stats.states < 20_000, "reduction regressed: {}", stats.states);
    assert!(stats.orbits_merged > 0);
}

// ---------------------------------------------------------------------
// Heavy reduced-progress configurations: `--ignored`, run in CI's
// dedicated release-profile exhaustive job (see ci.yml).
// ---------------------------------------------------------------------

#[test]
#[ignore = "heavy reduced progress check (~4.6M states, minutes); run via cargo test --release -- --ignored"]
fn exhaustive_tournament_six_progress_reduced() {
    // Six clients over an eight-leaf tree: the un-reduced progress graph
    // (measured 5,366,136 states in the release profile) overflows a
    // 5M-state budget that the reduced graph (4,627,055 canonical
    // states) verifies deadlock freedom inside.
    match check_mutex_progress(&Tournament::new(6, 1), 1, budget(5_000_000)) {
        Err(ExploreError::StateBudget(n)) => assert!(n > 5_000_000),
        other => panic!("expected the un-reduced graph to overflow, got {other:?}"),
    }
    let stats = check_mutex_progress(&Tournament::new(6, 1), 1, reduced(5_000_000)).unwrap();
    assert!(stats.states_pruned_por > 0);
    assert!(stats.terminals >= 1);
}

#[test]
#[ignore = "heavy reduced progress check (~423k states); run via cargo test --release -- --ignored"]
fn exhaustive_bakery_four_progress_reduced() {
    // Four bakery customers: ~423k reduced progress states. Bakery scans
    // every ticket, so ample sets bite less than for tournaments — the
    // point of this config is the four-customer deadlock-freedom verdict
    // itself.
    let stats = check_mutex_progress(&Bakery::new(4), 1, reduced(1_000_000)).unwrap();
    assert!(stats.states > 100_000);
    assert!(stats.terminals >= 1);
}

#[test]
#[ignore = "heavy progress baseline (~455k states); run via cargo test --release -- --ignored"]
fn exhaustive_tournament_five_progress_baseline() {
    let stats = check_mutex_progress(&Tournament::new(5, 1), 1, budget(1_000_000)).unwrap();
    assert!(stats.states > 400_000);
}
