//! Property tests for the packed state codec that backs the arena
//! visited store (`StoreMode::Packed`): the store substitutes
//! byte-equality for state equality, which is sound only if encoding is
//! **injective** on the states that actually occur. These suites pin the
//! two halves of that argument:
//!
//! * `LayoutCodec` (the memory-image half, used for every family) is a
//!   lossless fixed-width round trip over the register layouts of every
//!   algorithm family in the repo;
//! * the `pack_state`/`unpack_state` fast-path hooks (the process half,
//!   implemented by the Peterson and bakery clients) reconstruct the
//!   exact process — identity fields included — from the bytes alone,
//!   for states sampled by random walks of the real executor;
//! * a full pack round trip leaves the symmetry-reduced explorer's
//!   canonical key unchanged, so the packed store and the boxed
//!   reference store agree on which states are "the same".

mod common;

use cfc::core::{
    mask, Executor, Layout, LayoutCodec, Process, ProcessId, StateCodec, StateReader, StateWriter,
    SymmetryGroup, Value,
};
use cfc::mutex::{
    Bakery, DetectionAlgorithm, MutexAlgorithm, MutexClient, PetersonTwo, Splitter, Tournament,
};
use cfc::naming::{NamingAlgorithm, TafTree, TasScan};
use cfc::verify::canonical_key;
use proptest::prelude::*;

/// One representative register layout per algorithm family.
fn family_layout(k: usize) -> Layout {
    match k {
        0 => MutexAlgorithm::layout(&PetersonTwo::new()),
        1 => MutexAlgorithm::layout(&Bakery::new(3)),
        2 => MutexAlgorithm::layout(&Tournament::new(5, 1)),
        3 => NamingAlgorithm::layout(&TasScan::new(4)),
        4 => NamingAlgorithm::layout(&TafTree::new(4).unwrap()),
        _ => DetectionAlgorithm::layout(&Splitter::new(3)),
    }
}

/// Drives a mutex system along a pseudo-random schedule and returns the
/// executor mid-flight, so packing is tested on genuinely reachable
/// states (entry spins, held locks, exit protocols) rather than just the
/// initial configuration.
fn random_walk<A>(alg: &A, trips: u32, picks: &[usize]) -> Executor<MutexClient<A::Lock>>
where
    A: MutexAlgorithm,
{
    let clients = (0..alg.n() as u32)
        .map(|i| alg.client(ProcessId::new(i), trips))
        .collect();
    let mut exec = Executor::new(alg.memory().unwrap(), clients);
    for &p in picks {
        let runnable = exec.runnable();
        if runnable.is_empty() {
            break;
        }
        exec.step_process(runnable[p % runnable.len()]).unwrap();
    }
    exec
}

/// Packs every client of a walked system and unpacks it onto a *fresh
/// client of a different participant*: every field, the process identity
/// included, must be reconstructed from the bytes alone, and the reader
/// must consume exactly the bits the writer produced (the fixed-stride
/// arena depends on that).
fn assert_pack_round_trip<A>(alg: &A, trips: u32, picks: &[usize])
where
    A: MutexAlgorithm,
    A::Lock: Clone + Eq + std::hash::Hash + std::fmt::Debug,
{
    let exec = random_walk(alg, trips, picks);
    for i in 0..alg.n() {
        let orig = exec.process(ProcessId::new(i as u32));
        let mut w = StateWriter::new();
        assert!(orig.pack_state(&mut w), "client {i} must take the packed fast path");
        let bits = w.bit_len();
        let bytes = w.finish();
        let other = ProcessId::new(((i + 1) % alg.n()) as u32);
        let mut decoded = alg.client(other, trips);
        let mut r = StateReader::new(&bytes);
        assert!(decoded.unpack_state(&mut r), "unpack must accept its own encoding");
        assert_eq!(r.bit_pos(), bits, "unpack must consume exactly the packed bits");
        assert_eq!(&decoded, orig, "client {i} did not survive the round trip");
    }
}

/// A full pack round trip of every process must leave the canonical key
/// unchanged — the invariant that lets the packed visited set stand in
/// for the boxed one without changing which states the explorer merges.
fn assert_canonical_key_stable<A>(alg: &A, trips: u32, picks: &[usize])
where
    A: MutexAlgorithm,
    A::Lock: Clone + Eq + std::hash::Hash,
{
    let exec = random_walk(alg, trips, picks);
    let group = SymmetryGroup::trivial(alg.n());
    let pids: Vec<ProcessId> = (0..alg.n() as u32).map(ProcessId::new).collect();
    let status: Vec<_> = pids.iter().map(|&p| exec.status(p)).collect();
    let procs: Vec<_> = pids.iter().map(|&p| exec.process(p).clone()).collect();
    let before = canonical_key(&procs, &status, exec.memory(), &group);
    let rebuilt: Vec<_> = procs
        .iter()
        .map(|p| {
            let mut w = StateWriter::new();
            assert!(p.pack_state(&mut w));
            let bytes = w.finish();
            let mut q = alg.client(ProcessId::new(0), trips);
            let mut r = StateReader::new(&bytes);
            assert!(q.unpack_state(&mut r));
            q
        })
        .collect();
    let after = canonical_key(&rebuilt, &status, exec.memory(), &group);
    assert_eq!(before, after, "canonical key changed under a pack round trip");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `LayoutCodec` is exact and lossless over every family's layout:
    /// encoding emits exactly `encoded_bits()`, decoding consumes exactly
    /// that many, and the values come back untouched.
    #[test]
    fn layout_codec_round_trips_fitting_values(
        family in 0usize..6,
        seeds in prop::collection::vec(0u64..u64::MAX, 1..8),
    ) {
        let layout = family_layout(family);
        let codec = LayoutCodec::new(&layout);
        let values: Vec<Value> = codec
            .widths()
            .iter()
            .enumerate()
            .map(|(i, &w)| Value::new(seeds[i % seeds.len()] & mask(w)))
            .collect();
        let mut w = StateWriter::new();
        codec.encode(&values, &mut w);
        prop_assert_eq!(w.bit_len(), codec.encoded_bits());
        let bytes = w.finish();
        let mut r = StateReader::new(&bytes);
        let decoded = codec.decode(&mut r);
        prop_assert_eq!(r.bit_pos(), codec.encoded_bits());
        prop_assert_eq!(decoded, values);
    }

    /// Reachable Peterson and bakery client states survive the packed
    /// fast path exactly.
    #[test]
    fn reachable_mutex_states_pack_round_trip(
        family in 0usize..2,
        picks in prop::collection::vec(0usize..16, 0..48),
    ) {
        match family {
            0 => assert_pack_round_trip(&PetersonTwo::new(), 2, &picks),
            _ => assert_pack_round_trip(&Bakery::new(2), 1, &picks),
        }
    }

    /// The canonical key the symmetry-reduced explorer deduplicates on
    /// is invariant under the pack round trip.
    #[test]
    fn canonical_key_is_stable_under_pack_round_trip(
        family in 0usize..2,
        picks in prop::collection::vec(0usize..16, 0..48),
    ) {
        match family {
            0 => assert_canonical_key_stable(&PetersonTwo::new(), 2, &picks),
            _ => assert_canonical_key_stable(&Bakery::new(2), 1, &picks),
        }
    }
}

/// Tournament clients hold per-node register handles that differ between
/// participants, so they must *decline* the packed fast path (returning
/// `false`) rather than emit an ambiguous encoding; the store's probe
/// then falls back to interning the process states.
#[test]
fn tournament_clients_decline_the_packed_fast_path() {
    let alg = Tournament::new(3, 1);
    let client = alg.client(ProcessId::new(0), 1);
    let mut w = StateWriter::new();
    assert!(!client.pack_state(&mut w));
}

/// Naming walkers never implemented the hooks, so the `Process` default
/// (decline) applies — the interned fallback is what the differential
/// suite exercises for them.
#[test]
fn naming_walkers_decline_the_packed_fast_path() {
    let walker = TasScan::new(3).process();
    let mut w = StateWriter::new();
    assert!(!walker.pack_state(&mut w));
    assert_eq!(w.bit_len(), 0);
}
