//! Differential evidence that the open-addressed digest index
//! (`IndexMode::Open`, the default) has **identical search semantics**
//! to the chained reference index (`IndexMode::Chained`, the
//! HashMap-heads + intrusive-next representation kept as a differential
//! oracle): every count a traversal reports — states, transitions,
//! terminals, POR prunes, orbit merges — must match exactly, across
//! every algorithm family and every reduction variant, for safety,
//! progress, **and** fair-cycle liveness graphs.
//!
//! The two indexes can only disagree if one of them merges or splits a
//! visited-set probe the other does not — and both resolve digest
//! collisions by exact byte comparison against the packed record, so a
//! disagreement in any count is a bug, not a tuning difference. Only
//! `index_bytes` may differ: that is the point of the open table, and
//! the footprint test at the bottom pins the advantage.

mod common;

use cfc::mutex::{Bakery, LamportFast, PetersonTwo, Splitter, Tournament};
use cfc::naming::{TafTree, TasScan};
use cfc::verify::{
    check_detection_safety, check_mutex_progress, check_mutex_safety, check_mutex_starvation,
    check_naming_lockout, check_naming_progress, check_naming_uniqueness, ExploreConfig,
    ExploreStats, IndexMode, LivenessReport, LivenessVerdict, ProgressStats,
};

/// Every count the search semantics determine (everything except the
/// representation-dependent byte/spill accounting).
fn counts(s: &ExploreStats) -> (usize, u64, usize, u64, u64) {
    (
        s.states,
        s.transitions,
        s.terminals,
        s.states_pruned_por,
        s.orbits_merged,
    )
}

fn progress_counts(s: &ProgressStats) -> (usize, u64, usize, u64, u64) {
    (
        s.states,
        s.transitions,
        s.terminals,
        s.states_pruned_por,
        s.orbits_merged,
    )
}

/// The semantically determined portion of a liveness report: the
/// verdict shape (free + bypass bound, or starvable + loop length) plus
/// every graph count.
fn liveness_counts(r: &LivenessReport) -> (String, usize, u64, usize, usize, u64, u64) {
    let verdict = match &r.verdict {
        LivenessVerdict::StarvationFree { bypass, .. } => format!("free bypass={bypass:?}"),
        LivenessVerdict::Starvable(w) => format!("starvable cycle={}", w.lasso.cycle.len()),
    };
    (
        verdict,
        r.stats.states,
        r.stats.transitions,
        r.stats.victims,
        r.stats.graphs,
        r.stats.states_pruned_por,
        r.stats.orbits_merged,
    )
}

/// Runs one safety check under both digest indexes and demands equal
/// counts.
fn assert_safety_equiv<F>(label: &str, run: F)
where
    F: Fn(ExploreConfig) -> ExploreStats,
{
    for (variant, cfg) in common::labeled_variants(200_000) {
        let open = run(cfg.with_index(IndexMode::Open));
        let chained = run(cfg.with_index(IndexMode::Chained));
        assert_eq!(
            counts(&open),
            counts(&chained),
            "{label} [{variant}]: open and chained indexes disagree"
        );
        assert!(open.states > 0, "{label} [{variant}]: empty exploration");
    }
}

#[test]
fn open_and_chained_agree_on_mutex_safety() {
    assert_safety_equiv("peterson", |cfg| {
        check_mutex_safety(&PetersonTwo::new(), 2, cfg).unwrap()
    });
    assert_safety_equiv("bakery", |cfg| {
        check_mutex_safety(&Bakery::new(2), 1, cfg).unwrap()
    });
    assert_safety_equiv("tournament", |cfg| {
        check_mutex_safety(&Tournament::new(3, 1), 1, cfg).unwrap()
    });
}

#[test]
fn open_and_chained_agree_on_naming_and_detection() {
    assert_safety_equiv("tas-scan", |cfg| {
        check_naming_uniqueness(&TasScan::new(3), 1, cfg).unwrap()
    });
    assert_safety_equiv("taf-tree", |cfg| {
        check_naming_uniqueness(&TafTree::new(4).unwrap(), 0, cfg).unwrap()
    });
    assert_safety_equiv("splitter", |cfg| {
        check_detection_safety(&Splitter::new(3), cfg).unwrap()
    });
}

#[test]
fn open_and_chained_agree_on_progress_graphs() {
    for (variant, cfg) in common::labeled_variants(60_000) {
        for label in ["peterson", "bakery", "tas-scan"] {
            let run = |c: ExploreConfig| match label {
                "peterson" => check_mutex_progress(&PetersonTwo::new(), 2, c).unwrap(),
                "bakery" => check_mutex_progress(&Bakery::new(2), 1, c).unwrap(),
                _ => check_naming_progress(&TasScan::new(3), 1, c).unwrap(),
            };
            let open = run(cfg.with_index(IndexMode::Open));
            let chained = run(cfg.with_index(IndexMode::Chained));
            assert_eq!(
                progress_counts(&open),
                progress_counts(&chained),
                "{label} [{variant}]: open and chained progress graphs disagree"
            );
        }
    }
}

/// The liveness engine builds per-victim BFS graphs, runs Tarjan over
/// the CSR edges, and re-derives witnesses — the deepest consumer of
/// both the index and the edge arena. Verdicts, bypass bounds, and
/// every graph count must be index-invariant.
#[test]
fn open_and_chained_agree_on_liveness_verdicts() {
    for (variant, cfg) in common::labeled_variants(60_000) {
        for label in ["peterson", "lamport", "taf-tree"] {
            let run = |c: ExploreConfig| match label {
                "peterson" => check_mutex_starvation(&PetersonTwo::new(), c).unwrap(),
                "lamport" => check_mutex_starvation(&LamportFast::new(2), c).unwrap(),
                _ => check_naming_lockout(&TafTree::new(4).unwrap(), 0, c).unwrap(),
            };
            let open = run(cfg.with_index(IndexMode::Open));
            let chained = run(cfg.with_index(IndexMode::Chained));
            assert_eq!(
                liveness_counts(&open),
                liveness_counts(&chained),
                "{label} [{variant}]: open and chained liveness runs disagree"
            );
        }
    }
}

/// Forcing the spill tier (budget 0) under the open index must not
/// change a single count: a spilled record is read back into the probe
/// buffer for the same byte comparison the resident fast path does.
#[test]
fn open_index_is_exact_across_the_spill_tier() {
    let base_cfg = common::por_only(25_000);
    let resident = check_mutex_safety(&LamportFast::new(3), 1, base_cfg).unwrap();
    assert!(
        resident.footprint.arena_bytes > 128 * 1024,
        "arena too small to exercise spilling ({} bytes); use a larger instance",
        resident.footprint.arena_bytes
    );
    let spilled =
        check_mutex_safety(&LamportFast::new(3), 1, base_cfg.with_spill_budget(0)).unwrap();
    assert_eq!(counts(&resident), counts(&spilled), "spilling changed search counts");
    assert!(spilled.footprint.spilled_buckets > 0, "budget 0 spilled nothing");
}

/// The sixteen-walker test-and-flip tree — the next power-of-two scale
/// point past the eight-walker instance the packed arena unlocked, a
/// canonical quotient orders of magnitude past n=8's — explored
/// to quiescence under the full reduction stack, **twice**: the open
/// table and the chained oracle must agree on every count at a scale
/// the fast differential suites never reach. (The n=16 *lockout* check
/// stays out of CI for now — its per-victim stabilizer quotients are
/// larger still; `exhaustive_taf_tree_eight_lockout` covers the
/// liveness engine's CSR path at scale.)
#[test]
#[ignore = "heaviest index differential (16-walker quotient, twice); run via cargo test --release -- --ignored"]
fn exhaustive_taf_tree_sixteen() {
    let alg = TafTree::new(16).unwrap();
    let cfg = cfc::verify::ExploreConfig::reduced().with_max_states(400_000_000);
    let open = check_naming_uniqueness(&alg, 0, cfg).unwrap();
    let chained = check_naming_uniqueness(&alg, 0, cfg.with_index(IndexMode::Chained)).unwrap();
    assert_eq!(counts(&open), counts(&chained), "16-walker safety counts diverged");
    assert!(
        open.states > 20_000_000,
        "expected the 16-walker quotient well past the n=8 scale, visited {}",
        open.states
    );
    assert!(
        open.footprint.index_bytes < chained.footprint.index_bytes,
        "open index must beat the chained oracle at scale ({} vs {})",
        open.footprint.index_bytes,
        chained.footprint.index_bytes
    );
}

/// The acceptance bar for the representation itself: at equal state
/// counts the open table's overhead must be well under the chained
/// index's (HashMap heads + intrusive next vector), and within the
/// issue's 4–6 bytes/state envelope at the 7/8 load factor.
#[test]
fn open_index_overhead_beats_chained_and_meets_the_envelope() {
    let cfg = common::por_only(120_000);
    let open = check_mutex_safety(&Tournament::new(4, 1), 1, cfg).unwrap();
    let chained =
        check_mutex_safety(&Tournament::new(4, 1), 1, cfg.with_index(IndexMode::Chained)).unwrap();
    assert_eq!(counts(&open), counts(&chained), "index modes diverged");
    // The chained estimate is 16 B/state (12 per head + 4 per next
    // link); the open table is at worst 16/7 slots (≈9.15 B) per state
    // right after a doubling, so 3/5 of the chained footprint holds at
    // every table fill level — and is usually nearer 2/7.
    assert!(
        open.footprint.index_bytes * 5 <= chained.footprint.index_bytes * 3,
        "open index not under 3/5 of the chained footprint ({} vs {} bytes over {} states)",
        open.footprint.index_bytes,
        chained.footprint.index_bytes,
        open.states
    );
    // Doubling at a 7/8 load factor bounds the table at 16/7 slots per
    // state right after a growth — 64/7 ≈ 9.15 B/state worst case, ~4.6
    // at the 7/8 steady state.
    let per_state = open.footprint.index_bytes as f64 / open.states as f64;
    assert!(
        per_state <= 64.0 / 7.0 + 0.1,
        "open index overhead {per_state:.2} B/state exceeds the doubling-table worst case"
    );
}
