//! Property tests for the witness guarantee: **no reported bound
//! without a replayable schedule**. Sampled over every reduction combo
//! (por × symmetry × normalizer, the latter exercised by the bakery's
//! ticket quotient), every verdict the fair-cycle checker returns must
//! be backed by machine-checked evidence that replays under the plain,
//! un-reduced step semantics:
//!
//! * a `Starvable` verdict's lasso must pass `validate_lasso` **and**
//!   keep its victim pending through three replayed revolutions;
//! * a bounded-bypass verdict's `BypassWitness` must pass
//!   `validate_bypass`, and the overtake count must be **exact**: this
//!   suite re-replays the schedule with its own independent counter
//!   (section transitions of non-victim clients) and compares.

mod common;

use cfc::core::{Process, ProcessId, Section, Status};
use cfc::mutex::{
    Bakery, LamportFast, LockProcess, MutexAlgorithm, MutexClient, PetersonTwo, TasSpin,
};
use cfc::verify::{
    check_mutex_starvation, check_naming_lockout, replay, validate_bypass, validate_lasso,
    BypassWitness, ExploreConfig, LivenessSpec, ScheduleStep,
};
use proptest::prelude::*;

fn spec<'a, L: LockProcess>() -> LivenessSpec<'a, MutexClient<L>> {
    LivenessSpec {
        pending: &|c: &MutexClient<L>| c.section() == Some(Section::Entry),
        engaged: &|c: &MutexClient<L>| c.engaged(),
        served: &|before: &MutexClient<L>, after: &MutexClient<L>| {
            before.section() != Some(Section::Critical)
                && after.section() == Some(Section::Critical)
        },
        normalize: None,
    }
}

fn cycling<A: MutexAlgorithm>(alg: &A) -> Vec<MutexClient<A::Lock>> {
    (0..alg.n() as u32)
        .map(|i| alg.client_cycling(ProcessId::new(i), 1))
        .collect()
}

/// Counts the witness's overtakes with this suite's own replay loop —
/// independent of `validate_bypass`'s counter: step the schedule on a
/// fresh executor-equivalent state and count every step in which a
/// non-victim client crosses into its critical section while the victim
/// is pending and engaged.
fn independent_overtake_count<A>(alg: &A, witness: &BypassWitness) -> u64
where
    A: MutexAlgorithm,
    A::Lock: Clone + Eq + std::hash::Hash,
{
    let after_stem = replay(alg.memory().unwrap(), cycling(alg), &witness.stem).unwrap();
    let mut procs = after_stem.procs;
    let mut mem = after_stem.memory;
    let mut status = after_stem.status;
    let v = witness.victim.index();
    let mut count = 0u64;
    for s in &witness.overtaking {
        assert!(
            status[v] == Status::Running
                && procs[v].section() == Some(Section::Entry)
                && procs[v].engaged(),
            "victim must stay pending and engaged throughout the suffix"
        );
        match s {
            ScheduleStep::Crash(pid) => status[pid.index()] = Status::Crashed,
            ScheduleStep::Step(pid) => {
                let i = pid.index();
                let was_critical = procs[i].section() == Some(Section::Critical);
                match procs[i].current() {
                    cfc::core::Step::Halt => status[i] = Status::Done,
                    cfc::core::Step::Internal => procs[i].advance(cfc::core::OpResult::None),
                    cfc::core::Step::Op(op) => {
                        let r = mem.apply(&op).unwrap();
                        procs[i].advance(r);
                    }
                }
                if i != v && !was_critical && procs[i].section() == Some(Section::Critical) {
                    count += 1;
                }
            }
        }
    }
    count
}

/// The witness obligations for one algorithm under one reduction combo.
fn check_witnesses<A>(alg: &A, config: ExploreConfig)
where
    A: MutexAlgorithm,
    A::Lock: Clone + Eq + std::hash::Hash + 'static,
{
    let report = check_mutex_starvation(alg, config).unwrap();
    let memory = alg.memory().unwrap();
    let clients = cycling(alg);
    if let Some(witness) = report.witness() {
        // Starvable: the lasso validates and three replayed revolutions
        // keep the victim pending — the reduced graph's finding holds
        // un-reduced.
        validate_lasso(&memory, &clients, witness, &spec()).unwrap_or_else(|e| {
            panic!("{} ({config:?}): lasso fails validation: {e}", alg.name())
        });
        let mut schedule = witness.lasso.stem.clone();
        for _ in 0..3 {
            schedule.extend(witness.lasso.cycle.iter().copied());
        }
        let replayed = replay(memory, cycling(alg), &schedule).unwrap();
        let v = witness.victim.index();
        assert_eq!(replayed.status[v], Status::Running);
        assert_eq!(replayed.procs[v].section(), Some(Section::Entry));
        return;
    }
    // Starvation-free: a bounded bypass must carry an exact witness.
    let Some(Some(bound)) = report.bypass() else {
        return; // unbounded bypass carries no finite witness
    };
    let witness = report
        .bypass_witness()
        .unwrap_or_else(|| panic!("{} ({config:?}): bound {bound} without witness", alg.name()));
    assert_eq!(witness.bypass, bound, "witness must achieve the reported bound");
    validate_bypass(&memory, &clients, witness, &spec()).unwrap_or_else(|e| {
        panic!("{} ({config:?}): bypass witness fails validation: {e}", alg.name())
    });
    assert_eq!(
        independent_overtake_count(alg, witness),
        bound,
        "{} ({config:?}): independent replay disagrees with the reported bound",
        alg.name()
    );
}

fn config_variant(k: usize, max_states: usize) -> ExploreConfig {
    let labeled = common::labeled_variants(max_states);
    labeled[k % labeled.len()].1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every reduction combo must produce validating witnesses for the
    /// starvable baselines (test-and-set, Lamport's fast path).
    #[test]
    fn starvable_lassos_replay_under_every_reduction(cfg in 0usize..4, alg in 0usize..3) {
        let config = config_variant(cfg, 40_000);
        match alg {
            0 => check_witnesses(&TasSpin::new(2), config),
            1 => check_witnesses(&TasSpin::new(3), config),
            _ => check_witnesses(&LamportFast::new(2), config),
        }
    }

    /// Every reduction combo must produce exact, validating bypass
    /// witnesses for the fair locks — including the bakery, whose graph
    /// only exists through the ticket-shift normalizer.
    #[test]
    fn bypass_witnesses_are_exact_under_every_reduction(cfg in 0usize..4, alg in 0usize..2) {
        let config = config_variant(cfg, 40_000);
        match alg {
            0 => check_witnesses(&PetersonTwo::new(), config),
            _ => check_witnesses(&Bakery::new(2), config),
        }
    }
}

/// The naming analogue, directed: lockout-free walkers carry a bypass
/// witness under the naming spec, valid under every reduction combo.
#[test]
fn naming_bypass_witnesses_validate() {
    use cfc::naming::{NamingAlgorithm, TasScan};
    let alg = TasScan::new(3);
    for (label, config) in common::labeled_variants(60_000) {
        let report = check_naming_lockout(&alg, 0, config).unwrap();
        assert!(report.is_starvation_free(), "{label}");
        let bound = report.bypass().unwrap().expect("wait-free => bounded");
        let witness = report.bypass_witness().unwrap_or_else(|| {
            panic!("{label}: naming bound {bound} without witness")
        });
        assert_eq!(witness.bypass, bound, "{label}");
        let spec = LivenessSpec {
            pending: &|p: &<TasScan as NamingAlgorithm>::Proc| p.output().is_none(),
            engaged: &|p: &<TasScan as NamingAlgorithm>::Proc| p.output().is_none(),
            served: &|b: &<TasScan as NamingAlgorithm>::Proc, a| {
                b.output().is_none() && a.output().is_some()
            },
            normalize: None,
        };
        validate_bypass(&alg.memory().unwrap(), &alg.processes(), witness, &spec)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
    }
}
