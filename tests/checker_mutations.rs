//! Mutation testing **of the verifiers themselves**: each test plants
//! one deliberate, historically plausible bug into an algorithm (behind
//! the test-only knob in `cfc_mutex::mutation`) and asserts that the
//! right checker — safety explorer, progress checker, or fair-cycle
//! liveness engine — flags it, while the unmutated algorithm passes the
//! very same check. A checker that cannot kill these mutants would be
//! measuring nothing; this suite is what makes a "verified" verdict
//! elsewhere in the repo meaningful.
//!
//! | mutation | buggy behavior | caught by |
//! |---|---|---|
//! | bakery: doorway dropped | overlapping ticket choices invisible | safety |
//! | bakery: ticket comparison off by one | equal tickets block each other | progress |
//! | bakery: exit reset skipped | stale ticket wedges all waiters | progress |
//! | peterson: turn written before flag | both read stale flags | safety |
//! | peterson: exit clears the wrong flag | peer spins forever | progress |
//! | tournament: root level skipped | two subtree winners meet | safety |
//! | tas: test-and-set success inverted | every later spinner walks in | safety |
//! | tas: (claim) "spin locks are FCFS" | overtaken forever | liveness |
//! | bakery: wait-scan footprint under-reported | hook lies about future accesses | static lint |
//! | dynamic POR: conflicts on one register dropped | sleep sets prune a racing interleaving | dynamic-vs-static differential |

mod common;

use cfc::core::{ProcessId, RegisterId, Section, Status};
use cfc::mutex::mutation::{
    BakeryMutation, PetersonMutation, TasSpinMutation, TournamentMutation,
};
use cfc::mutex::{Bakery, MutexAlgorithm, PetersonTwo, TasSpin, Tournament};
use cfc::verify::{
    check_mutex_progress, check_mutex_safety, check_mutex_starvation, lint_model, replay,
    ExploreError, FindingKind, MayAccessMode, ScheduleStep,
};
use common::budget;

/// Replays a safety violation's schedule on fresh `cs_steps = 1` clients
/// and asserts the reached state really has two occupants — the
/// checker's claim, re-established without the checker.
fn assert_two_in_critical<A>(alg: &A, trips: u32, schedule: &[ScheduleStep])
where
    A: MutexAlgorithm,
    A::Lock: Clone + Eq + std::hash::Hash,
{
    let clients: Vec<_> = (0..alg.n() as u32)
        .map(|i| alg.client_with_cs(ProcessId::new(i), trips, 1))
        .collect();
    let replayed = replay(alg.memory().unwrap(), clients, schedule).unwrap();
    let in_cs = replayed
        .procs
        .iter()
        .filter(|c| cfc::core::Process::section(*c) == Some(Section::Critical))
        .count();
    assert_eq!(in_cs, 2, "replayed state must exhibit the violation");
}

/// Replays a progress violation's schedule on fresh plain clients and
/// asserts the reached state is genuinely non-quiescent.
fn assert_wedged<A>(alg: &A, trips: u32, schedule: &[ScheduleStep])
where
    A: MutexAlgorithm,
    A::Lock: Clone + Eq + std::hash::Hash,
{
    let clients: Vec<_> = (0..alg.n() as u32)
        .map(|i| alg.client(ProcessId::new(i), trips))
        .collect();
    let replayed = replay(alg.memory().unwrap(), clients, schedule).unwrap();
    assert!(
        replayed.status.contains(&Status::Running),
        "replayed stuck state must still have a running process"
    );
}

/// Unwraps a violation. The schedule may legitimately be empty: for the
/// exit-protocol mutants the *initial* state is already doomed (whoever
/// finishes first wedges everyone else, on every interleaving), and the
/// progress checker reports the root as the stuck state.
fn violation(err: ExploreError, what: &str) -> Vec<ScheduleStep> {
    match err {
        ExploreError::Violation(v) => v.schedule,
        other => panic!("{what}: expected a violation, got {other}"),
    }
}

// ---------------------------------------------------------------------
// Bakery mutants.
// ---------------------------------------------------------------------

#[test]
fn bakery_without_doorway_is_killed_by_the_safety_checker() {
    let mutant = Bakery::new(2).with_mutation(BakeryMutation::DropDoorway);
    let err = check_mutex_safety(&mutant, 1, budget(200_000)).unwrap_err();
    let schedule = violation(err, "bakery/drop-doorway");
    assert_two_in_critical(&mutant, 1, &schedule);
    // The unmutated bakery passes the identical check.
    check_mutex_safety(&Bakery::new(2), 1, budget(200_000)).unwrap();
}

#[test]
fn bakery_off_by_one_comparison_is_killed_by_the_progress_checker() {
    let mutant = Bakery::new(2).with_mutation(BakeryMutation::FcfsOffByOne);
    let err = check_mutex_progress(&mutant, 1, budget(200_000)).unwrap_err();
    let schedule = violation(err, "bakery/fcfs-off-by-one");
    assert_wedged(&mutant, 1, &schedule);
    check_mutex_progress(&Bakery::new(2), 1, budget(200_000)).unwrap();
    // And *only* the progress checker should kill it: equal tickets
    // deadlock, they never admit two holders, so mutual exclusion
    // still verifies — the deadlocked spin states are non-quiescent and
    // the safety checker's terminal condition never sees them.
    check_mutex_safety(&mutant, 1, budget(200_000)).unwrap();
}

#[test]
fn bakery_skipped_exit_reset_is_killed_by_the_progress_checker() {
    let mutant = Bakery::new(2).with_mutation(BakeryMutation::SkipExitReset);
    let err = check_mutex_progress(&mutant, 1, budget(200_000)).unwrap_err();
    let schedule = violation(err, "bakery/skip-exit-reset");
    assert_wedged(&mutant, 1, &schedule);
    check_mutex_progress(&Bakery::new(2), 1, budget(200_000)).unwrap();
}

#[test]
fn bakery_under_reported_scan_is_killed_by_the_static_lint() {
    // This mutant never misbehaves at runtime: every run is the textbook
    // bakery's. Only the `protocol_footprint` *hook* lies, omitting the
    // wait-scan suffix from the declared future accesses — a bug no
    // explorer can observe in any single run, because the hook only
    // shapes which interleavings partial-order reduction may skip.
    let mutant = Bakery::new(3).with_mutation(BakeryMutation::UnderReportScan);
    let clients: Vec<_> = (0..3)
        .map(|i| mutant.client_with_cs(ProcessId::new(i), 1, 1))
        .collect();
    let report = lint_model(&mutant.layout(), &clients);
    assert!(!report.is_clean(), "the lying hook must be flagged");
    assert!(
        report
            .findings
            .iter()
            .all(|f| f.kind == FindingKind::FutureNotCovered),
        "every finding is an uncovered future access: {:?}",
        report.findings
    );
    // The runtime checkers cannot kill it — the algorithm is correct.
    check_mutex_safety(&mutant, 1, budget(200_000)).unwrap();
    check_mutex_progress(&mutant, 1, budget(200_000)).unwrap();
    // And the honest hooks lint clean on the identical configuration.
    let clean = Bakery::new(3);
    let clients: Vec<_> = (0..3)
        .map(|i| clean.client_with_cs(ProcessId::new(i), 1, 1))
        .collect();
    let report = lint_model(&clean.layout(), &clients);
    assert!(report.is_clean(), "unmutated bakery: {:?}", report.findings);
}

// ---------------------------------------------------------------------
// Peterson mutants.
// ---------------------------------------------------------------------

#[test]
fn peterson_turn_written_first_is_killed_by_the_safety_checker() {
    let mutant = PetersonTwo::new().with_mutation(PetersonMutation::TurnWriteFirst);
    let err = check_mutex_safety(&mutant, 1, budget(100_000)).unwrap_err();
    let schedule = violation(err, "peterson/turn-first");
    assert_two_in_critical(&mutant, 1, &schedule);
    check_mutex_safety(&PetersonTwo::new(), 1, budget(100_000)).unwrap();
}

#[test]
fn peterson_exit_clearing_the_wrong_flag_is_killed_by_the_progress_checker() {
    let mutant = PetersonTwo::new().with_mutation(PetersonMutation::ExitWrongFlag);
    let err = check_mutex_progress(&mutant, 1, budget(100_000)).unwrap_err();
    let schedule = violation(err, "peterson/exit-wrong-flag");
    assert_wedged(&mutant, 1, &schedule);
    check_mutex_progress(&PetersonTwo::new(), 1, budget(100_000)).unwrap();
}

// ---------------------------------------------------------------------
// Tournament mutant.
// ---------------------------------------------------------------------

#[test]
fn tournament_skipping_the_root_is_killed_by_the_safety_checker() {
    // Depth-2 binary tree over four processes: the winners of the two
    // leaf nodes both believe they won the tree.
    let mutant = Tournament::new(4, 1).with_mutation(TournamentMutation::SkipRootLevel);
    let err = check_mutex_safety(&mutant, 1, budget(500_000)).unwrap_err();
    let schedule = violation(err, "tournament/skip-root");
    assert_two_in_critical(&mutant, 1, &schedule);
    check_mutex_safety(&Tournament::new(4, 1), 1, budget(500_000)).unwrap();
}

// ---------------------------------------------------------------------
// Test-and-set mutants.
// ---------------------------------------------------------------------

#[test]
fn tas_inverted_test_is_killed_by_the_safety_checker() {
    let mutant = TasSpin::new(2).with_mutation(TasSpinMutation::InvertedTest);
    let err = check_mutex_safety(&mutant, 1, budget(50_000)).unwrap_err();
    let schedule = violation(err, "tas/inverted-test");
    assert_two_in_critical(&mutant, 1, &schedule);
    check_mutex_safety(&TasSpin::new(2), 1, budget(50_000)).unwrap();
}

#[test]
fn tas_fcfs_claim_is_refuted_by_the_liveness_checker() {
    // The eighth mutation is a *claim*, not a code change: assert that a
    // plain test-and-set lock were first-come-first-served (any bounded
    // bypass at all). The fair-cycle checker refutes it mechanically —
    // the verdict is starvable, with a validated lasso in which the
    // winner overtakes an engaged waiter on every revolution.
    let alg = TasSpin::new(2);
    let report = check_mutex_starvation(&alg, budget(50_000)).unwrap();
    assert!(
        report.bypass().is_none(),
        "a starvable lock cannot carry any bypass bound, let alone FCFS"
    );
    let witness = report.witness().expect("the claim must be refuted by a lasso");
    // The refutation is replayable: across three revolutions the victim
    // keeps stepping (weak fairness) yet never enters, while the winner
    // is served again and again.
    let mut schedule = witness.lasso.stem.clone();
    for _ in 0..3 {
        schedule.extend(witness.lasso.cycle.iter().copied());
    }
    let clients: Vec<_> = (0..2)
        .map(|i| alg.client_cycling(ProcessId::new(i), 1))
        .collect();
    let replayed = replay(alg.memory().unwrap(), clients, &schedule).unwrap();
    let v = witness.victim.index();
    assert_eq!(replayed.status[v], Status::Running);
    assert_eq!(
        cfc::core::Process::section(&replayed.procs[v]),
        Some(Section::Entry)
    );
}

// ---------------------------------------------------------------------
// Dynamic-reduction mutant: a checker bug, not an algorithm bug.
// ---------------------------------------------------------------------

#[test]
fn conflict_under_reporting_is_killed_only_by_the_dynamic_differential() {
    // The tenth mutant lives in the *verifier*: `ExploreConfig::
    // drop_races_on` makes the sleep-set machinery drop every observed
    // conflict that goes through one register — the classic dynamic-POR
    // bug of an incomplete independence relation. No single run can
    // expose it (each explored interleaving is still executed
    // faithfully); only comparing verdicts across may-access modes can.
    //
    // The victim: the doorway-less bakery for two, whose mutual-
    // exclusion violation needs a particular race on `number[1]`
    // (register 3 of the layout: `choosing[0..2]`, then `number[0..2]`).
    // Hiding that register lets the sleep sets prune exactly the
    // interleaving that reaches two occupants.
    let hidden = RegisterId::new(3);
    let mutant = || Bakery::new(2).with_mutation(BakeryMutation::DropDoorway);
    let cfg = common::por_only(400_000).with_drop_races_on(hidden);

    // Both static modes never consult the observed-conflict relation, so
    // the knob is inert there: the violation is found and replays.
    for mode in [MayAccessMode::Declared, MayAccessMode::Automaton] {
        let err = check_mutex_safety(&mutant(), 1, cfg.with_may_access(mode)).unwrap_err();
        let schedule = violation(err, "bakery/drop-doorway (static)");
        assert_two_in_critical(&mutant(), 1, &schedule);
    }
    // The *sound* dynamic mode also finds it.
    let sound = common::por_only(400_000).with_may_access(MayAccessMode::Dynamic);
    let err = check_mutex_safety(&mutant(), 1, sound).unwrap_err();
    assert_two_in_critical(&mutant(), 1, &violation(err, "bakery/drop-doorway (dynamic)"));

    // The under-reporting dynamic mode misses the violation entirely —
    // the kill is the verdict *disagreement* with the static oracles
    // above, exactly what `tests/dynamic_equiv.rs` asserts can never
    // happen with the knob off.
    check_mutex_safety(&mutant(), 1, cfg.with_may_access(MayAccessMode::Dynamic)).expect(
        "the under-reporting mutant must survive its own unsound exploration \
         (if this fails, the mutant stopped being a differential-only kill)",
    );

    // And no false alarms: the honest bakery passes every mode, knob set
    // or not — the mutant is killed by the differential and nothing else.
    for mode in [
        MayAccessMode::Declared,
        MayAccessMode::Automaton,
        MayAccessMode::Dynamic,
    ] {
        check_mutex_safety(&Bakery::new(2), 1, cfg.with_may_access(mode)).unwrap();
    }
}

// ---------------------------------------------------------------------
// Sensitivity baseline: the checkers pass every unmutated algorithm, so
// the kills above are exactly the mutants and nothing else.
// ---------------------------------------------------------------------

#[test]
fn unmutated_algorithms_survive_every_checker() {
    check_mutex_safety(&Bakery::new(2), 1, budget(200_000)).unwrap();
    check_mutex_safety(&PetersonTwo::new(), 1, budget(100_000)).unwrap();
    check_mutex_safety(&TasSpin::new(2), 1, budget(50_000)).unwrap();
    check_mutex_progress(&Bakery::new(2), 1, budget(200_000)).unwrap();
    check_mutex_progress(&PetersonTwo::new(), 1, budget(100_000)).unwrap();
    check_mutex_progress(&TasSpin::new(2), 1, budget(50_000)).unwrap();
    let peterson = check_mutex_starvation(&PetersonTwo::new(), budget(100_000)).unwrap();
    assert!(peterson.is_starvation_free());
}
