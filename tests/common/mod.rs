//! Shared test support for the integration suites: explorer budget
//! construction, so every test states its limits the same way and a
//! state-space regression fails fast with `ExploreError::StateBudget`
//! instead of hanging CI.
//!
//! (`tests/common/` is not itself a test target; each suite pulls this in
//! with `mod common;` and uses the subset it needs.)

#![allow(dead_code)]

use cfc::verify::explore::ExploreConfig;

/// An explicit, crash-free **baseline** budget: no reductions, the
/// reference interleaving semantics. Use for differential runs and for
/// explorations known to visit fewer than `max_states` states.
pub fn budget(max_states: usize) -> ExploreConfig {
    ExploreConfig {
        max_states,
        max_crashes: 0,
        por: false,
        symmetry: false,
        ..ExploreConfig::default()
    }
}

/// A budget with **both** reductions enabled (ample-set partial-order +
/// symmetry canonicalization). Budgets sized against reduced state
/// counts are much tighter than their baseline equivalents.
pub fn reduced(max_states: usize) -> ExploreConfig {
    ExploreConfig::reduced().with_max_states(max_states)
}

/// A budget with partial-order reduction only. The right choice for
/// mutex clients whose lock state embeds a distinct identity: their
/// symmetry quotient is trivial, so canonicalization would only add
/// per-state sorting overhead.
pub fn por_only(max_states: usize) -> ExploreConfig {
    ExploreConfig {
        por: true,
        ..budget(max_states)
    }
}

/// A budget with symmetry reduction only.
pub fn sym_only(max_states: usize) -> ExploreConfig {
    ExploreConfig {
        symmetry: true,
        ..budget(max_states)
    }
}

/// All four reduction variants over one budget, labeled for assertion
/// messages — the canonical sweep for differential suites that compare
/// the baseline against every reduced configuration (liveness, witness
/// properties, sweeps).
pub fn labeled_variants(max_states: usize) -> [(&'static str, ExploreConfig); 4] {
    [
        ("baseline", budget(max_states)),
        ("por", por_only(max_states)),
        ("sym", sym_only(max_states)),
        ("por+sym", reduced(max_states)),
    ]
}

/// The three *reduced* variants, labeled — for differential suites that
/// run the baseline once separately and compare each reduction against
/// it (safety and progress equivalence harnesses).
pub fn reduced_variants(max_states: usize) -> [(&'static str, ExploreConfig); 3] {
    [
        ("por", por_only(max_states)),
        ("sym", sym_only(max_states)),
        ("both", reduced(max_states)),
    ]
}
