//! Shared test support for the integration suites: explorer budget
//! construction, so every test states its limits the same way and a
//! state-space regression fails fast with `ExploreError::StateBudget`
//! instead of hanging CI.
//!
//! (`tests/common/` is not itself a test target; each suite pulls this in
//! with `mod common;` and uses the subset it needs.)

#![allow(dead_code)]

use std::collections::BTreeMap;

use cfc::core::{BitOp, Layout, Op, OpResult, Process, RegisterId, RegisterSet, Step, Value};
use cfc::naming::{Model, NamingAlgorithm, TasScan, TasScanProc};
use cfc::verify::explore::ExploreConfig;

/// An explicit, crash-free **baseline** budget: no reductions, the
/// reference interleaving semantics. Use for differential runs and for
/// explorations known to visit fewer than `max_states` states.
pub fn budget(max_states: usize) -> ExploreConfig {
    ExploreConfig {
        max_states,
        max_crashes: 0,
        por: false,
        symmetry: false,
        ..ExploreConfig::default()
    }
}

/// A budget with **both** reductions enabled (ample-set partial-order +
/// symmetry canonicalization). Budgets sized against reduced state
/// counts are much tighter than their baseline equivalents.
pub fn reduced(max_states: usize) -> ExploreConfig {
    ExploreConfig::reduced().with_max_states(max_states)
}

/// A budget with partial-order reduction only. The right choice for
/// mutex clients whose lock state embeds a distinct identity: their
/// symmetry quotient is trivial, so canonicalization would only add
/// per-state sorting overhead.
pub fn por_only(max_states: usize) -> ExploreConfig {
    ExploreConfig {
        por: true,
        ..budget(max_states)
    }
}

/// A budget with symmetry reduction only.
pub fn sym_only(max_states: usize) -> ExploreConfig {
    ExploreConfig {
        symmetry: true,
        ..budget(max_states)
    }
}

/// All four reduction variants over one budget, labeled for assertion
/// messages — the canonical sweep for differential suites that compare
/// the baseline against every reduced configuration (liveness, witness
/// properties, sweeps).
pub fn labeled_variants(max_states: usize) -> [(&'static str, ExploreConfig); 4] {
    [
        ("baseline", budget(max_states)),
        ("por", por_only(max_states)),
        ("sym", sym_only(max_states)),
        ("por+sym", reduced(max_states)),
    ]
}

/// The three *reduced* variants, labeled — for differential suites that
/// run the baseline once separately and compare each reduction against
/// it (safety and progress equivalence harnesses).
pub fn reduced_variants(max_states: usize) -> [(&'static str, ExploreConfig); 3] {
    [
        ("por", por_only(max_states)),
        ("sym", sym_only(max_states)),
        ("both", reduced(max_states)),
    ]
}

/// The multiset of decided outputs in a replayed final state — the
/// violation fingerprint the differential suites compare across
/// explorer configurations.
pub fn output_multiset<P: Process>(procs: &[P]) -> BTreeMap<u64, usize> {
    let mut m = BTreeMap::new();
    for p in procs {
        if let Some(v) = p.output() {
            *m.entry(v.raw()).or_insert(0) += 1;
        }
    }
    m
}

// ---------------------------------------------------------------------
// A seeded violating fixture, shared by the reduction and dynamic
// differential walls.
// ---------------------------------------------------------------------

/// [`TasScan`] with the `test-and-set` at one seed-chosen bit replaced by
/// a plain read. A read returns the same old value the `test-and-set`
/// would, but does not claim the bit — so two processes can both observe
/// `0` there and decide the same name: a planted uniqueness violation
/// every explorer must find.
#[derive(Clone, Debug)]
pub struct MutatedTasScan {
    inner: TasScan,
    broken: RegisterId,
}

impl MutatedTasScan {
    pub fn new(n: usize, seed: u64) -> Self {
        let inner = TasScan::new(n);
        let broken = RegisterId::new((seed % (n as u64 - 1)) as u32);
        MutatedTasScan { inner, broken }
    }
}

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MutatedProc {
    inner: TasScanProc,
    broken: RegisterId,
}

impl Process for MutatedProc {
    fn current(&self) -> Step {
        match self.inner.current() {
            Step::Op(Op::Bit(r, BitOp::TestAndSet)) if r == self.broken => {
                Step::Op(Op::Bit(r, BitOp::Read))
            }
            step => step,
        }
    }

    fn advance(&mut self, result: OpResult) {
        self.inner.advance(result);
    }

    fn output(&self) -> Option<Value> {
        self.inner.output()
    }

    fn fingerprint(&self) -> Option<u64> {
        self.inner.fingerprint()
    }

    fn may_access(&self, out: &mut RegisterSet) -> bool {
        self.inner.may_access(out)
    }
}

impl NamingAlgorithm for MutatedTasScan {
    type Proc = MutatedProc;

    fn name(&self) -> &str {
        "mutated-tas-scan"
    }

    fn n(&self) -> usize {
        self.inner.n()
    }

    fn model(&self) -> Model {
        self.inner.model()
    }

    fn layout(&self) -> Layout {
        self.inner.layout()
    }

    fn process(&self) -> MutatedProc {
        MutatedProc {
            inner: self.inner.process(),
            broken: self.broken,
        }
    }

    fn step_budget(&self) -> u64 {
        self.inner.step_budget()
    }
}
