//! Property tests for the symmetry-reduced progress checker: the verdict
//! — and, stronger, the whole canonical-quotient graph — of
//! `check_progress_sym` is invariant under any permutation of the process
//! vector, sampled over random execution prefixes and random
//! permutations, mirroring `tests/prop_reduction.rs`.
//!
//! The progress checker expands **canonical representatives** (unlike the
//! DFS safety explorer, which walks the concrete state that first reached
//! an orbit), so its reduced graph is a deterministic function of the
//! canonical root alone. That makes even the `por + symmetry` counts
//! exactly permutation-invariant — there is no "ample choice follows the
//! concrete index order" caveat here.

mod common;

use cfc::core::{Memory, OpResult, Process, Status, Step};
use cfc::naming::{NamingAlgorithm, TafTree, TasScan};
use cfc::verify::{check_progress_sym, ProgressStats};
use proptest::prelude::*;

/// Advances process `pid` by one step against `mem`, mirroring the
/// explorer's transition relation.
fn drive<P: Process>(mem: &mut Memory, procs: &mut [P], status: &mut [Status], pid: usize) {
    if status[pid] != Status::Running {
        return;
    }
    match procs[pid].current() {
        Step::Halt => status[pid] = Status::Done,
        Step::Internal => procs[pid].advance(OpResult::None),
        Step::Op(op) => {
            let result = mem.apply(&op).expect("valid op");
            procs[pid].advance(result);
        }
    }
}

/// The `k`-th permutation of `0..n` in the factorial number system.
fn nth_permutation(n: usize, mut k: u64) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..n).collect();
    let mut out = Vec::with_capacity(n);
    for i in (1..=n).rev() {
        let f: u64 = (1..i as u64).product();
        let idx = (k / f) as usize % i;
        k %= f.max(1);
        out.push(pool.remove(idx));
    }
    out
}

fn permuted<T: Clone>(xs: &[T], perm: &[usize]) -> Vec<T> {
    perm.iter().map(|&i| xs[i].clone()).collect()
}

/// Runs the invariance check for one algorithm: drive a random prefix,
/// permute the processes, compare reduced progress graphs.
fn check_invariance<A>(alg: &A, prefix: &[usize], perm_seed: u64)
where
    A: NamingAlgorithm,
    A::Proc: Clone + Eq + std::hash::Hash,
{
    let n = alg.n();
    let mut mem = alg.memory().expect("memory");
    let mut procs = alg.processes();
    let mut status = vec![Status::Running; n];
    for &p in prefix {
        drive(&mut mem, &mut procs, &mut status, p % n);
    }

    let group = alg.symmetry();
    let perm = nth_permutation(n, perm_seed);
    let procs_p = permuted(&procs, &perm);

    // The naming algorithms quiesce from every reachable state, so every
    // run below must return Ok — and the canonical-quotient graphs must
    // be identical in size, for symmetry alone and combined with
    // partial-order reduction.
    for cfg in [common::sym_only(200_000), common::reduced(200_000)] {
        let s0: ProgressStats =
            check_progress_sym(mem.clone(), procs.clone(), &group, cfg).unwrap();
        let s1: ProgressStats =
            check_progress_sym(mem.clone(), procs_p.clone(), &group, cfg).unwrap();
        assert_eq!(s0.states, s1.states, "{cfg:?}");
        assert_eq!(s0.transitions, s1.transitions, "{cfg:?}");
        assert_eq!(s0.terminals, s1.terminals, "{cfg:?}");
        assert_eq!(s0.states_pruned_por, s1.states_pruned_por, "{cfg:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Permuting the initial (or any reachable) process order of the
    /// test-and-flip tree leaves the reduced progress graph unchanged.
    #[test]
    fn taf_tree_progress_is_permutation_invariant(
        prefix in prop::collection::vec(0usize..4, 0..14),
        perm_seed in 0u64..24,
    ) {
        check_invariance(&TafTree::new(4).unwrap(), &prefix, perm_seed);
    }

    /// Same for the linear test-and-set scan (a different local-state
    /// shape: scan positions instead of tree nodes).
    #[test]
    fn tas_scan_progress_is_permutation_invariant(
        prefix in prop::collection::vec(0usize..3, 0..10),
        perm_seed in 0u64..6,
    ) {
        check_invariance(&TasScan::new(3), &prefix, perm_seed);
    }
}

/// A directed (non-sampled) witness that the quotient is genuinely
/// smaller than the concrete graph: four identical walkers collapse.
#[test]
fn taf_tree_progress_quotient_is_smaller_than_baseline() {
    let alg = TafTree::new(4).unwrap();
    let base = check_progress_sym(
        alg.memory().unwrap(),
        alg.processes(),
        &alg.symmetry(),
        common::budget(200_000),
    )
    .unwrap();
    let red = check_progress_sym(
        alg.memory().unwrap(),
        alg.processes(),
        &alg.symmetry(),
        common::sym_only(200_000),
    )
    .unwrap();
    assert!(
        base.states >= 5 * red.states,
        "expected >= 5x: {} baseline vs {} reduced",
        base.states,
        red.states
    );
    assert!(red.orbits_merged > 0);
    assert_eq!(base.orbits_merged, 0);
}
