//! E3/E12: every implemented algorithm's *measured* contention-free
//! profile satisfies the paper's lower bounds (Theorems 1 and 2) and the
//! combinatorial inequalities behind them (Lemmas 3 and 6), and sits
//! below the Theorem 3 upper bounds.

use cfc::bounds::{lemmas, mutex as bounds};
use cfc::core::ProcessId;
use cfc::mutex::measure::{self, LemmaProfile};
use cfc::mutex::{
    DetectionAlgorithm, LamportFast, MutexAlgorithm, MutexDetector, Splitter, SplitterTree,
    Tournament,
};

/// Measured contention-free profiles of every detector we can build for
/// (n, l), as (name, profile) pairs.
fn detector_profiles(n: usize, l: u32) -> Vec<(String, LemmaProfile)> {
    let mut out: Vec<(String, LemmaProfile)> = Vec::new();
    let pid = ProcessId::new(0);

    let tree = SplitterTree::sparse(n, l, &[pid]);
    out.push((
        tree.name().to_string(),
        measure::contention_free_detection(&tree, pid).unwrap().into(),
    ));

    if l >= cfc::core::bits_for(n as u64 - 1) {
        let splitter = Splitter::new(n);
        out.push((
            splitter.name().to_string(),
            measure::contention_free_detection(&splitter, pid)
                .unwrap()
                .into(),
        ));
        let det = MutexDetector::new(LamportFast::new(n));
        out.push((
            det.name().to_string(),
            measure::contention_free_detection(&det, pid).unwrap().into(),
        ));
    }

    let tournament = Tournament::sparse(n, l, &[pid]);
    let det = MutexDetector::new(tournament);
    out.push((
        det.name().to_string(),
        measure::contention_free_detection(&det, pid).unwrap().into(),
    ));
    out
}

#[test]
fn theorem1_lower_bound_holds_for_all_detectors() {
    for (n, l) in [(16usize, 1u32), (256, 1), (256, 4), (4096, 2), (1 << 16, 4)] {
        for (name, p) in detector_profiles(n, l) {
            let bound = bounds::thm1_step_lower(n as u64, l);
            assert!(
                p.steps as f64 > bound,
                "{name} at n={n} l={l}: {} steps <= Thm1 bound {bound}",
                p.steps
            );
            assert!(p.steps >= bounds::MIN_DETECTION_STEPS);
        }
    }
}

#[test]
fn theorem2_lower_bound_holds_for_all_detectors() {
    for (n, l) in [(16usize, 1u32), (256, 1), (256, 4), (4096, 2), (1 << 16, 4)] {
        for (name, p) in detector_profiles(n, l) {
            let bound = bounds::thm2_register_lower(n as u64, l);
            assert!(
                p.registers as f64 >= bound,
                "{name} at n={n} l={l}: {} registers < Thm2 bound {bound}",
                p.registers
            );
        }
    }
}

#[test]
fn lemma3_inequality_holds_on_measured_profiles() {
    for (n, l) in [(16usize, 1u32), (64, 2), (256, 4), (4096, 1), (1 << 12, 3)] {
        for (name, p) in detector_profiles(n, l) {
            assert!(
                lemmas::lemma3_holds(n as u64, l, p.write_steps, p.read_registers),
                "{name} at n={n} l={l}: Lemma 3 violated by w={} r={}",
                p.write_steps,
                p.read_registers
            );
        }
    }
}

#[test]
fn lemma6_inequality_holds_on_measured_profiles() {
    for (n, l) in [(16usize, 1u32), (64, 2), (256, 4), (4096, 1)] {
        for (name, p) in detector_profiles(n, l) {
            assert!(
                lemmas::lemma6_holds(n as u64, l, p.write_registers, p.registers),
                "{name} at n={n} l={l}: Lemma 6 violated by w={} c={}",
                p.write_registers,
                p.registers
            );
        }
    }
}

#[test]
fn tournament_matches_theorem3_shape() {
    for (n, l) in [
        (16usize, 1u32),
        (256, 1),
        (256, 2),
        (256, 4),
        (4096, 3),
        (1 << 16, 8),
        (1 << 20, 4),
    ] {
        let pid = ProcessId::new(0);
        let alg = Tournament::sparse(n, l, &[pid]);
        let trip = measure::contention_free_trip(&alg, pid).unwrap();
        assert_eq!(
            trip.total.steps,
            bounds::tournament_step_upper(n as u64, l),
            "steps: n={n} l={l}"
        );
        assert_eq!(
            trip.total.registers,
            bounds::tournament_register_upper(n as u64, l),
            "registers: n={n} l={l}"
        );
        // Within a small constant of the paper's 7 ceil(log n / l):
        assert!(trip.total.steps <= 2 * bounds::thm3_step_upper(n as u64, l));
        assert!(trip.total.registers <= 2 * bounds::thm3_register_upper(n as u64, l));
        // Strictly above the Theorem 1 lower bound:
        assert!(trip.total.steps as f64 > bounds::thm1_step_lower(n as u64, l));
    }
}

#[test]
fn lamport_constants_match_the_paper() {
    for n in [2usize, 10, 1000, 1 << 14] {
        let alg = LamportFast::new(n);
        let trip = measure::contention_free_trip(&alg, ProcessId::new(0)).unwrap();
        assert_eq!(trip.total.steps, bounds::LAMPORT_FAST_STEPS);
        assert_eq!(trip.total.registers, bounds::LAMPORT_FAST_REGISTERS);
        assert_eq!(trip.entry.steps, 5);
        assert_eq!(trip.exit.steps, 2);
    }
}

#[test]
fn bit_access_corollary_holds() {
    // The corollary to Theorem 1: bit accesses >= l + c - 1 in some run.
    // The Lamport fast path makes this tight up to constants: 7 accesses
    // to (log n)-bit registers is ~7 log n bits.
    for n in [256usize, 4096] {
        let alg = LamportFast::new(n);
        let trip = measure::contention_free_trip(&alg, ProcessId::new(0)).unwrap();
        let l = alg.atomicity();
        let c = trip.total.steps;
        assert!(trip.total.bit_accesses >= bounds::bit_access_lower(l, c));
    }
    // And the tournament keeps bit accesses Θ(log n) for every l.
    let n = 1 << 12;
    let mut bit_counts = Vec::new();
    for l in [1u32, 2, 4, 6, 12] {
        let alg = Tournament::sparse(n, l, &[ProcessId::new(0)]);
        let trip = measure::contention_free_trip(&alg, ProcessId::new(0)).unwrap();
        bit_counts.push(trip.total.bit_accesses);
    }
    let (min, max) = (
        *bit_counts.iter().min().unwrap(),
        *bit_counts.iter().max().unwrap(),
    );
    assert!(
        max <= 8 * min,
        "bit accesses should stay within a constant factor across l: {bit_counts:?}"
    );
}

#[test]
fn bypass_bounds_match_fair_cycle_measurements() {
    // The fairness constants in `cfc-bounds` are *claims*; the fair-cycle
    // liveness checker is the instrument that measures them — and every
    // measured bound must come with a validated witness schedule, so the
    // lock-step here is three-way: claim = measurement = replayed run.
    use cfc::core::Section;
    use cfc::mutex::{Bakery, LockProcess, MutexClient, PetersonTwo, TasSpin, Tournament};
    use cfc::verify::{check_mutex_starvation, validate_bypass, ExploreConfig, LivenessSpec};

    fn spec<'a, L: LockProcess>() -> LivenessSpec<'a, MutexClient<L>> {
        LivenessSpec {
            pending: &|c: &MutexClient<L>| {
                cfc::core::Process::section(c) == Some(Section::Entry)
            },
            engaged: &|c: &MutexClient<L>| c.engaged(),
            served: &|b: &MutexClient<L>, a: &MutexClient<L>| {
                cfc::core::Process::section(b) != Some(Section::Critical)
                    && cfc::core::Process::section(a) == Some(Section::Critical)
            },
            normalize: None,
        }
    }

    /// Claim, measurement, and witness must agree.
    fn assert_witnessed_bound<A>(alg: &A, claimed: u64, config: ExploreConfig)
    where
        A: MutexAlgorithm,
        A::Lock: Clone + Eq + std::hash::Hash + 'static,
    {
        let report = check_mutex_starvation(alg, config).unwrap();
        assert!(report.is_starvation_free(), "{}", alg.name());
        assert_eq!(report.bypass(), Some(Some(claimed)), "{}", alg.name());
        let witness = report
            .bypass_witness()
            .unwrap_or_else(|| panic!("{}: bound without witness", alg.name()));
        assert_eq!(witness.bypass, claimed, "{}", alg.name());
        let clients: Vec<_> = (0..alg.n() as u32)
            .map(|i| alg.client_cycling(ProcessId::new(i), 1))
            .collect();
        validate_bypass(&alg.memory().unwrap(), &clients, witness, &spec())
            .unwrap_or_else(|e| panic!("{}: witness fails validation: {e}", alg.name()));
    }

    let config = ExploreConfig::default().with_max_states(100_000);
    assert_witnessed_bound(&PetersonTwo::new(), bounds::PETERSON_BYPASS, config);
    for n in [2u64, 3] {
        assert_witnessed_bound(
            &Bakery::new(n as usize),
            bounds::bakery_bypass_upper(n),
            config,
        );
    }

    // Tournament fairness is decided by the node type: Peterson nodes
    // (l = 1) are starvation-free, Lamport nodes (l >= 2) starvable.
    assert!(bounds::tournament_starvation_free(1));
    let peterson_tree = check_mutex_starvation(&Tournament::new(3, 1), config).unwrap();
    assert!(peterson_tree.is_starvation_free());
    assert!(!bounds::tournament_starvation_free(2));
    let lamport_tree = check_mutex_starvation(&Tournament::new(3, 2), config).unwrap();
    assert!(lamport_tree.witness().is_some());

    // The worst-case step row of Table 1 is ∞ [AT92]: the starvable
    // families really do starve.
    let lamport = check_mutex_starvation(&LamportFast::new(2), config).unwrap();
    assert!(lamport.witness().is_some());
    let tas = check_mutex_starvation(&TasSpin::new(2), config).unwrap();
    assert!(tas.witness().is_some());
}

#[test]
fn detection_has_bounded_worst_case_steps_but_mutex_does_not() {
    // E11: a splitter-tree process halts within 4*depth own steps under
    // any schedule, while a mutex client can be forced to take more than
    // any bound by scheduling it against a critical-section holder.
    use cfc::core::{ExecConfig, FaultPlan, FixedOrder};

    let n = 8usize;
    let tree = SplitterTree::new(n, 1);
    let bound = 4 * u64::from(tree.depth());
    let procs = (0..n as u32).map(|i| tree.process(ProcessId::new(i))).collect();
    let exec = cfc::core::run_schedule(
        tree.memory().unwrap(),
        procs,
        cfc::core::Lockstep::new(),
        FaultPlan::new(),
        ExecConfig::default(),
    )
    .unwrap();
    for i in 0..n as u32 {
        assert!(exec.steps_taken(ProcessId::new(i)) <= bound);
    }

    // Mutex: let process 0 park in the critical section (it stops being
    // scheduled mid-CS), then give process 1 a huge number of steps: it
    // busy-waits, exceeding any fixed bound without entering.
    let alg = LamportFast::new(2);
    let clients = vec![
        alg.client_with_cs(ProcessId::new(0), 1, 10),
        alg.client(ProcessId::new(1), 1),
    ];
    // Schedule: p0 enters its CS (7 steps: 5 entry + enter), then p1 runs
    // 500 steps without p0 ever exiting.
    let mut script = vec![ProcessId::new(0); 6];
    script.extend(vec![ProcessId::new(1); 500]);
    let exec = cfc::core::run_schedule(
        alg.memory().unwrap(),
        clients,
        FixedOrder::new(script),
        FaultPlan::new(),
        ExecConfig::default(),
    )
    .unwrap();
    let p1_steps = exec.steps_taken(ProcessId::new(1));
    assert!(
        p1_steps >= 400,
        "p1 should be forced to busy-wait unboundedly, took {p1_steps}"
    );
}
