//! Native-layer stress: the real-atomics locks and registries under
//! genuine hardware concurrency.

use cfc::native::{
    BakeryMutex, FastMutex, NamingRegistry, PetersonTree, SlottedMutex, SpinStrategy, TasLock,
};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};

/// Drives `threads` threads through `iters` protected read-modify-write
/// cycles; any mutual-exclusion failure loses updates.
fn exact_counter<M: SlottedMutex>(mutex: &M, threads: usize, iters: u64) {
    let counter = AtomicU64::new(0);
    std::thread::scope(|s| {
        for slot in 0..threads {
            let (mutex, counter) = (&*mutex, &counter);
            s.spawn(move || {
                for _ in 0..iters {
                    mutex.lock(slot);
                    let v = counter.load(SeqCst);
                    std::hint::black_box(v);
                    counter.store(v + 1, SeqCst);
                    mutex.unlock(slot);
                }
            });
        }
    });
    assert_eq!(
        counter.load(SeqCst),
        threads as u64 * iters,
        "{} lost updates",
        mutex.name()
    );
}

#[test]
fn fast_mutex_heavy_contention() {
    exact_counter(&FastMutex::new(8), 8, 5_000);
}

#[test]
fn fast_mutex_with_backoff_heavy_contention() {
    exact_counter(&FastMutex::with_backoff(8), 8, 5_000);
}

#[test]
fn peterson_tree_heavy_contention() {
    exact_counter(&PetersonTree::new(8), 8, 5_000);
}

#[test]
fn peterson_tree_odd_thread_counts() {
    for threads in [3usize, 5, 6, 7] {
        exact_counter(&PetersonTree::new(threads), threads, 2_000);
    }
}

#[test]
fn bakery_heavy_contention() {
    exact_counter(&BakeryMutex::new(6), 6, 3_000);
}

#[test]
fn tas_variants_heavy_contention() {
    for strategy in [SpinStrategy::Tas, SpinStrategy::Ttas, SpinStrategy::TtasBackoff] {
        exact_counter(&TasLock::new(strategy), 8, 5_000);
    }
}

#[test]
fn repeated_rounds_reuse_the_same_mutex() {
    let mutex = FastMutex::new(4);
    for _ in 0..5 {
        exact_counter(&mutex, 4, 1_000);
    }
}

#[test]
fn naming_registry_full_capacity_race() {
    for _ in 0..20 {
        let registry = NamingRegistry::new(8);
        let names: HashSet<usize> = std::thread::scope(|s| {
            (0..8)
                .map(|i| {
                    let registry = &registry;
                    s.spawn(move || {
                        if i % 2 == 0 {
                            registry.claim_scan().unwrap()
                        } else {
                            registry.claim_search().unwrap()
                        }
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(names.len(), 8);
        assert!(names.iter().all(|&x| (1..=8).contains(&x)));
    }
}

#[test]
fn mixed_lock_workloads_interleave_safely() {
    // Two independent locks protecting two counters, threads alternating.
    let m1 = FastMutex::new(4);
    let m2 = PetersonTree::new(4);
    let c1 = AtomicU64::new(0);
    let c2 = AtomicU64::new(0);
    std::thread::scope(|s| {
        for slot in 0..4 {
            let (m1, m2, c1, c2) = (&m1, &m2, &c1, &c2);
            s.spawn(move || {
                for i in 0..2_000u64 {
                    if i % 2 == 0 {
                        m1.lock(slot);
                        let v = c1.load(SeqCst);
                        c1.store(v + 1, SeqCst);
                        m1.unlock(slot);
                    } else {
                        m2.lock(slot);
                        let v = c2.load(SeqCst);
                        c2.store(v + 1, SeqCst);
                        m2.unlock(slot);
                    }
                }
            });
        }
    });
    assert_eq!(c1.load(SeqCst), 4_000);
    assert_eq!(c2.load(SeqCst), 4_000);
}
