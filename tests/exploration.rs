//! Cross-crate exhaustive verification: the heavier model-checking
//! configurations (larger n / more trips / crash adversaries) that the
//! per-crate unit tests keep small.
//!
//! Every exploration here is deterministic (DFS over a finite state
//! space, no RNG anywhere) and carries an **explicit** state budget so a
//! regression that blows up a state space fails fast with
//! [`ExploreError::StateBudget`] instead of hanging CI. Budgets are sized
//! ~2x the state count each instance actually visits (recorded in the
//! comments), so they bound time and memory without being brittle.

use cfc::mutex::{ExitOrder, LamportFast, PetersonTwo, Splitter, SplitterTree, Tournament};
use cfc::naming::{Dualized, TafTree, TasReadSearch, TasScan, TasTarTree};
use cfc::verify::explore::ExploreConfig;
use cfc::verify::{
    check_detection_safety, check_mutex_safety, check_naming_uniqueness, ExploreError,
};

/// An explicit, crash-free budget for an exploration known to visit fewer
/// than `max_states` states.
fn budget(max_states: usize) -> ExploreConfig {
    ExploreConfig {
        max_states,
        max_crashes: 0,
    }
}

#[test]
fn lamport_three_processes_every_interleaving_is_safe() {
    let stats = check_mutex_safety(&LamportFast::new(3), 1, budget(500_000)).unwrap();
    assert!(stats.states > 10_000);
    assert!(stats.terminals > 0);
}

#[test]
fn peterson_two_trips_exhaustive() {
    check_mutex_safety(&PetersonTwo::new(), 3, budget(100_000)).unwrap();
}

#[test]
fn lamport_tournament_exhaustive() {
    // 3-ary Lamport nodes, two levels; visits ~1.03M states.
    check_mutex_safety(&Tournament::new(4, 2), 1, budget(2_000_000)).unwrap();
}

#[test]
fn peterson_tournament_five_processes_exhaustive() {
    // Unbalanced binary tree (5 < 8 leaves): all interleavings,
    // ~515k states.
    check_mutex_safety(&Tournament::new(5, 1), 1, budget(1_000_000)).unwrap();
}

#[test]
fn unsafe_exit_order_caught_for_lamport_nodes_too() {
    // The leaf-to-root release is unsafe for Lamport-node tournaments as
    // well: releasing the leaf lets a same-slot successor climb into the
    // still-held upper node, whose later release wipes the successor's
    // announcement.
    let alg = Tournament::new(4, 2).with_exit_order(ExitOrder::LeafToRoot);
    match check_mutex_safety(&alg, 1, budget(2_000_000)) {
        Err(ExploreError::Violation(v)) => {
            assert!(v.message.contains("critical section"));
        }
        Ok(stats) => {
            // If exploration finds no violation for this small instance,
            // the order merely *happens* to be safe here; the Peterson
            // case in cfc-verify's unit tests is the definitive exhibit.
            assert!(stats.states > 0);
        }
        Err(other) => panic!("unexpected exploration failure: {other}"),
    }
}

#[test]
fn detection_exhaustive_with_crashes() {
    // A crash before deciding must not create a second winner.
    let cfg = ExploreConfig {
        max_states: 200_000,
        max_crashes: 1,
    };
    check_detection_safety(&Splitter::new(3), cfg).unwrap();
    check_detection_safety(&SplitterTree::new(3, 1), cfg).unwrap();
}

#[test]
fn naming_exhaustive_under_double_crashes() {
    let cfg = budget(500_000);
    check_naming_uniqueness(&TasScan::new(4), 2, cfg).unwrap();
    check_naming_uniqueness(&TafTree::new(4).unwrap(), 2, cfg).unwrap();
    check_naming_uniqueness(&TasReadSearch::new(4), 2, cfg).unwrap();
}

#[test]
fn tas_tar_tree_exhaustive_with_crash() {
    check_naming_uniqueness(&TasTarTree::new(4).unwrap(), 1, budget(500_000)).unwrap();
}

#[test]
fn dualized_algorithms_explore_identically() {
    let base = check_naming_uniqueness(&TasScan::new(3), 1, budget(100_000)).unwrap();
    let dual = check_naming_uniqueness(
        &Dualized::new(TasScan::new(3)),
        1,
        budget(100_000),
    )
    .unwrap();
    // Dualization is a bijection on runs: identical state-space size.
    assert_eq!(base.states, dual.states);
    assert_eq!(base.terminals, dual.terminals);
}

#[test]
fn oversized_exploration_fails_gracefully() {
    // Eight identical tree-walkers have ~15^8 joint states: far beyond
    // any budget. The explorer must stop at its state cap with a clean
    // error instead of consuming unbounded memory.
    let cfg = ExploreConfig {
        max_states: 50_000,
        ..Default::default()
    };
    match check_naming_uniqueness(&TafTree::new(8).unwrap(), 0, cfg) {
        Err(ExploreError::StateBudget(n)) => assert!(n > 50_000),
        other => panic!("expected state-budget stop, got {other:?}"),
    }
}
