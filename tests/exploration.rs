//! Cross-crate exhaustive verification: the heavier model-checking
//! configurations (larger n / more trips / crash adversaries) that the
//! per-crate unit tests keep small.
//!
//! Every exploration here is deterministic (DFS over a finite state
//! space, no RNG anywhere) and carries an **explicit** state budget so a
//! regression that blows up a state space fails fast with
//! [`ExploreError::StateBudget`] instead of hanging CI. Budgets are sized
//! ~2x the state count each instance actually visits (recorded in the
//! comments), so they bound time and memory without being brittle.
//!
//! The fast suite runs with the explorer's reductions enabled (see
//! `tests/common/mod.rs` and `tests/reduction_equiv.rs` for the
//! equivalence evidence); budgets are tightened to the *reduced* counts
//! so a reduction regression — state counts creeping back toward the
//! naive explosion — fails immediately. The un-reduced baselines of the
//! heaviest configurations are `#[ignore]`-marked and run in CI's
//! dedicated release-profile exhaustive job.

mod common;

use cfc::mutex::{ExitOrder, LamportFast, PetersonTwo, Splitter, SplitterTree, Tournament};
use cfc::naming::{Dualized, TafTree, TasReadSearch, TasScan, TasTarTree};
use cfc::verify::explore::ExploreConfig;
use cfc::verify::{
    check_detection_safety, check_mutex_safety, check_naming_uniqueness, ExploreError,
};
use common::{budget, por_only, reduced};

#[test]
fn lamport_three_processes_every_interleaving_is_safe() {
    // 11.1k baseline states; POR trims the halt interleavings to ~10.9k.
    let stats = check_mutex_safety(&LamportFast::new(3), 1, por_only(25_000)).unwrap();
    assert!(stats.states > 10_000);
    assert!(stats.terminals > 0);
}

#[test]
fn peterson_two_trips_exhaustive() {
    // 430 baseline states, 409 reduced.
    check_mutex_safety(&PetersonTwo::new(), 3, reduced(1_000)).unwrap();
}

#[test]
fn lamport_tournament_exhaustive() {
    // 3-ary Lamport nodes, two levels; ~1.03M baseline states, ~891k with
    // ample sets serializing the disjoint subtrees. Symmetry is left off:
    // each client's lock embeds its distinct path, so the quotient is
    // trivial and canonicalization would only add overhead.
    check_mutex_safety(&Tournament::new(4, 2), 1, por_only(1_800_000)).unwrap();
}

#[test]
fn peterson_tournament_five_processes_exhaustive() {
    // Unbalanced binary tree (5 < 8 leaves): ~515k baseline states, ~334k
    // with partial-order reduction.
    check_mutex_safety(&Tournament::new(5, 1), 1, por_only(700_000)).unwrap();
}

#[test]
fn unsafe_exit_order_caught_for_lamport_nodes_too() {
    // The leaf-to-root release is unsafe for Lamport-node tournaments as
    // well: releasing the leaf lets a same-slot successor climb into the
    // still-held upper node, whose later release wipes the successor's
    // announcement. The reduced explorer must find the interleaving too —
    // partial-order reduction only prunes reorderings of independent
    // steps, never a path to a visible violation.
    let alg = Tournament::new(4, 2).with_exit_order(ExitOrder::LeafToRoot);
    match check_mutex_safety(&alg, 1, por_only(1_800_000)) {
        Err(ExploreError::Violation(v)) => {
            assert!(v.message.contains("critical section"));
        }
        Ok(stats) => {
            // If exploration finds no violation for this small instance,
            // the order merely *happens* to be safe here; the Peterson
            // case in cfc-verify's unit tests is the definitive exhibit.
            assert!(stats.states > 0);
        }
        Err(other) => panic!("unexpected exploration failure: {other}"),
    }
}

#[test]
fn detection_exhaustive_with_crashes() {
    // A crash before deciding must not create a second winner. Detection
    // processes are pid-distinguished (trivial symmetry), and crash
    // branching suspends the ample-set rule, so this runs near-baseline.
    let cfg = ExploreConfig {
        max_states: 200_000,
        max_crashes: 1,
        ..ExploreConfig::reduced()
    };
    check_detection_safety(&Splitter::new(3), cfg).unwrap();
    check_detection_safety(&SplitterTree::new(3, 1), cfg).unwrap();
}

#[test]
fn naming_exhaustive_under_double_crashes() {
    // Baseline: 8.8k / 10.1k / 18.1k states. Reduced: 405 / 481 / 839 —
    // the four identical walkers collapse into multisets of local states.
    check_naming_uniqueness(&TasScan::new(4), 2, reduced(1_000)).unwrap();
    check_naming_uniqueness(&TafTree::new(4).unwrap(), 2, reduced(1_200)).unwrap();
    check_naming_uniqueness(&TasReadSearch::new(4), 2, reduced(2_000)).unwrap();
}

#[test]
fn tas_tar_tree_exhaustive_with_crash() {
    // 13.4k baseline states, 628 reduced.
    check_naming_uniqueness(&TasTarTree::new(4).unwrap(), 1, reduced(1_500)).unwrap();
}

#[test]
fn reductions_shrink_exhaustive_naming_configs_5x() {
    // The acceptance bar for the reduction subsystem, asserted
    // numerically: on these two exhaustive configurations the reduced
    // explorer visits at least 5x fewer states than the baseline (the
    // measured factor is ~21x for both).
    for (base_stats, red_stats) in [
        (
            check_naming_uniqueness(&TasScan::new(4), 2, budget(2_000_000)).unwrap(),
            check_naming_uniqueness(&TasScan::new(4), 2, reduced(1_000)).unwrap(),
        ),
        (
            check_naming_uniqueness(&TafTree::new(4).unwrap(), 2, budget(2_000_000)).unwrap(),
            check_naming_uniqueness(&TafTree::new(4).unwrap(), 2, reduced(1_200)).unwrap(),
        ),
    ] {
        assert!(
            base_stats.states >= 5 * red_stats.states,
            "expected >= 5x reduction, got {} baseline vs {} reduced",
            base_stats.states,
            red_stats.states
        );
        assert!(red_stats.orbits_merged > 0, "symmetry merged no orbits");
        assert!(red_stats.states_pruned_por > 0, "ample sets pruned nothing");
        // Reduction must never lose quiescent coverage entirely.
        assert!(red_stats.terminals > 0);
    }
}

#[test]
fn eight_tree_walkers_explore_to_quiescence() {
    // Eight identical tree-walkers have ~15^8 joint process states — the
    // config this suite used to truncate at a 50k-state budget. Under
    // symmetry (8! interchangeable walkers) plus ample sets (disjoint
    // subtrees serialize), the whole space is 8,963 canonical states and
    // explores to quiescence well inside the very budget that used to
    // overflow: every interleaving yields 8 distinct names and every
    // walker halts.
    let stats = check_naming_uniqueness(&TafTree::new(8).unwrap(), 0, reduced(50_000)).unwrap();
    assert!(stats.terminals >= 1, "no quiescent state reached");
    assert!(stats.states < 20_000, "reduction regressed: {} states", stats.states);
    assert!(stats.orbits_merged > 1_000);
}

#[test]
fn dualized_algorithms_explore_identically() {
    let base = check_naming_uniqueness(&TasScan::new(3), 1, reduced(5_000)).unwrap();
    let dual = check_naming_uniqueness(&Dualized::new(TasScan::new(3)), 1, reduced(5_000)).unwrap();
    // Dualization is a bijection on runs, and the dual processes forward
    // their fingerprints: identical canonical state-space size.
    assert_eq!(base.states, dual.states);
    assert_eq!(base.terminals, dual.terminals);
    assert_eq!(base.orbits_merged, dual.orbits_merged);
}

#[test]
fn oversized_exploration_fails_gracefully() {
    // The same eight-walker joint space *without* reductions is far
    // beyond any budget. The baseline explorer must stop at its state cap
    // with a clean error instead of consuming unbounded memory.
    let cfg = budget(50_000);
    match check_naming_uniqueness(&TafTree::new(8).unwrap(), 0, cfg) {
        Err(ExploreError::StateBudget(n)) => assert!(n > 50_000),
        other => panic!("expected state-budget stop, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Un-reduced baselines of the heaviest configurations: `--ignored`, run
// in CI's dedicated release-profile exhaustive job (see ci.yml).
// ---------------------------------------------------------------------

#[test]
#[ignore = "heavy baseline (~1.03M states); run via cargo test --release -- --ignored"]
fn exhaustive_lamport_tournament_baseline() {
    let stats = check_mutex_safety(&Tournament::new(4, 2), 1, budget(2_000_000)).unwrap();
    assert!(stats.states > 1_000_000);
}

#[test]
#[ignore = "heavy baseline (~515k states); run via cargo test --release -- --ignored"]
fn exhaustive_peterson_tournament_five_baseline() {
    let stats = check_mutex_safety(&Tournament::new(5, 1), 1, budget(1_000_000)).unwrap();
    assert!(stats.states > 500_000);
}

#[test]
#[ignore = "heavy baseline violation search; run via cargo test --release -- --ignored"]
fn exhaustive_unsafe_exit_order_baseline() {
    let alg = Tournament::new(4, 2).with_exit_order(ExitOrder::LeafToRoot);
    match check_mutex_safety(&alg, 1, budget(2_000_000)) {
        Err(ExploreError::Violation(v)) => assert!(v.message.contains("critical section")),
        Ok(stats) => assert!(stats.states > 0),
        Err(other) => panic!("unexpected exploration failure: {other}"),
    }
}

// ---------------------------------------------------------------------
// Packed-arena scale targets: configurations past the old ~5M-state
// ceiling, reachable because the visited set stores one bit-packed copy
// of each canonical state instead of a boxed `Node` per hash-map key.
// ---------------------------------------------------------------------

#[test]
#[ignore = "heavy packed-store target (tens of millions of states); run via cargo test --release -- --ignored"]
fn exhaustive_tournament_seven_packed() {
    // Seven processes on an unbalanced binary tournament tree — an order
    // of magnitude past the n=6 instance that defined the old ceiling.
    // The default packed store is what makes this fit; the assertions pin
    // both the scale and the per-state footprint the CSV reports.
    let stats = check_mutex_safety(&Tournament::new(7, 1), 1, por_only(80_000_000)).unwrap();
    assert!(
        stats.states > 5_000_000,
        "expected to clear the old 5M ceiling, visited only {}",
        stats.states
    );
    let bytes_per_state = stats.footprint.arena_bytes as f64 / stats.states as f64;
    assert!(
        bytes_per_state < 64.0,
        "packed stride regressed to {bytes_per_state:.1} B/state"
    );
}

#[test]
#[ignore = "heaviest packed-store target (hundreds of millions of states); run via cargo test --release -- --ignored"]
fn exhaustive_tournament_eight_packed() {
    // Eight processes on the balanced three-level tournament tree — the
    // scale point the open-addressed digest index and the CSR edge
    // arena were built to reach. The footprint assertion covers the
    // *whole* per-state cost (arena stride + index slots + edges; the
    // safety DFS records no edges) and pins it below the 64 B/state
    // arena-only bar the n=7 target set in PR 6.
    let stats = check_mutex_safety(&Tournament::new(8, 1), 1, por_only(600_000_000)).unwrap();
    assert!(
        stats.states > 50_000_000,
        "expected an order of magnitude past the n=7 target, visited only {}",
        stats.states
    );
    let bytes_per_state = stats.footprint.total_bytes() as f64 / stats.states as f64;
    assert!(
        bytes_per_state < 64.0,
        "total per-state footprint regressed to {bytes_per_state:.1} B/state"
    );
}

#[test]
#[ignore = "heavy spill-path differential (~334k states twice); run via cargo test --release -- --ignored"]
fn exhaustive_tournament_five_spill_differential() {
    // The spill-path config CI's exhaustive job runs under a constrained
    // resident budget: cold arena segments go to the temp-file tier and
    // are read back for the exact byte comparison, so every count must
    // match the fully-resident run bit for bit.
    let resident = check_mutex_safety(&Tournament::new(5, 1), 1, por_only(700_000)).unwrap();
    let spilled = check_mutex_safety(
        &Tournament::new(5, 1),
        1,
        por_only(700_000).with_spill_budget(2 * 1024 * 1024),
    )
    .unwrap();
    assert_eq!(resident.states, spilled.states);
    assert_eq!(resident.transitions, spilled.transitions);
    assert_eq!(resident.terminals, spilled.terminals);
    assert_eq!(resident.states_pruned_por, spilled.states_pruned_por);
    assert_eq!(resident.orbits_merged, spilled.orbits_merged);
    assert!(
        spilled.footprint.spilled_buckets > 0,
        "a 2 MiB budget must force spilling on a {}-byte arena",
        resident.footprint.arena_bytes
    );
}
