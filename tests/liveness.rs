//! Differential validation of the fair-cycle liveness checker: reduced
//! and un-reduced analyses must agree on every config, starvable
//! verdicts must carry concretely validated lassos, and the
//! classifications must match the algorithms' known fairness properties.
//!
//! | algorithm | verdict | bypass |
//! |---|---|---|
//! | Peterson, tournament n=2 | starvation-free | 1 |
//! | bakery n | starvation-free (FCFS) | 2(n−1) |
//! | tournament n≥3 | starvation-free per level | unbounded (no wait-free doorway) |
//! | Lamport fast, test-and-set, Dijkstra | **starvable** | — |

mod common;

use cfc::core::{ProcessId, Section, Status};
use cfc::mutex::{
    Bakery, Dijkstra, LamportFast, MutexAlgorithm, PetersonTwo, TasSpin, Tournament,
};
use cfc::naming::{TafTree, TasReadSearch, TasScan};
use cfc::verify::{
    check_mutex_starvation, check_naming_lockout, replay, ExploreConfig, LivenessReport,
    ScheduleStep,
};
use common::labeled_variants;

/// Checks one algorithm across all four variants, asserting that every
/// variant produces the same classification and bypass bound, and that
/// every starvable verdict's lasso replays to a state with the victim
/// still running and pending — the un-reduced re-check of a witness the
/// reduced graph discovered.
fn classify<A>(alg: &A, max_states: usize) -> (bool, Option<u64>)
where
    A: MutexAlgorithm,
    A::Lock: Clone + Eq + std::hash::Hash + 'static,
{
    let mut outcome: Option<(bool, Option<u64>)> = None;
    for (label, config) in labeled_variants(max_states) {
        let report = check_mutex_starvation(alg, config).unwrap();
        let this = (
            report.is_starvation_free(),
            report.bypass().unwrap_or_default(),
        );
        recheck_witness(alg, &report);
        match outcome {
            None => outcome = Some(this),
            Some(prev) => assert_eq!(
                prev,
                this,
                "{}: reduced and un-reduced disagree ({label})",
                alg.name(),
            ),
        }
    }
    outcome.unwrap()
}

/// Replays a starvable verdict's lasso (stem + three revolutions)
/// un-reduced and confirms the victim is still trying at the end while
/// every revolution stepped it.
fn recheck_witness<A>(alg: &A, report: &LivenessReport)
where
    A: MutexAlgorithm,
    A::Lock: Clone + Eq + std::hash::Hash,
{
    let Some(witness) = report.witness() else {
        return;
    };
    assert!(!witness.lasso.cycle.is_empty());
    let victim = witness.victim;
    assert!(witness
        .lasso
        .cycle
        .iter()
        .any(|s| matches!(s, ScheduleStep::Step(p) if *p == victim)));
    let mut schedule = witness.lasso.stem.clone();
    for _ in 0..3 {
        schedule.extend(witness.lasso.cycle.iter().copied());
    }
    let clients: Vec<_> = (0..alg.n() as u32)
        .map(|i| alg.client_cycling(ProcessId::new(i), 1))
        .collect();
    let replayed = replay(alg.memory().unwrap(), clients, &schedule).unwrap();
    assert_eq!(replayed.status[victim.index()], Status::Running);
    assert_eq!(
        cfc::core::Process::section(&replayed.procs[victim.index()]),
        Some(Section::Entry),
        "{}: replayed victim must still be in its entry section",
        alg.name()
    );
}

#[test]
fn peterson_classified_starvation_free_bypass_one() {
    assert_eq!(classify(&PetersonTwo::new(), 10_000), (true, Some(1)));
}

#[test]
fn tas_spin_classified_starvable() {
    assert!(!classify(&TasSpin::new(2), 10_000).0);
    assert!(!classify(&TasSpin::new(3), 10_000).0);
}

#[test]
fn lamport_fast_classified_starvable() {
    assert!(!classify(&LamportFast::new(2), 20_000).0);
}

#[test]
fn dijkstra_classified_starvable() {
    assert!(!classify(&Dijkstra::new(2), 20_000).0);
}

#[test]
fn bakery_classified_fcfs_starvation_free() {
    // FCFS ⇒ starvation-free; the ticket-shift normalizer keeps the
    // cycling graph finite. Bypass is 2(n−1): each competitor can
    // overtake once from an in-flight gate check and once more via a
    // doorway that overlapped the victim's scan.
    assert_eq!(classify(&Bakery::new(2), 30_000), (true, Some(2)));
}

#[test]
fn tournament_classified_per_level() {
    // One Peterson node: inherits its bounded bypass.
    assert_eq!(classify(&Tournament::new(2, 1), 10_000), (true, Some(1)));
    // Two levels: still starvation-free under weak fairness, but there
    // is no wait-free doorway — a waiter frozen mid-climb can watch the
    // far subtree alternate through the root unboundedly — so bypass is
    // unbounded.
    assert_eq!(classify(&Tournament::new(3, 1), 60_000), (true, None));
}

#[test]
fn tournament_of_lamport_nodes_inherits_starvability() {
    // At l >= 2 the tree nodes are Lamport fast-mutex instances, which
    // are starvable — and so is the composition: a single arity-3 node
    // already yields the lasso.
    assert!(!classify(&Tournament::new(3, 2), 80_000).0);
}

#[test]
fn naming_algorithms_are_lockout_free() {
    // Wait-freedom leaves no cycle in which an undecided walker steps,
    // so every naming algorithm passes, crashes included.
    for (label, config) in labeled_variants(60_000) {
        let report = check_naming_lockout(&TasScan::new(3), 1, config).unwrap();
        assert!(report.is_starvation_free(), "{label}");
        let report = check_naming_lockout(&TafTree::new(4).unwrap(), 0, config).unwrap();
        assert!(report.is_starvation_free(), "{label}");
        // The naming analogue of bypass is bounded by n − 1 peers.
        let bypass = report.bypass().unwrap().expect("wait-free => bounded");
        assert!(bypass <= 3, "{label}: {bypass}");
    }
    let report =
        check_naming_lockout(&TasReadSearch::new(3), 0, ExploreConfig::reduced()).unwrap();
    assert!(report.is_starvation_free());
}

#[test]
fn bakery_three_bypass_scales_with_the_crowd() {
    // 2(n−1) at n = 3; the ticket quotient keeps ~42k states.
    let report =
        check_mutex_starvation(&Bakery::new(3), ExploreConfig::reduced().with_max_states(80_000))
            .unwrap();
    assert!(report.is_starvation_free());
    assert_eq!(report.bypass(), Some(Some(4)));
}

// ---------------------------------------------------------------------
// Heavy configurations for the exhaustive release job (`cargo test
// --release -- --ignored`).
// ---------------------------------------------------------------------

#[test]
#[ignore = "heavy: full tournament liveness, run by the exhaustive release job"]
fn exhaustive_tournament_four_liveness() {
    assert_eq!(
        classify(&Tournament::new(4, 1), 1_000_000),
        (true, None),
        "two-level tournament: starvation-free, unbounded bypass"
    );
}

#[test]
#[ignore = "heavy: five-way tournament liveness, run by the exhaustive release job"]
fn exhaustive_tournament_five_liveness() {
    let report = check_mutex_starvation(
        &Tournament::new(5, 1),
        ExploreConfig::reduced().with_max_states(8_000_000),
    )
    .unwrap();
    assert!(report.is_starvation_free());
    assert_eq!(report.bypass(), Some(None), "no wait-free doorway");
}

#[test]
#[ignore = "heavy: eight-walker lockout check, run by the exhaustive release job"]
fn exhaustive_taf_tree_eight_lockout() {
    // The eight-walker test-and-flip tree: hopeless un-reduced (~15^8
    // joint states), finite under the per-victim stabilizer quotient.
    let report = check_naming_lockout(
        &TafTree::new(8).unwrap(),
        0,
        ExploreConfig::reduced().with_max_states(2_000_000),
    )
    .unwrap();
    assert!(report.is_starvation_free());
    let bypass = report.bypass().unwrap().expect("wait-free => bounded");
    assert!(bypass <= 7, "{bypass}");
}
