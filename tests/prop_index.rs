//! Property tests for the two new storage structures of the packed
//! visited set:
//!
//! * [`OpenIndex`] against a `HashMap` interning model, over random
//!   insert/probe sequences whose digest functions are deliberately
//!   lossy (forced collisions) and whose lengths cross several growth
//!   boundaries — every probe must intern each distinct value exactly
//!   once and return the id the model predicts;
//! * the CSR edge arena's [`reversed`](cfc::verify::csr::EdgeArena::reversed)
//!   pass against a nested-`Vec` reversal reference on random graphs —
//!   the per-node predecessor *order* must match exactly (ascending
//!   source, then recording order), which is the creator-first guarantee
//!   progress-schedule reconstruction depends on — with the spill tier
//!   both off and forced.

use std::collections::HashMap;

use cfc::verify::csr::{EdgeArena, GEdge};
use cfc::verify::OpenIndex;
use proptest::prelude::*;

/// Interns `values` through an [`OpenIndex`] (digesting with `digest`)
/// and through a `HashMap` model side by side, asserting agreement on
/// every probe.
fn check_against_model(values: &[u64], digest: impl Fn(u64) -> u64) {
    let mut index = OpenIndex::new();
    let mut records: Vec<u64> = Vec::new();
    let mut model: HashMap<u64, u32> = HashMap::new();
    for &v in values {
        let found = index.find(digest(v), |id| records[id as usize] == v);
        assert_eq!(
            found,
            model.get(&v).copied(),
            "probe for {v} disagrees with the model (len {})",
            records.len()
        );
        if found.is_none() {
            let id = records.len() as u32;
            records.push(v);
            index.insert(digest(v), id, |x| digest(records[x as usize]));
            model.insert(v, id);
        }
    }
    assert_eq!(index.len(), model.len(), "intern counts diverged");
    // Re-probe everything after all growths settled.
    for (&v, &id) in &model {
        assert_eq!(
            index.find(digest(v), |x| records[x as usize] == v),
            Some(id),
            "value {v} lost after growth"
        );
    }
    // The 7/8 load-factor invariant, byte-accounted.
    assert!(index.len() * 8 <= index.capacity() * 7);
    assert_eq!(index.heap_bytes(), (index.capacity() * 4) as u64);
}

/// Builds an [`EdgeArena`] and the nested-`Vec` reference adjacency
/// from the same (source-sorted) edge list.
fn build_both(
    nodes: usize,
    sorted: &[(usize, GEdge)],
    budget: Option<usize>,
) -> (EdgeArena, Vec<Vec<GEdge>>) {
    let mut arena = EdgeArena::new(budget);
    let mut nested: Vec<Vec<GEdge>> = vec![Vec::new(); nodes];
    let mut cursor = 0usize;
    for &(src, e) in sorted {
        while cursor < src {
            arena.seal();
            cursor += 1;
        }
        arena.push(e);
        nested[src].push(e);
    }
    while cursor < nodes {
        arena.seal();
        cursor += 1;
    }
    (arena, nested)
}

/// The reference reversal: push predecessors in ascending source order,
/// then per-source recording order — exactly what the historical
/// `Vec<Vec<u32>>` pass produced.
fn reference_reversed(nodes: usize, nested: &[Vec<GEdge>]) -> Vec<Vec<u32>> {
    let mut rev = vec![Vec::new(); nodes];
    for (src, out) in nested.iter().enumerate() {
        for e in out {
            rev[e.to as usize].push(src as u32);
        }
    }
    rev
}

const NODES: usize = 16;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random values from a small universe, digested by a modulus small
    /// enough to force heavy collisions (`modulus == 1` makes every
    /// digest identical): the open table must still intern by content,
    /// exactly like the HashMap model keyed on the value itself.
    #[test]
    fn open_index_matches_a_hashmap_model(
        values in prop::collection::vec(0u64..400, 0..700),
        modulus in 1u64..32,
    ) {
        check_against_model(&values, |v| v % modulus);
    }

    /// An identity digest (no collisions beyond table-size aliasing) and
    /// value counts straddling the 64→128→256→512 growth boundaries.
    #[test]
    fn open_index_survives_growth_boundaries(extra in 0usize..10, offset in 0u64..1000) {
        // 56 = 64 * 7/8: the first insert that would exceed the load
        // factor triggers the first doubling; +extra walks the boundary.
        let n = 56 + extra;
        let values: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9e37_79b9) + offset).collect();
        check_against_model(&values, |v| v);
    }

    /// Random DAG-shaped-or-not edge lists over a fixed node count: the
    /// CSR arena must round-trip every edge in recording order, and its
    /// counting-sort reversal must equal the nested-Vec reference
    /// element for element — order included — resident or spilled.
    #[test]
    fn csr_reversal_matches_the_nested_vec_reference(
        raw in prop::collection::vec(
            (0usize..NODES, 0u32..NODES as u32, 0u32..8, any::<bool>(), any::<bool>()),
            0..120,
        ),
    ) {
        // The arena's cursor discipline needs edges grouped by ascending
        // source; a stable sort preserves per-source recording order.
        let mut sorted: Vec<(usize, GEdge)> = raw
            .iter()
            .map(|&(src, to, pid, crash, served)| (src, GEdge { to, pid, crash, served }))
            .collect();
        sorted.sort_by_key(|&(src, _)| src);

        for budget in [None, Some(0)] {
            let (arena, nested) = build_both(NODES, &sorted, budget);
            prop_assert_eq!(arena.nodes(), NODES);
            for (v, out) in nested.iter().enumerate() {
                prop_assert_eq!(arena.degree(v), out.len());
                let decoded: Vec<GEdge> = arena.edges(v).collect();
                prop_assert_eq!(&decoded, out, "node {} round-trip (budget {:?})", v, budget);
            }
            let rev = arena.reversed(NODES);
            let reference = reference_reversed(NODES, &nested);
            for (v, preds) in reference.iter().enumerate() {
                prop_assert_eq!(
                    rev.preds(v),
                    preds.as_slice(),
                    "node {} predecessor order (budget {:?})",
                    v,
                    budget
                );
            }
        }
    }
}
