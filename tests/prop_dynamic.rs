//! Property wall for the dynamic-reduction substrate: the vector-clock
//! laws and the observed-conflict relation that sleep-set pruning
//! (`MayAccessMode::Dynamic`) is built on.
//!
//! Three families of claims, each driven by random interleavings of the
//! real algorithm processes:
//!
//! * **semilattice laws** — `join` is commutative, associative, and
//!   idempotent with the zero clock as unit, and both arguments are
//!   `leq` their join (pure clock algebra, no trace needed);
//! * **trace laws** — along any executed schedule, clocks grow strictly
//!   in program order, every recorded conflict edge is a
//!   happens-before edge, and the clock order *equals* the transitive
//!   closure of program order ∪ observed-conflict order — no more, no
//!   less. That equality is what justifies reading `leq` as "cannot be
//!   reordered" inside the sleep machinery;
//! * **footprint containment** — every register two events race on is
//!   inside the automaton future set of *both* stepping processes at
//!   the moment they stepped. Observed conflicts are a refinement of
//!   the static oracle, never an escape from it — the containment that
//!   makes falling back to the automaton mode sound.
//!
//! Extraction is deterministic, so each family's future index is built
//! once (`OnceLock`) and only the walks are sampled, exactly like
//! `tests/prop_analysis.rs`.

use std::sync::OnceLock;

use cfc::core::{
    Layout, Memory, OpResult, Process, ProcessId, RegisterSet, Status, Step, VectorClock,
};
use cfc::mutex::{Bakery, BakeryLock, MutexAlgorithm, MutexClient, PetersonTwo};
use cfc::naming::{NamingAlgorithm, TasScan};
use cfc::verify::{trace_causality, FutureIndex, ScheduleStep, TraceCausality};
use proptest::prelude::*;

/// One family's reusable fixture: the initial system plus its automaton
/// future index.
struct Fixture<P> {
    memory: Memory,
    procs: Vec<P>,
    index: FutureIndex<P>,
}

impl<P: Process + Clone + Eq + std::hash::Hash> Fixture<P> {
    fn new(layout: Layout, memory: Memory, procs: Vec<P>) -> Self {
        let index = FutureIndex::build(&layout, &procs);
        Fixture { memory, procs, index }
    }

    /// Executes a random walk, returning the schedule of steps that
    /// actually ran and, per event, the stepping process's automaton
    /// future set *before* the step (when the index resolves it).
    fn drive(&self, walk: &[usize]) -> (Vec<ScheduleStep>, Vec<Option<RegisterSet>>) {
        let mut mem = self.memory.clone();
        let mut procs = self.procs.clone();
        let n = procs.len();
        let mut status = vec![Status::Running; n];
        let mut schedule = Vec::new();
        let mut futures = Vec::new();
        for &raw in walk {
            let pid = raw % n;
            if status[pid] != Status::Running {
                continue;
            }
            schedule.push(ScheduleStep::Step(ProcessId::new(pid as u32)));
            futures.push(self.index.future_of(&procs[pid]).cloned());
            match procs[pid].current() {
                Step::Halt => status[pid] = Status::Done,
                Step::Internal => procs[pid].advance(OpResult::None),
                Step::Op(op) => {
                    let result = mem.apply(&op).expect("valid op");
                    procs[pid].advance(result);
                }
            }
        }
        (schedule, futures)
    }

    /// The whole trace wall for one walk (see the module docs).
    fn check_walk(&self, walk: &[usize]) {
        let (schedule, futures) = self.drive(walk);
        let tc = trace_causality(self.memory.clone(), self.procs.clone(), &schedule, None)
            .expect("replay of an executed schedule");
        assert_eq!(
            tc.events.len(),
            futures.len(),
            "the causality replay must execute exactly the driven steps"
        );
        assert_program_order_monotone(&tc);
        assert_conflicts_are_ordered(&tc);
        assert_hb_is_po_union_conflicts(&tc);
        assert_conflicts_inside_future_sets(&tc, &futures);
    }
}

/// Clocks of one process's successive events strictly increase.
fn assert_program_order_monotone(tc: &TraceCausality) {
    let mut last: Vec<Option<usize>> = Vec::new();
    for (i, ev) in tc.events.iter().enumerate() {
        let p = ev.pid.index();
        if p >= last.len() {
            last.resize(p + 1, None);
        }
        if let Some(prev) = last[p] {
            assert!(
                tc.happens_before(prev, i),
                "program order violated: event {prev} !< {i} for {}",
                ev.pid
            );
            assert!(
                tc.events[prev].clock != ev.clock,
                "successive events of {} share a clock",
                ev.pid
            );
        }
        last[p] = Some(i);
    }
}

/// Every recorded conflict edge points forward and is a happens-before
/// edge.
fn assert_conflicts_are_ordered(tc: &TraceCausality) {
    for e in &tc.conflicts {
        assert!(e.from < e.to, "conflict edge must point forward");
        assert!(
            tc.happens_before(e.from, e.to),
            "conflict {} -> {} not reflected in the clocks",
            e.from,
            e.to
        );
        assert!(
            e.registers.iter().next().is_some(),
            "a conflict edge must name at least one register"
        );
    }
}

/// The clock order equals the transitive closure of program order ∪
/// conflict order — happens-before contains nothing else.
fn assert_hb_is_po_union_conflicts(tc: &TraceCausality) {
    let n = tc.events.len();
    let mut succs = vec![Vec::new(); n];
    let mut last: Vec<Option<usize>> = Vec::new();
    for (i, ev) in tc.events.iter().enumerate() {
        let p = ev.pid.index();
        if p >= last.len() {
            last.resize(p + 1, None);
        }
        if let Some(prev) = last[p] {
            succs[prev].push(i);
        }
        last[p] = Some(i);
    }
    for e in &tc.conflicts {
        succs[e.from].push(e.to);
    }
    // Events are in schedule order and every edge points forward, so a
    // reverse sweep computes reachability bottom-up.
    let mut reach = vec![vec![false; n]; n];
    for a in (0..n).rev() {
        for &b in &succs[a] {
            // Edges always point forward (a < b), so row a sits strictly
            // before row b and the split borrows both disjointly.
            let (head, tail) = reach.split_at_mut(b);
            let row_a = &mut head[a];
            row_a[b] = true;
            for (c, &reachable) in tail[0].iter().enumerate() {
                if reachable {
                    row_a[c] = true;
                }
            }
        }
    }
    for (a, row) in reach.iter().enumerate() {
        for (b, &reachable) in row.iter().enumerate() {
            assert_eq!(
                tc.happens_before(a, b),
                reachable,
                "happens-before({a}, {b}) disagrees with po ∪ conflict closure"
            );
        }
    }
}

/// Every raced register is in the automaton future set of both stepping
/// processes at their step — the observed relation refines the static
/// oracle.
fn assert_conflicts_inside_future_sets(tc: &TraceCausality, futures: &[Option<RegisterSet>]) {
    for e in &tc.conflicts {
        for (side, ev) in [("from", e.from), ("to", e.to)] {
            if let Some(future) = &futures[ev] {
                assert!(
                    e.registers.is_subset(future),
                    "conflict {} -> {}: raced registers escape the {side} \
                     event's automaton future set",
                    e.from,
                    e.to
                );
            }
        }
    }
}

fn bakery_fixture() -> &'static Fixture<MutexClient<BakeryLock>> {
    static FIX: OnceLock<Fixture<MutexClient<BakeryLock>>> = OnceLock::new();
    FIX.get_or_init(|| {
        let alg = Bakery::new(3);
        let procs = (0..3)
            .map(|i| alg.client_with_cs(ProcessId::new(i), 1, 1))
            .collect();
        Fixture::new(alg.layout(), alg.memory().unwrap(), procs)
    })
}

fn peterson_fixture() -> &'static Fixture<MutexClient<cfc::mutex::PetersonLock>> {
    static FIX: OnceLock<Fixture<MutexClient<cfc::mutex::PetersonLock>>> = OnceLock::new();
    FIX.get_or_init(|| {
        let alg = PetersonTwo::new();
        let procs = (0..2)
            .map(|i| alg.client_with_cs(ProcessId::new(i), 2, 1))
            .collect();
        Fixture::new(alg.layout(), alg.memory().unwrap(), procs)
    })
}

fn scan_fixture() -> &'static Fixture<cfc::naming::TasScanProc> {
    static FIX: OnceLock<Fixture<cfc::naming::TasScanProc>> = OnceLock::new();
    FIX.get_or_init(|| {
        let alg = TasScan::new(4);
        Fixture::new(alg.layout(), alg.memory().unwrap(), alg.processes())
    })
}

/// Builds a clock from (pid, ticks) pairs — the proptest generator for
/// arbitrary semilattice elements.
fn clock_of(ticks: &[(u32, u8)]) -> VectorClock {
    let mut c = VectorClock::new();
    for &(p, k) in ticks {
        for _ in 0..k {
            c.tick(ProcessId::new(p % 6));
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Join is commutative, associative, idempotent, has the zero clock
    /// as unit, and bounds both arguments from above.
    #[test]
    fn join_is_a_semilattice(
        a in prop::collection::vec((0u32..8, 0u8..5), 0..6),
        b in prop::collection::vec((0u32..8, 0u8..5), 0..6),
        c in prop::collection::vec((0u32..8, 0u8..5), 0..6),
    ) {
        let (a, b, c) = (clock_of(&a), clock_of(&b), clock_of(&c));
        prop_assert_eq!(a.joined(&b), b.joined(&a));
        prop_assert_eq!(a.joined(&b).joined(&c), a.joined(&b.joined(&c)));
        prop_assert_eq!(a.joined(&a), a.clone());
        prop_assert_eq!(a.joined(&VectorClock::new()), a.clone());
        let j = a.joined(&b);
        prop_assert!(a.leq(&j) && b.leq(&j));
    }

    /// Ticking strictly advances a clock and commutes with the order.
    #[test]
    fn tick_strictly_advances(
        base in prop::collection::vec((0u32..8, 0u8..5), 0..6),
        p in 0u32..8,
    ) {
        let before = clock_of(&base);
        let mut after = before.clone();
        after.tick(ProcessId::new(p));
        prop_assert!(before.leq(&after));
        prop_assert!(before != after);
        prop_assert!(!after.leq(&before));
        prop_assert_eq!(after.get(ProcessId::new(p)), before.get(ProcessId::new(p)) + 1);
    }

    /// Bakery clients under random interleavings: ticket races order the
    /// trace, the scan reads stay concurrent where they commute.
    #[test]
    fn bakery_traces_satisfy_the_clock_laws(
        walk in prop::collection::vec(0usize..8, 0..140),
    ) {
        bakery_fixture().check_walk(&walk);
    }

    /// Peterson's lock, multi-trip clients: conflicts re-order across
    /// trips through the same locations.
    #[test]
    fn peterson_traces_satisfy_the_clock_laws(
        walk in prop::collection::vec(0usize..8, 0..140),
    ) {
        peterson_fixture().check_walk(&walk);
    }

    /// The tas-scan naming walk: test-and-set races on a settled prefix.
    #[test]
    fn scan_traces_satisfy_the_clock_laws(
        walk in prop::collection::vec(0usize..8, 0..140),
    ) {
        scan_fixture().check_walk(&walk);
    }
}
