//! E10: the Lemma 2 machinery, end to end. Correct detectors satisfy the
//! lemma's condition on every pair (so the merge cannot be built); the
//! broken constant detector is actually merged into a two-winner run.
//!
//! Everything here is deterministic and time-bounded by construction: the
//! attack schedule is derived from solo profiles (no RNG anywhere), and
//! `merge_attack` carries an internal step guard that turns a
//! non-terminating merged run into `MergeError::Diverged` instead of a
//! hang, so CI cannot flake on this suite.

use cfc::core::{ProcessId, Value};
use cfc::mutex::{BrokenDetector, LamportFast, MutexDetector, Splitter, Tournament};
use cfc::verify::{assert_resists_merge, lemma2_condition, merge_attack, solo_profile};

#[test]
fn splitters_resist_for_all_pairs() {
    assert_resists_merge(&Splitter::new(5)).unwrap();
}

#[test]
fn lamport_detector_resists_for_all_pairs() {
    assert_resists_merge(&MutexDetector::new(LamportFast::new(4))).unwrap();
}

#[test]
fn tournament_detector_resists_for_all_pairs() {
    assert_resists_merge(&MutexDetector::new(Tournament::new(4, 2))).unwrap();
}

#[test]
fn lemma2_condition_fails_only_for_the_broken_detector() {
    let good = Splitter::new(3);
    let p0 = solo_profile(&good, ProcessId::new(0)).unwrap();
    let p1 = solo_profile(&good, ProcessId::new(1)).unwrap();
    assert!(lemma2_condition(&p0, &p1));

    let bad = BrokenDetector::new(3);
    let q0 = solo_profile(&bad, ProcessId::new(0)).unwrap();
    let q1 = solo_profile(&bad, ProcessId::new(1)).unwrap();
    assert!(!lemma2_condition(&q0, &q1));
}

#[test]
fn broken_detector_yields_a_two_winner_run() {
    let witness = merge_attack(&BrokenDetector::new(2), ProcessId::new(0), ProcessId::new(1))
        .unwrap()
        .expect("attack must construct the forbidden run");
    // Both processes halted with output 1 in the merged trace.
    let winners = [ProcessId::new(0), ProcessId::new(1)]
        .iter()
        .filter(|&&p| witness.trace.output_of(p) == Some(Value::ONE))
        .count();
    assert_eq!(winners, 2);
}

#[test]
fn solo_profiles_describe_the_splitter_exactly() {
    let alg = Splitter::new(8);
    let p = solo_profile(&alg, ProcessId::new(5)).unwrap();
    // Writes: x := 5, y := 1. Reads: y then x.
    assert_eq!(p.writes.len(), 2);
    assert_eq!(p.writes[0].1, Value::new(5));
    assert_eq!(p.writes[1].1, Value::ONE);
    assert_eq!(p.reads.len(), 2);
    assert_eq!(p.output, Some(Value::ONE));
}

/// Lemma 2's condition is symmetric in the pair.
#[test]
fn lemma2_condition_is_symmetric() {
    let alg = Splitter::new(4);
    for i in 0..4u32 {
        for j in 0..4u32 {
            if i == j {
                continue;
            }
            let a = solo_profile(&alg, ProcessId::new(i)).unwrap();
            let b = solo_profile(&alg, ProcessId::new(j)).unwrap();
            assert_eq!(lemma2_condition(&a, &b), lemma2_condition(&b, &a));
        }
    }
}
