//! Cross-crate property-based tests: random schedules, random crash
//! plans, random parameters — safety and wait-freedom must hold for every
//! algorithm in the workspace.

use cfc::core::{FaultPlan, ProcessId};
use cfc::mutex::{Bakery, DetectionAlgorithm, Dijkstra, Splitter, SplitterTree, Tournament};
use cfc::naming::{check, TafTree, TasReadSearch, TasScan, TasTarTree};
use cfc::verify::stress_mutex;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Mutual exclusion holds on random schedules for random tournament
    /// shapes.
    #[test]
    fn tournament_safety_random(
        n in 2usize..7,
        l in 1u32..4,
        seed_runs in 1u64..4,
    ) {
        let alg = Tournament::new(n, l);
        let stats = stress_mutex(&alg, 1, seed_runs, 20_000).unwrap();
        prop_assert_eq!(stats.runs, seed_runs);
    }

    /// The classic baselines stay safe on random schedules too.
    #[test]
    fn baseline_mutex_safety_random(n in 2usize..6, runs in 1u64..3) {
        stress_mutex(&Bakery::new(n), 1, runs, 20_000).unwrap();
        stress_mutex(&Dijkstra::new(n), 1, runs, 20_000).unwrap();
    }

    /// Naming uniqueness + wait-freedom budgets hold under random
    /// schedules and random crash plans, for every algorithm.
    #[test]
    fn naming_safety_random(
        n_exp in 1u32..4,
        seed in 0u64..1000,
        crash_victim in 0usize..8,
        crash_at in 0u64..6,
    ) {
        let n = 1usize << n_exp; // 2, 4, 8 (power of two for the trees)
        let faults = if crash_victim < n {
            FaultPlan::new().with_crash(ProcessId::new(crash_victim as u32), crash_at)
        } else {
            FaultPlan::new()
        };
        use rand::SeedableRng;
        let sched = || cfc::core::RandomSched::new(rand::rngs::StdRng::seed_from_u64(seed));

        check::run_checked(&TasScan::new(n), sched(), faults.clone()).unwrap();
        check::run_checked(&TasReadSearch::new(n), sched(), faults.clone()).unwrap();
        check::run_checked(&TafTree::new(n).unwrap(), sched(), faults.clone()).unwrap();
        check::run_checked(&TasTarTree::new(n).unwrap(), sched(), faults).unwrap();
    }

    /// Detection never has two winners on random schedules.
    #[test]
    fn detection_safety_random(
        n in 2usize..8,
        l in 1u32..4,
        seed in 0u64..1000,
    ) {
        use rand::SeedableRng;
        let alg = SplitterTree::new(n, l);
        let procs = (0..n as u32).map(|i| alg.process(ProcessId::new(i))).collect();
        let exec = cfc::core::run_schedule(
            alg.memory().unwrap(),
            procs,
            cfc::core::RandomSched::new(rand::rngs::StdRng::seed_from_u64(seed)),
            FaultPlan::new(),
            cfc::core::ExecConfig::default(),
        )
        .unwrap();
        let winners = exec
            .outputs()
            .into_iter()
            .filter(|o| *o == Some(cfc::core::Value::ONE))
            .count();
        prop_assert!(winners <= 1);
    }

    /// The single-register splitter never has two winners either, and a
    /// solo participant always wins.
    #[test]
    fn splitter_safety_random(n in 1usize..9, seed in 0u64..1000) {
        use rand::SeedableRng;
        let alg = Splitter::new(n);
        let procs = (0..n as u32).map(|i| alg.process(ProcessId::new(i))).collect();
        let exec = cfc::core::run_schedule(
            alg.memory().unwrap(),
            procs,
            cfc::core::RandomSched::new(rand::rngs::StdRng::seed_from_u64(seed)),
            FaultPlan::new(),
            cfc::core::ExecConfig::default(),
        )
        .unwrap();
        let winners = exec
            .outputs()
            .into_iter()
            .filter(|o| *o == Some(cfc::core::Value::ONE))
            .count();
        prop_assert!(winners <= 1);
        if n == 1 {
            prop_assert_eq!(winners, 1);
        }
    }

    /// Contention-free trips are schedule-independent: measuring twice
    /// gives identical profiles (determinism of the measurement pipeline).
    #[test]
    fn contention_free_measurement_is_deterministic(
        n in 2usize..64,
        l in 1u32..6,
        pid in 0usize..8,
    ) {
        let pid = ProcessId::new((pid % n) as u32);
        let alg = Tournament::sparse(n, l, &[pid]);
        let a = cfc::mutex::measure::contention_free_trip(&alg, pid).unwrap();
        let b = cfc::mutex::measure::contention_free_trip(&alg, pid).unwrap();
        prop_assert_eq!(a.total, b.total);
        prop_assert_eq!(a.entry, b.entry);
    }
}
