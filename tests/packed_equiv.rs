//! Differential evidence that the packed arena store
//! (`StoreMode::Packed`, the default) has **byte-identical search
//! semantics** to the boxed reference store (`StoreMode::Boxed`, the
//! pre-arena representation kept as a differential oracle): every count
//! a traversal reports — states, transitions, terminals, POR prunes,
//! orbit merges — must match exactly, across every algorithm family and
//! every reduction variant, with and without the spill tier engaged.
//!
//! Only `arena_bytes` may differ between the two modes: that is the
//! point of the packed store, and the footprint test at the bottom pins
//! the advantage at better than 2x.

mod common;

use cfc::mutex::{Bakery, LamportFast, PetersonTwo, Splitter, Tournament};
use cfc::naming::{TafTree, TasScan};
use cfc::verify::{
    check_detection_safety, check_mutex_progress, check_mutex_safety, check_naming_uniqueness,
    ExploreConfig, ExploreStats, ProgressStats, StoreMode,
};

/// Every count the search semantics determine (everything except the
/// representation-dependent `arena_bytes`/`spilled_buckets`).
fn counts(s: &ExploreStats) -> (usize, u64, usize, u64, u64) {
    (
        s.states,
        s.transitions,
        s.terminals,
        s.states_pruned_por,
        s.orbits_merged,
    )
}

fn progress_counts(s: &ProgressStats) -> (usize, u64, usize, u64, u64) {
    (
        s.states,
        s.transitions,
        s.terminals,
        s.states_pruned_por,
        s.orbits_merged,
    )
}

/// Runs one safety check under both store backends and demands equal
/// counts.
fn assert_safety_equiv<F>(label: &str, run: F)
where
    F: Fn(ExploreConfig) -> ExploreStats,
{
    for (variant, cfg) in common::labeled_variants(200_000) {
        let packed = run(cfg.with_store(StoreMode::Packed));
        let boxed = run(cfg.with_store(StoreMode::Boxed));
        assert_eq!(
            counts(&packed),
            counts(&boxed),
            "{label} [{variant}]: packed and boxed stores disagree"
        );
        assert!(packed.states > 0, "{label} [{variant}]: empty exploration");
    }
}

#[test]
fn packed_and_boxed_agree_on_mutex_safety() {
    assert_safety_equiv("peterson", |cfg| {
        check_mutex_safety(&PetersonTwo::new(), 2, cfg).unwrap()
    });
    assert_safety_equiv("bakery", |cfg| {
        check_mutex_safety(&Bakery::new(2), 1, cfg).unwrap()
    });
    assert_safety_equiv("tournament", |cfg| {
        check_mutex_safety(&Tournament::new(3, 1), 1, cfg).unwrap()
    });
}

#[test]
fn packed_and_boxed_agree_on_naming_and_detection() {
    assert_safety_equiv("tas-scan", |cfg| {
        check_naming_uniqueness(&TasScan::new(3), 1, cfg).unwrap()
    });
    assert_safety_equiv("taf-tree", |cfg| {
        check_naming_uniqueness(&TafTree::new(4).unwrap(), 0, cfg).unwrap()
    });
    assert_safety_equiv("splitter", |cfg| {
        check_detection_safety(&Splitter::new(3), cfg).unwrap()
    });
}

#[test]
fn packed_and_boxed_agree_on_progress_graphs() {
    for (variant, cfg) in common::labeled_variants(60_000) {
        for (label, trips) in [("peterson", 2), ("bakery", 1)] {
            let run = |c: ExploreConfig| match label {
                "peterson" => check_mutex_progress(&PetersonTwo::new(), trips, c).unwrap(),
                _ => check_mutex_progress(&Bakery::new(2), trips, c).unwrap(),
            };
            let packed = run(cfg.with_store(StoreMode::Packed));
            let boxed = run(cfg.with_store(StoreMode::Boxed));
            assert_eq!(
                progress_counts(&packed),
                progress_counts(&boxed),
                "{label} [{variant}]: packed and boxed progress graphs disagree"
            );
        }
    }
}

/// Forcing the spill tier (budget 0: every filled segment goes to disk)
/// must not change a single count — spilled records are read back for
/// the same exact byte comparison — and must actually spill.
#[test]
fn spilling_preserves_counts_and_reports_spilled_segments() {
    let base_cfg = common::por_only(25_000);
    let resident = check_mutex_safety(&LamportFast::new(3), 1, base_cfg).unwrap();
    // Precondition for a meaningful test: the arena must outgrow at
    // least a couple of 64 KiB segments, so that "budget 0" has full
    // segments to evict. If a layout change shrinks the encoding below
    // this, grow the instance rather than weakening the assertion.
    assert!(
        resident.footprint.arena_bytes > 128 * 1024,
        "arena too small to exercise spilling ({} bytes); use a larger instance",
        resident.footprint.arena_bytes
    );
    let spilled = check_mutex_safety(&LamportFast::new(3), 1, base_cfg.with_spill_budget(0)).unwrap();
    assert_eq!(counts(&resident), counts(&spilled), "spilling changed search counts");
    assert!(spilled.footprint.spilled_buckets > 0, "budget 0 spilled nothing");
    assert_eq!(resident.footprint.spilled_buckets, 0, "unbudgeted run must not spill");
}

/// The acceptance bar for the representation itself: on both a
/// fast-path (packing) family and an interned-fallback family, the
/// packed arena holds each state in less than **half** the boxed
/// per-node footprint.
#[test]
fn packed_store_is_at_most_half_the_boxed_footprint() {
    for (label, packed, boxed) in [
        (
            "peterson (packed fast path)",
            check_mutex_safety(&PetersonTwo::new(), 2, common::budget(2_000)).unwrap(),
            check_mutex_safety(
                &PetersonTwo::new(),
                2,
                common::budget(2_000).with_store(StoreMode::Boxed),
            )
            .unwrap(),
        ),
        (
            "tournament (interned fallback)",
            check_mutex_safety(&Tournament::new(3, 1), 1, common::budget(60_000)).unwrap(),
            check_mutex_safety(
                &Tournament::new(3, 1),
                1,
                common::budget(60_000).with_store(StoreMode::Boxed),
            )
            .unwrap(),
        ),
    ] {
        assert_eq!(packed.states, boxed.states, "{label}: state counts diverged");
        assert!(
            packed.footprint.arena_bytes * 2 <= boxed.footprint.arena_bytes,
            "{label}: packed store not less than half the boxed footprint \
             ({} vs {} bytes over {} states)",
            packed.footprint.arena_bytes,
            boxed.footprint.arena_bytes,
            packed.states
        );
    }
}
