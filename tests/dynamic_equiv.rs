//! Differential wall for `MayAccessMode::Dynamic` — sleep sets over
//! observed conflicts plus read/write-split future sets — against the
//! two static oracles (`Declared` hooks and the `Automaton` future
//! sets).
//!
//! The three modes explore **different but equally sound** reduced
//! graphs, which dictates the assertion shape:
//!
//! * without partial-order reduction none of the machinery is
//!   consulted, so every count must match **exactly** across all three
//!   modes;
//! * with POR, verdicts must agree everywhere, and the dynamic mode
//!   never loses reduction power against the *declared* hooks (`dynamic
//!   ≤ declared` states). No pointwise order against the automaton is
//!   asserted: ample-set selection is non-monotone in independence
//!   sharpness — admitting one more ample singleton can reroute the
//!   DFS into a slightly larger reachable reduced graph (Peterson under
//!   plain POR is a live example) — so the automaton comparison is made
//!   only where the sharpening provably wins, on the pins below;
//! * on the two pinned configurations (bakery n=3 and the splitter,
//!   whose declared hooks are location-insensitive) the dynamic mode
//!   must shrink the reduced graph **strictly** below the automaton's,
//!   with a nonzero count of slept transitions to show which mechanism
//!   did it;
//! * violations found by the reduced dynamic explorer must replay under
//!   the un-reduced semantics to a state exhibiting the same violation,
//!   with the identical multiset of violating outputs — `reduced ⊆
//!   full`, established without the checker;
//! * progress and liveness verdicts (starvation-free with exact bypass
//!   bound, or starvable) are mode-invariant even where graph counts
//!   are not (sleep sets are gated off those graph builds; only the
//!   split-future sharpening applies).

mod common;

use cfc::core::{Process, ProcessId, Section};
use cfc::mutex::{
    Bakery, ExitOrder, LamportFast, MutexAlgorithm, PetersonTwo, Splitter, Tournament,
};
use cfc::naming::{NamingAlgorithm, TafTree, TasScan};
use cfc::verify::{
    check_detection_safety, check_mutex_progress, check_mutex_safety, check_mutex_starvation,
    check_naming_lockout, check_naming_progress, check_naming_uniqueness, replay, ExploreConfig,
    ExploreError, ExploreStats, LivenessReport, LivenessVerdict, MayAccessMode, ScheduleStep,
};
use common::{output_multiset, MutatedTasScan};

fn counts(s: &ExploreStats) -> (usize, u64, usize, u64, u64) {
    (
        s.states,
        s.transitions,
        s.terminals,
        s.states_pruned_por,
        s.orbits_merged,
    )
}

fn liveness_verdict(r: &LivenessReport) -> String {
    match &r.verdict {
        LivenessVerdict::StarvationFree { bypass, .. } => format!("free bypass={bypass:?}"),
        LivenessVerdict::Starvable(w) => format!("starvable cycle={}", w.lasso.cycle.len()),
    }
}

fn schedule_of(r: Result<ExploreStats, ExploreError>, what: &str) -> Vec<ScheduleStep> {
    match r {
        Err(ExploreError::Violation(v)) => v.schedule,
        other => panic!("{what}: expected a violation, got {other:?}"),
    }
}

/// Runs one safety check under all three may-access modes across every
/// reduction variant; exact equality without POR, the soundness order
/// `dynamic ≤ automaton ≤ declared` with.
fn assert_three_modes_agree<F>(label: &str, run: F)
where
    F: Fn(ExploreConfig) -> ExploreStats,
{
    for (variant, cfg) in common::labeled_variants(200_000) {
        let declared = run(cfg);
        let automaton = run(cfg.with_may_access(MayAccessMode::Automaton));
        let dynamic = run(cfg.with_may_access(MayAccessMode::Dynamic));
        if cfg.por {
            assert!(
                automaton.states <= declared.states,
                "{label} [{variant}]: automaton visited more states than declared \
                 ({} vs {})",
                automaton.states,
                declared.states
            );
            assert!(
                dynamic.states <= declared.states,
                "{label} [{variant}]: dynamic visited more states than declared \
                 ({} vs {})",
                dynamic.states,
                declared.states
            );
            assert!(dynamic.states > 0, "{label} [{variant}]: empty exploration");
            // The same terminal set must be certified: terminal counting
            // is gated on first visits, so a sleep-set re-expansion can
            // never double-count a quiescent state.
            assert!(
                dynamic.terminals <= declared.terminals,
                "{label} [{variant}]: dynamic certified more terminals than the oracle"
            );
        } else {
            assert_eq!(
                counts(&dynamic),
                counts(&declared),
                "{label} [{variant}]: dynamic mode must be inert without POR"
            );
            assert_eq!(
                counts(&dynamic),
                counts(&automaton),
                "{label} [{variant}]: the static modes must also be inert"
            );
            assert_eq!(
                dynamic.transitions_slept, 0,
                "{label} [{variant}]: sleeping without POR"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Six safe families × every reduction variant × all three modes.
// ---------------------------------------------------------------------

#[test]
fn three_modes_agree_on_mutex_safety() {
    assert_three_modes_agree("peterson", |cfg| {
        check_mutex_safety(&PetersonTwo::new(), 2, cfg).unwrap()
    });
    assert_three_modes_agree("bakery", |cfg| {
        check_mutex_safety(&Bakery::new(2), 1, cfg).unwrap()
    });
    assert_three_modes_agree("tournament", |cfg| {
        check_mutex_safety(&Tournament::new(3, 1), 1, cfg).unwrap()
    });
}

#[test]
fn three_modes_agree_on_naming_and_detection() {
    assert_three_modes_agree("tas-scan", |cfg| {
        check_naming_uniqueness(&TasScan::new(3), 0, cfg).unwrap()
    });
    assert_three_modes_agree("taf-tree", |cfg| {
        check_naming_uniqueness(&TafTree::new(4).unwrap(), 0, cfg).unwrap()
    });
    assert_three_modes_agree("splitter", |cfg| {
        check_detection_safety(&Splitter::new(3), cfg).unwrap()
    });
}

/// Crash branching disables the sleep sets (a crash is an always-enabled
/// transition no sibling branch covers) but keeps the split-future
/// sharpening: the gate must hold the verdicts steady.
#[test]
fn crash_budgets_keep_the_modes_agreeing() {
    assert_three_modes_agree("tas-scan crashes=1", |cfg| {
        check_naming_uniqueness(&TasScan::new(3), 1, cfg).unwrap()
    });
}

// ---------------------------------------------------------------------
// The acceptance pins: strict shrink where the static oracle is
// conservative, and the mechanism visible in the slept counter.
// ---------------------------------------------------------------------

#[test]
fn dynamic_strictly_sharpens_bakery_and_splitter() {
    let strict = [
        ("bakery n=3", {
            let cfg = common::por_only(400_000);
            let run = |c: ExploreConfig| check_mutex_safety(&Bakery::new(3), 1, c).unwrap();
            (
                run(cfg.with_may_access(MayAccessMode::Automaton)),
                run(cfg.with_may_access(MayAccessMode::Dynamic)),
            )
        }),
        ("splitter n=3", {
            let cfg = common::por_only(200_000);
            let run = |c: ExploreConfig| check_detection_safety(&Splitter::new(3), c).unwrap();
            (
                run(cfg.with_may_access(MayAccessMode::Automaton)),
                run(cfg.with_may_access(MayAccessMode::Dynamic)),
            )
        }),
    ];
    for (label, (automaton, dynamic)) in strict {
        assert!(
            dynamic.states < automaton.states,
            "{label}: observed conflicts must strictly shrink the reduced \
             graph ({} vs {} states)",
            dynamic.states,
            automaton.states
        );
        assert!(
            dynamic.transitions_slept > 0,
            "{label}: a strict shrink with zero slept transitions means the \
             counter is broken"
        );
        assert!(
            dynamic.transitions < automaton.transitions,
            "{label}: fewer states but not fewer transitions ({} vs {})",
            dynamic.transitions,
            automaton.transitions
        );
    }
}

// ---------------------------------------------------------------------
// Violating configurations: reduced ⊆ full, established by replay.
// ---------------------------------------------------------------------

/// A mutex violation found by the dynamic explorer must replay under the
/// un-reduced interleaving semantics to a state with two occupants.
#[test]
fn dynamic_violation_replays_to_two_in_critical() {
    let alg = Tournament::new(4, 1).with_exit_order(ExitOrder::LeafToRoot);
    for (label, cfg) in [
        ("por", common::por_only(200_000)),
        ("por+sym", common::reduced(200_000)),
    ] {
        let red = check_mutex_safety(&alg, 1, cfg.with_may_access(MayAccessMode::Dynamic));
        let schedule = schedule_of(red, "tournament leaf-to-root");
        let clients: Vec<_> = (0..4)
            .map(|i| alg.client_with_cs(ProcessId::new(i), 1, 1))
            .collect();
        let replayed = replay(alg.memory().unwrap(), clients, &schedule).unwrap();
        let in_cs = replayed
            .procs
            .iter()
            .filter(|c| c.section() == Some(Section::Critical))
            .count();
        assert!(
            in_cs >= 2,
            "{label}: replayed state has {in_cs} processes in the critical section"
        );
    }
}

/// A naming violation found by any mode must replay to the same
/// duplicate name — the violating-output multiset is mode-invariant.
#[test]
fn violating_output_multisets_agree_across_modes() {
    for seed in 0..3u64 {
        let alg = MutatedTasScan::new(4, seed);
        let base = check_naming_uniqueness(&alg, 0, common::budget(100_000));
        let base_schedule = schedule_of(base, "mutated-tas-scan baseline");
        let base_replay = replay(alg.memory().unwrap(), alg.processes(), &base_schedule).unwrap();
        let base_outputs = output_multiset(&base_replay.procs);
        assert!(
            base_outputs.values().any(|&c| c >= 2),
            "seed {seed}: baseline violation has no duplicate name ({base_outputs:?})"
        );
        for (variant, cfg) in [
            ("por", common::por_only(100_000)),
            ("por+sym", common::reduced(100_000)),
        ] {
            for (mode_name, mode) in [
                ("declared", MayAccessMode::Declared),
                ("automaton", MayAccessMode::Automaton),
                ("dynamic", MayAccessMode::Dynamic),
            ] {
                let red = check_naming_uniqueness(&alg, 0, cfg.with_may_access(mode));
                let schedule = schedule_of(red, "mutated-tas-scan reduced");
                let replayed =
                    replay(alg.memory().unwrap(), alg.processes(), &schedule).unwrap();
                let outputs = output_multiset(&replayed.procs);
                assert_eq!(
                    base_outputs, outputs,
                    "seed {seed}, {variant}/{mode_name}: violating-output multiset differs"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Progress and liveness: deeper consumers, verdict-invariant.
// ---------------------------------------------------------------------

#[test]
fn three_modes_agree_on_progress_graphs() {
    for (variant, cfg) in common::labeled_variants(60_000) {
        for label in ["peterson", "bakery", "tas-scan"] {
            let run = |c: ExploreConfig| match label {
                "peterson" => check_mutex_progress(&PetersonTwo::new(), 2, c).unwrap(),
                "bakery" => check_mutex_progress(&Bakery::new(2), 1, c).unwrap(),
                _ => check_naming_progress(&TasScan::new(3), 1, c).unwrap(),
            };
            let declared = run(cfg);
            let dynamic = run(cfg.with_may_access(MayAccessMode::Dynamic));
            if cfg.por {
                assert!(
                    dynamic.states <= declared.states,
                    "{label} [{variant}]: dynamic progress graph grew ({} vs {})",
                    dynamic.states,
                    declared.states
                );
            } else {
                assert_eq!(
                    (declared.states, declared.transitions, declared.terminals),
                    (dynamic.states, dynamic.transitions, dynamic.terminals),
                    "{label} [{variant}]: dynamic mode must be inert without POR"
                );
            }
        }
    }
}

#[test]
fn three_modes_agree_on_liveness_verdicts() {
    for (variant, cfg) in common::labeled_variants(60_000) {
        for label in ["peterson", "lamport", "taf-tree"] {
            let run = |c: ExploreConfig| match label {
                "peterson" => check_mutex_starvation(&PetersonTwo::new(), c).unwrap(),
                "lamport" => check_mutex_starvation(&LamportFast::new(2), c).unwrap(),
                _ => check_naming_lockout(&TafTree::new(4).unwrap(), 0, c).unwrap(),
            };
            let declared = run(cfg);
            let automaton = run(cfg.with_may_access(MayAccessMode::Automaton));
            let dynamic = run(cfg.with_may_access(MayAccessMode::Dynamic));
            let expected = liveness_verdict(&declared);
            assert_eq!(
                expected,
                liveness_verdict(&automaton),
                "{label} [{variant}]: automaton liveness verdict diverged"
            );
            assert_eq!(
                expected,
                liveness_verdict(&dynamic),
                "{label} [{variant}]: dynamic liveness verdict diverged"
            );
        }
    }
}

// ---------------------------------------------------------------------
// The scale pin, mirroring `exhaustive_tournament_seven_automaton`.
// ---------------------------------------------------------------------

/// The seven-player single-bit tournament, as a budget differential:
/// the automaton-reduced graph holds ~74.9M states (measured by
/// `exhaustive_tournament_seven_automaton` at its 80M budget), so under
/// a 20M-state budget the static mode must provably exhaust — while the
/// dynamic mode completes the whole verdict inside it (~12.8M states,
/// ~18.6M transitions, ~45M slept; a 5.9× state / 19× transition
/// shrink). Asserting the pair (static exhausts, dynamic finishes)
/// witnesses the dominance at scale without paying for the ~40-minute
/// full static run a second time.
#[test]
#[ignore = "large dynamic differential; run via cargo test --release -- --ignored"]
fn exhaustive_tournament_seven_dynamic() {
    let alg = Tournament::new(7, 1);
    let cfg = common::por_only(20_000_000);
    match check_mutex_safety(&alg, 1, cfg.with_may_access(MayAccessMode::Automaton)) {
        // The payload is the state count at the moment it crossed the
        // budget, i.e. one past the configured maximum.
        Err(ExploreError::StateBudget(n)) => assert!(n > 20_000_000, "exhausted early: {n}"),
        Ok(stats) => panic!(
            "automaton mode finished tournament-7 in {} states — the budget \
             differential no longer separates the modes; re-measure and retune",
            stats.states
        ),
        Err(e) => panic!("automaton mode failed for the wrong reason: {e}"),
    }
    let dynamic =
        check_mutex_safety(&alg, 1, cfg.with_may_access(MayAccessMode::Dynamic)).unwrap();
    assert!(
        dynamic.states > 10_000_000,
        "unexpectedly small dynamic exploration ({} states)",
        dynamic.states
    );
    assert!(
        dynamic.states < 15_000_000,
        "dynamic mode lost reduction power at scale ({} states)",
        dynamic.states
    );
    assert!(
        dynamic.transitions_slept > 1_000_000,
        "sleep sets barely engaged across the tournament graph ({} slept)",
        dynamic.transitions_slept
    );
}
