//! Property tests for the solo control-automaton analysis:
//!
//! * **determinism** — extracting the automaton twice from the same
//!   initial process yields structurally identical results (same
//!   locations, footprints, futures, congruence record), so the lint
//!   and the `FutureIndex` are reproducible;
//! * **future-set soundness along concurrent walks** — the automaton is
//!   extracted from *solo* havoc executions, but its future-access sets
//!   claim to bound every continuation inside a concurrent run. Driving
//!   random interleavings of real systems and checking every executed
//!   step's footprint against the stepping process's current future set
//!   tests exactly that claim (it is what `MayAccessMode::Automaton`
//!   feeds to ample-set selection).
//!
//! The extraction itself is deterministic and walk-independent, so each
//! family's index is built **once** (`OnceLock`) and only the walks are
//! sampled — havoc enumeration over 16-bit ticket reads is far too
//! expensive to repeat per proptest case.

mod common;

use std::sync::OnceLock;

use cfc::core::{Footprint, Layout, Memory, OpResult, Process, ProcessId, Status, Step};
use cfc::mutex::{
    Bakery, BakeryLock, DetectionAlgorithm, MutexAlgorithm, MutexClient, PetersonTwo, Splitter,
    SplitterProc, Tournament,
};
use cfc::naming::{NamingAlgorithm, TasScan};
use cfc::verify::{ControlAutomaton, FutureIndex};
use proptest::prelude::*;

/// One family's reusable fixture: layout, fresh-memory template,
/// initial processes, and the automaton future index over them.
struct Fixture<P> {
    layout: Layout,
    memory: Memory,
    procs: Vec<P>,
    index: FutureIndex<P>,
}

impl<P: Process + Clone + Eq + std::hash::Hash> Fixture<P> {
    fn new(layout: Layout, memory: Memory, procs: Vec<P>) -> Self {
        let index = FutureIndex::build(&layout, &procs);
        for (i, p) in procs.iter().enumerate() {
            assert!(
                index.future_of(p).is_some(),
                "process {i}: initial state must resolve in the future index"
            );
        }
        Fixture { layout, memory, procs, index }
    }

    /// Drives a random interleaving, asserting before every operation
    /// that the stepping process's footprint is inside its automaton
    /// future set (whenever the index resolves the local state at all).
    fn check_walk(&self, walk: &[usize]) {
        let mut mem = self.memory.clone();
        let mut procs = self.procs.clone();
        let n = procs.len();
        let mut status = vec![Status::Running; n];
        for &raw in walk {
            let pid = raw % n;
            if status[pid] != Status::Running {
                continue;
            }
            match procs[pid].current() {
                Step::Halt => status[pid] = Status::Done,
                Step::Internal => procs[pid].advance(OpResult::None),
                Step::Op(op) => {
                    if let Some(future) = self.index.future_of(&procs[pid]) {
                        let fp = Footprint::of_op(&op, &self.layout);
                        assert!(
                            fp.reads.is_subset(future) && fp.writes.is_subset(future),
                            "process {pid}: executed step {op} escapes its automaton \
                             future set"
                        );
                    }
                    let result = mem.apply(&op).expect("valid op");
                    procs[pid].advance(result);
                }
            }
        }
    }
}

fn bakery_fixture() -> &'static Fixture<MutexClient<BakeryLock>> {
    static FIX: OnceLock<Fixture<MutexClient<BakeryLock>>> = OnceLock::new();
    FIX.get_or_init(|| {
        let alg = Bakery::new(3);
        let procs = (0..3)
            .map(|i| alg.client_with_cs(ProcessId::new(i), 1, 1))
            .collect();
        Fixture::new(alg.layout(), alg.memory().unwrap(), procs)
    })
}

fn peterson_fixture() -> &'static Fixture<MutexClient<cfc::mutex::PetersonLock>> {
    static FIX: OnceLock<Fixture<MutexClient<cfc::mutex::PetersonLock>>> = OnceLock::new();
    FIX.get_or_init(|| {
        let alg = PetersonTwo::new();
        let procs = (0..2)
            .map(|i| alg.client_with_cs(ProcessId::new(i), 2, 1))
            .collect();
        Fixture::new(alg.layout(), alg.memory().unwrap(), procs)
    })
}

fn tournament_fixture() -> &'static Fixture<MutexClient<cfc::mutex::TournamentLock>> {
    static FIX: OnceLock<Fixture<MutexClient<cfc::mutex::TournamentLock>>> = OnceLock::new();
    FIX.get_or_init(|| {
        let alg = Tournament::new(3, 1);
        let procs = (0..3)
            .map(|i| alg.client_with_cs(ProcessId::new(i), 1, 1))
            .collect();
        Fixture::new(alg.layout(), alg.memory().unwrap(), procs)
    })
}

fn scan_fixture() -> &'static Fixture<cfc::naming::TasScanProc> {
    static FIX: OnceLock<Fixture<cfc::naming::TasScanProc>> = OnceLock::new();
    FIX.get_or_init(|| {
        let alg = TasScan::new(4);
        Fixture::new(alg.layout(), alg.memory().unwrap(), alg.processes())
    })
}

fn splitter_fixture() -> &'static Fixture<SplitterProc> {
    static FIX: OnceLock<Fixture<SplitterProc>> = OnceLock::new();
    FIX.get_or_init(|| {
        let alg = Splitter::new(3);
        let procs = (0..3).map(|i| alg.process(ProcessId::new(i))).collect();
        Fixture::new(alg.layout(), alg.memory().unwrap(), procs)
    })
}

/// Same initial state, same automaton — twice, structurally equal. A
/// plain test: determinism needs representative inputs, not sampling.
#[test]
fn extraction_is_deterministic() {
    let bakery = Bakery::new(3);
    let layout = bakery.layout();
    for (pid, trips) in [(0u32, 1u32), (2, 1), (1, 2)] {
        let client = bakery.client_with_cs(ProcessId::new(pid), trips, 1);
        let a = ControlAutomaton::extract(&layout, &client).expect("bakery extracts");
        let b = ControlAutomaton::extract(&layout, &client).expect("bakery extracts");
        assert_eq!(a, b, "bakery pid={pid} trips={trips}");
    }

    let scan = TasScan::new(4);
    let a = ControlAutomaton::extract(&scan.layout(), &scan.process()).expect("scan extracts");
    let b = ControlAutomaton::extract(&scan.layout(), &scan.process()).expect("scan extracts");
    assert_eq!(a, b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bakery clients under random interleavings: the scan indices, the
    /// ticket writes, the exit reset — every executed footprint stays
    /// inside the location-keyed future sets.
    #[test]
    fn bakery_walks_stay_inside_future_sets(walk in prop::collection::vec(0usize..8, 0..240)) {
        bakery_fixture().check_walk(&walk);
    }

    /// Peterson's lock, multi-trip clients (location keys re-entered
    /// across trips).
    #[test]
    fn peterson_walks_stay_inside_future_sets(walk in prop::collection::vec(0usize..8, 0..240)) {
        peterson_fixture().check_walk(&walk);
    }

    /// The tournament exercises the full-state fallback: no `location`
    /// hook, every lock state resolved through the by-state map.
    #[test]
    fn tournament_walks_stay_inside_future_sets(walk in prop::collection::vec(0usize..8, 0..240)) {
        tournament_fixture().check_walk(&walk);
    }

    /// Naming and detection processes: identical-program location keys
    /// (tas-scan) and the pc-keyed flat splitter.
    #[test]
    fn naming_and_detection_walks_stay_inside_future_sets(
        walk in prop::collection::vec(0usize..8, 0..200),
    ) {
        scan_fixture().check_walk(&walk);
        splitter_fixture().check_walk(&walk);
    }
}
