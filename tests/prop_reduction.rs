//! Property tests for symmetry canonicalization: the canonical state key
//! of a symmetric algorithm is invariant under any permutation of the
//! process vector, and exploring from a permuted state visits exactly as
//! many canonical states — the algebraic core of the symmetry-reduced
//! explorer, sampled over random execution prefixes and random
//! permutations.

mod common;

use cfc::core::{Memory, OpResult, Process, Status, Step};
use cfc::naming::{NamingAlgorithm, TafTree, TasScan};
use cfc::verify::{canonical_key, explore_sym};
use proptest::prelude::*;

/// Advances process `pid` by one step against `mem`, mirroring the
/// explorer's transition relation.
fn drive<P: Process>(mem: &mut Memory, procs: &mut [P], status: &mut [Status], pid: usize) {
    if status[pid] != Status::Running {
        return;
    }
    match procs[pid].current() {
        Step::Halt => status[pid] = Status::Done,
        Step::Internal => procs[pid].advance(OpResult::None),
        Step::Op(op) => {
            let result = mem.apply(&op).expect("valid op");
            procs[pid].advance(result);
        }
    }
}

/// The `k`-th permutation of `0..n` in the factorial number system.
fn nth_permutation(n: usize, mut k: u64) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..n).collect();
    let mut out = Vec::with_capacity(n);
    for i in (1..=n).rev() {
        let f: u64 = (1..i as u64).product();
        let idx = (k / f) as usize % i;
        k %= f.max(1);
        out.push(pool.remove(idx));
    }
    out
}

fn permuted<T: Clone>(xs: &[T], perm: &[usize]) -> Vec<T> {
    perm.iter().map(|&i| xs[i].clone()).collect()
}

/// Runs the invariance check for one algorithm: drive a random prefix,
/// permute the processes, compare canonical keys and reduced state
/// counts.
fn check_invariance<A>(alg: &A, prefix: &[usize], perm_seed: u64)
where
    A: NamingAlgorithm,
    A::Proc: Clone + Eq + std::hash::Hash,
{
    let n = alg.n();
    let mut mem = alg.memory().expect("memory");
    let mut procs = alg.processes();
    let mut status = vec![Status::Running; n];
    for &p in prefix {
        drive(&mut mem, &mut procs, &mut status, p % n);
    }

    let group = alg.symmetry();
    assert_eq!(group.classes().len(), 1, "naming declares the full group");
    let key = canonical_key(&procs, &status, &mem, &group);

    let perm = nth_permutation(n, perm_seed);
    let procs_p = permuted(&procs, &perm);
    let status_p = permuted(&status, &perm);

    // 1. The canonical key is permutation-invariant.
    assert_eq!(key, canonical_key(&procs_p, &status_p, &mem, &group));

    // 2. Exploring the remainder from the permuted state visits exactly
    //    as many canonical states and terminals. Symmetry-only: with
    //    partial-order reduction the *ample choice* follows index order,
    //    so a permuted start may pick a different (equally sound) ample
    //    subgraph and the counts need not match exactly — verdict
    //    equivalence under POR is covered by `tests/reduction_equiv.rs`.
    let cfg = common::sym_only(200_000);
    let s0 = explore_sym(mem.clone(), procs, &group, cfg, |_| Ok(()), |_| Ok(())).unwrap();
    let s1 = explore_sym(mem, procs_p, &group, cfg, |_| Ok(()), |_| Ok(())).unwrap();
    assert_eq!(s0.states, s1.states);
    assert_eq!(s0.terminals, s1.terminals);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Permuting the initial (or any reachable) process order of the
    /// test-and-flip tree leaves canonical keys and reduced exploration
    /// statistics unchanged.
    #[test]
    fn taf_tree_canonicalization_is_permutation_invariant(
        prefix in prop::collection::vec(0usize..4, 0..14),
        perm_seed in 0u64..24,
    ) {
        check_invariance(&TafTree::new(4).unwrap(), &prefix, perm_seed);
    }

    /// Same for the linear test-and-set scan (a different local-state
    /// shape: scan positions instead of tree nodes).
    #[test]
    fn tas_scan_canonicalization_is_permutation_invariant(
        prefix in prop::collection::vec(0usize..3, 0..10),
        perm_seed in 0u64..6,
    ) {
        check_invariance(&TasScan::new(3), &prefix, perm_seed);
    }
}

/// A directed (non-sampled) witness that distinct states do produce
/// distinct keys: canonical hashing is not constant.
#[test]
fn canonical_key_distinguishes_genuinely_different_states() {
    let alg = TafTree::new(4).unwrap();
    let group = alg.symmetry();
    let mut mem = alg.memory().unwrap();
    let mut procs = alg.processes();
    let mut status = vec![Status::Running; 4];
    let k_init = canonical_key(&procs, &status, &mem, &group);
    drive(&mut mem, &mut procs, &mut status, 0);
    let k_stepped = canonical_key(&procs, &status, &mem, &group);
    assert_ne!(k_init, k_stepped);
}
