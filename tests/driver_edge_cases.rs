//! Edge-case coverage for the unified traversal driver, at the public
//! checker surface: degenerate process counts, trivial stabilizer
//! groups, the normalizer/POR interaction, and crash-budget boundaries —
//! the corners where three formerly separate search loops used to be
//! able to disagree.

mod common;

use cfc::core::{Process, ProcessId, Status};
use cfc::mutex::{Bakery, MutexAlgorithm, PetersonTwo, TasSpin};
use cfc::naming::TasScan;
use cfc::verify::{
    check_mutex_progress, check_mutex_starvation, check_naming_lockout, check_naming_progress,
    check_naming_uniqueness, replay, validate_bypass, ExploreError, LivenessSpec, ScheduleStep,
};
use common::{budget, labeled_variants, por_only};

/// n = 1: a lone cycling client can never be overtaken or starved. Every
/// reduction variant must agree on bound 0 — and since a solo spinner's
/// entry always succeeds on its first step, **no** reachable state has
/// it pending-and-engaged, so the zero bound legitimately carries no
/// witness (the documented absent case).
#[test]
fn single_process_victim_is_trivially_starvation_free() {
    let alg = TasSpin::new(1);
    for (label, config) in labeled_variants(1_000) {
        let report = check_mutex_starvation(&alg, config).unwrap();
        assert!(report.is_starvation_free(), "{label}");
        assert_eq!(report.bypass(), Some(Some(0)), "{label}");
        assert!(
            report.bypass_witness().is_none(),
            "{label}: a never-engaged waiter has no overtaking state to witness"
        );
    }
    // A solo *bakery* customer, by contrast, is pending-and-engaged all
    // through its doorway scan: bound 0 **with** a validating witness.
    let alg = Bakery::new(1);
    for (label, config) in labeled_variants(2_000) {
        let report = check_mutex_starvation(&alg, config).unwrap();
        assert_eq!(report.bypass(), Some(Some(0)), "{label}");
        let witness = report
            .bypass_witness()
            .unwrap_or_else(|| panic!("{label}: engaged solo customer must be witnessed"));
        assert_eq!(witness.bypass, 0, "{label}");
        let spec = LivenessSpec {
            pending: &|c: &cfc::mutex::MutexClient<_>| {
                c.section() == Some(cfc::core::Section::Entry)
            },
            engaged: &|c: &cfc::mutex::MutexClient<_>| c.engaged(),
            served: &|b: &cfc::mutex::MutexClient<_>, a: &cfc::mutex::MutexClient<_>| {
                b.section() != Some(cfc::core::Section::Critical)
                    && a.section() == Some(cfc::core::Section::Critical)
            },
            normalize: None,
        };
        let clients = vec![alg.client_cycling(ProcessId::new(0), 1)];
        validate_bypass(&alg.memory().unwrap(), &clients, witness, &spec)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
    }
}

/// Interchangeable walkers collapse to one representative victim under
/// symmetry (its stabilizer pins the victim, the peers merge), while the
/// baseline checks every process — same verdict, same bound.
#[test]
fn stabilizer_quotient_checks_one_victim_per_class() {
    let alg = TasScan::new(2);
    let base = check_naming_lockout(&alg, 0, budget(50_000)).unwrap();
    let sym = check_naming_lockout(
        &alg,
        0,
        cfc::verify::ExploreConfig {
            symmetry: true,
            ..budget(50_000)
        },
    )
    .unwrap();
    assert!(base.is_starvation_free() && sym.is_starvation_free());
    assert_eq!(base.bypass(), sym.bypass());
    assert_eq!(base.stats.victims, 2);
    // One two-member class: a single representative, whose stabilizer
    // within the pair is trivial — the quotient degenerates soundly.
    assert_eq!(sym.stats.victims, 1);
}

/// Identity-embedding locks refine into singleton classes: the
/// stabilizer shortcut must *not* collapse their victims (a one-sided
/// starvation bug would hide in the unchecked slot).
#[test]
fn identity_embedding_locks_keep_per_process_victims() {
    for (label, config) in labeled_variants(20_000) {
        let report = check_mutex_starvation(&PetersonTwo::new(), config).unwrap();
        assert_eq!(report.stats.victims, 2, "{label}");
    }
}

/// Normalizer + POR: the bakery's ticket quotient disables ample-set
/// pruning (the bookkeeping cannot see through the abstraction). The
/// stats must show zero POR pruning even when the config requests it —
/// this is the documented auto-disable, asserted.
#[test]
fn bakery_normalizer_suspends_por() {
    let report = check_mutex_starvation(&Bakery::new(2), por_only(40_000)).unwrap();
    assert!(report.is_starvation_free());
    assert_eq!(
        report.stats.states_pruned_por, 0,
        "POR must be force-disabled while the ticket normalizer is active"
    );
    // A normalizer-free system under the same config does prune in the
    // liveness-safe ample mode (naming walkers on disjoint suffixes).
    let report = check_naming_lockout(&TasScan::new(3), 0, por_only(60_000)).unwrap();
    assert!(
        report.stats.states_pruned_por > 0,
        "contrast config must actually prune: {:?}",
        report.stats
    );
}

/// Zero crash budget vs. pending crash branching: the same system, same
/// budget, differing only in `max_crashes` — crash-free verification
/// must succeed with strictly fewer transitions, and the crashy graph's
/// violations (if any) must spend the budget.
#[test]
fn crash_budget_boundaries() {
    let alg = TasScan::new(2);
    let crash_free = check_naming_uniqueness(&alg, 0, budget(100_000)).unwrap();
    let crashy = check_naming_uniqueness(&alg, 1, budget(100_000)).unwrap();
    assert!(
        crashy.transitions > crash_free.transitions,
        "crash branching must add transitions: {crashy:?} vs {crash_free:?}"
    );
    assert!(crashy.states > crash_free.states);

    // Progress with a crash budget: crashed walkers count as quiesced,
    // so the wait-free scan still verifies, and the graph still grows.
    let p0 = check_naming_progress(&alg, 0, budget(100_000)).unwrap();
    let p1 = check_naming_progress(&alg, 1, budget(100_000)).unwrap();
    assert!(p1.states > p0.states);

    // Lockout freedom under crashes: verdict unchanged, witness intact.
    let report = check_naming_lockout(&alg, 1, budget(100_000)).unwrap();
    assert!(report.is_starvation_free());
    assert!(report.bypass_witness().is_some());
}

/// Progress violations found through the shared driver still replay: a
/// single stuck configuration reached through the rewritten BFS carries
/// a concrete schedule (regression guard for the predecessor-tree
/// plumbing through `BuiltGraph::first_pred`).
#[test]
fn progress_violation_schedules_replay_through_the_shared_driver() {
    use cfc::mutex::mutation::PetersonMutation;
    let mutant = PetersonTwo::new().with_mutation(PetersonMutation::ExitWrongFlag);
    let err = check_mutex_progress(&mutant, 2, budget(100_000)).unwrap_err();
    let ExploreError::Violation(v) = err else {
        panic!("expected a progress violation");
    };
    let clients: Vec<_> = (0..2)
        .map(|i| mutant.client(ProcessId::new(i), 2))
        .collect();
    let replayed = replay(mutant.memory().unwrap(), clients, &v.schedule).unwrap();
    assert!(replayed.status.contains(&Status::Running));
    assert!(
        v.schedule
            .iter()
            .all(|s| matches!(s, ScheduleStep::Step(_))),
        "no crash budget, no crash steps"
    );
}
