//! Differential tests for the telemetry layer (`cfc-verify::telemetry`).
//!
//! Three guarantees are pinned here, each of which the observability
//! layer must uphold to be trustworthy:
//!
//! 1. **Exactness** — the final `Snapshot` of a driver's phase span,
//!    reconstructed purely from the event stream, equals the stats
//!    struct the driver returned, field for field, under an injected
//!    deterministic clock (including the derived throughput).
//! 2. **Well-formedness** — counters are monotone within every span,
//!    event timestamps never run backwards, and `SpanStart`/`SpanEnd`
//!    events balance like parentheses (strict LIFO nesting), on every
//!    driver including early-return paths.
//! 3. **Passivity** — attaching a recording sink changes *no* verdict
//!    and *no* count: stats are byte-identical (wall time aside) with
//!    and without telemetry, across every family × reduction variant.
//!
//! The JSONL encoding is also round-tripped against the in-memory
//! recorder on a live run: every line parses back to exactly the event
//! the recorder saw.

mod common;

use std::cell::RefCell;
use std::io::Write;
use std::rc::Rc;

use cfc::core::ManualClock;
use cfc::mutex::{Bakery, PetersonTwo, Splitter, Tournament};
use cfc::naming::{TafTree, TasScan};
use cfc::verify::{
    check_detection_safety, check_mutex_progress, check_mutex_safety, check_mutex_starvation,
    check_naming_uniqueness, with_telemetry, JsonlSink, Phase, Recorder, Telemetry,
    TelemetryEvent,
};

use common::labeled_variants;

/// A clonable `Write` target so the `JsonlSink` buffer can be read
/// after the telemetry handle (which owns the sink) is dropped.
#[derive(Clone, Debug, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Asserts strict LIFO span nesting and globally monotone timestamps;
/// returns the number of spans closed.
fn assert_well_formed(events: &[TelemetryEvent]) -> usize {
    let mut stack: Vec<Phase> = Vec::new();
    let mut closed = 0usize;
    let mut last_at = 0u64;
    // Per-phase (states, transitions) watermark, reset at span start:
    // counters must be monotone *within* a span, not across runs.
    let mut watermark: std::collections::HashMap<Phase, (u64, u64)> =
        std::collections::HashMap::new();
    for e in events {
        let at = match e {
            TelemetryEvent::SpanStart { at_ns, .. }
            | TelemetryEvent::SpanEnd { at_ns, .. }
            | TelemetryEvent::Snapshot { at_ns, .. }
            | TelemetryEvent::Spill { at_ns, .. }
            | TelemetryEvent::IndexGrowth { at_ns, .. } => *at_ns,
        };
        assert!(at >= last_at, "timestamp ran backwards: {e:?}");
        last_at = at;
        match e {
            TelemetryEvent::SpanStart { phase, .. } => {
                stack.push(*phase);
                watermark.insert(*phase, (0, 0));
            }
            TelemetryEvent::SpanEnd {
                phase,
                elapsed_ns,
                states,
                transitions,
                ..
            } => {
                assert_eq!(
                    stack.pop(),
                    Some(*phase),
                    "span end does not match innermost open span"
                );
                let (s, t) = watermark[phase];
                assert!(*states >= s && *transitions >= t, "span end went backwards");
                let _ = elapsed_ns;
                closed += 1;
            }
            TelemetryEvent::Snapshot { phase, snap, .. } => {
                assert!(
                    stack.contains(phase),
                    "snapshot for a phase with no open span: {phase}"
                );
                let w = watermark.get_mut(phase).expect("span started");
                assert!(
                    snap.states >= w.0 && snap.transitions >= w.1,
                    "snapshot counters regressed within a span: {snap:?}"
                );
                *w = (snap.states, snap.transitions);
            }
            TelemetryEvent::Spill { phase, .. } | TelemetryEvent::IndexGrowth { phase, .. } => {
                assert!(stack.contains(phase), "store event outside any span");
            }
        }
    }
    assert!(stack.is_empty(), "unbalanced spans left open: {stack:?}");
    closed
}

/// A telemetry handle with a shared recorder, a deterministic ticking
/// clock, and a small stride (so even tiny runs produce snapshots).
fn recording_telemetry() -> (Telemetry, Recorder) {
    let rec = Recorder::new();
    let tel = Telemetry::new()
        .with_sink(rec.clone())
        .with_clock(Rc::new(ManualClock::with_tick(1_000)))
        .with_stride(16);
    (tel, rec)
}

#[test]
fn final_safety_snapshot_reconstructs_returned_stats() {
    let (tel, rec) = recording_telemetry();
    let stats = with_telemetry(&tel, || {
        check_mutex_safety(&Bakery::new(2), 1, common::reduced(200_000))
    })
    .unwrap();

    let events = rec.events();
    assert_well_formed(&events);
    let snap = events
        .iter()
        .rev()
        .find_map(|e| match e {
            TelemetryEvent::Snapshot { phase, snap, .. } if *phase == Phase::SafetyDfs => {
                Some(*snap)
            }
            _ => None,
        })
        .expect("the safety span emits a final snapshot on finish");

    assert_eq!(snap.states, stats.states as u64);
    assert_eq!(snap.transitions, stats.transitions);
    assert_eq!(snap.states_pruned_por, stats.states_pruned_por);
    assert_eq!(snap.orbits_merged, stats.orbits_merged);
    assert_eq!(snap.footprint, stats.footprint);
    assert_eq!(snap.elapsed_ns, stats.wall_ns, "single-read finish time");
    assert_eq!(snap.states_per_sec, stats.states_per_sec());

    // The span-end event carries the same single clock reading.
    let end = events
        .iter()
        .rev()
        .find_map(|e| match e {
            TelemetryEvent::SpanEnd {
                phase,
                elapsed_ns,
                states,
                ..
            } if *phase == Phase::SafetyDfs => Some((*elapsed_ns, *states)),
            _ => None,
        })
        .expect("balanced safety span");
    assert_eq!(end, (stats.wall_ns, stats.states as u64));
}

#[test]
fn final_progress_snapshot_reconstructs_returned_stats() {
    let (tel, rec) = recording_telemetry();
    let stats = with_telemetry(&tel, || {
        check_mutex_progress(&PetersonTwo::new(), 1, common::reduced(100_000))
    })
    .unwrap();

    let events = rec.events();
    assert_well_formed(&events);
    // The whole-check span (graph build + back-propagation) owns the
    // final snapshot and the stats wall time.
    let snap = events
        .iter()
        .rev()
        .find_map(|e| match e {
            TelemetryEvent::Snapshot { phase, snap, .. } if *phase == Phase::ProgressCheck => {
                Some(*snap)
            }
            _ => None,
        })
        .expect("the progress check emits a final snapshot on finish");
    assert_eq!(snap.states, stats.states as u64);
    assert_eq!(snap.transitions, stats.transitions);
    assert_eq!(snap.states_pruned_por, stats.states_pruned_por);
    assert_eq!(snap.orbits_merged, stats.orbits_merged);
    assert_eq!(snap.footprint, stats.footprint);
    assert_eq!(snap.elapsed_ns, stats.wall_ns);
    assert_eq!(snap.states_per_sec, stats.states_per_sec());

    // Interior structure: the BFS build and the back-propagation pass
    // both ran as nested spans of the check.
    for phase in [Phase::ProgressBfs, Phase::BackPropagation] {
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TelemetryEvent::SpanStart { phase: p, .. } if *p == phase)),
            "missing nested {phase} span"
        );
    }
}

#[test]
fn liveness_emits_balanced_scc_and_graph_spans() {
    let (tel, rec) = recording_telemetry();
    let report = with_telemetry(&tel, || {
        check_mutex_starvation(&PetersonTwo::new(), common::reduced(100_000))
    })
    .unwrap();

    let events = rec.events();
    let closed = assert_well_formed(&events);
    assert!(closed >= 3, "expected check + graph + scc spans, got {closed}");
    for phase in [Phase::LivenessCheck, Phase::LivenessGraph, Phase::SccAnalysis] {
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TelemetryEvent::SpanStart { phase: p, .. } if *p == phase)),
            "missing {phase} span"
        );
    }
    let end = events
        .iter()
        .rev()
        .find_map(|e| match e {
            TelemetryEvent::SpanEnd {
                phase, elapsed_ns, ..
            } if *phase == Phase::LivenessCheck => Some(*elapsed_ns),
            _ => None,
        })
        .expect("balanced liveness-check span");
    assert_eq!(end, report.stats.wall_ns);
}

#[test]
fn violation_paths_still_balance_spans() {
    // Lamport's fast path starves: the liveness check returns through
    // the early Starvable exit, and every span must still close (the
    // guard's drop balancing).
    let (tel, rec) = recording_telemetry();
    let report = with_telemetry(&tel, || {
        check_mutex_starvation(&cfc::mutex::LamportFast::new(2), common::reduced(200_000))
    })
    .unwrap();
    assert!(
        matches!(
            report.verdict,
            cfc::verify::LivenessVerdict::Starvable(_)
        ),
        "lamport fast path is the starvable fixture"
    );
    assert_well_formed(&rec.events());
}

#[test]
fn recorder_sink_is_passive_across_families_and_variants() {
    // Every family × every reduction variant: verdicts and all counts
    // are identical with a recording observer attached and without one.
    // (Wall time is excluded — that is what `sans_wall` is for.)
    fn probe(
        label: &str,
        run: impl Fn() -> cfc::verify::ExploreStats,
    ) {
        let bare = run();
        let (tel, rec) = recording_telemetry();
        let observed = with_telemetry(&tel, &run);
        assert!(!rec.is_empty(), "{label}: observer saw no events");
        assert_eq!(
            bare.sans_wall(),
            observed.sans_wall(),
            "{label}: attaching a recorder changed the search"
        );
    }

    for (variant, cfg) in labeled_variants(300_000) {
        probe(&format!("peterson/{variant}"), || {
            check_mutex_safety(&PetersonTwo::new(), 1, cfg).unwrap()
        });
        probe(&format!("bakery/{variant}"), || {
            check_mutex_safety(&Bakery::new(2), 1, cfg).unwrap()
        });
        probe(&format!("tournament/{variant}"), || {
            check_mutex_safety(&Tournament::new(3, 1), 1, cfg).unwrap()
        });
        probe(&format!("splitter/{variant}"), || {
            check_detection_safety(&Splitter::new(3), cfg).unwrap()
        });
        probe(&format!("tas-scan/{variant}"), || {
            check_naming_uniqueness(&TasScan::new(3), 0, cfg).unwrap()
        });
        probe(&format!("taf-tree/{variant}"), || {
            check_naming_uniqueness(&TafTree::new(4).unwrap(), 0, cfg).unwrap()
        });
    }
}

#[test]
fn progress_stats_are_passive_too() {
    for (variant, cfg) in labeled_variants(300_000) {
        let bare = check_mutex_progress(&Tournament::new(3, 1), 1, cfg).unwrap();
        let (tel, _rec) = recording_telemetry();
        let observed =
            with_telemetry(&tel, || check_mutex_progress(&Tournament::new(3, 1), 1, cfg))
                .unwrap();
        assert_eq!(
            bare.sans_wall(),
            observed.sans_wall(),
            "progress/{variant}: attaching a recorder changed the check"
        );
    }
}

#[test]
fn jsonl_stream_round_trips_through_the_recorder() {
    let buf = SharedBuf::default();
    let rec = Recorder::new();
    let tel = Telemetry::new()
        .with_sink(JsonlSink::new(buf.clone()))
        .with_sink(rec.clone())
        .with_clock(Rc::new(ManualClock::with_tick(1_000)))
        .with_stride(16);
    with_telemetry(&tel, || {
        check_mutex_progress(&Bakery::new(2), 1, common::reduced(200_000))
    })
    .unwrap();

    let recorded = rec.events();
    assert!(!recorded.is_empty());
    let bytes = buf.0.borrow().clone();
    let text = String::from_utf8(bytes).expect("jsonl is utf-8");
    let parsed: Vec<TelemetryEvent> = text
        .lines()
        .map(|l| {
            TelemetryEvent::parse_json_line(l)
                .unwrap_or_else(|| panic!("unparseable line: {l}"))
        })
        .collect();
    assert_eq!(parsed, recorded, "jsonl encode/decode must be lossless");
    assert_well_formed(&parsed);
}

#[test]
fn lint_span_is_observed_and_timed() {
    let bakery = Bakery::new(2);
    let procs: Vec<_> = (0..2)
        .map(|i| {
            cfc::mutex::MutexAlgorithm::client_with_cs(
                &bakery,
                cfc::core::ProcessId::new(i),
                1,
                1,
            )
        })
        .collect();
    let (tel, rec) = recording_telemetry();
    let report = with_telemetry(&tel, || {
        cfc::verify::lint_model(&cfc::mutex::MutexAlgorithm::layout(&bakery), &procs)
    });
    assert!(report.is_clean());
    assert!(report.wall_ns > 0, "manual clock ticks per read");
    let events = rec.events();
    assert_well_formed(&events);
    let end = events
        .iter()
        .find_map(|e| match e {
            TelemetryEvent::SpanEnd {
                phase,
                elapsed_ns,
                states,
                ..
            } if *phase == Phase::Lint => Some((*elapsed_ns, *states)),
            _ => None,
        })
        .expect("lint span closes");
    assert_eq!(end, (report.wall_ns, report.locations as u64));
}
