//! Smoke tests for the `examples/` binaries: each example's main path
//! must run to completion and produce output.
//!
//! `cargo test` already compile-checks every example; these tests
//! additionally *execute* them (in release mode, so the spin-lock
//! experiments in `native_locks` finish quickly) through the same `cargo`
//! that is running the tests. Each example asserts its own invariants
//! internally (exact counters, distinct names, expected bound values), so
//! "exits 0" is a meaningful check, not just liveness.

use std::process::Command;

fn run_example(name: &str) {
    let output = Command::new(env!("CARGO"))
        .args(["run", "--quiet", "--release", "--example", name])
        .env_remove("RUSTFLAGS") // keep fingerprints identical to the outer build
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} failed with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(
        !output.stdout.is_empty(),
        "example {name} printed nothing on stdout"
    );
}

#[test]
fn quickstart_runs() {
    run_example("quickstart");
}

#[test]
fn mutex_tournament_runs() {
    run_example("mutex_tournament");
}

#[test]
fn naming_models_runs() {
    run_example("naming_models");
}

#[test]
fn contention_detection_runs() {
    run_example("contention_detection");
}

#[test]
fn impossibility_runs() {
    run_example("impossibility");
}

#[test]
fn native_locks_runs() {
    run_example("native_locks");
}
