//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this workspace has no access to crates.io, so
//! this vendored crate implements the exact subset of the `rand` 0.8 API
//! that the workspace uses: the [`Rng`] / [`RngCore`] / [`SeedableRng`]
//! traits, [`rngs::StdRng`] (a deterministic splitmix64/xoshiro-style
//! generator), and [`thread_rng`]. It is *not* cryptographically secure
//! and makes no attempt at statistical perfection; it only needs to drive
//! randomized schedulers and jittered backoff reproducibly.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`] exactly as in the real crate.
pub trait Rng: RngCore {
    /// Samples a uniform value from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Samples a `bool` that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can seed and construct an RNG.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u128 + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Namespace for concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic 64-bit generator (xoshiro256** seeded via splitmix64).
    ///
    /// Unlike the real `StdRng` this is not a CSPRNG, but it is fast,
    /// reproducible, and adequate for randomized schedules.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Per-thread generator handle returned by [`crate::thread_rng`].
    #[derive(Clone, Debug)]
    pub struct ThreadRng {
        inner: StdRng,
    }

    impl ThreadRng {
        pub(crate) fn fresh() -> Self {
            use std::collections::hash_map::RandomState;
            use std::hash::{BuildHasher, Hash, Hasher};
            // RandomState is randomly keyed per process; hashing the thread
            // id decorrelates threads.
            let mut h = RandomState::new().build_hasher();
            h.write_u64(0xC0FF_EE00_D15E_A5E5);
            std::thread::current().id().hash(&mut h);
            ThreadRng {
                inner: StdRng::seed_from_u64(h.finish()),
            }
        }
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// Returns a generator seeded unpredictably, one per call site use.
///
/// The real crate hands out a thread-local handle; for the jittered
/// backoff in this workspace a freshly seeded generator per call is
/// equivalent (and keeps this stub trivially `unsafe`-free).
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::fresh()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..13);
            assert!(x < 13);
            let y: u64 = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&y));
            let z: i64 = rng.gen_range(-4i64..4);
            assert!((-4..4).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn thread_rng_produces_values() {
        let mut rng = super::thread_rng();
        let base = 8u64;
        for _ in 0..100 {
            let v = rng.gen_range(base / 2 + 1..=base);
            assert!((base / 2 + 1..=base).contains(&v));
        }
    }
}
