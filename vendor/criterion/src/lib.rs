//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the criterion 0.5 API the workspace's bench
//! targets use (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `Bencher::iter_custom`, `BenchmarkId`, `Throughput`, `black_box`).
//!
//! Instead of statistical sampling it runs each benchmark body a small
//! fixed number of iterations and prints the mean wall-clock time per
//! iteration. That keeps `cargo bench` (and the compile-run smoke pass
//! `cargo test --benches` performs) fast and deterministic while the
//! printed tables — the actual paper artifacts — are produced exactly as
//! they would be under real criterion.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How many iterations [`Bencher::iter`] runs per benchmark.
///
/// Override with the `CFC_BENCH_ITERS` environment variable.
fn iters_per_bench() -> u64 {
    std::env::var("CFC_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(3)
}

/// Throughput annotation attached to a group (recorded, not reported).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes, decimal multiple variant kept for API parity.
    BytesDecimal(u64),
}

/// Identifier for one parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("function", parameter)`.
    pub fn new<F: Into<String>, P: Display>(function: F, parameter: P) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// `BenchmarkId::from_parameter(parameter)`.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        if self.function.is_empty() {
            self.parameter.clone()
        } else if self.parameter.is_empty() {
            self.function.clone()
        } else {
            format!("{}/{}", self.function, self.parameter)
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: name.to_owned(),
            parameter: String::new(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: name,
            parameter: String::new(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Hands the iteration count to `routine`, which reports its own time.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        self.elapsed = routine(self.iters);
    }

    /// Times `routine` with a fresh input per iteration.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored by the stub).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small input batches.
    SmallInput,
    /// Large input batches.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API parity; the stub's
    /// iteration count comes from `CFC_BENCH_ITERS`).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted for API parity).
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Sets the warm-up time (accepted for API parity).
    pub fn warm_up_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Records the group's throughput annotation.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        let label = format!("{}/{}", self.name, id.render());
        self.criterion.run_one(&label, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.render());
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts CLI arguments for API parity (the stub ignores them).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut bencher = Bencher {
            iters: iters_per_bench(),
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed.as_nanos() / u128::from(bencher.iters.max(1));
        println!("bench {label:<60} {per_iter:>12} ns/iter (stub, {} iters)", bencher.iters);
    }
}

/// Declares a group function that runs each target in order.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_the_closure() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("counting", |b| b.iter(|| count += 1));
        assert!(count >= 1);
    }

    #[test]
    fn groups_run_with_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(4));
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 7), &7u64, |b, &n| {
            b.iter_custom(|iters| {
                seen = n;
                Duration::from_nanos(iters)
            });
        });
        group.finish();
        assert_eq!(seen, 7);
    }
}
