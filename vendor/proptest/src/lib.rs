//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the proptest 1.x API used by the workspace's
//! property tests:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_filter`, and `boxed`;
//! * integer-range, tuple, [`Just`], `prop::collection::vec`,
//!   `prop::sample::select`, and [`arbitrary::any`] strategies;
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`),
//!   [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`], and
//!   [`prop_assert_ne!`].
//!
//! Semantics differ from real proptest in two deliberate ways: sampling is
//! **deterministic** (each test derives its RNG seed from its own name, so
//! runs are reproducible and CI cannot flake) and failures **do not
//! shrink** — the failing case is printed as-is.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

pub use rand;

/// Deterministic RNG handed to strategies while sampling.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Creates a generator whose seed is derived from a test name, so each
    /// test samples a distinct but reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(h)
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample below 0");
        self.next_u64() % bound
    }
}

/// Run-time configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; these deterministic samples keep
        // the same order of magnitude while staying fast in CI.
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// sampling function over a deterministic RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects samples failing `f`, retrying (bounded) until one passes.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// Object-safe sampling, used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn DynStrategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.sample_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive samples: {}", self.whence);
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// `any::<T>()` support, mirroring `proptest::arbitrary`.
pub mod arbitrary {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Draws an unconstrained value.
        fn arbitrary_with(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_with(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_with(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    #[derive(Clone, Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_with(rng)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// The `prop::` namespace (`prop::collection`, `prop::sample`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::fmt::Debug;
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with length drawn from `size`.
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S>
        where
            S::Value: Debug,
        {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.end - self.size.start).max(1) as u64;
                let len = self.size.start + rng.below(span) as usize;
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, size_range)`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }
    }

    /// Sampling strategies over explicit value sets.
    pub mod sample {
        use crate::{Strategy, TestRng};
        use std::fmt::Debug;

        /// Strategy choosing uniformly from a fixed list.
        #[derive(Clone, Debug)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone + Debug> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }

        /// `prop::sample::select(options)`.
        pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select over empty list");
            Select { options }
        }
    }
}

/// A union over type-erased strategies; built by [`prop_oneof!`].
#[derive(Clone, Debug)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Builds the union. Used by the `prop_oneof!` expansion.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

/// Chooses uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a property test, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!("[proptest stub] {}", format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            *l,
            *r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            *l,
            *r,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`",
            *l,
            *r
        );
    }};
}

/// Declares deterministic property tests.
///
/// Supports the subset of real proptest syntax used in this workspace:
/// an optional leading `#![proptest_config(expr)]`, then test functions of
/// the form `#[test] fn name(arg in strategy, ...) { body }`. Each test
/// runs `cases` samples with an RNG seeded from the test's name, so runs
/// are reproducible everywhere.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&$strategy, &mut rng);)+
                let case_desc = format!(
                    concat!("case {}/{}: ", $(concat!(stringify!($arg), " = {:?} ")),+),
                    case + 1, config.cases, $(&$arg),+
                );
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!("proptest case failed: {case_desc}");
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// One-line import of everything the tests need.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::TestRng::from_seed(1);
        for _ in 0..100 {
            let v = (3u32..9).sample(&mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let mut c = crate::TestRng::from_name("y");
        let s = prop::collection::vec(0u64..100, 0..10);
        assert_eq!(
            format!("{:?}", s.sample(&mut a)),
            format!("{:?}", s.sample(&mut b))
        );
        // Different names virtually always diverge somewhere in 16 draws.
        let same = (0..16).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::TestRng::from_seed(5);
        let mut seen = [false; 4];
        for _ in 0..64 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself compiles and runs with config, docs, and
        /// multiple arguments.
        #[test]
        fn macro_smoke(a in 0u32..10, b in prop::collection::vec(any::<bool>(), 0..5)) {
            prop_assert!(a < 10);
            prop_assert!(b.len() < 5);
            prop_assert_eq!(a, a);
            prop_assert_ne!(a, a + 1);
        }
    }
}
