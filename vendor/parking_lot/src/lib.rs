//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate.
//!
//! The build environment has no crates.io access. The workspace uses
//! `parking_lot::Mutex` only as a wall-clock baseline in one bench
//! target, so this stub wraps `std::sync::Mutex` behind parking_lot's
//! non-poisoning API. Benchmark numbers against it therefore measure the
//! std mutex; the label in the bench output keeps the distinction honest.

#![forbid(unsafe_code)]

use std::sync::MutexGuard as StdMutexGuard;

/// A non-poisoning mutex with `parking_lot`'s locking API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, ignoring poisoning (parking_lot never poisons).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: guard }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// RAII guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    inner: StdMutexGuard<'a, T>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(1u32);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn mutual_exclusion_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
