//! E7 — the [MS93] multi-grain packing experiment (Section 1.3): packing
//! several small registers into one atomically accessible word cuts the
//! number of distinct memory words (≈ remote accesses / cache lines) on
//! Lamport's contention-free fast path.
//!
//! Two reproductions:
//!
//! * **Simulated**: a packed-layout fast path where `x` and `y` share a
//!   word. The paper's register-complexity cost model (Section 1.2)
//!   counts the first access to each *word* as remote: packing drops the
//!   fast path from 3 words to 2 — the ~25% class of improvement Michael
//!   & Scott reported.
//! * **Native**: the same fast-path with `x`/`y` on one cache line versus
//!   padded onto separate lines, timed uncontended.

use cfc_bench::distinct_words;
use cfc_bounds::table::TextTable;
use cfc_core::{
    bits_for, run_solo, Layout, Memory, Op, OpResult, Process, ProcessId, RegisterId, Step,
    Value, WordId,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};

/// The Lamport fast path (solo: no contention branches needed) over an
/// optionally packed layout: `b := 1; x := i; read y; y := i; read x;`
/// then exit `y := 0; b := 0`. With packing, the reads/writes of `x` and
/// `y` go through their shared word.
#[derive(Clone, Debug)]
struct FastPath {
    b: RegisterId,
    x: RegisterId,
    y: RegisterId,
    word: Option<WordId>,
    id: Value,
    pc: u8,
}

impl Process for FastPath {
    fn current(&self) -> Step {
        let field_write = |r: RegisterId, v: Value| match self.word {
            Some(w) => Op::WriteWord(w, vec![(r, v)]),
            None => Op::Write(r, v),
        };
        let field_read = |r: RegisterId| match self.word {
            Some(w) => Op::ReadWord(w),
            None => Op::Read(r),
        };
        match self.pc {
            0 => Step::Op(Op::Write(self.b, Value::ONE)),
            1 => Step::Op(field_write(self.x, self.id)),
            2 => Step::Op(field_read(self.y)),
            3 => Step::Op(field_write(self.y, self.id)),
            4 => Step::Op(field_read(self.x)),
            5 => Step::Op(field_write(self.y, Value::ZERO)),
            6 => Step::Op(Op::Write(self.b, Value::ZERO)),
            _ => Step::Halt,
        }
    }

    fn advance(&mut self, _: OpResult) {
        self.pc += 1;
    }
}

fn build(n: usize, packed: bool) -> (Memory, Layout, FastPath) {
    let width = bits_for(n as u64);
    let mut layout = Layout::new();
    let b = layout.bit("b", false);
    let x = layout.register("x", width, 0);
    let y = layout.register("y", width, 0);
    let word = packed.then(|| layout.pack(&[x, y]).unwrap());
    let memory = Memory::new(layout.clone(), if packed { 2 * width } else { width }).unwrap();
    (
        memory,
        layout,
        FastPath {
            b,
            x,
            y,
            word,
            id: Value::new(1),
            pc: 0,
        },
    )
}

fn print_packing_table() {
    println!("\n=== [MS93] packing: fast-path remote accesses (distinct words) ===\n");
    let mut table = TextTable::new([
        "n",
        "layout",
        "atomicity",
        "steps",
        "distinct words (remote accesses)",
    ]);
    for n in [256usize, 1 << 16] {
        for packed in [false, true] {
            let (memory, layout, proc_) = build(n, packed);
            let (trace, _, _) = run_solo(memory, proc_).unwrap();
            let pid = ProcessId::new(0);
            let c = cfc_core::metrics::process_complexity(&trace, &layout, pid);
            let words = distinct_words(&trace, &layout, pid);
            table.row([
                n.to_string(),
                if packed { "x,y packed in one word" } else { "separate registers" }.to_string(),
                format!("{} bits", if packed { 2 * bits_for(n as u64) } else { bits_for(n as u64) }),
                c.steps.to_string(),
                words.to_string(),
            ]);
        }
    }
    println!("{table}");
    println!(
        "Packing x and y shrinks the remote-access count of the fast path\n\
         from 3 to 2 (-33%) at the price of doubling the atomic grain —\n\
         the multi-grain trade [MS93] exploited for a ~25% speedup.\n"
    );
}

/// Native analogue: x and y adjacent on one cache line vs padded apart.
#[repr(align(64))]
#[derive(Debug, Default)]
struct Padded(AtomicUsize);

#[derive(Debug, Default)]
struct PackedPair {
    x: AtomicUsize,
    y: AtomicUsize,
}

#[derive(Debug, Default)]
struct PaddedPair {
    x: Padded,
    y: Padded,
}

fn fast_path_packed(p: &PackedPair) {
    p.x.store(1, SeqCst);
    let _ = p.y.load(SeqCst);
    p.y.store(1, SeqCst);
    let _ = p.x.load(SeqCst);
    p.y.store(0, SeqCst);
}

fn fast_path_padded(p: &PaddedPair) {
    p.x.0.store(1, SeqCst);
    let _ = p.y.0.load(SeqCst);
    p.y.0.store(1, SeqCst);
    let _ = p.x.0.load(SeqCst);
    p.y.0.store(0, SeqCst);
}

fn bench_packing(c: &mut Criterion) {
    print_packing_table();

    let mut group = c.benchmark_group("packing/simulated_fast_path");
    for packed in [false, true] {
        let name = if packed { "packed" } else { "separate" };
        group.bench_function(name, |b| {
            let (memory, _, proc_) = build(1 << 16, packed);
            b.iter(|| run_solo(memory.clone(), proc_.clone()).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("packing/native_fast_path");
    group.bench_function("same_cache_line", |b| {
        let p = PackedPair::default();
        b.iter(|| fast_path_packed(&p));
    });
    group.bench_function("padded_lines", |b| {
        let p = PaddedPair::default();
        b.iter(|| fast_path_padded(&p));
    });
    group.finish();
}

criterion_group!(benches, bench_packing);
criterion_main!(benches);
