//! E4/E6 — the atomicity sweep: how contention-free complexity trades
//! against register width (the paper has no figures, so this sweep *is*
//! the function the bounds tables tabulate), plus the Theorem 1 corollary
//! that shared-bit accesses stay Θ(log n) no matter how `l` is chosen.

use cfc_bounds::mutex as bounds;
use cfc_bounds::table::TextTable;
use cfc_core::ProcessId;
use cfc_mutex::{measure, SplitterTree, Tournament};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn print_sweep(n: usize) {
    println!("\n=== Atomicity sweep at n = {n} ===\n");
    let mut table = TextTable::new([
        "l",
        "arity",
        "depth",
        "mutex cf steps",
        "thm3 7log(n)/l",
        "mutex cf regs",
        "thm3 3log(n)/l",
        "bit accesses",
        "detector wc steps",
    ]);
    let pid = ProcessId::new(0);
    for l in [1u32, 2, 3, 4, 6, 8, 12, 16] {
        let alg = Tournament::sparse(n, l, &[pid]);
        let trip = measure::contention_free_trip(&alg, pid).unwrap();
        let tree = SplitterTree::sparse(n, l, &[pid]);
        let det = measure::contention_free_detection(&tree, pid).unwrap();
        table.row([
            l.to_string(),
            alg.arity().to_string(),
            alg.depth().to_string(),
            trip.total.steps.to_string(),
            bounds::thm3_step_upper(n as u64, l).to_string(),
            trip.total.registers.to_string(),
            bounds::thm3_register_upper(n as u64, l).to_string(),
            trip.total.bit_accesses.to_string(),
            // The splitter tree is loop-free: its cf cost IS its wc cost.
            det.steps.to_string(),
        ]);
    }
    println!("{table}");
    if let Ok(path) = cfc_bench::write_artifact(&format!("sweep_atomicity_n{n}"), &table) {
        println!("(csv artifact: {})\n", path.display());
    }
    println!(
        "steps fall as ~log(n)/l while bit accesses stay Θ(log n) — the\n\
         corollary to Theorem 1: constant-bit contention-free cost is\n\
         impossible at any atomicity.\n"
    );
}

fn bench_sweep(c: &mut Criterion) {
    print_sweep(1 << 12);
    print_sweep(1 << 20);

    let mut group = c.benchmark_group("sweep/solo_trip_by_atomicity");
    let n = 1 << 16;
    for l in [1u32, 2, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, &l| {
            let pid = ProcessId::new(0);
            let alg = Tournament::sparse(n, l, &[pid]);
            b.iter(|| measure::contention_free_trip(&alg, pid).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("sweep/detector_by_atomicity");
    for l in [1u32, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, &l| {
            let pid = ProcessId::new(0);
            let tree = SplitterTree::sparse(n, l, &[pid]);
            b.iter(|| measure::contention_free_detection(&tree, pid).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
