//! E1/E3/E5/E11 — regenerates the paper's Table 1, "Bounds for mutual
//! exclusion" (Section 2.6), from measured runs.
//!
//! For each (n, l) the harness measures the contention-free step and
//! register complexity of the best implemented algorithm (Lamport's fast
//! mutex when `l ≥ log n`, the Theorem 3 tournament otherwise), the
//! worst-case register complexity of the bit-only tournament under full
//! contention (the [Kes82] row), and checks everything against the
//! Theorem 1/2 lower-bound formulas and Theorem 3 upper bounds. The
//! worst-case step row is reported as unbounded, per [AT92].

use cfc_bounds::mutex as bounds;
use cfc_bounds::table::TextTable;
use cfc_core::{bits_for, Process, ProcessId, Section};
use cfc_mutex::{
    measure, Bakery, Dijkstra, LamportFast, LockProcess, MutexAlgorithm, MutexClient,
    PetersonTwo, TasSpin, Tournament,
};
use cfc_verify::{
    check_mutex_starvation, validate_bypass, validate_lasso, ExploreConfig, LivenessSpec,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn liveness_spec<'a, L: LockProcess>() -> LivenessSpec<'a, MutexClient<L>> {
    LivenessSpec {
        pending: &|c: &MutexClient<L>| c.section() == Some(Section::Entry),
        engaged: &|c: &MutexClient<L>| c.engaged(),
        served: &|before: &MutexClient<L>, after: &MutexClient<L>| {
            before.section() != Some(Section::Critical)
                && after.section() == Some(Section::Critical)
        },
        normalize: None,
    }
}

/// Measures one fairness row with the fair-cycle checker and insists on
/// the witness guarantee: a bounded bypass must carry a
/// `validate_bypass`-checked overtaking schedule, a starvable verdict a
/// `validate_lasso`-checked lasso. Returns the rendered fairness cell.
fn measured_fairness<A>(alg: &A, claimed: Option<u64>) -> String
where
    A: MutexAlgorithm,
    A::Lock: Clone + Eq + std::hash::Hash + 'static,
{
    let config = ExploreConfig::default().with_max_states(200_000);
    let report = check_mutex_starvation(alg, config).unwrap();
    let memory = alg.memory().unwrap();
    let clients: Vec<_> = (0..alg.n() as u32)
        .map(|i| alg.client_cycling(ProcessId::new(i), 1))
        .collect();
    match (report.witness(), report.bypass()) {
        (Some(lasso), _) => {
            validate_lasso(&memory, &clients, lasso, &liveness_spec()).unwrap();
            assert!(claimed.is_none(), "{}: claimed a bound but starves", alg.name());
            format!("starvable (lasso: {} loop steps)", lasso.lasso.cycle.len())
        }
        (None, Some(Some(bound))) => {
            assert_eq!(Some(bound), claimed, "{}: claim vs measurement", alg.name());
            let witness = report
                .bypass_witness()
                .unwrap_or_else(|| panic!("{}: bound {bound} without witness", alg.name()));
            assert_eq!(witness.bypass, bound);
            validate_bypass(&memory, &clients, witness, &liveness_spec()).unwrap();
            format!(
                "bypass {bound} (witnessed, {}-step run)",
                witness.schedule().len()
            )
        }
        (None, Some(None)) => {
            assert!(claimed.is_none());
            "starvation-free, bypass unbounded".to_string()
        }
        (None, None) => unreachable!("starvation-free verdicts always report bypass"),
    }
}

/// E-fairness: the Table 1 fairness column, *measured* — each row is the
/// fair-cycle checker's verdict at a small exemplar n, and every finite
/// bypass bound is backed by a replayed, independently recounted
/// witness schedule. No reported bound without a replayable schedule.
fn print_fairness_witnesses() {
    println!("\n--- fairness instruments (fair-cycle checker, witness-backed) ---\n");
    let mut table = TextTable::new(["algorithm", "exemplar", "fairness (measured + witnessed)"]);
    table.row([
        "peterson-2".into(),
        "n=2".into(),
        measured_fairness(&PetersonTwo::new(), Some(bounds::PETERSON_BYPASS)),
    ]);
    for n in [2usize, 3] {
        table.row([
            "bakery".into(),
            format!("n={n}"),
            measured_fairness(&Bakery::new(n), Some(bounds::bakery_bypass_upper(n as u64))),
        ]);
    }
    table.row([
        "tournament-peterson".into(),
        "n=2 (one node)".into(),
        measured_fairness(&Tournament::new(2, 1), Some(bounds::PETERSON_BYPASS)),
    ]);
    table.row([
        "tournament-peterson".into(),
        "n=3 (two levels)".into(),
        measured_fairness(&Tournament::new(3, 1), None),
    ]);
    table.row([
        "lamport-fast".into(),
        "n=2".into(),
        measured_fairness(&LamportFast::new(2), None),
    ]);
    table.row([
        "tas-spin".into(),
        "n=2".into(),
        measured_fairness(&TasSpin::new(2), None),
    ]);
    println!("{table}");
    if let Ok(path) = cfc_bench::write_artifact("table1_fairness", &table) {
        println!("(csv artifact: {})\n", path.display());
    }
}

fn best_cf_trip(n: usize, l: u32) -> (String, cfc_core::metrics::TripComplexity) {
    let pid = ProcessId::new(0);
    if l >= bits_for(n as u64) {
        let alg = LamportFast::new(n);
        (
            alg.name().to_string(),
            measure::contention_free_trip(&alg, pid).unwrap(),
        )
    } else {
        let alg = Tournament::sparse(n, l, &[pid]);
        (
            alg.name().to_string(),
            measure::contention_free_trip(&alg, pid).unwrap(),
        )
    }
}

fn print_table1() {
    println!("\n=== Table 1: Bounds for mutual exclusion (measured reproduction) ===\n");
    let mut table = TextTable::new([
        "n",
        "l",
        "algorithm",
        "cf-step lower (Thm1)",
        "cf-step measured",
        "cf-step upper (Thm3)",
        "cf-reg lower (Thm2)",
        "cf-reg measured",
        "cf-reg upper (Thm3)",
        "fairness (fair-cycle)",
    ]);
    for &n in &cfc_bench::TABLE_NS {
        for &l in &cfc_bench::TABLE_LS {
            let (name, trip) = best_cf_trip(n, l);
            let step_lower = bounds::thm1_step_lower(n as u64, l);
            let reg_lower = bounds::thm2_register_lower(n as u64, l);
            assert!(
                trip.total.steps as f64 > step_lower,
                "Theorem 1 violated at n={n} l={l}"
            );
            assert!(
                trip.total.registers as f64 >= reg_lower,
                "Theorem 2 violated at n={n} l={l}"
            );
            // The fairness column: Lamport's fast path (and tournaments
            // built from it, l >= 2) is starvable; the Peterson-node
            // tournament (l = 1) is starvation-free. Classifications are
            // the ones the fair-cycle checker verifies at small n, each
            // backed by a validated witness schedule — see the
            // "fairness instruments" table printed below the bounds
            // (and tests/liveness.rs, tests/bounds_consistency.rs).
            let fairness = if name == "lamport-fast" || !bounds::tournament_starvation_free(l) {
                "starvable [AT92]".to_string()
            } else {
                "starvation-free".to_string()
            };
            table.row([
                n.to_string(),
                l.to_string(),
                name,
                format!("{step_lower:.2}"),
                trip.total.steps.to_string(),
                bounds::thm3_step_upper(n as u64, l).to_string(),
                format!("{reg_lower:.2}"),
                trip.total.registers.to_string(),
                bounds::thm3_register_upper(n as u64, l).to_string(),
                fairness,
            ]);
        }
    }
    println!("{table}");
    if let Ok(path) = cfc_bench::write_artifact("table1_mutex", &table) {
        println!("(csv artifact: {})\n", path.display());
    }

    println!("--- worst-case rows ---\n");
    let mut table = TextTable::new([
        "n",
        "wc-register measured (tournament l=1, full contention)",
        "wc-register upper 3*ceil(log n) [Kes82]",
        "wc-step",
    ]);
    for n in [4usize, 8, 16] {
        let alg = Tournament::new(n, 1);
        let trips = measure::contended_round_robin(&alg, 1).unwrap();
        let worst = trips.iter().map(|t| t.total.registers).max().unwrap();
        let upper = bounds::kessels_wc_register_upper(n as u64);
        assert!(worst <= upper, "Kessels bound violated at n={n}");
        table.row([
            n.to_string(),
            worst.to_string(),
            upper.to_string(),
            "unbounded [AT92]".to_string(),
        ]);
    }
    println!("{table}");
}

/// The paper's motivation (Section 1.1): among deadlock-free algorithms
/// with comparable worst-case behavior, contention-free complexity is
/// what separates them in practice.
fn print_motivation() {
    println!("\n--- motivation: classic baselines vs the fast path ---\n");
    let mut table = TextTable::new(["n", "algorithm", "cf steps", "cf registers"]);
    for n in [8usize, 64, 512] {
        let pid = ProcessId::new(0);
        let rows: [(&str, cfc_core::metrics::TripComplexity); 3] = [
            (
                "dijkstra [Dij65]",
                measure::contention_free_trip(&Dijkstra::new(n), pid).unwrap(),
            ),
            (
                "bakery",
                measure::contention_free_trip(&Bakery::new(n), pid).unwrap(),
            ),
            (
                "lamport-fast [Lam87]",
                measure::contention_free_trip(&LamportFast::new(n), pid).unwrap(),
            ),
        ];
        for (name, trip) in rows {
            table.row([
                n.to_string(),
                name.to_string(),
                trip.total.steps.to_string(),
                trip.total.registers.to_string(),
            ]);
        }
    }
    println!("{table}");
    println!(
        "All three are deadlock-free; the classics pay Θ(n) even when alone,\n\
         the fast algorithm pays 7 — the gap the contention-free measure makes\n\
         visible.\n"
    );
}

fn bench_measurement(c: &mut Criterion) {
    print_table1();
    print_fairness_witnesses();
    print_motivation();

    let mut group = c.benchmark_group("table1/contention_free_measurement");
    for (n, l) in [(4096usize, 1u32), (4096, 4), (1 << 16, 8)] {
        group.bench_with_input(
            BenchmarkId::new("tournament_solo_trip", format!("n{n}_l{l}")),
            &(n, l),
            |b, &(n, l)| {
                let pid = ProcessId::new(0);
                let alg = Tournament::sparse(n, l, &[pid]);
                b.iter(|| measure::contention_free_trip(&alg, pid).unwrap());
            },
        );
    }
    group.bench_function("lamport_solo_trip_n4096", |b| {
        let alg = LamportFast::new(4096);
        let pid = ProcessId::new(0);
        b.iter(|| measure::contention_free_trip(&alg, pid).unwrap());
    });
    group.finish();

    let mut group = c.benchmark_group("table1/contended_round_robin");
    group.sample_size(10);
    for n in [4usize, 8] {
        group.bench_with_input(BenchmarkId::new("tournament_l1", n), &n, |b, &n| {
            let alg = Tournament::new(n, 1);
            b.iter(|| measure::contended_round_robin(&alg, 1).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_measurement);
criterion_main!(benches);
