//! E8 (part 2) — the Discussion-section claim: with exponential backoff,
//! the time for the winning process to enter its critical section stays
//! close to the contention-free time *at every contention level*.
//!
//! The harness measures mean time-per-critical-section for Lamport's fast
//! mutex with and without backoff across thread counts, prints the
//! reproduction table, and registers the series with criterion.

use cfc_bounds::table::TextTable;
use cfc_native::{FastMutex, SlottedMutex};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Mean wall time per completed critical section with `threads`
/// contenders (total time / total sections).
fn time_per_section<M: SlottedMutex>(mutex: &M, threads: usize, iters: u64) -> Duration {
    let counter = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for slot in 0..threads {
            let (mutex, counter) = (&*mutex, &counter);
            s.spawn(move || {
                for _ in 0..iters {
                    mutex.lock(slot);
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    mutex.unlock(slot);
                }
            });
        }
    });
    let elapsed = start.elapsed();
    assert_eq!(counter.load(Ordering::Relaxed), threads as u64 * iters);
    elapsed / (threads as u32 * iters as u32)
}

fn print_backoff_table(max_threads: usize) {
    println!("\n=== Backoff keeps per-section time near the contention-free time ===\n");
    let iters = 20_000u64;
    let mut table = TextTable::new([
        "threads",
        "no backoff (ns/section)",
        "with backoff (ns/section)",
        "backoff vs contention-free",
    ]);
    let solo = {
        let m = FastMutex::with_backoff(max_threads);
        time_per_section(&m, 1, iters * 4)
    };
    for threads in 1..=max_threads {
        let plain = FastMutex::new(max_threads);
        let backoff = FastMutex::with_backoff(max_threads);
        let t_plain = time_per_section(&plain, threads, iters);
        let t_backoff = time_per_section(&backoff, threads, iters);
        table.row([
            threads.to_string(),
            format!("{:.0}", t_plain.as_nanos()),
            format!("{:.0}", t_backoff.as_nanos()),
            format!("{:.1}x", t_backoff.as_nanos() as f64 / solo.as_nanos().max(1) as f64),
        ]);
    }
    println!("{table}");
    println!(
        "contention-free baseline: {:.0} ns/section; the backoff column should\n\
         stay within a small factor of it at every contention level, while the\n\
         plain column degrades much faster (cf. [MS93]).\n",
        solo.as_nanos()
    );
}

fn bench_backoff(c: &mut Criterion) {
    let max_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(8);
    print_backoff_table(max_threads);

    let mut group = c.benchmark_group("backoff/time_per_section");
    group.sample_size(10);
    // Size the mutex for the whole sweep, not `max_threads`: on a
    // single-core machine `max_threads` is 1 while the sweep still runs
    // the 2-thread point (threads beyond the core count just time-slice).
    let mut sweep = vec![1usize, 2, max_threads];
    sweep.sort_unstable();
    sweep.dedup();
    let slots = *sweep.last().unwrap();
    for threads in sweep {
        group.bench_with_input(
            BenchmarkId::new("plain", threads),
            &threads,
            |b, &threads| {
                let m = FastMutex::new(slots);
                b.iter_custom(|rounds| {
                    (0..rounds)
                        .map(|_| time_per_section(&m, threads, 2_000) * (threads as u32 * 2_000))
                        .sum()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("backoff", threads),
            &threads,
            |b, &threads| {
                let m = FastMutex::with_backoff(slots);
                b.iter_custom(|rounds| {
                    (0..rounds)
                        .map(|_| time_per_section(&m, threads, 2_000) * (threads as u32 * 2_000))
                        .sum()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_backoff);
criterion_main!(benches);
