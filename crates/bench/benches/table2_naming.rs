//! E2/E9 — regenerates the paper's Table 2, "Tight bounds for naming"
//! (Section 3.3), from measured runs.
//!
//! Each model column is realized by its Theorem 4 algorithm; the
//! contention-free values come from the sequential schedule and the
//! worst-case values from the Theorem 6 lockstep adversary plus random
//! schedules. Every cell is checked against the symbolic bound (`n − 1`
//! or `log n`).

use cfc_bounds::naming::{tight_bound, Measure, ModelClass};
use cfc_bounds::table::TextTable;
use cfc_naming::{TafTree, TasReadSearch, TasScan, TasTarTree};
use cfc_verify::{naming_profile, NamingProfile};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const SEEDS: u64 = 20;

fn ceil_log2(n: u64) -> u64 {
    u64::from(64 - (n - 1).leading_zeros())
}

fn measured(p: &NamingProfile, m: Measure) -> u64 {
    match m {
        Measure::CfRegister => p.contention_free.registers,
        Measure::CfStep => p.contention_free.steps,
        Measure::WcRegister => p.worst_case.registers,
        Measure::WcStep => p.worst_case.steps,
    }
}

fn print_table2(n: usize) {
    println!("\n=== Table 2: Tight bounds for naming (measured at n = {n}) ===\n");
    println!("cell format: measured (paper bound); measured = the column's Theorem 4");
    println!("algorithm under sequential (c-f) / lockstep+random (w-c) schedules\n");

    let scan = naming_profile(&TasScan::new(n), SEEDS).unwrap();
    let search = naming_profile(&TasReadSearch::new(n), SEEDS).unwrap();
    let tastar = naming_profile(&TasTarTree::new(n).unwrap(), SEEDS).unwrap();
    let taf = naming_profile(&TafTree::new(n).unwrap(), SEEDS).unwrap();

    // The algorithm realizing each column of the paper's table. The rmw
    // column is realized by the taf tree (taf ∈ rmw).
    let columns: [(&str, ModelClass, &NamingProfile); 5] = [
        ("tas-scan", ModelClass::TasOnly, &scan),
        ("tas-read-search", ModelClass::ReadTas, &search),
        ("tas-tar-tree(+scan)", ModelClass::ReadTasTar, &tastar),
        ("taf-tree", ModelClass::Taf, &taf),
        ("taf-tree", ModelClass::Rmw, &taf),
    ];

    let mut table = TextTable::new([
        "measure",
        "tas",
        "read+tas",
        "read+tas+tar",
        "taf",
        "rmw (all)",
    ]);
    for m in Measure::ALL {
        let mut row = vec![m.to_string()];
        for (_, class, profile) in &columns {
            let bound = tight_bound(*class, m);
            let got = match (class, m) {
                // The read+tas+tar column's w-c step bound (n-1) is
                // realized by the scan algorithm (also available in that
                // model), not the tree — report the scan's value.
                (ModelClass::ReadTasTar, Measure::WcStep) => measured(&scan, m),
                // Its c-f step log-n bound is realized by the binary
                // search (read ∈ the model).
                (ModelClass::ReadTasTar, Measure::CfStep | Measure::CfRegister) => {
                    measured(&search, m)
                }
                _ => measured(profile, m),
            };
            row.push(format!("{got} ({})", bound.symbol()));
        }
        table.row(row);
    }
    println!("{table}");
    if let Ok(path) = cfc_bench::write_artifact(&format!("table2_naming_n{n}"), &table) {
        println!("(csv artifact: {})\n", path.display());
    }

    // Mechanical checks of the headline cells.
    assert_eq!(measured(&scan, Measure::WcStep), n as u64 - 1);
    assert_eq!(measured(&scan, Measure::CfRegister), n as u64 - 1); // Thm 7
    assert!(measured(&search, Measure::CfStep) <= ceil_log2(n as u64) + 1);
    assert_eq!(measured(&tastar, Measure::WcRegister), ceil_log2(n as u64));
    for m in Measure::ALL {
        assert_eq!(measured(&taf, m), ceil_log2(n as u64));
    }
    println!("all headline cells verified against the paper's bounds ✓\n");
}

fn bench_naming(c: &mut Criterion) {
    for n in [16usize, 64] {
        print_table2(n);
    }

    let mut group = c.benchmark_group("table2/naming_profile");
    group.sample_size(10);
    for n in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("tas_scan", n), &n, |b, &n| {
            b.iter(|| naming_profile(&TasScan::new(n), 5).unwrap());
        });
        if n.is_power_of_two() {
            group.bench_with_input(BenchmarkId::new("taf_tree", n), &n, |b, &n| {
                b.iter(|| naming_profile(&TafTree::new(n).unwrap(), 5).unwrap());
            });
        }
        group.bench_with_input(BenchmarkId::new("tas_read_search", n), &n, |b, &n| {
            b.iter(|| naming_profile(&TasReadSearch::new(n), 5).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_naming);
criterion_main!(benches);
