//! The reduction sweep: states visited and wall time of the exhaustive
//! explorer with partial-order and symmetry reduction off/on, across
//! representative mutex and naming configurations — the measurement
//! behind the "more scenarios, faster" claim of the reduction subsystem.
//!
//! The table shows the two regimes clearly: identical-process naming
//! configurations collapse ~20x under symmetry (and the eight-walker
//! tree, hopeless naively at ~15^8 joint states, finishes in milliseconds),
//! while pid-distinguished tournament clients gain from ample sets alone.
//!
//! A second table sweeps the **progress checker** over the same reduction
//! variants: since `check_progress_sym` runs on the reduced graph (and
//! its ample mode drops the invisibility condition), the speedup of the
//! deadlock-freedom checks is measured here rather than asserted.
//!
//! A third table sweeps the **fair-cycle liveness checker**
//! (`check_mutex_starvation` / `check_naming_lockout`) and emits the
//! `liveness_sweep` CSV artifact: verdict, bypass bound, and per-victim
//! graph sizes across the same reduction variants.

use std::time::Duration;

use cfc_bounds::table::TextTable;
use cfc_mutex::{Bakery, LamportFast, PetersonTwo, TasSpin, Tournament};
use cfc_naming::{TafTree, TasScan, TasTarTree};
use cfc_mutex::Splitter;
use cfc_verify::explore::ExploreConfig;
use cfc_verify::{
    check_detection_safety, check_mutex_progress, check_mutex_safety, check_mutex_starvation,
    check_naming_lockout, check_naming_progress, check_naming_uniqueness, ExploreError,
    ExploreStats, LivenessReport, LivenessVerdict, MayAccessMode, ProgressStats,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn variants(max_states: usize, max_crashes: u32) -> [(&'static str, ExploreConfig); 4] {
    let base = ExploreConfig {
        max_states,
        max_crashes,
        por: false,
        symmetry: false,
        ..ExploreConfig::default()
    };
    [
        ("baseline", base),
        ("por", ExploreConfig { por: true, ..base }),
        (
            "sym",
            ExploreConfig {
                symmetry: true,
                ..base
            },
        ),
        (
            "por+sym",
            ExploreConfig {
                por: true,
                symmetry: true,
                ..base
            },
        ),
    ]
}

/// Mean per-state footprint — packed records plus digest-index and edge
/// storage — in bytes per stored state.
fn bytes_per_state(total_bytes: u64, states: usize) -> String {
    if states == 0 {
        return "-".into();
    }
    format!("{:.1}", total_bytes as f64 / states as f64)
}

fn run(
    label: &str,
    f: impl Fn(ExploreConfig) -> Result<ExploreStats, ExploreError>,
    crashes: u32,
    skip_unreduced: bool,
    table: &mut TextTable,
) {
    for (variant, cfg) in variants(4_000_000, crashes) {
        if skip_unreduced && !cfg.symmetry {
            table.row([
                label.to_string(),
                variant.to_string(),
                "~15^8".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "(skipped)".into(),
                "-".into(),
            ]);
            continue;
        }
        let stats = f(cfg).expect("sweep configs are safe");
        table.row([
            label.to_string(),
            variant.to_string(),
            stats.states.to_string(),
            stats.transitions.to_string(),
            stats.terminals.to_string(),
            stats.states_pruned_por.to_string(),
            stats.orbits_merged.to_string(),
            bytes_per_state(stats.footprint.total_bytes(), stats.states),
            stats.footprint.arena_bytes.to_string(),
            stats.footprint.spilled_buckets.to_string(),
            format!("{:.1}", stats.wall_ns as f64 / 1e6),
            stats.states_per_sec().to_string(),
        ]);
    }
}

fn run_progress(
    label: &str,
    f: impl Fn(ExploreConfig) -> Result<ProgressStats, ExploreError>,
    crashes: u32,
    skip_unreduced: bool,
    table: &mut TextTable,
) {
    for (variant, cfg) in variants(4_000_000, crashes) {
        if skip_unreduced && !cfg.symmetry {
            table.row([
                label.to_string(),
                variant.to_string(),
                "~15^8".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "(skipped)".into(),
                "-".into(),
            ]);
            continue;
        }
        let stats = f(cfg).expect("sweep configs are deadlock-free");
        table.row([
            label.to_string(),
            variant.to_string(),
            stats.states.to_string(),
            stats.transitions.to_string(),
            stats.terminals.to_string(),
            stats.states_pruned_por.to_string(),
            stats.orbits_merged.to_string(),
            bytes_per_state(stats.footprint.total_bytes(), stats.states),
            stats.footprint.arena_bytes.to_string(),
            stats.footprint.spilled_buckets.to_string(),
            format!("{:.1}", stats.wall_ns as f64 / 1e6),
            stats.states_per_sec().to_string(),
        ]);
    }
}

fn print_progress_sweep() {
    println!("\n=== Progress-check reduction sweep ===\n");
    let mut table = TextTable::new([
        "config",
        "reduction",
        "states",
        "transitions",
        "terminals",
        "pruned(POR)",
        "orbits merged",
        "bytes_per_state",
        "arena_bytes",
        "spilled_buckets",
        "wall_ms",
        "states_per_sec",
    ]);
    run_progress(
        "progress tournament n=4 l=1",
        |cfg| check_mutex_progress(&Tournament::new(4, 1), 1, cfg),
        0,
        false,
        &mut table,
    );
    run_progress(
        "progress tournament n=5 l=1",
        |cfg| check_mutex_progress(&Tournament::new(5, 1), 1, cfg),
        0,
        false,
        &mut table,
    );
    run_progress(
        "progress bakery n=2",
        |cfg| check_mutex_progress(&Bakery::new(2), 1, cfg),
        0,
        false,
        &mut table,
    );
    run_progress(
        "progress tas-scan n=4 crashes=2",
        |cfg| check_naming_progress(&TasScan::new(4), 2, cfg),
        2,
        false,
        &mut table,
    );
    run_progress(
        "progress taf-tree n=8",
        |cfg| check_naming_progress(&TafTree::new(8).unwrap(), 0, cfg),
        0,
        true, // naive joint space ~15^8: only the symmetric variants finish
        &mut table,
    );
    println!("{table}");
    if let Ok(path) = cfc_bench::write_artifact("progress_sweep", &table) {
        println!("(csv artifact: {})\n", path.display());
    }
    println!(
        "deadlock-freedom on the reduced graph: naming configs collapse\n\
         under the canonical quotient exactly like the safety explorer,\n\
         and tournament clients gain from the invisibility-free ample\n\
         mode — process counts the un-reduced progress graph cannot\n\
         reach now verify (see tests/progress_reduction.rs).\n"
    );
}

fn run_liveness(
    label: &str,
    f: impl Fn(ExploreConfig) -> Result<LivenessReport, ExploreError>,
    skip_unreduced: bool,
    table: &mut TextTable,
) {
    for (variant, cfg) in variants(6_000_000, 0) {
        if skip_unreduced && !cfg.symmetry {
            table.row([
                label.to_string(),
                variant.to_string(),
                "-".into(),
                "-".into(),
                "~15^8".into(),
                "-".into(),
                "-".into(),
                "(skipped)".into(),
                "-".into(),
            ]);
            continue;
        }
        let report = f(cfg).expect("sweep configs fit the budget");
        let (verdict, bypass) = match &report.verdict {
            LivenessVerdict::StarvationFree {
                bypass: Some(b),
                witness,
            } => (
                "starvation-free".to_string(),
                match witness {
                    // Every finite bound rides with its replayable
                    // overtaking schedule (the witness guarantee).
                    Some(w) => format!("{b} (witnessed, {}-step run)", w.schedule().len()),
                    None => format!("{b} (no engaged waiter)"),
                },
            ),
            LivenessVerdict::StarvationFree { bypass: None, .. } => {
                ("starvation-free".to_string(), "unbounded".to_string())
            }
            LivenessVerdict::Starvable(w) => (
                format!("starvable (loop {})", w.lasso.cycle.len()),
                "-".to_string(),
            ),
        };
        table.row([
            label.to_string(),
            variant.to_string(),
            verdict,
            bypass,
            report.stats.states.to_string(),
            report.stats.victims.to_string(),
            report.stats.graphs.to_string(),
            format!("{:.1}", report.stats.wall_ns as f64 / 1e6),
            report.stats.states_per_sec().to_string(),
        ]);
    }
}

fn print_liveness_sweep() {
    println!("\n=== Fair-cycle liveness sweep ===\n");
    let mut table = TextTable::new([
        "config",
        "reduction",
        "verdict",
        "bypass",
        "states",
        "victims",
        "graphs",
        "wall_ms",
        "states_per_sec",
    ]);
    run_liveness(
        "starvation peterson",
        |cfg| check_mutex_starvation(&PetersonTwo::new(), cfg),
        false,
        &mut table,
    );
    run_liveness(
        "starvation tas-spin n=3",
        |cfg| check_mutex_starvation(&TasSpin::new(3), cfg),
        false,
        &mut table,
    );
    run_liveness(
        "starvation lamport n=2",
        |cfg| check_mutex_starvation(&LamportFast::new(2), cfg),
        false,
        &mut table,
    );
    run_liveness(
        "starvation bakery n=2",
        |cfg| check_mutex_starvation(&Bakery::new(2), cfg),
        false,
        &mut table,
    );
    run_liveness(
        "starvation tournament n=4 l=1",
        |cfg| check_mutex_starvation(&Tournament::new(4, 1), cfg),
        false,
        &mut table,
    );
    run_liveness(
        "lockout taf-tree n=4",
        |cfg| check_naming_lockout(&TafTree::new(4).unwrap(), 0, cfg),
        false,
        &mut table,
    );
    run_liveness(
        "lockout taf-tree n=8",
        |cfg| check_naming_lockout(&TafTree::new(8).unwrap(), 0, cfg),
        true, // naive joint space ~15^8: only the symmetric variants finish
        &mut table,
    );
    println!("{table}");
    if let Ok(path) = cfc_bench::write_artifact("liveness_sweep", &table) {
        println!("(csv artifact: {})\n", path.display());
    }
    println!(
        "fair-cycle liveness on the shared engine: Peterson and the\n\
         Peterson-node tournament verify starvation-free (the tournament\n\
         with unbounded bypass — no wait-free doorway), Lamport's fast\n\
         path starves with a concrete validated lasso, and the per-victim\n\
         stabilizer quotient is what lets the eight-walker tree's lockout\n\
         check finish at all.\n"
    );
}

fn print_sweep() {
    println!("\n=== Explorer reduction sweep ===\n");
    let mut table = TextTable::new([
        "config",
        "reduction",
        "states",
        "transitions",
        "terminals",
        "pruned(POR)",
        "orbits merged",
        "bytes_per_state",
        "arena_bytes",
        "spilled_buckets",
        "wall_ms",
        "states_per_sec",
    ]);
    run(
        "tas-scan n=4 crashes=2",
        |cfg| check_naming_uniqueness(&TasScan::new(4), 2, cfg),
        2,
        false,
        &mut table,
    );
    run(
        "taf-tree n=4 crashes=2",
        |cfg| check_naming_uniqueness(&TafTree::new(4).unwrap(), 2, cfg),
        2,
        false,
        &mut table,
    );
    run(
        "tas-tar-tree n=4 crashes=1",
        |cfg| check_naming_uniqueness(&TasTarTree::new(4).unwrap(), 1, cfg),
        1,
        false,
        &mut table,
    );
    run(
        "taf-tree n=8 (8 walkers)",
        |cfg| check_naming_uniqueness(&TafTree::new(8).unwrap(), 0, cfg),
        0,
        true, // naive joint space ~15^8: only the symmetric variants finish
        &mut table,
    );
    run(
        "tournament n=4 l=1",
        |cfg| check_mutex_safety(&Tournament::new(4, 1), 1, cfg),
        0,
        false,
        &mut table,
    );
    println!("{table}");
    if let Ok(path) = cfc_bench::write_artifact("reduction_sweep", &table) {
        println!("(csv artifact: {})\n", path.display());
    }
    println!(
        "identical-process naming configs collapse under symmetry (orbit\n\
         merging), pid-distinguished tournament clients under ample sets;\n\
         the eight-walker tree — naively ~15^8 joint states — explores to\n\
         quiescence only with reduction.\n"
    );
}

/// Runs one configuration under both POR variants × both may-access
/// modes, tabulating the automaton rows with their state-count ratio
/// against the declared-hook oracle.
fn run_modes(
    label: &str,
    f: impl Fn(ExploreConfig) -> Result<ExploreStats, ExploreError>,
    table: &mut TextTable,
) {
    let base = ExploreConfig {
        max_states: 4_000_000,
        max_crashes: 0,
        por: true,
        symmetry: false,
        ..ExploreConfig::default()
    };
    for (variant, cfg) in [
        ("por", base),
        (
            "por+sym",
            ExploreConfig {
                symmetry: true,
                ..base
            },
        ),
    ] {
        let mut declared_states = 0usize;
        for mode in [
            MayAccessMode::Declared,
            MayAccessMode::Automaton,
            MayAccessMode::Dynamic,
        ] {
            let stats = f(cfg.with_may_access(mode)).expect("sweep configs are safe");
            let ratio = match mode {
                MayAccessMode::Declared => {
                    declared_states = stats.states;
                    "1.00".to_string()
                }
                MayAccessMode::Automaton | MayAccessMode::Dynamic => {
                    format!("{:.2}", stats.states as f64 / declared_states.max(1) as f64)
                }
            };
            table.row([
                label.to_string(),
                variant.to_string(),
                match mode {
                    MayAccessMode::Declared => "declared".to_string(),
                    MayAccessMode::Automaton => "automaton".to_string(),
                    MayAccessMode::Dynamic => "dynamic".to_string(),
                },
                stats.states.to_string(),
                stats.transitions.to_string(),
                stats.states_pruned_por.to_string(),
                ratio,
                format!("{:.1}", stats.wall_ns as f64 / 1e6),
                stats.states_per_sec().to_string(),
            ]);
        }
    }
}

fn print_may_access_sweep() {
    println!("\n=== May-access mode sweep (declared hooks vs control automaton) ===\n");
    let mut table = TextTable::new([
        "config",
        "reduction",
        "may_access",
        "states",
        "transitions",
        "pruned(POR)",
        "states_vs_declared",
        "wall_ms",
        "states_per_sec",
    ]);
    run_modes(
        "bakery n=3 trips=1",
        |cfg| check_mutex_safety(&Bakery::new(3), 1, cfg),
        &mut table,
    );
    run_modes(
        "peterson trips=2",
        |cfg| check_mutex_safety(&PetersonTwo::new(), 2, cfg),
        &mut table,
    );
    run_modes(
        "tournament n=4 l=1",
        |cfg| check_mutex_safety(&Tournament::new(4, 1), 1, cfg),
        &mut table,
    );
    run_modes(
        "splitter n=3 (detection)",
        |cfg| check_detection_safety(&Splitter::new(3), cfg),
        &mut table,
    );
    run_modes(
        "tas-scan n=4",
        |cfg| check_naming_uniqueness(&TasScan::new(4), 0, cfg),
        &mut table,
    );
    println!("{table}");
    if let Ok(path) = cfc_bench::write_artifact("may_access_sweep", &table) {
        println!("(csv artifact: {})\n", path.display());
    }
    println!(
        "per-location future-access sets vs the hand-written may_access\n\
         hooks: configs whose declared hooks are location-insensitive\n\
         (bakery's whole-array scan, the splitter's whole protocol) prune\n\
         strictly more under the automaton, while already-sharp hooks\n\
         (tas-scan's settled prefix) hold their ground — the ratio column\n\
         is the price of a lazy hook, measured.\n"
    );
}

/// Runs one configuration under the static automaton oracle and the
/// dynamic (split-future + sleep-set) mode, tabulating the dynamic row
/// with its pruning ratio against the static one. POR only, no
/// symmetry, no crashes: the regime where sleep sets engage.
fn run_dynamic(
    label: &str,
    f: impl Fn(ExploreConfig) -> Result<ExploreStats, ExploreError>,
    table: &mut TextTable,
) {
    let base = ExploreConfig {
        max_states: 4_000_000,
        max_crashes: 0,
        por: true,
        symmetry: false,
        ..ExploreConfig::default()
    };
    let mut static_states = 0usize;
    let mut static_transitions = 0u64;
    for mode in [MayAccessMode::Automaton, MayAccessMode::Dynamic] {
        let stats = f(base.with_may_access(mode)).expect("sweep configs are safe");
        let (mode_name, state_ratio, transition_ratio) = match mode {
            MayAccessMode::Automaton => {
                static_states = stats.states;
                static_transitions = stats.transitions;
                ("automaton", "1.00".to_string(), "1.00".to_string())
            }
            MayAccessMode::Dynamic => (
                "dynamic",
                format!("{:.2}", stats.states as f64 / static_states.max(1) as f64),
                format!(
                    "{:.2}",
                    stats.transitions as f64 / static_transitions.max(1) as f64
                ),
            ),
            MayAccessMode::Declared => unreachable!("dynamic sweep runs only the oracle pair"),
        };
        table.row([
            label.to_string(),
            mode_name.to_string(),
            stats.states.to_string(),
            stats.transitions.to_string(),
            stats.states_pruned_por.to_string(),
            stats.transitions_slept.to_string(),
            state_ratio,
            transition_ratio,
            format!("{:.1}", stats.wall_ns as f64 / 1e6),
            stats.states_per_sec().to_string(),
        ]);
    }
}

fn print_dynamic_sweep() {
    println!("\n=== Dynamic reduction sweep (static automaton vs observed conflicts) ===\n");
    let mut table = TextTable::new([
        "config",
        "may_access",
        "states",
        "transitions",
        "pruned(POR)",
        "slept",
        "states_vs_static",
        "transitions_vs_static",
        "wall_ms",
        "states_per_sec",
    ]);
    run_dynamic(
        "bakery n=3 trips=1",
        |cfg| check_mutex_safety(&Bakery::new(3), 1, cfg),
        &mut table,
    );
    run_dynamic(
        "peterson trips=2",
        |cfg| check_mutex_safety(&PetersonTwo::new(), 2, cfg),
        &mut table,
    );
    run_dynamic(
        "tournament n=4 l=1",
        |cfg| check_mutex_safety(&Tournament::new(4, 1), 1, cfg),
        &mut table,
    );
    run_dynamic(
        "splitter n=3 (detection)",
        |cfg| check_detection_safety(&Splitter::new(3), cfg),
        &mut table,
    );
    run_dynamic(
        "tas-scan n=4",
        |cfg| check_naming_uniqueness(&TasScan::new(4), 0, cfg),
        &mut table,
    );
    println!("{table}");
    if let Ok(path) = cfc_bench::write_artifact("dynamic_sweep", &table) {
        println!("(csv artifact: {})\n", path.display());
    }
    println!(
        "observed conflicts vs the static future-set oracle: the split\n\
         read/write future sets commute steps the union set cannot (two\n\
         future readers of the same flag are independent; the union view\n\
         calls them conflicting), and the sleep-set pass then skips\n\
         transitions whose interleavings a sibling branch already covers\n\
         — the `slept` column counts those, the ratio columns price the\n\
         static over-approximation.\n"
    );
}

fn bench_reductions(c: &mut Criterion) {
    print_sweep();
    print_progress_sweep();
    print_liveness_sweep();
    print_may_access_sweep();
    print_dynamic_sweep();

    let mut group = c.benchmark_group("reduction/tas_scan_n4_c2");
    for (variant, cfg) in variants(4_000_000, 2) {
        group.bench_with_input(BenchmarkId::from_parameter(variant), &cfg, |b, &cfg| {
            b.iter(|| check_naming_uniqueness(&TasScan::new(4), 2, cfg).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("reduction/taf_tree_8_walkers");
    for (variant, cfg) in variants(4_000_000, 0) {
        if !cfg.symmetry {
            continue;
        }
        group
            .measurement_time(Duration::from_secs(2))
            .bench_with_input(BenchmarkId::from_parameter(variant), &cfg, |b, &cfg| {
                b.iter(|| check_naming_uniqueness(&TafTree::new(8).unwrap(), 0, cfg).unwrap());
            });
    }
    group.finish();
}

criterion_group!(benches, bench_reductions);
criterion_main!(benches);
