//! E8 (part 1) — wall-clock cost of the paper's algorithms on real
//! hardware: the uncontended (contention-free) fast path and contended
//! throughput, against test-and-set, `std::sync::Mutex`, and
//! `parking_lot::Mutex` baselines.
//!
//! The paper's story in nanoseconds: Lamport's mutex has a constant
//! uncontended path regardless of capacity, while the bit-only Peterson
//! tournament pays Θ(log n) — there is no free lunch at atomicity 1
//! (Theorem 1).

use cfc_native::{BakeryMutex, FastMutex, PetersonTree, SlottedMutex, SpinStrategy, TasLock};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

fn bench_uncontended(c: &mut Criterion) {
    let mut group = c.benchmark_group("native/uncontended_lock_unlock");
    for slots in [2usize, 8, 64, 1024] {
        group.bench_with_input(
            BenchmarkId::new("lamport_fast", slots),
            &slots,
            |b, &slots| {
                let m = FastMutex::new(slots);
                b.iter(|| {
                    m.lock(0);
                    m.unlock(0);
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("peterson_tree", slots),
            &slots,
            |b, &slots| {
                let m = PetersonTree::new(slots);
                b.iter(|| {
                    m.lock(0);
                    m.unlock(0);
                });
            },
        );
        // The Θ(n) baseline: uncontended bakery latency grows with the
        // slot count while Lamport's stays flat (the paper's motivation
        // in nanoseconds).
        group.bench_with_input(
            BenchmarkId::new("bakery", slots),
            &slots,
            |b, &slots| {
                let m = BakeryMutex::new(slots);
                b.iter(|| {
                    m.lock(0);
                    m.unlock(0);
                });
            },
        );
    }
    group.bench_function("ttas", |b| {
        let m = TasLock::new(SpinStrategy::Ttas);
        b.iter(|| {
            m.lock(0);
            m.unlock(0);
        });
    });
    group.bench_function("std_mutex", |b| {
        let m = std::sync::Mutex::new(());
        b.iter(|| drop(m.lock().unwrap()));
    });
    group.bench_function("parking_lot_mutex", |b| {
        let m = parking_lot::Mutex::new(());
        b.iter(|| drop(m.lock()));
    });
    group.finish();
}

/// Total wall time for `threads` threads to each complete `iters`
/// critical sections.
fn contended_run<M: SlottedMutex>(mutex: &M, threads: usize, iters: u64) -> std::time::Duration {
    let counter = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for slot in 0..threads {
            let (mutex, counter) = (&*mutex, &counter);
            s.spawn(move || {
                for _ in 0..iters {
                    mutex.lock(slot);
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    mutex.unlock(slot);
                }
            });
        }
    });
    let elapsed = start.elapsed();
    assert_eq!(counter.load(Ordering::Relaxed), threads as u64 * iters);
    elapsed
}

fn bench_contended(c: &mut Criterion) {
    let max_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(8);
    let iters = 5_000u64;
    let mut group = c.benchmark_group("native/contended_sections");
    group.sample_size(10);
    // Dedup so a 2-core machine does not register duplicate benchmark ids.
    let mut sweep = vec![2usize, max_threads];
    sweep.sort_unstable();
    sweep.dedup();
    for threads in sweep {
        group.throughput(Throughput::Elements(threads as u64 * iters));
        group.bench_with_input(
            BenchmarkId::new("lamport_fast", threads),
            &threads,
            |b, &threads| {
                let m = FastMutex::new(threads);
                b.iter_custom(|rounds| {
                    (0..rounds).map(|_| contended_run(&m, threads, iters)).sum()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("lamport_fast_backoff", threads),
            &threads,
            |b, &threads| {
                let m = FastMutex::with_backoff(threads);
                b.iter_custom(|rounds| {
                    (0..rounds).map(|_| contended_run(&m, threads, iters)).sum()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("peterson_tree", threads),
            &threads,
            |b, &threads| {
                let m = PetersonTree::new(threads);
                b.iter_custom(|rounds| {
                    (0..rounds).map(|_| contended_run(&m, threads, iters)).sum()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("ttas_backoff", threads),
            &threads,
            |b, &threads| {
                let m = TasLock::new(SpinStrategy::TtasBackoff);
                b.iter_custom(|rounds| {
                    (0..rounds).map(|_| contended_run(&m, threads, iters)).sum()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_uncontended, bench_contended);
criterion_main!(benches);
