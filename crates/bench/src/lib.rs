//! Shared plumbing for the cfc benchmark harness.
//!
//! Each bench target in `benches/` regenerates one table or quantitative
//! claim of Alur & Taubenfeld (PODC 1994): it prints the reproduced
//! artifact (so `cargo bench` output contains the paper's tables,
//! re-derived from measured runs) and then times the underlying
//! measurement pipeline with criterion. This library hosts helpers reused
//! across targets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cfc_bounds::table::TextTable;
use cfc_core::metrics::TripComplexity;
use cfc_core::{Layout, ProcessId, Trace};
use std::collections::BTreeSet;
use std::path::PathBuf;

/// Writes a reproduced table as CSV under `target/cfc-artifacts/`,
/// returning the path. Benches call this so that every regenerated paper
/// artifact also exists in machine-readable form.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_artifact(name: &str, table: &TextTable) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/cfc-artifacts");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    std::fs::write(&path, table.to_csv())?;
    Ok(path)
}

/// The distinct *memory words* a process touched: packed registers count
/// once per word, unpacked registers once each. Under coherent caching
/// this is the remote-access count of the run (Section 1.2), and it is
/// the quantity the [MS93] packing experiment reduces.
pub fn distinct_words(trace: &Trace, layout: &Layout, pid: ProcessId) -> usize {
    let mut words = BTreeSet::new();
    for (op, _) in trace.accesses_by(pid) {
        for r in op.registers(layout) {
            match layout.spec(r).word() {
                Some(w) => words.insert((1u8, w.index() as u64)),
                None => words.insert((0u8, r.index() as u64)),
            };
        }
    }
    words.len()
}

/// Formats a [`TripComplexity`] as `steps/registers` for table cells.
pub fn cell(trip: &TripComplexity) -> String {
    format!("{}/{}", trip.total.steps, trip.total.registers)
}

/// The `n` values used by the table sweeps.
pub const TABLE_NS: [usize; 4] = [16, 256, 4096, 1 << 16];

/// The `l` values used by the table sweeps.
pub const TABLE_LS: [u32; 4] = [1, 2, 4, 8];

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_core::{run_solo, Memory, Op, OpResult, Process, Step, Value};

    #[derive(Clone)]
    struct Toucher {
        ops: Vec<Op>,
        pc: usize,
    }

    impl Process for Toucher {
        fn current(&self) -> Step {
            match self.ops.get(self.pc) {
                Some(op) => Step::Op(op.clone()),
                None => Step::Halt,
            }
        }
        fn advance(&mut self, _: OpResult) {
            self.pc += 1;
        }
    }

    #[test]
    fn distinct_words_collapses_packed_registers() {
        let mut layout = Layout::new();
        let x = layout.register("x", 4, 0);
        let y = layout.register("y", 4, 0);
        let z = layout.bit("z", false);
        let w = layout.pack(&[x, y]).unwrap();
        let memory = Memory::new(layout.clone(), 8).unwrap();
        let proc_ = Toucher {
            ops: vec![
                Op::Write(x, Value::ONE),
                Op::Read(y),
                Op::Read(z),
                Op::ReadWord(w),
            ],
            pc: 0,
        };
        let (trace, _, _) = run_solo(memory, proc_).unwrap();
        // x and y share a word; z stands alone: 2 distinct words.
        assert_eq!(distinct_words(&trace, &layout, ProcessId::new(0)), 2);
    }
}
