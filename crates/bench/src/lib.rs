//! Shared plumbing for the cfc benchmark harness.
//!
//! Each bench target in `benches/` regenerates one table or quantitative
//! claim of Alur & Taubenfeld (PODC 1994): it prints the reproduced
//! artifact (so `cargo bench` output contains the paper's tables,
//! re-derived from measured runs) and then times the underlying
//! measurement pipeline with criterion. This library hosts helpers reused
//! across targets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cfc_bounds::table::TextTable;
use cfc_core::metrics::TripComplexity;
use cfc_core::{Layout, ProcessId, Trace};
use std::collections::BTreeSet;
use std::path::PathBuf;

/// Writes a reproduced table as CSV under `target/cfc-artifacts/`,
/// returning the path. Benches call this so that every regenerated paper
/// artifact also exists in machine-readable form.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_artifact(name: &str, table: &TextTable) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/cfc-artifacts");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    std::fs::write(&path, table.to_csv())?;
    Ok(path)
}

/// The distinct *memory words* a process touched: packed registers count
/// once per word, unpacked registers once each. Under coherent caching
/// this is the remote-access count of the run (Section 1.2), and it is
/// the quantity the [MS93] packing experiment reduces.
pub fn distinct_words(trace: &Trace, layout: &Layout, pid: ProcessId) -> usize {
    let mut words = BTreeSet::new();
    for (op, _) in trace.accesses_by(pid) {
        for r in op.registers(layout) {
            match layout.spec(r).word() {
                Some(w) => words.insert((1u8, w.index() as u64)),
                None => words.insert((0u8, r.index() as u64)),
            };
        }
    }
    words.len()
}

/// Formats a [`TripComplexity`] as `steps/registers` for table cells.
pub fn cell(trip: &TripComplexity) -> String {
    format!("{}/{}", trip.total.steps, trip.total.registers)
}

/// The `n` values used by the table sweeps.
pub const TABLE_NS: [usize; 4] = [16, 256, 4096, 1 << 16];

/// The `l` values used by the table sweeps.
pub const TABLE_LS: [u32; 4] = [1, 2, 4, 8];

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_core::{run_solo, Memory, Op, OpResult, Process, Step, Value};

    #[derive(Clone)]
    struct Toucher {
        ops: Vec<Op>,
        pc: usize,
    }

    impl Process for Toucher {
        fn current(&self) -> Step {
            match self.ops.get(self.pc) {
                Some(op) => Step::Op(op.clone()),
                None => Step::Halt,
            }
        }
        fn advance(&mut self, _: OpResult) {
            self.pc += 1;
        }
    }

    /// Minimal CSV reader matching `TextTable::to_csv`'s escaping rules
    /// (RFC 4180 quoting: fields with `,`/`"`/newline are quoted, quotes
    /// doubled). Test-only: production code never parses the artifacts.
    fn parse_csv(text: &str) -> Vec<Vec<String>> {
        let mut rows = Vec::new();
        let mut row = Vec::new();
        let mut cell = String::new();
        let mut chars = text.chars().peekable();
        let mut quoted = false;
        while let Some(c) = chars.next() {
            if quoted {
                match c {
                    '"' if chars.peek() == Some(&'"') => {
                        chars.next();
                        cell.push('"');
                    }
                    '"' => quoted = false,
                    other => cell.push(other),
                }
            } else {
                match c {
                    '"' => quoted = true,
                    ',' => row.push(std::mem::take(&mut cell)),
                    '\n' => {
                        row.push(std::mem::take(&mut cell));
                        rows.push(std::mem::take(&mut row));
                    }
                    other => cell.push(other),
                }
            }
        }
        if !cell.is_empty() || !row.is_empty() {
            row.push(cell);
            rows.push(row);
        }
        rows
    }

    #[test]
    fn write_artifact_round_trips_a_table_to_csv() {
        let mut table = TextTable::new(["n", "cf steps", "note"])
            .with_title("round-trip artifact");
        table.row(["2", "7", "plain"]);
        table.row(["4096", "7", "comma, inside"]);
        table.row(["65536", "7", "say \"hi\""]);

        let path = write_artifact("test_round_trip", &table).unwrap();
        assert!(path.ends_with("test_round_trip.csv"));
        assert!(
            path.parent().unwrap().ends_with("cfc-artifacts"),
            "artifact must land under target/cfc-artifacts/, got {}",
            path.display()
        );

        let written = std::fs::read_to_string(&path).unwrap();
        assert_eq!(written, table.to_csv());

        let cells = parse_csv(&written);
        assert_eq!(cells[0], vec!["n", "cf steps", "note"]);
        assert_eq!(cells[1], vec!["2", "7", "plain"]);
        assert_eq!(cells[2], vec!["4096", "7", "comma, inside"]);
        assert_eq!(cells[3], vec!["65536", "7", "say \"hi\""]);
        assert_eq!(cells.len(), 4);
    }

    #[test]
    fn write_artifact_overwrites_on_rewrite() {
        let mut first = TextTable::new(["a"]);
        first.row(["1"]);
        let mut second = TextTable::new(["a"]);
        second.row(["2"]);
        write_artifact("test_overwrite", &first).unwrap();
        let path = write_artifact("test_overwrite", &second).unwrap();
        assert_eq!(std::fs::read_to_string(path).unwrap(), second.to_csv());
    }

    #[test]
    fn distinct_words_collapses_packed_registers() {
        let mut layout = Layout::new();
        let x = layout.register("x", 4, 0);
        let y = layout.register("y", 4, 0);
        let z = layout.bit("z", false);
        let w = layout.pack(&[x, y]).unwrap();
        let memory = Memory::new(layout.clone(), 8).unwrap();
        let proc_ = Toucher {
            ops: vec![
                Op::Write(x, Value::ONE),
                Op::Read(y),
                Op::Read(z),
                Op::ReadWord(w),
            ],
            pc: 0,
        };
        let (trace, _, _) = run_solo(memory, proc_).unwrap();
        // x and y share a word; z stands alone: 2 distinct words.
        assert_eq!(distinct_words(&trace, &layout, ProcessId::new(0)), 2);
    }
}
