//! Mutual exclusion and contention detection with measurable
//! contention-free complexity.
//!
//! Implements every Section 2 algorithm of *Alur & Taubenfeld,
//! "Contention-Free Complexity of Shared Memory Algorithms"* (PODC 1994),
//! on top of the [`cfc_core`] execution model:
//!
//! * [`LamportFast`] — Lamport's fast mutual exclusion [Lam87]: constant
//!   contention-free complexity (7 steps, 3 registers) with `Θ(log n)`-bit
//!   registers.
//! * [`Bakery`] and [`Dijkstra`] — the classic baselines ([Dij65] is the
//!   paper's citation for the problem) with `Θ(n)` contention-free cost:
//!   the contrast that motivates the contention-free measure.
//! * [`PetersonTwo`] — Peterson's two-process algorithm over three bits,
//!   the atomicity-1 building block.
//! * [`Tournament`] — the Theorem 3 construction: a `(2^l − 1)`-ary tree
//!   of Lamport nodes (or a binary tree of Peterson nodes at `l = 1`,
//!   the Peterson–Fischer/Kessels tournament), achieving
//!   `O(⌈log n / l⌉)` contention-free step and register complexity.
//! * [`Splitter`] / [`SplitterTree`] — direct contention detectors with
//!   bounded worst-case step complexity (4 steps per `2^l`-ary tree
//!   level); [`ChunkedSplitter`] is a deliberately kept **unsafe** variant
//!   whose torn `x`-write the `cfc-verify` explorer defeats.
//! * [`TasSpin`] — the one-bit test-and-set spin lock: safe and
//!   deadlock-free with zero fairness, the starvation baseline the
//!   fair-cycle liveness checker in `cfc-verify` defeats.
//! * [`MutexDetector`] — the Lemma 1 reduction from mutual exclusion to
//!   contention detection.
//! * [`BrokenDetector`] — an intentionally unsafe detector that the
//!   Lemma 2 merge attack in `cfc-verify` defeats.
//! * [`mutation`] — deliberately planted single-bug variants of the
//!   locks above (dropped doorway, reordered writes, skipped tree
//!   level, off-by-one ticket comparison), the mutants `cfc-verify`'s
//!   checker-sensitivity suite must catch.
//!
//! # Quick start
//!
//! ```
//! use cfc_mutex::{measure, LamportFast, MutexAlgorithm};
//! use cfc_core::ProcessId;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let alg = LamportFast::new(1024);
//! let trip = measure::contention_free_trip(&alg, ProcessId::new(0))?;
//! assert_eq!(trip.total.steps, 7);     // independent of n
//! assert_eq!(trip.total.registers, 3); // x, y, b[0]
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod algorithm;
mod bakery;
mod detect;
mod dijkstra;
mod lamport;
pub mod measure;
pub mod mutation;
mod peterson;
mod splitter;
mod tas_spin;
mod tournament;

pub use algorithm::{LockProcess, MutexAlgorithm, MutexClient, StateNormalizer};
pub use bakery::{Bakery, BakeryLock, TICKET_WIDTH};
pub use dijkstra::{Dijkstra, DijkstraLock};
pub use detect::{
    BrokenDetector, BrokenDetectorProc, DetectionAlgorithm, MutexDetector, MutexDetectorProc,
};
pub use lamport::{LamportFast, LamportLock};
pub use peterson::{PetersonLock, PetersonTwo};
pub use splitter::{ChunkedSplitter, Splitter, SplitterProc, SplitterTree, SplitterTreeProc};
pub use tas_spin::{TasSpin, TasSpinLock};
pub use tournament::{ExitOrder, Tournament, TournamentLock};
