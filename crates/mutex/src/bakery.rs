//! Lamport's bakery algorithm — the classic pre-[Lam87] baseline.
//!
//! The bakery algorithm is first-come-first-served and deadlock-free, but
//! its *contention-free* complexity is Θ(n): even alone, a process reads
//! every other participant's ticket twice (once to choose its own, once
//! to pass the wait loop). It is exactly the kind of algorithm the
//! paper's introduction argues against optimizing for worst-case alone —
//! Lamport's later fast algorithm [Lam87] gets the same safety with a
//! constant contention-free cost.
//!
//! Pseudocode for process `i`:
//!
//! ```text
//! entry: choosing[i] := 1
//!        number[i] := 1 + max_j number[j]
//!        choosing[i] := 0
//!        for j in 0..n:
//!            await choosing[j] = 0
//!            await number[j] = 0 or (number[j], j) > (number[i], i)
//! exit:  number[i] := 0
//! ```
//!
//! Real bakery tickets are unbounded; this simulation bounds them at
//! `2^TICKET_WIDTH − 1`. On overflow the over-wide ticket write surfaces
//! as a structured [`cfc_core::MemoryError::ValueTooWide`] through
//! whichever executor or checker ran the step — never a panic, and never
//! a silent truncation (reachable only under sustained contention far
//! beyond what the tests run).

use std::sync::Arc;

use cfc_core::{
    Layout, Op, OpResult, ProcessId, RegisterId, RegisterSet, StateReader, StateWriter, Step,
    SymmetryGroup, Value,
};

use crate::algorithm::{LockProcess, MutexAlgorithm, StateNormalizer};
use crate::mutation::BakeryMutation;

/// Ticket register width (tickets are bounded in simulation).
pub const TICKET_WIDTH: u32 = 16;

/// Lamport's bakery algorithm for `n` processes.
///
/// # Examples
///
/// ```
/// use cfc_mutex::{measure, Bakery, LamportFast, MutexAlgorithm};
/// use cfc_core::ProcessId;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // The motivation for contention-free complexity, in two lines: both
/// // algorithms are deadlock-free, but alone the bakery pays Θ(n) while
/// // the fast algorithm pays 7.
/// let bakery = measure::contention_free_trip(&Bakery::new(64), ProcessId::new(0))?;
/// let fast = measure::contention_free_trip(&LamportFast::new(64), ProcessId::new(0))?;
/// assert!(bakery.total.steps > 100);
/// assert_eq!(fast.total.steps, 7);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Bakery {
    n: usize,
    layout: Layout,
    choosing: Arc<[RegisterId]>,
    number: Arc<[RegisterId]>,
    mutation: Option<BakeryMutation>,
}

impl Bakery {
    /// Creates the algorithm for `n ≥ 1` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one process");
        let mut layout = Layout::new();
        let choosing: Arc<[RegisterId]> = layout.bits("choosing", n, false).into();
        let number: Arc<[RegisterId]> = layout.array("number", n, TICKET_WIDTH, 0).into();
        Bakery {
            n,
            layout,
            choosing,
            number,
            mutation: None,
        }
    }

    /// Plants a deliberate bug (a test-only fixture for the
    /// checker-sensitivity suite; see [`crate::mutation`]).
    #[must_use]
    pub fn with_mutation(mut self, mutation: BakeryMutation) -> Self {
        self.mutation = Some(mutation);
        self
    }
}

impl MutexAlgorithm for Bakery {
    type Lock = BakeryLock;

    fn name(&self) -> &str {
        "bakery"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn atomicity(&self) -> u32 {
        TICKET_WIDTH
    }

    fn layout(&self) -> Layout {
        self.layout.clone()
    }

    fn lock(&self, pid: ProcessId) -> BakeryLock {
        assert!(pid.index() < self.n, "pid out of range");
        BakeryLock {
            choosing: Arc::clone(&self.choosing),
            number: Arc::clone(&self.number),
            me: pid.index() as u32,
            pc: Pc::Idle,
            max_seen: 0,
            my_number: 0,
            mutation: self.mutation,
        }
    }

    /// Every customer runs the same index-oblivious program text (its
    /// index is part of the lock's local state), so the full group is
    /// sound for the permutation-invariant exhaustive checks.
    fn symmetry(&self) -> SymmetryGroup {
        SymmetryGroup::full(self.n)
    }

    /// Ticket-shifting normalizer: bakery tickets grow without bound
    /// under the sustained contention of cycling clients, so the raw
    /// state graph is infinite. Ticket *values* are behaviorally inert,
    /// though — every comparison the algorithm makes is on the relative
    /// order of tickets (with `0` distinguished as "not competing") —
    /// so states that differ by a uniform shift of all live nonzero
    /// tickets are bisimilar. The normalizer
    ///
    /// 1. zeroes dead ticket scratch (`max_seen` outside the scan,
    ///    `my_number` outside its assignment-to-last-use range), and
    /// 2. shifts every live nonzero ticket — the `number[]` registers
    ///    plus each lock's live `max_seen`/`my_number` — down uniformly
    ///    so the smallest becomes `1`.
    ///
    /// Reachable normalized tickets are bounded by ~`2n` (at most `n`
    /// competitors, each at most one past the previous maximum), so the
    /// fair-cycle liveness checker terminates on the finite quotient.
    fn liveness_normalizer(&self) -> Option<StateNormalizer<BakeryLock>> {
        let number = Arc::clone(&self.number);
        Some(Box::new(move |clients, values| {
            for c in clients.iter_mut() {
                let lock = c.lock_mut();
                if !matches!(lock.pc, Pc::ScanMax(_)) {
                    lock.max_seen = 0;
                }
                if !matches!(
                    lock.pc,
                    Pc::WriteNumber | Pc::WriteChoosing0 | Pc::WaitChoosing(_) | Pc::WaitNumber(_)
                ) {
                    lock.my_number = 0;
                }
            }
            let mut min = u64::MAX;
            for &r in number.iter() {
                let v = values[r.index()].raw();
                if v != 0 {
                    min = min.min(v);
                }
            }
            for c in clients.iter() {
                for v in [c.lock().max_seen, c.lock().my_number] {
                    if v != 0 {
                        min = min.min(v);
                    }
                }
            }
            if min == u64::MAX || min == 1 {
                return;
            }
            let delta = min - 1;
            for &r in number.iter() {
                let v = values[r.index()].raw();
                if v != 0 {
                    values[r.index()] = Value::new(v - delta);
                }
            }
            for c in clients.iter_mut() {
                let lock = c.lock_mut();
                if lock.max_seen != 0 {
                    lock.max_seen -= delta;
                }
                if lock.my_number != 0 {
                    lock.my_number -= delta;
                }
            }
        }))
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Pc {
    Idle,
    /// `choosing[i] := 1`.
    WriteChoosing1,
    /// Reading `number[j]` while computing the max.
    ScanMax(u32),
    /// `number[i] := max + 1`.
    WriteNumber,
    /// `choosing[i] := 0`.
    WriteChoosing0,
    /// `await choosing[j] = 0`.
    WaitChoosing(u32),
    /// `await number[j] = 0 or (number[j], j) > (number[i], i)`.
    WaitNumber(u32),
    EntryDone,
    /// exit: `number[i] := 0`.
    ExitWriteNumber,
    ExitDone,
}

/// The per-process entry/exit state machine of [`Bakery`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BakeryLock {
    choosing: Arc<[RegisterId]>,
    number: Arc<[RegisterId]>,
    me: u32,
    pc: Pc,
    max_seen: u64,
    my_number: u64,
    /// Test-only planted bug; `None` in every production construction.
    mutation: Option<BakeryMutation>,
}

impl BakeryLock {
    fn n(&self) -> u32 {
        self.number.len() as u32
    }
}

impl LockProcess for BakeryLock {
    fn begin_entry(&mut self) {
        self.max_seen = 0;
        self.pc = if self.mutation == Some(BakeryMutation::DropDoorway) {
            Pc::ScanMax(0)
        } else {
            Pc::WriteChoosing1
        };
    }

    fn begin_exit(&mut self) {
        debug_assert_eq!(self.pc, Pc::EntryDone, "exit before entry completed");
        self.pc = if self.mutation == Some(BakeryMutation::SkipExitReset) {
            Pc::ExitDone
        } else {
            Pc::ExitWriteNumber
        };
    }

    fn current(&self) -> Step {
        match self.pc {
            Pc::Idle | Pc::EntryDone | Pc::ExitDone => Step::Halt,
            Pc::WriteChoosing1 => {
                Step::Op(Op::Write(self.choosing[self.me as usize], Value::ONE))
            }
            Pc::ScanMax(j) => Step::Op(Op::Read(self.number[j as usize])),
            Pc::WriteNumber => Step::Op(Op::Write(
                self.number[self.me as usize],
                Value::new(self.my_number),
            )),
            Pc::WriteChoosing0 => {
                Step::Op(Op::Write(self.choosing[self.me as usize], Value::ZERO))
            }
            Pc::WaitChoosing(j) => Step::Op(Op::Read(self.choosing[j as usize])),
            Pc::WaitNumber(j) => Step::Op(Op::Read(self.number[j as usize])),
            Pc::ExitWriteNumber => {
                Step::Op(Op::Write(self.number[self.me as usize], Value::ZERO))
            }
        }
    }

    fn advance(&mut self, result: OpResult) {
        self.pc = match self.pc {
            Pc::Idle | Pc::EntryDone | Pc::ExitDone => {
                unreachable!("advance called outside a phase")
            }
            Pc::WriteChoosing1 => Pc::ScanMax(0),
            Pc::ScanMax(j) => {
                self.max_seen = self.max_seen.max(result.value().raw());
                if j + 1 < self.n() {
                    Pc::ScanMax(j + 1)
                } else {
                    // May exceed the ticket bound; the WriteNumber step
                    // then fails with a structured
                    // `MemoryError::ValueTooWide` instead of panicking.
                    self.my_number = self.max_seen + 1;
                    Pc::WriteNumber
                }
            }
            Pc::WriteNumber => {
                if self.mutation == Some(BakeryMutation::DropDoorway) {
                    Pc::WaitNumber(0) // no choosing gate to clear or await
                } else {
                    Pc::WriteChoosing0
                }
            }
            Pc::WriteChoosing0 => Pc::WaitChoosing(0),
            Pc::WaitChoosing(j) => {
                if result.bit() {
                    Pc::WaitChoosing(j) // j is still choosing
                } else {
                    Pc::WaitNumber(j)
                }
            }
            Pc::WaitNumber(j) => {
                let them = result.value().raw();
                let ahead_of_us = if self.mutation == Some(BakeryMutation::FcfsOffByOne) {
                    // Off-by-one: `<=` on the bare tickets, no id
                    // tie-break — equal tickets deadlock each other.
                    // (Own register excluded, as real implementations
                    // skip j = i.)
                    them != 0 && u64::from(j) != u64::from(self.me) && them <= self.my_number
                } else {
                    them != 0 && (them, u64::from(j)) < (self.my_number, u64::from(self.me))
                };
                if ahead_of_us {
                    Pc::WaitNumber(j) // j holds an earlier ticket
                } else if j + 1 < self.n() {
                    if self.mutation == Some(BakeryMutation::DropDoorway) {
                        Pc::WaitNumber(j + 1)
                    } else {
                        Pc::WaitChoosing(j + 1)
                    }
                } else {
                    Pc::EntryDone
                }
            }
            Pc::ExitWriteNumber => Pc::ExitDone,
        };
    }

    fn protocol_footprint(&self, out: &mut RegisterSet) -> bool {
        if self.mutation == Some(BakeryMutation::UnderReportScan) {
            // Planted hook bug: a waiter reports only the prefix it has
            // already passed, forgetting the scan suffix it has yet to
            // read and its own exit-time `number[me] := 0` write. The
            // current step's register is still covered (index `j` is in
            // the prefix), so traversal-time footprint checks never
            // fire — only the static future-access lint can see it.
            if let Pc::WaitChoosing(j) | Pc::WaitNumber(j) = self.pc {
                let j = j as usize;
                out.extend(self.choosing[..=j].iter().copied());
                out.extend(self.number[..=j].iter().copied());
                return true;
            }
        }
        out.extend(self.choosing.iter().copied());
        out.extend(self.number.iter().copied());
        true
    }

    // Location: identity + pc, with the ticket scratch (`max_seen`,
    // `my_number`) deliberately projected away. The tickets influence
    // only *written values* and the wait-loop's spin-vs-advance test;
    // the spin branch is a self-loop at the same location, which the
    // congruence contract exempts, so every state sharing this key has
    // the same step footprint and the same non-loop successor set.
    // Keeping the tickets out is what makes the solo control automaton
    // finite despite `TICKET_WIDTH`-bit havoc reads. Mutants keep the
    // hook: the planted bugs perturb footprints and branch conditions
    // per-pc, never per-ticket, so the congruence argument is unchanged
    // — and the hook-lint suite relies on extracting mutant automata.
    fn lock_location(&self) -> Option<u64> {
        let (tag, arg) = match self.pc {
            Pc::Idle => (0u64, 0u64),
            Pc::WriteChoosing1 => (1, 0),
            Pc::ScanMax(j) => (2, u64::from(j)),
            Pc::WriteNumber => (3, 0),
            Pc::WriteChoosing0 => (4, 0),
            Pc::WaitChoosing(j) => (5, u64::from(j)),
            Pc::WaitNumber(j) => (6, u64::from(j)),
            Pc::EntryDone => (7, 0),
            Pc::ExitWriteNumber => (8, 0),
            Pc::ExitDone => (9, 0),
        };
        if self.me >= 1 << 16 || arg >= 1 << 16 {
            return None;
        }
        Some(u64::from(self.me) << 20 | arg << 4 | tag)
    }

    // Packed-store encoding: identity (16) + pc tag (4) + pc arg (16) +
    // max_seen (17) + my_number (17) = 70 bits per lock. Tickets use
    // `TICKET_WIDTH + 1` bits because `my_number = max_seen + 1` can
    // transiently hold `2^TICKET_WIDTH` in the state *before* the
    // over-wide `WriteNumber` step errors out.
    fn pack_lock(&self, w: &mut StateWriter) -> bool {
        if self.mutation.is_some() {
            // Mutants are test-only fixtures; let them fall back to the
            // interned store rather than model their perturbed state here.
            return false;
        }
        let (tag, arg) = match self.pc {
            Pc::Idle => (0u64, 0u64),
            Pc::WriteChoosing1 => (1, 0),
            Pc::ScanMax(j) => (2, u64::from(j)),
            Pc::WriteNumber => (3, 0),
            Pc::WriteChoosing0 => (4, 0),
            Pc::WaitChoosing(j) => (5, u64::from(j)),
            Pc::WaitNumber(j) => (6, u64::from(j)),
            Pc::EntryDone => (7, 0),
            Pc::ExitWriteNumber => (8, 0),
            Pc::ExitDone => (9, 0),
        };
        w.push_bits(u64::from(self.me), 16);
        w.push_bits(tag, 4);
        w.push_bits(arg, 16);
        w.push_bits(self.max_seen, TICKET_WIDTH + 1);
        w.push_bits(self.my_number, TICKET_WIDTH + 1);
        true
    }

    fn unpack_lock(&mut self, r: &mut StateReader<'_>) -> bool {
        if self.mutation.is_some() {
            return false;
        }
        self.me = r.take_bits(16) as u32;
        let tag = r.take_bits(4);
        let arg = r.take_bits(16) as u32;
        self.pc = match tag {
            0 => Pc::Idle,
            1 => Pc::WriteChoosing1,
            2 => Pc::ScanMax(arg),
            3 => Pc::WriteNumber,
            4 => Pc::WriteChoosing0,
            5 => Pc::WaitChoosing(arg),
            6 => Pc::WaitNumber(arg),
            7 => Pc::EntryDone,
            8 => Pc::ExitWriteNumber,
            _ => Pc::ExitDone,
        };
        self.max_seen = r.take_bits(TICKET_WIDTH + 1);
        self.my_number = r.take_bits(TICKET_WIDTH + 1);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure;
    use cfc_core::{Process, RoundRobin, Scheduler, Section};

    #[test]
    fn contention_free_cost_is_linear_in_n() {
        for n in [2usize, 4, 8, 16] {
            let alg = Bakery::new(n);
            let trip = measure::contention_free_trip(&alg, ProcessId::new(0)).unwrap();
            // 1 (choosing) + n (scan) + 2 (number, choosing) + 2n (waits)
            // + 1 (exit) = 3n + 4.
            assert_eq!(trip.total.steps, 3 * n as u64 + 4, "n={n}");
            // choosing[i], number[i], all other choosing + number bits.
            assert_eq!(trip.total.registers, 2 * n as u64, "n={n}");
        }
    }

    #[test]
    fn fifo_order_under_round_robin() {
        // All clients complete; mutual exclusion holds throughout.
        let n = 3usize;
        let alg = Bakery::new(n);
        let mut exec = cfc_core::Executor::new(
            alg.memory().unwrap(),
            (0..n as u32)
                .map(|i| alg.client_with_cs(ProcessId::new(i), 2, 1))
                .collect::<Vec<_>>(),
        );
        let mut sched = RoundRobin::new();
        loop {
            let runnable = exec.runnable();
            if runnable.is_empty() {
                break;
            }
            let pid = sched.pick(&runnable).unwrap();
            exec.step_process(pid).unwrap();
            let in_cs = (0..n as u32)
                .filter(|&i| {
                    exec.process(ProcessId::new(i)).section() == Some(Section::Critical)
                })
                .count();
            assert!(in_cs <= 1, "mutual exclusion violated");
        }
        assert!(exec.quiescent());
    }

    #[test]
    fn solo_trips_reset_state() {
        let alg = Bakery::new(4);
        let (_, _, memory) =
            cfc_core::run_solo(alg.memory().unwrap(), alg.client(ProcessId::new(2), 3)).unwrap();
        for &r in alg.number.iter() {
            assert_eq!(memory.get(r), Value::ZERO);
        }
        for &r in alg.choosing.iter() {
            assert_eq!(memory.get(r), Value::ZERO);
        }
    }

    #[test]
    fn normalizer_equates_uniformly_shifted_ticket_states() {
        let alg = Bakery::new(2);
        let norm = alg.liveness_normalizer().unwrap();
        let build = |t0: u64, t1: u64| {
            let mut clients = vec![
                alg.client_cycling(ProcessId::new(0), 1),
                alg.client_cycling(ProcessId::new(1), 1),
            ];
            clients[0].lock_mut().pc = Pc::WaitNumber(1);
            clients[0].lock_mut().my_number = t0;
            clients[1].lock_mut().pc = Pc::WaitNumber(0);
            clients[1].lock_mut().my_number = t1;
            let mut values = alg.memory().unwrap().snapshot().to_vec();
            values[alg.number[0].index()] = Value::new(t0);
            values[alg.number[1].index()] = Value::new(t1);
            (clients, values)
        };
        let (mut high, mut high_vals) = build(3, 4);
        let (mut low, mut low_vals) = build(1, 2);
        norm(&mut high, &mut high_vals);
        norm(&mut low, &mut low_vals);
        assert_eq!(high, low);
        assert_eq!(high_vals, low_vals);
        assert_eq!(high_vals[alg.number[0].index()], Value::ONE);
    }

    #[test]
    fn normalizer_zeroes_dead_ticket_scratch() {
        let alg = Bakery::new(2);
        let norm = alg.liveness_normalizer().unwrap();
        let mut clients = vec![
            alg.client_cycling(ProcessId::new(0), 1),
            alg.client_cycling(ProcessId::new(1), 1),
        ];
        // Client 0 sits at the critical-section boundary with stale
        // ticket scratch from an old trip; it is dead state.
        clients[0].lock_mut().pc = Pc::EntryDone;
        clients[0].lock_mut().my_number = 7;
        clients[0].lock_mut().max_seen = 6;
        let mut values = alg.memory().unwrap().snapshot().to_vec();
        norm(&mut clients, &mut values);
        assert_eq!(clients[0].lock().my_number, 0);
        assert_eq!(clients[0].lock().max_seen, 0);
        // Live scratch is preserved (modulo the shift): mid-scan
        // max_seen survives.
        clients[1].lock_mut().pc = Pc::ScanMax(1);
        clients[1].lock_mut().max_seen = 1;
        norm(&mut clients, &mut values);
        assert_eq!(clients[1].lock().max_seen, 1);
    }

    #[test]
    fn ticket_overflow_is_a_structured_error() {
        use cfc_core::{ExecError, MemoryError};
        let alg = Bakery::new(2);
        // Drive client 0 to the ticket write with a ticket one past the
        // bound — exactly the state a saturated scan produces. The write
        // must fail with a structured error, not panic or truncate.
        let mut client = alg.client(ProcessId::new(0), 1);
        client.lock_mut().pc = Pc::WriteNumber;
        client.lock_mut().my_number = 1 << TICKET_WIDTH;
        let mut exec = cfc_core::Executor::new(alg.memory().unwrap(), vec![client]);
        let err = exec.step_process(ProcessId::new(0)).unwrap_err();
        match err {
            ExecError::Memory(MemoryError::ValueTooWide { register, width, value }) => {
                assert_eq!(register, alg.number[0]);
                assert_eq!(width, TICKET_WIDTH);
                assert_eq!(value, Value::new(1 << TICKET_WIDTH));
            }
            other => panic!("expected ValueTooWide, got {other:?}"),
        }
    }

    #[test]
    fn overflowing_scan_reaches_the_failing_write() {
        // A scan over a saturated peer ticket computes max + 1 without
        // panicking; the overflow only surfaces at the write itself.
        let alg = Bakery::new(2);
        let mut client = alg.client(ProcessId::new(0), 1);
        client.lock_mut().pc = Pc::ScanMax(1);
        client.lock_mut().max_seen = (1 << TICKET_WIDTH) - 1;
        client.advance(OpResult::Value(Value::ZERO));
        assert_eq!(client.lock().pc, Pc::WriteNumber);
        assert_eq!(client.lock().my_number, 1 << TICKET_WIDTH);
    }

    #[test]
    fn pack_round_trips_onto_any_participant() {
        let alg = Bakery::new(3);
        let mut client = alg.client_cycling(ProcessId::new(2), 1);
        client.lock_mut().pc = Pc::WaitNumber(1);
        client.lock_mut().my_number = 5;
        client.lock_mut().max_seen = 4;
        let mut w = StateWriter::new();
        assert!(cfc_core::Process::pack_state(&client, &mut w));
        let bytes = w.finish();
        // Restore onto a clone of a *different* participant: identity is
        // part of the packed payload.
        let mut restored = alg.client_cycling(ProcessId::new(0), 1);
        let mut r = StateReader::new(&bytes);
        assert!(cfc_core::Process::unpack_state(&mut restored, &mut r));
        assert_eq!(restored, client);
        // Mutants decline packing and fall back to interning.
        let mutant = Bakery::new(2).with_mutation(crate::mutation::BakeryMutation::SkipExitReset);
        let mut w = StateWriter::new();
        assert!(!cfc_core::Process::pack_state(
            &mutant.client(ProcessId::new(0), 1),
            &mut w
        ));
    }

    #[test]
    fn tickets_grow_across_overlapping_trips() {
        // Sequential but overlapping ticket numbers: second process takes
        // ticket 1 after first reset its number; tickets restart at 1.
        let alg = Bakery::new(2);
        let (trace, _, _) = cfc_core::run_sequential(
            alg.memory().unwrap(),
            vec![
                alg.client(ProcessId::new(0), 1),
                alg.client(ProcessId::new(1), 1),
            ],
        )
        .unwrap();
        // Both processes wrote ticket 1 (no overlap in sequential runs).
        let tickets: Vec<u64> = trace
            .iter()
            .filter_map(|e| e.access())
            .filter_map(|(op, _)| match op {
                Op::Write(r, v)
                    if alg.number.contains(r) && v.raw() != 0 =>
                {
                    Some(v.raw())
                }
                _ => None,
            })
            .collect();
        assert_eq!(tickets, vec![1, 1]);
    }
}
