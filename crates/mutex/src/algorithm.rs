//! Traits tying mutual-exclusion algorithms to the execution model.

use cfc_core::{
    Layout, Memory, MemoryError, OpResult, Process, ProcessId, RegisterSet, Section,
    StateReader, StateWriter, Step, SymmetryGroup, Value,
};

/// A global-state abstraction used by the fair-cycle liveness checker in
/// `cfc-verify`: a function rewriting (process states, register values)
/// in place to a canonical representative of a *behavioral* equivalence
/// class.
///
/// Contract: the rewrite must be a bisimulation that preserves sections,
/// outputs, and statuses — two states with the same normal form must
/// admit the same (normalized) successors under every process step. The
/// checker applies it to every explored state, which turns algorithms
/// with unbounded auxiliary counters (bakery tickets) into finite
/// quotients so that cycle detection terminates. Safety and progress
/// checking never use it.
pub type StateNormalizer<L> =
    Box<dyn Fn(&mut [MutexClient<L>], &mut [Value]) + Send + Sync>;

/// The entry/exit state machine of one mutual-exclusion participant.
///
/// A `LockProcess` exposes the algorithm's *entry code* and *exit code* as
/// two resumable phases. Within a phase it follows the same peek/advance
/// protocol as [`Process`]; [`Step::Halt`] signals that the current phase
/// has completed (the process is at the critical-section boundary after
/// entry, or back at the remainder boundary after exit).
///
/// Lock processes are composable: the tournament construction of Theorem 3
/// treats each tree node as a nested `LockProcess`.
pub trait LockProcess {
    /// Resets the state machine to the start of the entry code.
    fn begin_entry(&mut self);

    /// Resets the state machine to the start of the exit code.
    ///
    /// Callers invoke this only after the entry phase has completed (the
    /// process holds the lock).
    fn begin_exit(&mut self);

    /// The next step of the current phase; [`Step::Halt`] when the phase is
    /// complete. Must be pure, like [`Process::current`].
    fn current(&self) -> Step;

    /// Advances past the step returned by [`LockProcess::current`].
    fn advance(&mut self, result: OpResult);

    /// Writes the set of every register this lock may access in **any**
    /// phase (entry or exit, over any number of acquire/release cycles)
    /// into `out`, returning `true`; returns `false` (the default) when no
    /// such static bound is known.
    ///
    /// [`MutexClient`] forwards this as its
    /// [`Process::may_access`] over-approximation, which lets the
    /// partial-order-reduced explorer treat clients operating on disjoint
    /// register sets — e.g. processes climbing disjoint subtrees of a
    /// tournament — as independent.
    fn protocol_footprint(&self, _out: &mut RegisterSet) -> bool {
        false
    }

    /// A compact key for the lock's *control location*, forwarded (packed
    /// together with the client's own phase fields) as the client's
    /// [`Process::location`].
    ///
    /// Same contract as [`Process::location`]: states sharing a key must
    /// have the same current-step footprint and the same successor-key
    /// set (modulo self-loops), so any data that only influences written
    /// values or loop-exit tests — bakery's ticket scratch, say — must be
    /// projected away, and that projection is exactly what keeps the
    /// solo-execution control automaton finite for locks that read
    /// unbounded tickets. Defaults to `None`: the analysis then keys on
    /// the client's full state, which stays finite for locks whose local
    /// state is control-only (Peterson nodes, Lamport's pc-driven scan,
    /// whole tournament paths).
    fn lock_location(&self) -> Option<u64> {
        None
    }

    /// Packs every varying part of the lock's local state into `w`,
    /// returning `true`; returns `false` (the default) when the lock does
    /// not support bit-packing, in which case the packed state store in
    /// `cfc-verify` falls back to interning opaque clones.
    ///
    /// Same contract as [`Process::pack_state`]: the bit count must be
    /// fixed across every reachable state of every participant, and the
    /// lock's own *identity* (its side, its ticket slot) must be packed,
    /// because the symmetry-reduced store unpacks states onto a clone of
    /// an arbitrary participant.
    fn pack_lock(&self, _w: &mut StateWriter) -> bool {
        false
    }

    /// Restores a state packed by [`LockProcess::pack_lock`] onto `self`
    /// (a clone of any participant), returning `true`; must return
    /// `false` (reading nothing) exactly when `pack_lock` does.
    fn unpack_lock(&mut self, _r: &mut StateReader<'_>) -> bool {
        false
    }
}

/// A mutual-exclusion algorithm for `n` processes: a recipe producing the
/// shared register [`Layout`] and one [`LockProcess`] per participant.
///
/// The layout is built once per algorithm instance so that every
/// participant's lock refers to the same register ids.
pub trait MutexAlgorithm {
    /// The per-participant lock state machine.
    type Lock: LockProcess;

    /// A human-readable algorithm name for reports.
    fn name(&self) -> &str;

    /// The number of participating processes.
    fn n(&self) -> usize;

    /// The atomicity `l` this algorithm requires: the width of the widest
    /// register (or packed word) it accesses in one atomic step.
    fn atomicity(&self) -> u32;

    /// The shared register layout.
    fn layout(&self) -> Layout;

    /// The lock state machine for participant `pid` (`pid.index() < n`).
    fn lock(&self, pid: ProcessId) -> Self::Lock;

    /// The process-symmetry group of this algorithm, consumed by the
    /// symmetry-reduced explorer in `cfc-verify`.
    ///
    /// Defaults to the trivial group. Stepping is index-oblivious in this
    /// model (a client's next op is a pure function of its local state),
    /// so algorithms may soundly declare
    /// [`SymmetryGroup::full`] whenever the exhaustive checks applied to
    /// them are permutation-invariant; for clients whose lock state embeds
    /// a distinct identity the quotient rarely merges anything, but the
    /// declaration keeps the differential harness meaningful across both
    /// problem families.
    fn symmetry(&self) -> SymmetryGroup {
        SymmetryGroup::trivial(self.n())
    }

    /// A fresh shared memory for this algorithm.
    ///
    /// # Errors
    ///
    /// Propagates layout/atomicity validation errors (none occur for a
    /// well-formed algorithm).
    fn memory(&self) -> Result<Memory, MemoryError> {
        Memory::new(self.layout(), self.atomicity())
    }

    /// A ready-to-run client for participant `pid` performing `trips`
    /// critical-section entries.
    fn client(&self, pid: ProcessId, trips: u32) -> MutexClient<Self::Lock> {
        MutexClient::new(self.lock(pid), trips)
    }

    /// A client spending `cs_steps` internal steps inside each critical
    /// section.
    ///
    /// Safety checkers use `cs_steps ≥ 1` so that occupancy of the
    /// critical section is an observable state: with zero dwell steps a
    /// client passes through [`Section::Critical`] instantaneously and a
    /// mutual-exclusion monitor would never see two occupants.
    fn client_with_cs(
        &self,
        pid: ProcessId,
        trips: u32,
        cs_steps: u32,
    ) -> MutexClient<Self::Lock> {
        MutexClient::with_cs_steps(self.lock(pid), trips, cs_steps)
    }

    /// A client that re-enters its critical section **forever** (spending
    /// `cs_steps` internal steps inside each occupancy), never reaching
    /// the remainder. Cycling clients are what give the global state
    /// graph genuine infinite behaviors, so the fair-cycle liveness
    /// checker in `cfc-verify` runs on them: starvation only shows up
    /// against competitors that keep coming back.
    fn client_cycling(&self, pid: ProcessId, cs_steps: u32) -> MutexClient<Self::Lock> {
        MutexClient::cycling(self.lock(pid), cs_steps)
    }

    /// An optional [`StateNormalizer`] making the cycling-client state
    /// graph finite for algorithms whose auxiliary state grows without
    /// bound under sustained contention. Defaults to `None` (most locks
    /// are finite-state already); [`crate::Bakery`] supplies a
    /// ticket-shifting normalizer.
    fn liveness_normalizer(&self) -> Option<StateNormalizer<Self::Lock>> {
        None
    }
}

/// Drives a [`LockProcess`] through `trips` remainder→entry→critical→exit
/// cycles, reporting its [`Section`] to the executor.
///
/// The client spends a configurable number of internal steps inside the
/// critical section (default 0: the paper's definitions assume processes
/// take no shared-memory steps in the critical section).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MutexClient<L> {
    lock: L,
    section: Section,
    trips_remaining: u32,
    cs_steps: u32,
    cs_left: u32,
    /// Cycling mode: re-enter forever, never decrementing the trip count.
    forever: bool,
    /// Weak-fairness bookkeeping for cycling clients: has this client
    /// taken at least one step of its *current* entry attempt? Only
    /// maintained in cycling mode so that finite-trip state spaces (and
    /// their exhaustively asserted sizes) are unchanged.
    engaged: bool,
}

impl<L: LockProcess> MutexClient<L> {
    /// Creates a client that performs `trips` critical-section entries.
    pub fn new(lock: L, trips: u32) -> Self {
        Self::with_cs_steps(lock, trips, 0)
    }

    /// Creates a client spending `cs_steps` internal steps per critical
    /// section.
    pub fn with_cs_steps(mut lock: L, trips: u32, cs_steps: u32) -> Self {
        let section = if trips > 0 {
            lock.begin_entry();
            Section::Entry
        } else {
            Section::Remainder
        };
        let mut client = MutexClient {
            lock,
            section,
            trips_remaining: trips,
            cs_steps,
            cs_left: cs_steps,
            forever: false,
            engaged: false,
        };
        client.settle();
        client
    }

    /// Creates a client that cycles through its sections **forever**
    /// (see [`MutexAlgorithm::client_cycling`]).
    pub fn cycling(lock: L, cs_steps: u32) -> Self {
        let mut client = Self::with_cs_steps(lock, 1, cs_steps);
        client.forever = true;
        client
    }

    /// The wrapped lock.
    pub fn lock(&self) -> &L {
        &self.lock
    }

    /// Mutable access to the wrapped lock — for [`StateNormalizer`]s
    /// only, which must rewrite lock state to a behaviorally equivalent
    /// normal form (see the type's contract).
    pub fn lock_mut(&mut self) -> &mut L {
        &mut self.lock
    }

    /// Whether this client cycles forever (never reaches the remainder).
    pub fn is_cycling(&self) -> bool {
        self.forever
    }

    /// Whether a cycling client has taken at least one step of its
    /// current entry attempt. The liveness checker starts counting
    /// bypasses only once the waiter is engaged: before its first entry
    /// step the algorithm cannot possibly know the client exists, so
    /// "overtaking" it is meaningless. Always `false` for finite-trip
    /// clients.
    pub fn engaged(&self) -> bool {
        self.engaged
    }

    /// The number of critical-section entries still to perform (including
    /// any trip in progress).
    pub fn trips_remaining(&self) -> u32 {
        self.trips_remaining
    }

    /// Resolves phase completions eagerly so that `current()` stays pure:
    /// whenever the lock reports `Halt` within a phase, move to the next
    /// section.
    fn settle(&mut self) {
        loop {
            match self.section {
                Section::Entry => {
                    if matches!(self.lock.current(), Step::Halt) {
                        self.section = Section::Critical;
                        self.cs_left = self.cs_steps;
                        continue;
                    }
                }
                Section::Critical => {
                    if self.cs_left == 0 {
                        self.lock.begin_exit();
                        self.section = Section::Exit;
                        continue;
                    }
                }
                Section::Exit => {
                    if matches!(self.lock.current(), Step::Halt) {
                        if !self.forever {
                            self.trips_remaining -= 1;
                        }
                        if self.trips_remaining > 0 {
                            self.lock.begin_entry();
                            self.section = Section::Entry;
                            self.engaged = false;
                        } else {
                            self.section = Section::Remainder;
                        }
                        continue;
                    }
                }
                Section::Remainder => {}
            }
            break;
        }
    }
}

impl<L: LockProcess> Process for MutexClient<L> {
    fn current(&self) -> Step {
        match self.section {
            Section::Remainder => Step::Halt,
            Section::Critical => Step::Internal,
            Section::Entry | Section::Exit => self.lock.current(),
        }
    }

    fn advance(&mut self, result: OpResult) {
        match self.section {
            Section::Remainder => unreachable!("halted client advanced"),
            Section::Critical => {
                debug_assert!(self.cs_left > 0);
                self.cs_left -= 1;
            }
            Section::Entry | Section::Exit => {
                if self.forever && self.section == Section::Entry {
                    self.engaged = true;
                }
                self.lock.advance(result)
            }
        }
        self.settle();
    }

    fn section(&self) -> Option<Section> {
        Some(self.section)
    }

    fn location(&self) -> Option<u64> {
        // Pack the client's own phase fields under the lock's location
        // key. `cs_steps` is constant across a system and so carries no
        // information; everything else that varies is included. Field
        // overflow declines the key rather than aliasing distinct
        // states (aliasing would break the location congruence contract
        // and surface as lint findings).
        let lock = self.lock.lock_location()?;
        if lock >= 1 << 40 || self.trips_remaining >= 1 << 10 || self.cs_left >= 1 << 10 {
            return None;
        }
        let tag = match self.section {
            Section::Remainder => 0u64,
            Section::Entry => 1,
            Section::Critical => 2,
            Section::Exit => 3,
        };
        Some(
            lock << 24
                | u64::from(self.trips_remaining) << 14
                | u64::from(self.cs_left) << 4
                | tag << 2
                | u64::from(self.forever) << 1
                | u64::from(self.engaged),
        )
    }

    fn may_access(&self, out: &mut RegisterSet) -> bool {
        if self.section == Section::Remainder {
            // All trips done: the client never touches shared memory again.
            return true;
        }
        // The lock's static protocol footprint covers every remaining
        // entry/exit cycle, so it stays a sound over-approximation for
        // multi-trip clients too.
        self.lock.protocol_footprint(out)
    }

    fn pack_state(&self, w: &mut StateWriter) -> bool {
        let tag = match self.section {
            Section::Remainder => 0u64,
            Section::Entry => 1,
            Section::Critical => 2,
            Section::Exit => 3,
        };
        w.push_bits(tag, 2);
        w.push_bits(u64::from(self.trips_remaining), 32);
        w.push_bits(u64::from(self.cs_steps), 32);
        w.push_bits(u64::from(self.cs_left), 32);
        w.push_bits(u64::from(self.forever), 1);
        w.push_bits(u64::from(self.engaged), 1);
        self.lock.pack_lock(w)
    }

    fn unpack_state(&mut self, r: &mut StateReader<'_>) -> bool {
        let section = match r.take_bits(2) {
            0 => Section::Remainder,
            1 => Section::Entry,
            2 => Section::Critical,
            _ => Section::Exit,
        };
        let trips_remaining = r.take_bits(32) as u32;
        let cs_steps = r.take_bits(32) as u32;
        let cs_left = r.take_bits(32) as u32;
        let forever = r.take_bits(1) != 0;
        let engaged = r.take_bits(1) != 0;
        if !self.lock.unpack_lock(r) {
            return false;
        }
        self.section = section;
        self.trips_remaining = trips_remaining;
        self.cs_steps = cs_steps;
        self.cs_left = cs_left;
        self.forever = forever;
        self.engaged = engaged;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_core::{Op, RegisterId, Value};

    /// A trivial lock: entry = one write of 1, exit = one write of 0.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct ToyLock {
        reg: RegisterId,
        pc: u8, // 0 idle, 1 entry-write, 2 entry-done, 3 exit-write, 4 exit-done
    }

    impl LockProcess for ToyLock {
        fn begin_entry(&mut self) {
            self.pc = 1;
        }
        fn begin_exit(&mut self) {
            self.pc = 3;
        }
        fn current(&self) -> Step {
            match self.pc {
                1 => Step::Op(Op::Write(self.reg, Value::ONE)),
                3 => Step::Op(Op::Write(self.reg, Value::ZERO)),
                _ => Step::Halt,
            }
        }
        fn advance(&mut self, _: OpResult) {
            self.pc += 1;
        }
    }

    fn toy() -> ToyLock {
        ToyLock {
            reg: RegisterId::new(0),
            pc: 0,
        }
    }

    #[test]
    fn zero_trips_is_immediately_done() {
        let client = MutexClient::new(toy(), 0);
        assert_eq!(client.current(), Step::Halt);
        assert_eq!(client.section(), Some(Section::Remainder));
    }

    #[test]
    fn one_trip_walks_all_sections() {
        let mut client = MutexClient::new(toy(), 1);
        assert_eq!(client.section(), Some(Section::Entry));
        assert!(matches!(client.current(), Step::Op(_)));
        client.advance(OpResult::None); // entry write done -> critical (0 cs steps) -> exit begins
        assert_eq!(client.section(), Some(Section::Exit));
        client.advance(OpResult::None); // exit write done -> remainder
        assert_eq!(client.section(), Some(Section::Remainder));
        assert_eq!(client.current(), Step::Halt);
        assert_eq!(client.trips_remaining(), 0);
    }

    #[test]
    fn cs_steps_are_internal() {
        let mut client = MutexClient::with_cs_steps(toy(), 1, 2);
        client.advance(OpResult::None); // entry done
        assert_eq!(client.section(), Some(Section::Critical));
        assert_eq!(client.current(), Step::Internal);
        client.advance(OpResult::None);
        assert_eq!(client.current(), Step::Internal);
        client.advance(OpResult::None);
        assert_eq!(client.section(), Some(Section::Exit));
    }

    #[test]
    fn cycling_client_never_reaches_remainder() {
        let mut client = MutexClient::cycling(toy(), 0);
        assert!(client.is_cycling());
        assert!(!client.engaged());
        assert_eq!(client.section(), Some(Section::Entry));
        for round in 0..8 {
            // Entry step: one write, after which the client is engaged
            // until the next attempt begins.
            assert!(matches!(client.current(), Step::Op(_)), "round {round}");
            client.advance(OpResult::None); // entry done -> exit (0 cs steps)
            assert_eq!(client.section(), Some(Section::Exit));
            assert!(client.engaged());
            client.advance(OpResult::None); // exit done -> fresh entry
            assert_eq!(client.section(), Some(Section::Entry));
            assert!(!client.engaged(), "new attempt resets engagement");
        }
        // Finite-trip clients never report engagement.
        let mut finite = MutexClient::new(toy(), 2);
        finite.advance(OpResult::None);
        assert!(!finite.engaged());
        assert!(!finite.is_cycling());
    }

    #[test]
    fn multiple_trips_loop_back_to_entry() {
        let mut client = MutexClient::new(toy(), 2);
        client.advance(OpResult::None); // trip 1 entry
        client.advance(OpResult::None); // trip 1 exit -> trip 2 entry
        assert_eq!(client.section(), Some(Section::Entry));
        assert_eq!(client.trips_remaining(), 1);
        client.advance(OpResult::None);
        client.advance(OpResult::None);
        assert_eq!(client.current(), Step::Halt);
    }
}
