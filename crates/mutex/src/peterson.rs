//! Peterson's two-process mutual exclusion algorithm over three shared
//! bits.
//!
//! This is the atomicity-1 building block of the tournament construction
//! (the binary-tree idea is due to Peterson & Fischer [PF77]; Kessels
//! [Kes82] gives the classic bit-only tournament). Pseudocode for process
//! `i ∈ {0, 1}`, with `j = 1 − i`:
//!
//! ```text
//! entry: flag[i] := 1
//!        turn := j
//!        while flag[j] = 1 and turn = j { }
//! exit:  flag[i] := 0
//! ```
//!
//! Contention-free entry costs 3 accesses (`flag[i]`, `turn`, `flag[j]`)
//! and exit costs 1, touching 3 distinct bits.

use cfc_core::{
    Layout, Op, OpResult, ProcessId, RegisterId, RegisterSet, StateReader, StateWriter, Step,
    SymmetryGroup, Value,
};

use crate::algorithm::{LockProcess, MutexAlgorithm};
use crate::mutation::PetersonMutation;

/// Peterson's algorithm for exactly two processes, using three shared bits.
#[derive(Clone, Debug)]
pub struct PetersonTwo {
    layout: Layout,
    flags: [RegisterId; 2],
    turn: RegisterId,
    mutation: Option<PetersonMutation>,
}

impl PetersonTwo {
    /// Creates the two-process algorithm.
    pub fn new() -> Self {
        let mut layout = Layout::new();
        let f0 = layout.bit("flag[0]", false);
        let f1 = layout.bit("flag[1]", false);
        let turn = layout.bit("turn", false);
        PetersonTwo {
            layout,
            flags: [f0, f1],
            turn,
            mutation: None,
        }
    }

    /// Plants a deliberate bug (a test-only fixture for the
    /// checker-sensitivity suite; see [`crate::mutation`]).
    #[must_use]
    pub fn with_mutation(mut self, mutation: PetersonMutation) -> Self {
        self.mutation = Some(mutation);
        self
    }
}

impl Default for PetersonTwo {
    fn default() -> Self {
        Self::new()
    }
}

impl MutexAlgorithm for PetersonTwo {
    type Lock = PetersonLock;

    fn name(&self) -> &str {
        "peterson-2"
    }

    fn n(&self) -> usize {
        2
    }

    fn atomicity(&self) -> u32 {
        1
    }

    fn layout(&self) -> Layout {
        self.layout.clone()
    }

    fn lock(&self, pid: ProcessId) -> PetersonLock {
        assert!(pid.index() < 2, "pid out of range");
        let mut lock = PetersonLock::new(self.flags, self.turn, pid.index());
        lock.mutation = self.mutation;
        lock
    }

    /// Both sides run the same index-oblivious program text (the side is
    /// part of the lock's local state), so the full group is sound for
    /// the permutation-invariant exhaustive checks.
    fn symmetry(&self) -> SymmetryGroup {
        SymmetryGroup::full(2)
    }
}

/// Program counter of [`PetersonLock`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Pc {
    Idle,
    /// `flag[i] := 1`
    WriteFlag,
    /// `turn := j`
    WriteTurn,
    /// read `flag[j]`; 0 ⇒ enter
    ReadOtherFlag,
    /// read `turn`; ≠ j ⇒ enter, else re-check `flag[j]`
    ReadTurn,
    EntryDone,
    /// exit: `flag[i] := 0`
    ExitWriteFlag,
    ExitDone,
}

/// The per-process entry/exit state machine of [`PetersonTwo`].
///
/// Also used as the tree-node lock of the atomicity-1 tournament.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PetersonLock {
    flags: [RegisterId; 2],
    turn: RegisterId,
    /// This process's side: 0 or 1.
    me: usize,
    pc: Pc,
    /// Test-only planted bug; `None` in every production construction.
    pub(crate) mutation: Option<PetersonMutation>,
}

impl PetersonLock {
    /// Creates the lock for side `me ∈ {0, 1}`.
    pub fn new(flags: [RegisterId; 2], turn: RegisterId, me: usize) -> Self {
        assert!(me < 2, "side must be 0 or 1");
        PetersonLock {
            flags,
            turn,
            me,
            pc: Pc::Idle,
            mutation: None,
        }
    }

    fn other(&self) -> usize {
        1 - self.me
    }
}

impl LockProcess for PetersonLock {
    fn begin_entry(&mut self) {
        self.pc = if self.mutation == Some(PetersonMutation::TurnWriteFirst) {
            Pc::WriteTurn
        } else {
            Pc::WriteFlag
        };
    }

    fn begin_exit(&mut self) {
        debug_assert_eq!(self.pc, Pc::EntryDone, "exit before entry completed");
        self.pc = Pc::ExitWriteFlag;
    }

    fn current(&self) -> Step {
        match self.pc {
            Pc::Idle | Pc::EntryDone | Pc::ExitDone => Step::Halt,
            Pc::WriteFlag => Step::Op(Op::Write(self.flags[self.me], Value::ONE)),
            Pc::WriteTurn => Step::Op(Op::Write(self.turn, Value::new(self.other() as u64))),
            Pc::ReadOtherFlag => Step::Op(Op::Read(self.flags[self.other()])),
            Pc::ReadTurn => Step::Op(Op::Read(self.turn)),
            Pc::ExitWriteFlag => {
                let side = if self.mutation == Some(PetersonMutation::ExitWrongFlag) {
                    self.other()
                } else {
                    self.me
                };
                Step::Op(Op::Write(self.flags[side], Value::ZERO))
            }
        }
    }

    fn advance(&mut self, result: OpResult) {
        self.pc = match self.pc {
            Pc::Idle | Pc::EntryDone | Pc::ExitDone => {
                unreachable!("advance called outside a phase")
            }
            Pc::WriteFlag => {
                if self.mutation == Some(PetersonMutation::TurnWriteFirst) {
                    Pc::ReadOtherFlag // turn was already written first
                } else {
                    Pc::WriteTurn
                }
            }
            Pc::WriteTurn => {
                if self.mutation == Some(PetersonMutation::TurnWriteFirst) {
                    Pc::WriteFlag
                } else {
                    Pc::ReadOtherFlag
                }
            }
            Pc::ReadOtherFlag => {
                if result.bit() {
                    Pc::ReadTurn
                } else {
                    Pc::EntryDone
                }
            }
            Pc::ReadTurn => {
                if result.value().raw() as usize == self.other() {
                    Pc::ReadOtherFlag // still the other's turn: keep waiting
                } else {
                    Pc::EntryDone
                }
            }
            Pc::ExitWriteFlag => Pc::ExitDone,
        };
    }

    fn protocol_footprint(&self, out: &mut RegisterSet) -> bool {
        out.insert(self.flags[0]);
        out.insert(self.flags[1]);
        out.insert(self.turn);
        true
    }

    // Location: side + pc is the whole lock state, so the key is exact.
    // The two sides never share a key (`me` differs), which keeps the
    // per-location future sets from merging across processes. Only the
    // standalone two-process lock reaches this hook — the tournament's
    // composite lock keeps the full-state fallback because its nodes
    // hold different handles per process. Mutants keep the hook: each
    // planted bug perturbs behavior per-pc with a constant knob, so
    // location congruence is unaffected.
    fn lock_location(&self) -> Option<u64> {
        let tag = match self.pc {
            Pc::Idle => 0u64,
            Pc::WriteFlag => 1,
            Pc::WriteTurn => 2,
            Pc::ReadOtherFlag => 3,
            Pc::ReadTurn => 4,
            Pc::EntryDone => 5,
            Pc::ExitWriteFlag => 6,
            Pc::ExitDone => 7,
        };
        Some((self.me as u64) << 3 | tag)
    }

    // Packed-store encoding: side (1 bit) + pc tag (3 bits) = 4 bits per
    // lock. Register handles are shared by both participants of a
    // standalone [`PetersonTwo`], so they stay on the prototype. (The
    // tournament's per-node copies hold *different* handles per process;
    // its composite lock declines packing, so these hooks are never
    // reached with node-local handles.)
    fn pack_lock(&self, w: &mut StateWriter) -> bool {
        if self.mutation.is_some() {
            return false;
        }
        w.push_bits(self.me as u64, 1);
        let tag = match self.pc {
            Pc::Idle => 0u64,
            Pc::WriteFlag => 1,
            Pc::WriteTurn => 2,
            Pc::ReadOtherFlag => 3,
            Pc::ReadTurn => 4,
            Pc::EntryDone => 5,
            Pc::ExitWriteFlag => 6,
            Pc::ExitDone => 7,
        };
        w.push_bits(tag, 3);
        true
    }

    fn unpack_lock(&mut self, r: &mut StateReader<'_>) -> bool {
        if self.mutation.is_some() {
            return false;
        }
        self.me = r.take_bits(1) as usize;
        self.pc = match r.take_bits(3) {
            0 => Pc::Idle,
            1 => Pc::WriteFlag,
            2 => Pc::WriteTurn,
            3 => Pc::ReadOtherFlag,
            4 => Pc::ReadTurn,
            5 => Pc::EntryDone,
            6 => Pc::ExitWriteFlag,
            _ => Pc::ExitDone,
        };
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_core::metrics::trip_complexities;
    use cfc_core::{run_solo, ExecConfig, FaultPlan, Process, RoundRobin, Section};

    #[test]
    fn contention_free_profile() {
        let alg = PetersonTwo::new();
        for side in 0..2 {
            let pid = ProcessId::new(side);
            let (trace, _, _) = run_solo(alg.memory().unwrap(), alg.client(pid, 1)).unwrap();
            let t = trip_complexities(&trace, &alg.layout(), ProcessId::new(0))[0];
            assert_eq!(t.entry.steps, 3); // flag, turn, other-flag
            assert_eq!(t.exit.steps, 1);
            assert_eq!(t.total.steps, 4);
            assert_eq!(t.total.registers, 3);
        }
    }

    #[test]
    fn both_sides_complete_under_fair_scheduling() {
        let alg = PetersonTwo::new();
        let clients = vec![
            alg.client(ProcessId::new(0), 4),
            alg.client(ProcessId::new(1), 4),
        ];
        let exec = cfc_core::run_schedule(
            alg.memory().unwrap(),
            clients,
            RoundRobin::new(),
            FaultPlan::new(),
            ExecConfig::default(),
        )
        .unwrap();
        assert!(exec.quiescent());
    }

    #[test]
    fn mutual_exclusion_under_round_robin() {
        use cfc_core::Scheduler;
        let alg = PetersonTwo::new();
        let mut exec = cfc_core::Executor::new(
            alg.memory().unwrap(),
            vec![
                alg.client_with_cs(ProcessId::new(0), 3, 1),
                alg.client_with_cs(ProcessId::new(1), 3, 1),
            ],
        );
        let mut sched = RoundRobin::new();
        loop {
            let runnable = exec.runnable();
            if runnable.is_empty() {
                break;
            }
            let pid = sched.pick(&runnable).unwrap();
            exec.step_process(pid).unwrap();
            let in_cs = (0..2)
                .filter(|&i| {
                    exec.process(ProcessId::new(i)).section() == Some(Section::Critical)
                })
                .count();
            assert!(in_cs <= 1, "mutual exclusion violated");
        }
    }

    #[test]
    fn atomicity_is_one_bit() {
        assert_eq!(PetersonTwo::new().atomicity(), 1);
        assert_eq!(PetersonTwo::new().layout().max_register_width(), 1);
    }

    #[test]
    #[should_panic(expected = "side must be 0 or 1")]
    fn lock_rejects_bad_side() {
        let alg = PetersonTwo::new();
        let _ = PetersonLock::new(alg.flags, alg.turn, 2);
    }
}
