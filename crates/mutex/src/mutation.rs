//! Seeded algorithm mutations: deliberately planted bugs behind a
//! test-only knob, used to mutation-test the **checkers** in
//! `cfc-verify`.
//!
//! A verifier that never fails a mutant proves nothing. Each variant
//! here is a single, surgically small bug of the kind concurrency
//! history actually produced — a dropped doorway, a reordered write, a
//! skipped tree level, an off-by-one comparison — and the sensitivity
//! suite (`tests/checker_mutations.rs`) asserts that the safety,
//! progress, and liveness checkers each flag exactly the mutants they
//! should while passing the unmutated algorithms.
//!
//! Nothing in this crate constructs a mutation on its own: a mutant
//! exists only when a caller asks for one explicitly via
//! `with_mutation` (the same fixture pattern as
//! [`crate::BrokenDetector`]). The knob rides along in the lock's local
//! state as a constant, so it never changes state counts or
//! canonicalization of the unmutated algorithms.

/// Planted bugs for [`crate::Bakery`]
/// ([`Bakery::with_mutation`](crate::Bakery::with_mutation)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BakeryMutation {
    /// Drop the doorway: never raise `choosing[i]`, and skip the
    /// `await choosing[j] = 0` gates. Two customers can then overlap
    /// ticket selection invisibly — the classic bakery-without-choosing
    /// mutual-exclusion violation the safety explorer must find.
    DropDoorway,
    /// Off-by-one ticket comparison: wait while `number[j] <= number[i]`
    /// instead of the strict lexicographic `(number[j], j) <
    /// (number[i], i)`. Equal tickets (reachable when two doorways
    /// overlap) then block **both** holders forever — a deadlock the
    /// progress checker must find.
    FcfsOffByOne,
    /// Skip the exit protocol: leave `number[i]` standing on release.
    /// Every later competitor waits on the stale ticket forever — a
    /// reachable wedge the progress checker must find.
    SkipExitReset,
    /// Under-report the wait-scan footprint: at `WaitChoosing(j)` /
    /// `WaitNumber(j)` the `protocol_footprint` hook declares only the
    /// prefix up to `j`, omitting the scan suffix still to be read and
    /// the exit-time `number[i]` reset. The *algorithm* is untouched —
    /// every run is still correct — but the reduction hook lies about
    /// future accesses, which could let partial-order reduction prune a
    /// needed interleaving. Only the static hook lint
    /// (`cfc_verify::lint_model`) can flag it.
    UnderReportScan,
}

/// Planted bugs for [`crate::PetersonTwo`]
/// ([`PetersonTwo::with_mutation`](crate::PetersonTwo::with_mutation)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PetersonMutation {
    /// Reorder the entry writes: `turn := j` **before** `flag[i] := 1`.
    /// Both processes can then yield the turn before announcing
    /// themselves and read each other's stale flags — a
    /// mutual-exclusion violation the safety explorer must find.
    TurnWriteFirst,
    /// Exit clears the *other* side's flag instead of its own. The
    /// departing process stays announced forever, wedging its peer in
    /// the wait loop — a progress violation.
    ExitWrongFlag,
}

/// Planted bugs for [`crate::Tournament`]
/// ([`Tournament::with_mutation`](crate::Tournament::with_mutation)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TournamentMutation {
    /// Skip the root level of the climb (and of the release): winning a
    /// depth-1 subtree already "wins" the tree, so the winners of two
    /// different root subtrees meet in the critical section — a
    /// mutual-exclusion violation the safety explorer must find.
    /// Meaningful only for trees of depth ≥ 2.
    SkipRootLevel,
}

/// Planted bugs for [`crate::TasSpin`]
/// ([`TasSpin::with_mutation`](crate::TasSpin::with_mutation)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TasSpinMutation {
    /// Invert the test-and-set success condition: treat reading `1`
    /// (lock already held!) as winning and reading `0` as "keep
    /// spinning". Every spinner after the first then walks straight in —
    /// a mutual-exclusion violation the safety explorer must find.
    InvertedTest,
}
