//! Measurement helpers: contention-free and contended complexity of
//! mutual-exclusion and detection algorithms.

use cfc_core::metrics::{trip_complexities, TripComplexity};
use cfc_core::{
    run_solo, Complexity, ExecConfig, ExecError, FaultPlan, ProcessId, RoundRobin, Value,
};

use crate::algorithm::MutexAlgorithm;
use crate::detect::DetectionAlgorithm;

/// Measures the contention-free complexity of one trip (entry + exit) of a
/// mutual-exclusion algorithm: a solo run of `pid` from the initial state,
/// exactly the paper's Section 2.2 definition.
///
/// # Errors
///
/// Propagates executor errors (e.g. budget exhaustion, which would
/// indicate the algorithm livelocks even alone).
pub fn contention_free_trip<A: MutexAlgorithm>(
    alg: &A,
    pid: ProcessId,
) -> Result<TripComplexity, ExecError> {
    let memory = alg.memory()?;
    let (trace, _, _) = run_solo(memory, alg.client(pid, 1))?;
    // The solo executor hosts a single process, so the trace pid is 0
    // regardless of which participant identity `pid` names.
    let trips = trip_complexities(&trace, &alg.layout(), ProcessId::new(0));
    Ok(*trips.first().expect("solo trip completes"))
}

/// Measures the worst contention-free trip over all participants.
///
/// # Errors
///
/// Propagates executor errors.
pub fn contention_free_worst<A: MutexAlgorithm>(alg: &A) -> Result<TripComplexity, ExecError> {
    let mut worst: Option<TripComplexity> = None;
    for i in 0..alg.n() {
        let t = contention_free_trip(alg, ProcessId::new(i as u32))?;
        worst = Some(match worst {
            None => t,
            Some(w) => TripComplexity {
                entry: w.entry.max_fields(t.entry),
                exit: w.exit.max_fields(t.exit),
                total: w.total.max_fields(t.total),
            },
        });
    }
    Ok(worst.expect("at least one participant"))
}

/// Runs all `n` participants concurrently under fair round-robin for
/// `trips` trips each and returns each process's worst observed trip.
///
/// This realizes contended runs; the maximum register complexity across
/// them is the empirical worst-case register complexity on this schedule
/// (the measure for which the Peterson/Kessels tournament is `O(log n)`).
///
/// # Errors
///
/// Propagates executor errors.
pub fn contended_round_robin<A: MutexAlgorithm>(
    alg: &A,
    trips: u32,
) -> Result<Vec<TripComplexity>, ExecError> {
    let clients = (0..alg.n() as u32)
        .map(|i| alg.client(ProcessId::new(i), trips))
        .collect();
    let exec = cfc_core::run_schedule(
        alg.memory()?,
        clients,
        RoundRobin::new(),
        FaultPlan::new(),
        ExecConfig {
            max_events: 100_000_000,
        },
    )?;
    let layout = alg.layout();
    Ok((0..alg.n() as u32)
        .filter_map(|i| {
            let pid = ProcessId::new(i);
            trip_complexities(exec.trace(), &layout, pid)
                .into_iter()
                .reduce(|a, b| TripComplexity {
                    entry: a.entry.max_fields(b.entry),
                    exit: a.exit.max_fields(b.exit),
                    total: a.total.max_fields(b.total),
                })
        })
        .collect())
}

/// Measures the contention-free complexity of a detection algorithm: a
/// solo run of `pid`, which must output `1`.
///
/// # Errors
///
/// Propagates executor errors.
///
/// # Panics
///
/// Panics if the solo process fails to output `1` — that would violate the
/// detection specification, so it is a bug in the algorithm under test.
pub fn contention_free_detection<A: DetectionAlgorithm>(
    alg: &A,
    pid: ProcessId,
) -> Result<Complexity, ExecError> {
    let memory = alg.memory()?;
    let (trace, proc_, _) = run_solo(memory, alg.process(pid))?;
    assert_eq!(
        cfc_core::Process::output(&proc_),
        Some(Value::ONE),
        "{}: solo process must output 1",
        alg.name()
    );
    // As in `contention_free_trip`, the solo trace's pid is 0.
    Ok(cfc_core::metrics::process_complexity(
        &trace,
        &alg.layout(),
        ProcessId::new(0),
    ))
}

/// The contention-free profile quantities the paper's lemmas are stated
/// in, extracted from a measured [`Complexity`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LemmaProfile {
    /// `w` of Lemma 3: contention-free write-step complexity.
    pub write_steps: u64,
    /// `r` of Lemma 3: contention-free read-register complexity.
    pub read_registers: u64,
    /// `w` of Lemma 6: contention-free write-register complexity.
    pub write_registers: u64,
    /// `c` of Lemma 6 / Theorem 2: contention-free register complexity.
    pub registers: u64,
    /// `c` of Theorem 1: contention-free step complexity.
    pub steps: u64,
}

impl From<Complexity> for LemmaProfile {
    fn from(c: Complexity) -> Self {
        LemmaProfile {
            write_steps: c.write_step_complexity(),
            read_registers: c.read_registers,
            write_registers: c.write_registers,
            registers: c.registers,
            steps: c.steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::MutexDetector;
    use crate::lamport::LamportFast;
    use crate::splitter::{Splitter, SplitterTree};
    use crate::tournament::Tournament;

    #[test]
    fn lamport_contention_free_trip() {
        let alg = LamportFast::new(16);
        let t = contention_free_trip(&alg, ProcessId::new(5)).unwrap();
        assert_eq!(t.total.steps, 7);
        assert_eq!(t.total.registers, 3);
    }

    #[test]
    fn contention_free_worst_over_participants() {
        let alg = Tournament::new(5, 1); // unbalanced paths still depth 3
        let w = contention_free_worst(&alg).unwrap();
        assert_eq!(w.total.steps, 12);
    }

    #[test]
    fn contended_round_robin_reports_all_processes() {
        let alg = Tournament::new(4, 1);
        let trips = contended_round_robin(&alg, 1).unwrap();
        assert_eq!(trips.len(), 4);
        let bound = 3 * u64::from(alg.depth());
        for t in trips {
            assert!(t.total.registers <= bound);
        }
    }

    #[test]
    fn detection_profiles() {
        // Splitter tree for n = 64, l = 2: 4-ary tree of depth 3.
        let c =
            contention_free_detection(&SplitterTree::new(64, 2), ProcessId::new(9)).unwrap();
        assert_eq!(c.steps, 4 * 3);
        let p = LemmaProfile::from(c);
        assert_eq!(p.write_steps, 6); // x and y per level
        assert_eq!(p.read_registers, 6); // x and y per level
        assert_eq!(p.registers, 6);

        // Single-register splitter: the 4-step detector.
        let c = contention_free_detection(&Splitter::new(64), ProcessId::new(13)).unwrap();
        assert_eq!(c.steps, 4);
        assert_eq!(c.registers, 2);

        let det = MutexDetector::new(LamportFast::new(8));
        let c = contention_free_detection(&det, ProcessId::new(0)).unwrap();
        assert_eq!(c.steps, 7);
    }
}
