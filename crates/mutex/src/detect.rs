//! The contention detection problem (Section 2.3).
//!
//! When a process is activated it executes its protocol and terminates
//! with an output in `{0, 1}` such that (a) in every run at most one
//! process outputs `1`, and (b) in a run where only one process is
//! activated, it outputs `1`. This is single-shot mutual exclusion with
//! weak deadlock freedom — and it is the problem the paper's lower bounds
//! (Theorems 1 and 2) are actually proved for; Lemma 1 lifts them to
//! mutual exclusion.

use cfc_core::{Layout, Memory, MemoryError, Op, OpResult, Process, ProcessId, Step, Value};

use crate::algorithm::{LockProcess, MutexAlgorithm};

/// A contention-detection algorithm: layout plus one process per
/// participant, each of which halts with output `0` or `1`.
pub trait DetectionAlgorithm {
    /// The per-participant process type.
    type Proc: Process;

    /// A human-readable name for reports.
    fn name(&self) -> &str;

    /// The number of participating processes.
    fn n(&self) -> usize;

    /// The atomicity `l` this algorithm requires.
    fn atomicity(&self) -> u32;

    /// The shared register layout.
    fn layout(&self) -> Layout;

    /// The detection process for participant `pid`.
    fn process(&self, pid: ProcessId) -> Self::Proc;

    /// A fresh shared memory for this algorithm.
    ///
    /// # Errors
    ///
    /// Propagates layout validation errors (none for well-formed
    /// algorithms).
    fn memory(&self) -> Result<Memory, MemoryError> {
        Memory::new(self.layout(), self.atomicity())
    }
}

/// The Lemma 1 reduction: any mutual-exclusion algorithm solves contention
/// detection.
///
/// A process first checks a shared `claimed` bit (if set, some process
/// already won: output `0`); otherwise it runs the mutex entry code, and on
/// entering the critical section sets `claimed` and outputs `1`. Losers may
/// busy-wait in the entry code forever — permitted, since detection only
/// requires weak deadlock freedom.
///
/// Contention-free cost: entry code + 2 steps, entry registers + 1.
#[derive(Clone, Debug)]
pub struct MutexDetector<A> {
    inner: A,
    layout: Layout,
    claimed: cfc_core::RegisterId,
    name: String,
}

impl<A: MutexAlgorithm> MutexDetector<A> {
    /// Wraps a mutual-exclusion algorithm as a detector.
    pub fn new(inner: A) -> Self {
        // Extend the inner layout with the claimed bit; inner register ids
        // stay valid because ids are dense indices and we only append.
        let mut layout = inner.layout();
        let claimed = layout.bit("claimed", false);
        let name = format!("detect({})", inner.name());
        MutexDetector {
            inner,
            layout,
            claimed,
            name,
        }
    }
}

impl<A: MutexAlgorithm> DetectionAlgorithm for MutexDetector<A> {
    type Proc = MutexDetectorProc<A::Lock>;

    fn name(&self) -> &str {
        &self.name
    }

    fn n(&self) -> usize {
        self.inner.n()
    }

    fn atomicity(&self) -> u32 {
        self.inner.atomicity()
    }

    fn layout(&self) -> Layout {
        self.layout.clone()
    }

    fn process(&self, pid: ProcessId) -> Self::Proc {
        MutexDetectorProc {
            lock: self.inner.lock(pid),
            claimed: self.claimed,
            pc: DetectPc::ReadClaimed,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum DetectPc {
    ReadClaimed,
    InEntry,
    WriteClaimed,
    Done(u64),
}

/// The process of [`MutexDetector`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MutexDetectorProc<L> {
    lock: L,
    claimed: cfc_core::RegisterId,
    pc: DetectPc,
}

impl<L: LockProcess> Process for MutexDetectorProc<L> {
    fn current(&self) -> Step {
        match self.pc {
            DetectPc::ReadClaimed => Step::Op(Op::Read(self.claimed)),
            DetectPc::InEntry => self.lock.current(),
            DetectPc::WriteClaimed => Step::Op(Op::Write(self.claimed, Value::ONE)),
            DetectPc::Done(_) => Step::Halt,
        }
    }

    fn advance(&mut self, result: OpResult) {
        match self.pc {
            DetectPc::ReadClaimed => {
                if result.bit() {
                    self.pc = DetectPc::Done(0);
                } else {
                    self.lock.begin_entry();
                    self.pc = DetectPc::InEntry;
                }
            }
            DetectPc::InEntry => {
                self.lock.advance(result);
                if matches!(self.lock.current(), Step::Halt) {
                    self.pc = DetectPc::WriteClaimed;
                }
            }
            DetectPc::WriteClaimed => self.pc = DetectPc::Done(1),
            DetectPc::Done(_) => unreachable!("halted detector advanced"),
        }
    }

    fn output(&self) -> Option<Value> {
        match self.pc {
            DetectPc::Done(v) => Some(Value::new(v)),
            _ => None,
        }
    }
}

/// A deliberately **unsafe** detector used to exercise the verification
/// machinery: every process writes `1` to a shared bit, reads it back, and
/// outputs `1`.
///
/// All its solo-run writes are identical across processes
/// (`W(p₁, m) = W(p₂, m)` for all `m`), so the premise of Lemma 2 fails —
/// and the run-merge attack of `cfc-verify` constructs a run in which two
/// processes output `1`, violating safety. This is the paper's lower-bound
/// proof made executable.
#[derive(Clone, Debug)]
pub struct BrokenDetector {
    n: usize,
    layout: Layout,
    s: cfc_core::RegisterId,
}

impl BrokenDetector {
    /// Creates the broken detector for `n` processes.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        let mut layout = Layout::new();
        let s = layout.bit("s", false);
        BrokenDetector { n, layout, s }
    }
}

impl DetectionAlgorithm for BrokenDetector {
    type Proc = BrokenDetectorProc;

    fn name(&self) -> &str {
        "broken-constant-detector"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn atomicity(&self) -> u32 {
        1
    }

    fn layout(&self) -> Layout {
        self.layout.clone()
    }

    fn process(&self, _pid: ProcessId) -> Self::Proc {
        BrokenDetectorProc { s: self.s, pc: 0 }
    }
}

/// The process of [`BrokenDetector`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BrokenDetectorProc {
    s: cfc_core::RegisterId,
    pc: u8,
}

impl Process for BrokenDetectorProc {
    fn current(&self) -> Step {
        match self.pc {
            0 => Step::Op(Op::Write(self.s, Value::ONE)),
            1 => Step::Op(Op::Read(self.s)),
            _ => Step::Halt,
        }
    }

    fn advance(&mut self, _: OpResult) {
        self.pc += 1;
    }

    fn output(&self) -> Option<Value> {
        (self.pc >= 2).then_some(Value::ONE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lamport::LamportFast;
    use cfc_core::{run_sequential, run_solo};

    #[test]
    fn mutex_detector_solo_outputs_one() {
        let det = MutexDetector::new(LamportFast::new(4));
        let (_, proc_, _) = run_solo(det.memory().unwrap(), det.process(ProcessId::new(1))).unwrap();
        assert_eq!(proc_.output(), Some(Value::ONE));
    }

    #[test]
    fn mutex_detector_sequential_has_one_winner() {
        let det = MutexDetector::new(LamportFast::new(3));
        let procs = (0..3).map(|i| det.process(ProcessId::new(i))).collect();
        let (_, _, procs) = run_sequential(det.memory().unwrap(), procs).unwrap();
        let winners = procs
            .iter()
            .filter(|p| p.output() == Some(Value::ONE))
            .count();
        assert_eq!(winners, 1);
        // The first process wins; the rest see the claimed bit.
        assert_eq!(procs[0].output(), Some(Value::ONE));
        assert_eq!(procs[1].output(), Some(Value::ZERO));
    }

    #[test]
    fn mutex_detector_cost_is_entry_plus_two() {
        use cfc_core::metrics::process_complexity;
        let det = MutexDetector::new(LamportFast::new(8));
        let pid = ProcessId::new(0);
        let (trace, _, _) = run_solo(det.memory().unwrap(), det.process(pid)).unwrap();
        let c = process_complexity(&trace, &det.layout(), ProcessId::new(0));
        // 5 entry accesses + read claimed + write claimed.
        assert_eq!(c.steps, 7);
        // b[0], x, y + claimed.
        assert_eq!(c.registers, 4);
    }

    #[test]
    fn broken_detector_all_win_sequentially() {
        let det = BrokenDetector::new(3);
        let procs = (0..3).map(|i| det.process(ProcessId::new(i))).collect();
        let (_, _, procs) = run_sequential(det.memory().unwrap(), procs).unwrap();
        // Every process outputs 1: safety is violated even sequentially.
        assert!(procs.iter().all(|p| p.output() == Some(Value::ONE)));
    }
}
