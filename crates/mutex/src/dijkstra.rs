//! Dijkstra's mutual exclusion algorithm [Dij65] — the problem's original
//! solution, cited by the paper as the source of the mutual exclusion
//! problem.
//!
//! Deadlock-free (not starvation-free), with Θ(n) contention-free step
//! complexity: even alone, a process scans every other participant's `c`
//! flag before entering. Together with [`Bakery`](crate::Bakery) it is
//! the baseline the paper's contention-free measure separates from
//! [Lam87]'s constant-cost fast path.
//!
//! Pseudocode for process `i` (`b`, `c` initialized `true`, `k`
//! arbitrary):
//!
//! ```text
//! entry: b[i] := false
//! L:     if k ≠ i {
//!            c[i] := true
//!            if b[k] { k := i }
//!            goto L
//!        } else {
//!            c[i] := false
//!            for j ≠ i { if ¬c[j] { goto L } }
//!        }
//! exit:  c[i] := true; b[i] := true
//! ```

use std::sync::Arc;

use cfc_core::{
    bits_for, Layout, Op, OpResult, ProcessId, RegisterId, RegisterSet, Step, SymmetryGroup, Value,
};

use crate::algorithm::{LockProcess, MutexAlgorithm};

/// Dijkstra's algorithm for `n` processes.
#[derive(Clone, Debug)]
pub struct Dijkstra {
    n: usize,
    layout: Layout,
    b: Arc<[RegisterId]>,
    c: Arc<[RegisterId]>,
    k: RegisterId,
}

impl Dijkstra {
    /// Creates the algorithm for `n ≥ 1` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one process");
        let mut layout = Layout::new();
        let b: Arc<[RegisterId]> = layout.bits("b", n, true).into();
        let c: Arc<[RegisterId]> = layout.bits("c", n, true).into();
        let k = layout.register("k", bits_for(n.saturating_sub(1) as u64), 0);
        Dijkstra { n, layout, b, c, k }
    }
}

impl MutexAlgorithm for Dijkstra {
    type Lock = DijkstraLock;

    fn name(&self) -> &str {
        "dijkstra"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn atomicity(&self) -> u32 {
        bits_for(self.n.saturating_sub(1) as u64)
    }

    fn layout(&self) -> Layout {
        self.layout.clone()
    }

    fn lock(&self, pid: ProcessId) -> DijkstraLock {
        assert!(pid.index() < self.n, "pid out of range");
        DijkstraLock {
            b: Arc::clone(&self.b),
            c: Arc::clone(&self.c),
            k: self.k,
            me: pid.index() as u32,
            pc: Pc::Idle,
            k_seen: 0,
        }
    }

    /// Every contender runs the same index-oblivious program text (its
    /// index is part of the lock's local state), so the full group is
    /// sound for the permutation-invariant exhaustive checks.
    fn symmetry(&self) -> SymmetryGroup {
        SymmetryGroup::full(self.n)
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Pc {
    Idle,
    /// `b[i] := false`.
    WriteB0,
    /// Read `k` (the loop head `L`).
    ReadK,
    /// `k ≠ i`: `c[i] := true`.
    WriteC1,
    /// Read `b[k]`; if set, claim the turn.
    ReadBk,
    /// `k := i`.
    WriteK,
    /// `k = i`: `c[i] := false`.
    WriteC0,
    /// Scanning `c[j]` for `j ≠ i`.
    ScanC(u32),
    EntryDone,
    /// exit: `c[i] := true`.
    ExitWriteC,
    /// exit: `b[i] := true`.
    ExitWriteB,
    ExitDone,
}

/// The per-process entry/exit state machine of [`Dijkstra`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct DijkstraLock {
    b: Arc<[RegisterId]>,
    c: Arc<[RegisterId]>,
    k: RegisterId,
    me: u32,
    pc: Pc,
    k_seen: u32,
}

impl DijkstraLock {
    fn n(&self) -> u32 {
        self.b.len() as u32
    }

    fn next_scan(&self, from: u32) -> Pc {
        // Skip our own index; finishing the scan enters the CS.
        let mut j = from;
        if j == self.me {
            j += 1;
        }
        if j < self.n() {
            Pc::ScanC(j)
        } else {
            Pc::EntryDone
        }
    }
}

impl LockProcess for DijkstraLock {
    fn begin_entry(&mut self) {
        self.pc = Pc::WriteB0;
    }

    fn begin_exit(&mut self) {
        debug_assert_eq!(self.pc, Pc::EntryDone, "exit before entry completed");
        self.pc = Pc::ExitWriteC;
    }

    fn current(&self) -> Step {
        match self.pc {
            Pc::Idle | Pc::EntryDone | Pc::ExitDone => Step::Halt,
            Pc::WriteB0 => Step::Op(Op::Write(self.b[self.me as usize], Value::ZERO)),
            Pc::ReadK => Step::Op(Op::Read(self.k)),
            Pc::WriteC1 => Step::Op(Op::Write(self.c[self.me as usize], Value::ONE)),
            Pc::ReadBk => Step::Op(Op::Read(self.b[self.k_seen as usize])),
            Pc::WriteK => Step::Op(Op::Write(self.k, Value::new(self.me as u64))),
            Pc::WriteC0 => Step::Op(Op::Write(self.c[self.me as usize], Value::ZERO)),
            Pc::ScanC(j) => Step::Op(Op::Read(self.c[j as usize])),
            Pc::ExitWriteC => Step::Op(Op::Write(self.c[self.me as usize], Value::ONE)),
            Pc::ExitWriteB => Step::Op(Op::Write(self.b[self.me as usize], Value::ONE)),
        }
    }

    fn advance(&mut self, result: OpResult) {
        self.pc = match self.pc {
            Pc::Idle | Pc::EntryDone | Pc::ExitDone => {
                unreachable!("advance called outside a phase")
            }
            Pc::WriteB0 => Pc::ReadK,
            Pc::ReadK => {
                self.k_seen = result.value().raw() as u32;
                if self.k_seen == self.me {
                    Pc::WriteC0
                } else {
                    Pc::WriteC1
                }
            }
            Pc::WriteC1 => Pc::ReadBk,
            Pc::ReadBk => {
                if result.bit() {
                    Pc::WriteK // the current holder is passive: claim k
                } else {
                    Pc::ReadK // holder active: retry the loop
                }
            }
            Pc::WriteK => Pc::ReadK,
            Pc::WriteC0 => self.next_scan(0),
            Pc::ScanC(j) => {
                if result.bit() {
                    self.next_scan(j + 1)
                } else {
                    // Someone else is between C0 and the CS: back to L.
                    Pc::ReadK
                }
            }
            Pc::ExitWriteC => Pc::ExitWriteB,
            Pc::ExitWriteB => Pc::ExitDone,
        };
    }

    fn protocol_footprint(&self, out: &mut RegisterSet) -> bool {
        // A contender may read every `b`/`c` flag (the `b[k]` probe and
        // the full scan) and both reads and writes the turn register `k`:
        // the whole layout, in any phase.
        for &r in self.b.iter().chain(self.c.iter()) {
            out.insert(r);
        }
        out.insert(self.k);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure;
    use cfc_core::{Process, RoundRobin, Scheduler, Section};

    #[test]
    fn contention_free_cost_is_linear_in_n() {
        for n in [2usize, 4, 8, 16] {
            let alg = Dijkstra::new(n);
            // Process 0 starts with k = 0 (its own index): shortest path.
            let trip0 = measure::contention_free_trip(&alg, ProcessId::new(0)).unwrap();
            // b0, readk, c0, scan (n-1), exit 2 = n + 4.
            assert_eq!(trip0.total.steps, n as u64 + 4, "n={n}");
            // A process that must first claim k pays 4 more.
            let trip1 = measure::contention_free_trip(&alg, ProcessId::new(n as u32 - 1)).unwrap();
            assert_eq!(trip1.total.steps, n as u64 + 8, "n={n}");
            assert!(trip1.total.registers >= n as u64);
        }
    }

    #[test]
    fn mutual_exclusion_and_progress_under_round_robin() {
        let n = 3usize;
        let alg = Dijkstra::new(n);
        let mut exec = cfc_core::Executor::new(
            alg.memory().unwrap(),
            (0..n as u32)
                .map(|i| alg.client_with_cs(ProcessId::new(i), 2, 1))
                .collect::<Vec<_>>(),
        );
        let mut sched = RoundRobin::new();
        loop {
            let runnable = exec.runnable();
            if runnable.is_empty() {
                break;
            }
            let pid = sched.pick(&runnable).unwrap();
            exec.step_process(pid).unwrap();
            let in_cs = (0..n as u32)
                .filter(|&i| {
                    exec.process(ProcessId::new(i)).section() == Some(Section::Critical)
                })
                .count();
            assert!(in_cs <= 1, "mutual exclusion violated");
        }
        assert!(exec.quiescent());
    }

    #[test]
    fn solo_trips_restore_flags() {
        let alg = Dijkstra::new(4);
        let (_, _, memory) =
            cfc_core::run_solo(alg.memory().unwrap(), alg.client(ProcessId::new(3), 2)).unwrap();
        for &r in alg.b.iter().chain(alg.c.iter()) {
            assert_eq!(memory.get(r), Value::ONE);
        }
        // k keeps pointing at the last owner.
        assert_eq!(memory.get(alg.k), Value::new(3));
    }

    #[test]
    fn atomicity_is_log_n() {
        assert_eq!(Dijkstra::new(2).atomicity(), 1);
        assert_eq!(Dijkstra::new(9).atomicity(), 4);
    }
}
