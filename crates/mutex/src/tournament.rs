//! The tournament-tree construction of Theorem 3.
//!
//! For atomicity `l`, build a tree in which every node is a mutual
//! exclusion instance over registers of at most `l` bits. A process starts
//! at its leaf and climbs; winning a node admits it to the parent; winning
//! the root admits it to the critical section. To exit, it executes the
//! exit code of every node on its path, leaf to root (the paper's order).
//!
//! * For `l ≥ 2`, nodes are copies of Lamport's fast algorithm
//!   ([`LamportLock`]) with arity `2^l − 1` (an `l`-bit register holds
//!   `2^l − 1` identities plus the "free" value `0` — the paper's `2^l`-ary
//!   tree modulo this off-by-one, documented in DESIGN.md).
//! * For `l = 1`, nodes are Peterson two-process locks over three bits
//!   ([`PetersonLock`]) — the Peterson–Fischer/Kessels binary tournament
//!   [PF77, Kes82], which also witnesses the `O(log n)` worst-case
//!   *register* complexity row of the paper's mutex table.
//!
//! Contention-free complexity: `⌈log_arity n⌉` levels × (7 steps / 3
//! registers) per Lamport node, or × (4 steps / 3 registers) per Peterson
//! node — the `O(⌈log n / l⌉)` upper bound of Theorem 3.
//!
//! The full tree for large `n` can be huge, so [`Tournament::sparse`]
//! instantiates registers only for the nodes on the paths of a declared
//! participant set (registers of other nodes are never accessed in such
//! runs, so the measured complexities are identical).

use std::collections::HashMap;
use std::sync::Arc;

use cfc_core::{Layout, OpResult, ProcessId, RegisterId, RegisterSet, Step, SymmetryGroup};

use crate::algorithm::{LockProcess, MutexAlgorithm};
use crate::lamport::LamportLock;
use crate::mutation::TournamentMutation;
use crate::peterson::PetersonLock;

/// Registers of one tree node.
#[derive(Clone, Debug)]
enum NodeRegs {
    Lamport {
        x: RegisterId,
        y: RegisterId,
        b: Arc<[RegisterId]>,
    },
    Peterson {
        flags: [RegisterId; 2],
        turn: RegisterId,
    },
}

/// The order in which a process executes the exit code along its path.
///
/// The paper's prose says "from the leaf to the root", but taken literally
/// that order is **unsafe** for composed node locks: after the leaf is
/// released, a successor can acquire a still-held upper node, and the
/// departing process's later release of that node wipes the successor's
/// acquisition state — admitting a third process. The exhaustive explorer
/// in `cfc-verify` exhibits the violation for Peterson nodes at `n = 4`.
/// Releasing **root to leaf** is safe: when a node is released, every
/// process that could share it is still blocked strictly below it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ExitOrder {
    /// Release the root first, then descend (safe; the default).
    #[default]
    RootToLeaf,
    /// The paper's literal order (unsafe for these node locks; kept so
    /// the violation can be demonstrated).
    LeafToRoot,
}

/// The tournament mutual-exclusion algorithm of Theorem 3.
#[derive(Clone, Debug)]
pub struct Tournament {
    n: usize,
    l: u32,
    arity: u64,
    depth: u32,
    layout: Layout,
    nodes: HashMap<(u32, u64), NodeRegs>,
    exit_order: ExitOrder,
    mutation: Option<TournamentMutation>,
}

impl Tournament {
    /// Creates the tournament for `n` processes with atomicity `l`,
    /// instantiating the full tree.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `l` is outside `1..=16`, or the full tree would
    /// exceed a million nodes (use [`Tournament::sparse`] for large `n`).
    pub fn new(n: usize, l: u32) -> Self {
        let all: Vec<ProcessId> = (0..n as u32).map(ProcessId::new).collect();
        Self::sparse(n, l, &all)
    }

    /// Creates the tournament with registers only for the nodes on the
    /// paths of `participants`.
    ///
    /// Runs in which only `participants` take steps never touch the other
    /// nodes' registers, so complexities measured on such runs equal those
    /// of the full tree.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `l ∉ 1..=16`, a participant is out of range, or
    /// the instantiated node count exceeds a million.
    pub fn sparse(n: usize, l: u32, participants: &[ProcessId]) -> Self {
        assert!(n >= 2, "a tournament needs at least two processes");
        assert!((1..=16).contains(&l), "atomicity must be in 1..=16");
        let arity: u64 = if l == 1 { 2 } else { (1u64 << l) - 1 };
        let mut depth: u32 = 1;
        let mut capacity = arity;
        while capacity < n as u64 {
            capacity = capacity.saturating_mul(arity);
            depth += 1;
        }

        let mut keys: Vec<(u32, u64)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for &p in participants {
            assert!(p.index() < n, "participant {p} out of range");
            for k in 0..depth {
                let key = (k, Self::node_index(p, k, depth, arity));
                if seen.insert(key) {
                    keys.push(key);
                }
            }
        }
        keys.sort_unstable();
        assert!(
            keys.len() <= 1_000_000,
            "tree too large ({} nodes); use Tournament::sparse with fewer participants",
            keys.len()
        );

        let mut layout = Layout::new();
        let mut nodes = HashMap::with_capacity(keys.len());
        for (k, j) in keys {
            let tag = format!("L{k}N{j}");
            let regs = if l == 1 {
                NodeRegs::Peterson {
                    flags: [
                        layout.bit(format!("{tag}.flag[0]"), false),
                        layout.bit(format!("{tag}.flag[1]"), false),
                    ],
                    turn: layout.bit(format!("{tag}.turn"), false),
                }
            } else {
                NodeRegs::Lamport {
                    x: layout.register(format!("{tag}.x"), l, 0),
                    y: layout.register(format!("{tag}.y"), l, 0),
                    b: layout
                        .bits(&format!("{tag}.b"), arity as usize, false)
                        .into(),
                }
            };
            nodes.insert((k, j), regs);
        }

        Tournament {
            n,
            l,
            arity,
            depth,
            layout,
            nodes,
            exit_order: ExitOrder::RootToLeaf,
            mutation: None,
        }
    }

    /// Overrides the exit order (see [`ExitOrder`]; the non-default
    /// leaf-to-root order is unsafe and exists for the verification
    /// exhibit).
    #[must_use]
    pub fn with_exit_order(mut self, order: ExitOrder) -> Self {
        self.exit_order = order;
        self
    }

    /// Plants a deliberate bug (a test-only fixture for the
    /// checker-sensitivity suite; see [`crate::mutation`]).
    ///
    /// # Panics
    ///
    /// Panics for depth-1 trees — skipping the root of a single-level
    /// tree would leave no protocol at all.
    #[must_use]
    pub fn with_mutation(mut self, mutation: TournamentMutation) -> Self {
        assert!(self.depth >= 2, "the mutation needs a tree of depth >= 2");
        self.mutation = Some(mutation);
        self
    }

    /// The tree's branching factor (`2^l − 1`, or 2 when `l = 1`).
    pub fn arity(&self) -> u64 {
        self.arity
    }

    /// The number of levels a process traverses.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The number of instantiated nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The index of the node hosting `p` at `level` (0 = root).
    fn node_index(p: ProcessId, level: u32, depth: u32, arity: u64) -> u64 {
        let p = p.index() as u64;
        p / arity.pow(depth - level)
    }

    /// The slot (competitor position) of `p` within its node at `level`.
    fn node_slot(p: ProcessId, level: u32, depth: u32, arity: u64) -> u64 {
        let p = p.index() as u64;
        (p / arity.pow(depth - 1 - level)) % arity
    }
}

impl MutexAlgorithm for Tournament {
    type Lock = TournamentLock;

    fn name(&self) -> &str {
        if self.l == 1 {
            "tournament-peterson"
        } else {
            "tournament-lamport"
        }
    }

    fn n(&self) -> usize {
        self.n
    }

    fn atomicity(&self) -> u32 {
        self.l
    }

    fn layout(&self) -> Layout {
        self.layout.clone()
    }

    fn lock(&self, pid: ProcessId) -> TournamentLock {
        assert!(pid.index() < self.n, "pid out of range");
        // Leaf (level depth-1) first, root (level 0) last.
        let mut nodes = Vec::with_capacity(self.depth as usize);
        for k in (0..self.depth).rev() {
            let j = Self::node_index(pid, k, self.depth, self.arity);
            let slot = Self::node_slot(pid, k, self.depth, self.arity) as usize;
            let regs = self
                .nodes
                .get(&(k, j))
                .unwrap_or_else(|| panic!("{pid} is not an instantiated participant"));
            nodes.push(match regs {
                NodeRegs::Lamport { x, y, b } => {
                    NodeLock::Lamport(LamportLock::new(*x, *y, Arc::clone(b), slot))
                }
                NodeRegs::Peterson { flags, turn } => {
                    NodeLock::Peterson(PetersonLock::new(*flags, *turn, slot))
                }
            });
        }
        TournamentLock {
            nodes,
            phase: Phase::Idle,
            exit_order: self.exit_order,
            mutation: self.mutation,
        }
    }

    /// Every participant runs the same index-oblivious climb (its path and
    /// slots live in the lock's local state), so the full group is sound
    /// for the permutation-invariant exhaustive checks.
    fn symmetry(&self) -> SymmetryGroup {
        SymmetryGroup::full(self.n)
    }
}

/// A node lock: Lamport for `l ≥ 2`, Peterson for `l = 1`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum NodeLock {
    Lamport(LamportLock),
    Peterson(PetersonLock),
}

impl LockProcess for NodeLock {
    fn begin_entry(&mut self) {
        match self {
            NodeLock::Lamport(l) => l.begin_entry(),
            NodeLock::Peterson(p) => p.begin_entry(),
        }
    }

    fn begin_exit(&mut self) {
        match self {
            NodeLock::Lamport(l) => l.begin_exit(),
            NodeLock::Peterson(p) => p.begin_exit(),
        }
    }

    fn current(&self) -> Step {
        match self {
            NodeLock::Lamport(l) => l.current(),
            NodeLock::Peterson(p) => p.current(),
        }
    }

    fn advance(&mut self, result: OpResult) {
        match self {
            NodeLock::Lamport(l) => l.advance(result),
            NodeLock::Peterson(p) => p.advance(result),
        }
    }

    fn protocol_footprint(&self, out: &mut RegisterSet) -> bool {
        match self {
            NodeLock::Lamport(l) => l.protocol_footprint(out),
            NodeLock::Peterson(p) => p.protocol_footprint(out),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Phase {
    Idle,
    /// Acquiring node `k` of the path (0 = leaf).
    Entry(usize),
    EntryDone,
    /// Releasing the node at *position* `k` of the exit sequence.
    Exit(usize),
    ExitDone,
}

/// The per-process lock of [`Tournament`]: climbs its path of node locks.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TournamentLock {
    /// Path nodes, leaf first, root last.
    nodes: Vec<NodeLock>,
    phase: Phase,
    exit_order: ExitOrder,
    /// Test-only planted bug; `None` in every production construction.
    mutation: Option<TournamentMutation>,
}

impl TournamentLock {
    /// How many path nodes the climb actually traverses: all of them,
    /// unless the skip-root mutation truncates the climb (and release)
    /// one level early.
    fn active_len(&self) -> usize {
        match self.mutation {
            Some(TournamentMutation::SkipRootLevel) => self.nodes.len() - 1,
            None => self.nodes.len(),
        }
    }

    /// The path-node index released at exit position `pos`.
    fn exit_node(&self, pos: usize) -> usize {
        match self.exit_order {
            ExitOrder::LeafToRoot => pos,
            ExitOrder::RootToLeaf => self.active_len() - 1 - pos,
        }
    }

    fn settle(&mut self) {
        loop {
            match self.phase {
                Phase::Entry(k) => {
                    if matches!(self.nodes[k].current(), Step::Halt) {
                        if k + 1 < self.active_len() {
                            self.nodes[k + 1].begin_entry();
                            self.phase = Phase::Entry(k + 1);
                            continue;
                        }
                        self.phase = Phase::EntryDone;
                    }
                }
                Phase::Exit(pos) => {
                    if matches!(self.nodes[self.exit_node(pos)].current(), Step::Halt) {
                        if pos + 1 < self.active_len() {
                            let next = self.exit_node(pos + 1);
                            self.nodes[next].begin_exit();
                            self.phase = Phase::Exit(pos + 1);
                            continue;
                        }
                        self.phase = Phase::ExitDone;
                    }
                }
                _ => {}
            }
            break;
        }
    }
}

impl LockProcess for TournamentLock {
    fn begin_entry(&mut self) {
        self.nodes[0].begin_entry();
        self.phase = Phase::Entry(0);
        self.settle();
    }

    fn begin_exit(&mut self) {
        debug_assert_eq!(self.phase, Phase::EntryDone, "exit before entry completed");
        let first = self.exit_node(0);
        self.nodes[first].begin_exit();
        self.phase = Phase::Exit(0);
        self.settle();
    }

    fn current(&self) -> Step {
        match self.phase {
            Phase::Idle | Phase::EntryDone | Phase::ExitDone => Step::Halt,
            Phase::Entry(k) => self.nodes[k].current(),
            Phase::Exit(pos) => self.nodes[self.exit_node(pos)].current(),
        }
    }

    fn advance(&mut self, result: OpResult) {
        match self.phase {
            Phase::Entry(k) => self.nodes[k].advance(result),
            Phase::Exit(pos) => {
                let k = self.exit_node(pos);
                self.nodes[k].advance(result);
            }
            _ => unreachable!("advance called outside a phase"),
        }
        self.settle();
    }

    /// The union of the path's node footprints: two processes whose leaf
    /// paths share no node are independent for their entire protocol,
    /// which is what lets the reduced explorer serialize disjoint
    /// subtrees.
    fn protocol_footprint(&self, out: &mut RegisterSet) -> bool {
        self.nodes.iter().all(|n| n.protocol_footprint(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_core::metrics::trip_complexities;
    use cfc_core::{run_solo, Process, RoundRobin, Section};

    fn cf_profile(alg: &Tournament, pid: ProcessId) -> (u64, u64) {
        let (trace, _, _) = run_solo(alg.memory().unwrap(), alg.client(pid, 1)).unwrap();
        let t = trip_complexities(&trace, &alg.layout(), ProcessId::new(0))[0];
        (t.total.steps, t.total.registers)
    }

    #[test]
    fn peterson_tree_contention_free_profile() {
        // l = 1, n = 8: binary tree of depth 3; 4 steps and 3 registers
        // per Peterson node.
        let alg = Tournament::new(8, 1);
        assert_eq!(alg.depth(), 3);
        for pid in 0..8 {
            let (steps, regs) = cf_profile(&alg, ProcessId::new(pid));
            assert_eq!(steps, 12, "pid {pid}");
            assert_eq!(regs, 9, "pid {pid}");
        }
    }

    #[test]
    fn lamport_tree_contention_free_profile() {
        // l = 2 (arity 3), n = 9: depth 2; 7 steps / 3 registers per node.
        let alg = Tournament::new(9, 2);
        assert_eq!(alg.arity(), 3);
        assert_eq!(alg.depth(), 2);
        for pid in [0u32, 4, 8] {
            let (steps, regs) = cf_profile(&alg, ProcessId::new(pid));
            assert_eq!(steps, 14, "pid {pid}");
            assert_eq!(regs, 6, "pid {pid}");
        }
    }

    #[test]
    fn single_level_when_atomicity_covers_n() {
        // l = 4 hosts 15 competitors in one Lamport node.
        let alg = Tournament::new(15, 4);
        assert_eq!(alg.depth(), 1);
        let (steps, regs) = cf_profile(&alg, ProcessId::new(7));
        assert_eq!(steps, 7);
        assert_eq!(regs, 3);
    }

    #[test]
    fn profile_matches_bounds_formulas() {
        for (n, l) in [(4usize, 1u32), (16, 1), (9, 2), (27, 2), (100, 3), (256, 4)] {
            let alg = Tournament::sparse(n, l, &[ProcessId::new(0)]);
            let (steps, regs) = cf_profile(&alg, ProcessId::new(0));
            assert_eq!(
                steps,
                cfc_bounds::mutex::tournament_step_upper(n as u64, l),
                "steps n={n} l={l}"
            );
            assert_eq!(
                regs,
                cfc_bounds::mutex::tournament_register_upper(n as u64, l),
                "registers n={n} l={l}"
            );
            // And the implementation obeys Theorem 3's O(log n / l) shape:
            // within a small constant of the paper's 7ceil(log n / l).
            assert!(steps <= 2 * cfc_bounds::mutex::thm3_step_upper(n as u64, l));
        }
    }

    #[test]
    fn sparse_equals_full_for_solo_runs() {
        let full = Tournament::new(27, 2);
        let sparse = Tournament::sparse(27, 2, &[ProcessId::new(13)]);
        assert!(sparse.node_count() < full.node_count());
        let (s1, r1) = cf_profile(&full, ProcessId::new(13));
        let (s2, r2) = cf_profile(&sparse, ProcessId::new(13));
        assert_eq!((s1, r1), (s2, r2));
    }

    #[test]
    fn sparse_scales_to_huge_n() {
        // 4^10 ~ a million leaves; sparse instantiation stays tiny.
        let alg = Tournament::sparse(1 << 20, 4, &[ProcessId::new(123_456)]);
        assert_eq!(alg.node_count(), alg.depth() as usize);
        let (steps, regs) = cf_profile(&alg, ProcessId::new(123_456));
        assert_eq!(steps, 7 * u64::from(alg.depth()));
        assert_eq!(regs, 3 * u64::from(alg.depth()));
    }

    fn assert_safe_run(alg: &Tournament, trips: u32) {
        use cfc_core::Scheduler;
        let n = alg.n();
        let mut exec = cfc_core::Executor::new(
            alg.memory().unwrap(),
            (0..n as u32)
                .map(|i| alg.client_with_cs(ProcessId::new(i), trips, 1))
                .collect::<Vec<_>>(),
        );
        let mut sched = RoundRobin::new();
        loop {
            let runnable = exec.runnable();
            if runnable.is_empty() {
                break;
            }
            let pid = sched.pick(&runnable).unwrap();
            exec.step_process(pid).unwrap();
            let in_cs = (0..n as u32)
                .filter(|&i| {
                    exec.process(ProcessId::new(i)).section() == Some(Section::Critical)
                })
                .count();
            assert!(in_cs <= 1, "mutual exclusion violated");
        }
        assert!(exec.quiescent());
    }

    #[test]
    fn peterson_tree_safety_and_progress() {
        assert_safe_run(&Tournament::new(4, 1), 2);
        assert_safe_run(&Tournament::new(5, 1), 1);
    }

    #[test]
    fn lamport_tree_safety_and_progress() {
        assert_safe_run(&Tournament::new(4, 2), 2);
        assert_safe_run(&Tournament::new(9, 2), 1);
    }

    #[test]
    fn worst_case_register_complexity_is_logarithmic() {
        // Kessels row of Table 1: under full contention, a process's trip
        // still touches at most 3 registers per level.
        use cfc_core::Scheduler;
        let n = 8usize;
        let alg = Tournament::new(n, 1);
        let mut exec = cfc_core::Executor::new(
            alg.memory().unwrap(),
            (0..n as u32)
                .map(|i| alg.client(ProcessId::new(i), 1))
                .collect::<Vec<_>>(),
        );
        let mut sched = RoundRobin::new();
        loop {
            let runnable = exec.runnable();
            if runnable.is_empty() {
                break;
            }
            let pid = sched.pick(&runnable).unwrap();
            exec.step_process(pid).unwrap();
        }
        let bound = 3 * u64::from(alg.depth());
        for pid in 0..n as u32 {
            let pid = ProcessId::new(pid);
            for trip in trip_complexities(exec.trace(), &alg.layout(), pid) {
                assert!(
                    trip.total.registers <= bound,
                    "{pid}: {} > {bound}",
                    trip.total.registers
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "not an instantiated participant")]
    fn sparse_rejects_non_participants() {
        let alg = Tournament::sparse(27, 2, &[ProcessId::new(0)]);
        let _ = alg.lock(ProcessId::new(26));
    }
}
