//! Splitter-based contention detection.
//!
//! The splitter (the fast-path core of Lamport's algorithm [Lam87]) solves
//! contention detection directly:
//!
//! ```text
//! x := id
//! if y = 1 { return 0 }
//! y := 1
//! if x = id { return 1 } else { return 0 }
//! ```
//!
//! At most one process can read back its own id from `x` after setting
//! `y`, and a solo process always does — 4 accesses to 2 registers, with
//! `x` of `⌈log₂ n⌉` bits. Crucially, the safety proof leans on `x` being
//! written **atomically**: if two winners existed, the later reader's
//! id-write would have to both precede and follow the earlier reader's
//! id-write.
//!
//! Two generalizations to atomicity `l < log n` are provided:
//!
//! * [`ChunkedSplitter`] splits `x` into `⌈log n / l⌉` separately written
//!   chunks. This *looks* right and is safe for `n = 2`, but it is
//!   **unsafe for `n ≥ 3`**: a slow third process can overwrite one chunk
//!   between the two leaders' read-backs, handing each its own id from a
//!   different mix. The exhaustive explorer in `cfc-verify` finds the
//!   15-event counterexample — the torn, non-atomic `x` is exactly the
//!   kind of defect the paper's atomicity parameter `l` is about. It is
//!   kept as a verification exhibit.
//! * [`SplitterTree`] is the correct construction: a `2^l`-ary tree of
//!   single-register splitters. Node ids fit in `l` bits, each level
//!   costs 4 steps / 2 registers, and the depth is `⌈log n / l⌉` — a
//!   contention detector with **bounded** worst-case step complexity
//!   `4⌈log n / l⌉`, witnessing the paper's remark that detection (unlike
//!   mutual exclusion) has finite worst-case step complexity
//!   `O(⌈log n / l⌉)`.

use std::collections::HashMap;
use std::sync::Arc;

use cfc_core::{
    bits_for, Layout, Op, OpResult, Process, ProcessId, RegisterId, RegisterSet, Step, Value,
};

use crate::detect::DetectionAlgorithm;

/// The classic single-register splitter detector (requires atomicity
/// `l ≥ ⌈log₂ n⌉`).
///
/// # Examples
///
/// ```
/// use cfc_mutex::{DetectionAlgorithm, Splitter};
/// use cfc_core::{run_solo, ProcessId, Value};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let alg = Splitter::new(256); // 8-bit ids, one atomic register
/// let (_, proc_, _) = run_solo(alg.memory()?, alg.process(ProcessId::new(77)))?;
/// assert_eq!(cfc_core::Process::output(&proc_), Some(Value::ONE));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Splitter {
    inner: ChunkedSplitter,
}

impl Splitter {
    /// Creates the detector with atomicity exactly `⌈log₂ n⌉` (the id
    /// width), so `x` is one atomic register.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        let width = bits_for(n.saturating_sub(1) as u64);
        let inner = ChunkedSplitter::new(n, width);
        debug_assert_eq!(inner.chunks(), 1);
        Splitter { inner }
    }
}

impl DetectionAlgorithm for Splitter {
    type Proc = SplitterProc;

    fn name(&self) -> &str {
        "splitter"
    }

    fn n(&self) -> usize {
        self.inner.n()
    }

    fn atomicity(&self) -> u32 {
        self.inner.atomicity()
    }

    fn layout(&self) -> Layout {
        self.inner.layout()
    }

    fn process(&self, pid: ProcessId) -> SplitterProc {
        self.inner.process(pid)
    }
}

/// The chunked splitter: the splitter with `x` split into `⌈log n / l⌉`
/// sub-`l`-bit chunks.
///
/// **Unsafe for `n ≥ 3`** — see the module docs; `cfc-verify`'s explorer
/// constructs the two-winner run. Retained as an executable demonstration
/// that the splitter's correctness depends on the atomicity of `x`.
#[derive(Clone, Debug)]
pub struct ChunkedSplitter {
    n: usize,
    l: u32,
    id_width: u32,
    layout: Layout,
    x: Arc<[RegisterId]>,
    y: RegisterId,
    name: String,
}

impl ChunkedSplitter {
    /// Creates the detector. Ids are zero-based (`0..n`), stored across
    /// `⌈id_width / l⌉` chunks of at most `l` bits.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `l == 0`.
    pub fn new(n: usize, l: u32) -> Self {
        assert!(n >= 1, "need at least one process");
        assert!(l >= 1, "atomicity must be positive");
        let id_width = bits_for(n.saturating_sub(1) as u64);
        let chunk_count = id_width.div_ceil(l).max(1);
        let mut layout = Layout::new();
        let mut x = Vec::with_capacity(chunk_count as usize);
        for i in 0..chunk_count {
            let width = l.min(id_width - i * l).max(1);
            x.push(layout.register(format!("x[{i}]"), width, 0));
        }
        let y = layout.bit("y", false);
        let name = format!("chunked-splitter(k={chunk_count})");
        ChunkedSplitter {
            n,
            l,
            id_width,
            layout,
            x: x.into(),
            y,
            name,
        }
    }

    /// The number of chunks `x` is split into.
    pub fn chunks(&self) -> u32 {
        self.x.len() as u32
    }

    /// The chunk value of `id` at chunk index `i` (low chunks first).
    fn chunk_of(&self, id: u64, i: usize) -> Value {
        let shift = (i as u32) * self.l;
        let width = self.l.min(self.id_width.saturating_sub(shift)).max(1);
        Value::new((id >> shift) & cfc_core::mask(width))
    }
}

impl DetectionAlgorithm for ChunkedSplitter {
    type Proc = SplitterProc;

    fn name(&self) -> &str {
        &self.name
    }

    fn n(&self) -> usize {
        self.n
    }

    fn atomicity(&self) -> u32 {
        self.l
    }

    fn layout(&self) -> Layout {
        self.layout.clone()
    }

    fn process(&self, pid: ProcessId) -> SplitterProc {
        assert!(pid.index() < self.n, "pid out of range");
        let id = pid.index() as u64;
        let chunks: Vec<Value> = (0..self.x.len()).map(|i| self.chunk_of(id, i)).collect();
        SplitterProc {
            x: Arc::clone(&self.x),
            y: self.y,
            chunks: chunks.into(),
            pc: SplitterPc::WriteChunk(0),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum SplitterPc {
    /// Writing chunk `i` of `x := id`.
    WriteChunk(u32),
    /// `if y = 1 return 0`.
    ReadY,
    /// `y := 1`.
    WriteY,
    /// Reading back chunk `i` of `x`, comparing with own id.
    ReadChunk(u32),
    Done(u64),
}

/// The process of [`Splitter`] / [`ChunkedSplitter`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SplitterProc {
    x: Arc<[RegisterId]>,
    y: RegisterId,
    /// This process's id, pre-split into chunk values.
    chunks: Arc<[Value]>,
    pc: SplitterPc,
}

impl Process for SplitterProc {
    fn current(&self) -> Step {
        match self.pc {
            SplitterPc::WriteChunk(i) => {
                Step::Op(Op::Write(self.x[i as usize], self.chunks[i as usize]))
            }
            SplitterPc::ReadY => Step::Op(Op::Read(self.y)),
            SplitterPc::WriteY => Step::Op(Op::Write(self.y, Value::ONE)),
            SplitterPc::ReadChunk(i) => Step::Op(Op::Read(self.x[i as usize])),
            SplitterPc::Done(_) => Step::Halt,
        }
    }

    fn advance(&mut self, result: OpResult) {
        self.pc = match self.pc {
            SplitterPc::WriteChunk(i) => {
                if (i as usize) + 1 < self.x.len() {
                    SplitterPc::WriteChunk(i + 1)
                } else {
                    SplitterPc::ReadY
                }
            }
            SplitterPc::ReadY => {
                if result.bit() {
                    SplitterPc::Done(0)
                } else {
                    SplitterPc::WriteY
                }
            }
            SplitterPc::WriteY => SplitterPc::ReadChunk(0),
            SplitterPc::ReadChunk(i) => {
                if result.value() != self.chunks[i as usize] {
                    SplitterPc::Done(0)
                } else if (i as usize) + 1 < self.x.len() {
                    SplitterPc::ReadChunk(i + 1)
                } else {
                    SplitterPc::Done(1)
                }
            }
            SplitterPc::Done(_) => unreachable!("halted splitter advanced"),
        };
    }

    fn output(&self) -> Option<Value> {
        match self.pc {
            SplitterPc::Done(v) => Some(Value::new(v)),
            _ => None,
        }
    }

    // Deliberately pc-insensitive: the whole protocol footprint, every
    // chunk of `x` plus `y`, at every location. Sound and monotone, but
    // coarse — a process that has already read back `x` will never touch
    // the early chunks again. The control-automaton future sets
    // (`MayAccessMode::Automaton` in `cfc-verify`) recover exactly that
    // per-location precision; keeping the declared hook coarse is what
    // makes the sharpening measurable in the reduction sweep.
    fn may_access(&self, out: &mut RegisterSet) -> bool {
        out.extend(self.x.iter().copied());
        out.insert(self.y);
        true
    }

    // Location: the pc alone. All processes share the same flat `x`/`y`
    // handles and differ only in the chunk *values* they write and
    // compare, so states agreeing on the pc have identical step
    // footprints, and both branches of every comparison are feasible for
    // every process — the successor-location sets coincide too. Merging
    // locations across process identities is therefore exact here (the
    // tree variant below cannot do this: its processes walk different
    // node registers, so it keeps the full-state fallback).
    fn location(&self) -> Option<u64> {
        let (tag, arg) = match self.pc {
            SplitterPc::WriteChunk(i) => (0u64, u64::from(i)),
            SplitterPc::ReadY => (1, 0),
            SplitterPc::WriteY => (2, 0),
            SplitterPc::ReadChunk(i) => (3, u64::from(i)),
            SplitterPc::Done(v) => (4, v),
        };
        Some(arg << 3 | tag)
    }
}

/// Registers of one splitter-tree node.
#[derive(Clone, Copy, Debug)]
struct SplitterNode {
    x: RegisterId,
    y: RegisterId,
}

/// The correct small-atomicity contention detector: a `2^l`-ary tree of
/// single-register splitters.
///
/// A process climbs from its leaf to the root, running the splitter at
/// each node with its node-local slot as id; losing anywhere means output
/// `0`, winning the root means output `1`. At most one process per node
/// advances, so at most one process wins the root; a solo process wins
/// everywhere.
///
/// Contention-free (= worst-case) step complexity `4·⌈log n / l⌉`,
/// register complexity `2·⌈log n / l⌉` — bounded even in the worst case,
/// unlike any mutual-exclusion algorithm.
#[derive(Clone, Debug)]
pub struct SplitterTree {
    n: usize,
    l: u32,
    arity: u64,
    depth: u32,
    layout: Layout,
    nodes: HashMap<(u32, u64), SplitterNode>,
}

impl SplitterTree {
    /// Creates the tree detector for `n` processes with atomicity `l`,
    /// instantiating all nodes on the participants' paths.
    ///
    /// # Panics
    ///
    /// Panics if `n < 1`, `l ∉ 1..=16`, or the tree would exceed a million
    /// nodes (use [`SplitterTree::sparse`]).
    pub fn new(n: usize, l: u32) -> Self {
        let all: Vec<ProcessId> = (0..n as u32).map(ProcessId::new).collect();
        Self::sparse(n, l, &all)
    }

    /// Creates the tree with nodes only on the paths of `participants`
    /// (runs confined to those participants never touch other nodes).
    ///
    /// # Panics
    ///
    /// As [`SplitterTree::new`]; also if a participant is out of range.
    pub fn sparse(n: usize, l: u32, participants: &[ProcessId]) -> Self {
        assert!(n >= 1, "need at least one process");
        assert!((1..=16).contains(&l), "atomicity must be in 1..=16");
        let arity = 1u64 << l;
        let mut depth = 1u32;
        let mut capacity = arity;
        while capacity < n as u64 {
            capacity = capacity.saturating_mul(arity);
            depth += 1;
        }

        let mut keys = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for &p in participants {
            assert!(p.index() < n, "participant {p} out of range");
            for k in 0..depth {
                let key = (k, Self::node_index(p, k, depth, arity));
                if seen.insert(key) {
                    keys.push(key);
                }
            }
        }
        keys.sort_unstable();
        assert!(keys.len() <= 1_000_000, "tree too large; use sparse()");

        let mut layout = Layout::new();
        let mut nodes = HashMap::with_capacity(keys.len());
        for (k, j) in keys {
            let x = layout.register(format!("L{k}N{j}.x"), l, 0);
            let y = layout.bit(format!("L{k}N{j}.y"), false);
            nodes.insert((k, j), SplitterNode { x, y });
        }
        SplitterTree {
            n,
            l,
            arity,
            depth,
            layout,
            nodes,
        }
    }

    /// The number of levels a process traverses: `⌈log_{2^l} n⌉`.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    fn node_index(p: ProcessId, level: u32, depth: u32, arity: u64) -> u64 {
        (p.index() as u64) / arity.pow(depth - level)
    }

    fn node_slot(p: ProcessId, level: u32, depth: u32, arity: u64) -> u64 {
        ((p.index() as u64) / arity.pow(depth - 1 - level)) % arity
    }
}

impl DetectionAlgorithm for SplitterTree {
    type Proc = SplitterTreeProc;

    fn name(&self) -> &str {
        "splitter-tree"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn atomicity(&self) -> u32 {
        self.l
    }

    fn layout(&self) -> Layout {
        self.layout.clone()
    }

    fn process(&self, pid: ProcessId) -> SplitterTreeProc {
        assert!(pid.index() < self.n, "pid out of range");
        let mut path = Vec::with_capacity(self.depth as usize);
        for k in (0..self.depth).rev() {
            let j = Self::node_index(pid, k, self.depth, self.arity);
            let slot = Self::node_slot(pid, k, self.depth, self.arity);
            let node = self
                .nodes
                .get(&(k, j))
                .unwrap_or_else(|| panic!("{pid} is not an instantiated participant"));
            path.push((*node, Value::new(slot)));
        }
        SplitterTreeProc {
            path: path.into(),
            pc: TreeSplitPc::Node(0, NodePc::WriteX),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum NodePc {
    WriteX,
    ReadY,
    WriteY,
    ReadX,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum TreeSplitPc {
    /// Running the splitter of path node `i`.
    Node(u32, NodePc),
    Done(u64),
}

/// The process of [`SplitterTree`]: a leaf-to-root chain of splitters.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SplitterTreeProc {
    /// Path nodes (leaf first) with this process's slot id at each.
    path: Arc<[(SplitterNode, Value)]>,
    pc: TreeSplitPc,
}

impl std::hash::Hash for SplitterNode {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.x.hash(state);
        self.y.hash(state);
    }
}

impl PartialEq for SplitterNode {
    fn eq(&self, other: &Self) -> bool {
        self.x == other.x && self.y == other.y
    }
}

impl Eq for SplitterNode {}

impl Process for SplitterTreeProc {
    fn current(&self) -> Step {
        match self.pc {
            TreeSplitPc::Node(i, pc) => {
                let (node, slot) = self.path[i as usize];
                Step::Op(match pc {
                    NodePc::WriteX => Op::Write(node.x, slot),
                    NodePc::ReadY => Op::Read(node.y),
                    NodePc::WriteY => Op::Write(node.y, Value::ONE),
                    NodePc::ReadX => Op::Read(node.x),
                })
            }
            TreeSplitPc::Done(_) => Step::Halt,
        }
    }

    fn advance(&mut self, result: OpResult) {
        let TreeSplitPc::Node(i, pc) = self.pc else {
            unreachable!("halted process advanced")
        };
        let (_, slot) = self.path[i as usize];
        self.pc = match pc {
            NodePc::WriteX => TreeSplitPc::Node(i, NodePc::ReadY),
            NodePc::ReadY => {
                if result.bit() {
                    TreeSplitPc::Done(0)
                } else {
                    TreeSplitPc::Node(i, NodePc::WriteY)
                }
            }
            NodePc::WriteY => TreeSplitPc::Node(i, NodePc::ReadX),
            NodePc::ReadX => {
                if result.value() != slot {
                    TreeSplitPc::Done(0)
                } else if (i as usize) + 1 < self.path.len() {
                    TreeSplitPc::Node(i + 1, NodePc::WriteX)
                } else {
                    TreeSplitPc::Done(1)
                }
            }
        };
    }

    fn output(&self) -> Option<Value> {
        match self.pc {
            TreeSplitPc::Done(v) => Some(Value::new(v)),
            _ => None,
        }
    }

    // The whole leaf-to-root path: both registers of every node this
    // process visits. Processes in different subtrees declare disjoint
    // node sets below their meeting level, which is already what makes
    // partial-order reduction effective on the tree. No `location` hook:
    // the paths differ per process, so a shared pc-keyed location would
    // merge future sets across subtrees and *coarsen* the result; the
    // full-state fallback is finite (only the pc varies) and exact.
    fn may_access(&self, out: &mut RegisterSet) -> bool {
        for (node, _) in self.path.iter() {
            out.insert(node.x);
            out.insert(node.y);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_core::metrics::process_complexity;
    use cfc_core::{run_sequential, run_solo};

    #[test]
    fn solo_process_wins_everywhere() {
        for n in [1usize, 2, 8, 1000] {
            let alg = Splitter::new(n);
            for pid in [0, n - 1] {
                let pid = ProcessId::new(pid as u32);
                let (_, p, _) = run_solo(alg.memory().unwrap(), alg.process(pid)).unwrap();
                assert_eq!(p.output(), Some(Value::ONE), "splitter n={n} {pid}");
            }
        }
        for (n, l) in [(2usize, 1u32), (8, 1), (8, 3), (1000, 4)] {
            let alg = SplitterTree::new(n, l);
            for pid in [0, n - 1] {
                let pid = ProcessId::new(pid as u32);
                let (_, p, _) = run_solo(alg.memory().unwrap(), alg.process(pid)).unwrap();
                assert_eq!(p.output(), Some(Value::ONE), "tree n={n} l={l} {pid}");
            }
        }
    }

    #[test]
    fn splitter_contention_free_profile_is_4_and_2() {
        let alg = Splitter::new(100);
        let (trace, _, _) =
            run_solo(alg.memory().unwrap(), alg.process(ProcessId::new(42))).unwrap();
        let c = process_complexity(&trace, &alg.layout(), ProcessId::new(0));
        assert_eq!(c.steps, 4);
        assert_eq!(c.registers, 2);
        assert_eq!(c.read_steps, 2);
        assert_eq!(c.write_steps, 2);
    }

    #[test]
    fn tree_contention_free_profile_is_4d_and_2d() {
        for (n, l, d) in [(8usize, 1u32, 3u64), (8, 3, 1), (256, 4, 2), (1 << 16, 4, 4)] {
            let alg = SplitterTree::new(n, l);
            assert_eq!(u64::from(alg.depth()), d, "n={n} l={l}");
            let (trace, _, _) =
                run_solo(alg.memory().unwrap(), alg.process(ProcessId::new(0))).unwrap();
            let c = process_complexity(&trace, &alg.layout(), ProcessId::new(0));
            assert_eq!(c.steps, 4 * d, "n={n} l={l}");
            assert_eq!(c.registers, 2 * d, "n={n} l={l}");
        }
    }

    #[test]
    fn sequential_runs_have_exactly_one_winner() {
        for (n, l) in [(3usize, 1u32), (5, 2), (9, 4)] {
            let alg = SplitterTree::new(n, l);
            let procs = (0..n as u32).map(|i| alg.process(ProcessId::new(i))).collect();
            let (_, _, procs) = run_sequential(alg.memory().unwrap(), procs).unwrap();
            let winners: Vec<usize> = procs
                .iter()
                .enumerate()
                .filter(|(_, p)| p.output() == Some(Value::ONE))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(winners, vec![0], "n={n} l={l}");
        }
    }

    #[test]
    fn tree_interleaved_runs_have_at_most_one_winner() {
        use cfc_core::{ExecConfig, FaultPlan, RoundRobin};
        for (n, l) in [(2usize, 1u32), (3, 1), (4, 1), (4, 2), (9, 2)] {
            let alg = SplitterTree::new(n, l);
            let procs = (0..n as u32).map(|i| alg.process(ProcessId::new(i))).collect();
            let exec = cfc_core::run_schedule(
                alg.memory().unwrap(),
                procs,
                RoundRobin::new(),
                FaultPlan::new(),
                ExecConfig::default(),
            )
            .unwrap();
            let winners = exec
                .outputs()
                .into_iter()
                .filter(|o| *o == Some(Value::ONE))
                .count();
            assert!(winners <= 1, "n={n} l={l}: {winners} winners");
        }
    }

    #[test]
    fn worst_case_steps_are_bounded() {
        // Every process halts within 4 * depth of its own steps under any
        // schedule — detection has bounded worst-case step complexity.
        use cfc_core::{ExecConfig, FaultPlan, Lockstep};
        let alg = SplitterTree::new(16, 1);
        let bound = 4 * u64::from(alg.depth());
        let procs = (0..16).map(|i| alg.process(ProcessId::new(i))).collect();
        let exec = cfc_core::run_schedule(
            alg.memory().unwrap(),
            procs,
            Lockstep::new(),
            FaultPlan::new(),
            ExecConfig::default(),
        )
        .unwrap();
        for pid in 0..16 {
            assert!(exec.steps_taken(ProcessId::new(pid)) <= bound);
        }
    }

    #[test]
    fn chunk_decomposition_round_trips() {
        let alg = ChunkedSplitter::new(1 << 12, 5); // 12-bit ids: chunks 5,5,2
        assert_eq!(alg.chunks(), 3);
        let id = 0b1011_0110_0101u64;
        let c0 = alg.chunk_of(id, 0).raw();
        let c1 = alg.chunk_of(id, 1).raw();
        let c2 = alg.chunk_of(id, 2).raw();
        assert_eq!(c0, id & 0b11111);
        assert_eq!(c1, (id >> 5) & 0b11111);
        assert_eq!(c2, (id >> 10) & 0b11);
        assert_eq!(c0 | (c1 << 5) | (c2 << 10), id);
    }

    #[test]
    fn chunked_splitter_profile() {
        // The tempting-but-unsafe variant still has the advertised
        // contention-free cost; its flaw is a 3-process interleaving
        // (demonstrated by cfc-verify's explorer).
        let alg = ChunkedSplitter::new(256, 1);
        assert_eq!(alg.chunks(), 8);
        let (trace, p, _) =
            run_solo(alg.memory().unwrap(), alg.process(ProcessId::new(3))).unwrap();
        assert_eq!(p.output(), Some(Value::ONE));
        let c = process_complexity(&trace, &alg.layout(), ProcessId::new(0));
        assert_eq!(c.steps, 2 * 8 + 2);
        assert_eq!(c.registers, 9);
    }

    #[test]
    fn chunked_splitter_is_safe_for_two() {
        use cfc_core::{ExecConfig, FaultPlan, RoundRobin};
        let alg = ChunkedSplitter::new(2, 1);
        let procs = (0..2).map(|i| alg.process(ProcessId::new(i))).collect();
        let exec = cfc_core::run_schedule(
            alg.memory().unwrap(),
            procs,
            RoundRobin::new(),
            FaultPlan::new(),
            ExecConfig::default(),
        )
        .unwrap();
        let winners = exec
            .outputs()
            .into_iter()
            .filter(|o| *o == Some(Value::ONE))
            .count();
        assert!(winners <= 1);
    }
}
