//! A plain test-and-set spin lock over one shared bit.
//!
//! The simplest mutual-exclusion algorithm expressible in the model:
//! entry spins on `test-and-set(lock)` until it reads `0`, exit writes
//! `0` back. It is trivially safe and deadlock-free — some spinner's
//! `test-and-set` succeeds whenever the bit is clear — but it carries
//! **no** fairness whatsoever: a departing owner can immediately win the
//! bit again, overtaking a spinning waiter forever even under weak
//! fairness. The fair-cycle liveness checker in `cfc-verify` exhibits
//! exactly that lasso, which is why this lock lives here as the
//! starvation baseline against Peterson's bounded bypass and the
//! bakery's FCFS order.

use cfc_core::{BitOp, Layout, Op, OpResult, ProcessId, RegisterId, RegisterSet, Step, SymmetryGroup, Value};

use crate::algorithm::{LockProcess, MutexAlgorithm};
use crate::mutation::TasSpinMutation;

/// The one-bit test-and-set spin lock for `n` processes.
///
/// # Examples
///
/// ```
/// use cfc_mutex::{MutexAlgorithm, TasSpin};
/// use cfc_core::ProcessId;
///
/// let alg = TasSpin::new(3);
/// assert_eq!(alg.atomicity(), 1);
/// // Contention-free, a trip is two accesses to one bit.
/// let trip = cfc_mutex::measure::contention_free_trip(&alg, ProcessId::new(0)).unwrap();
/// assert_eq!(trip.total.steps, 2);
/// assert_eq!(trip.total.registers, 1);
/// ```
#[derive(Clone, Debug)]
pub struct TasSpin {
    n: usize,
    layout: Layout,
    bit: RegisterId,
    mutation: Option<TasSpinMutation>,
}

impl TasSpin {
    /// Creates the lock for `n ≥ 1` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one process");
        let mut layout = Layout::new();
        let bit = layout.bit("lock", false);
        TasSpin {
            n,
            layout,
            bit,
            mutation: None,
        }
    }

    /// Plants a deliberate bug (a test-only fixture for the
    /// checker-sensitivity suite; see [`crate::mutation`]).
    #[must_use]
    pub fn with_mutation(mut self, mutation: TasSpinMutation) -> Self {
        self.mutation = Some(mutation);
        self
    }
}

impl MutexAlgorithm for TasSpin {
    type Lock = TasSpinLock;

    fn name(&self) -> &str {
        "tas-spin"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn atomicity(&self) -> u32 {
        1
    }

    fn layout(&self) -> Layout {
        self.layout.clone()
    }

    fn lock(&self, pid: ProcessId) -> TasSpinLock {
        assert!(pid.index() < self.n, "pid out of range");
        TasSpinLock {
            bit: self.bit,
            pc: Pc::Idle,
            mutation: self.mutation,
        }
    }

    /// Spinners are fully interchangeable — the lock state carries no
    /// identity at all.
    fn symmetry(&self) -> SymmetryGroup {
        SymmetryGroup::full(self.n)
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Pc {
    Idle,
    /// `await test-and-set(lock) = 0`.
    Spin,
    EntryDone,
    /// exit: `lock := 0`.
    ExitWrite,
    ExitDone,
}

/// The per-process state machine of [`TasSpin`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TasSpinLock {
    bit: RegisterId,
    pc: Pc,
    /// Test-only planted bug; `None` in every production construction.
    mutation: Option<TasSpinMutation>,
}

impl LockProcess for TasSpinLock {
    fn begin_entry(&mut self) {
        self.pc = Pc::Spin;
    }

    fn begin_exit(&mut self) {
        debug_assert_eq!(self.pc, Pc::EntryDone, "exit before entry completed");
        self.pc = Pc::ExitWrite;
    }

    fn current(&self) -> Step {
        match self.pc {
            Pc::Idle | Pc::EntryDone | Pc::ExitDone => Step::Halt,
            Pc::Spin => Step::Op(Op::Bit(self.bit, BitOp::TestAndSet)),
            Pc::ExitWrite => Step::Op(Op::Write(self.bit, Value::ZERO)),
        }
    }

    fn advance(&mut self, result: OpResult) {
        self.pc = match self.pc {
            Pc::Idle | Pc::EntryDone | Pc::ExitDone => {
                unreachable!("advance called outside a phase")
            }
            Pc::Spin => {
                let won = if self.mutation == Some(TasSpinMutation::InvertedTest) {
                    result.value() != Value::ZERO // inverted: "success" on a held lock
                } else {
                    result.value() == Value::ZERO
                };
                if won {
                    Pc::EntryDone // won the bit
                } else {
                    Pc::Spin // still taken: keep spinning
                }
            }
            Pc::ExitWrite => Pc::ExitDone,
        };
    }

    fn protocol_footprint(&self, out: &mut RegisterSet) -> bool {
        out.insert(self.bit);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_core::{Process, RoundRobin, Scheduler, Section};

    #[test]
    fn all_spinners_complete_under_round_robin() {
        let alg = TasSpin::new(3);
        let mut exec = cfc_core::Executor::new(
            alg.memory().unwrap(),
            (0..3)
                .map(|i| alg.client_with_cs(ProcessId::new(i), 2, 1))
                .collect::<Vec<_>>(),
        );
        let mut sched = RoundRobin::new();
        loop {
            let runnable = exec.runnable();
            if runnable.is_empty() {
                break;
            }
            exec.step_process(sched.pick(&runnable).unwrap()).unwrap();
            let in_cs = (0..3)
                .filter(|&i| {
                    exec.process(ProcessId::new(i)).section() == Some(Section::Critical)
                })
                .count();
            assert!(in_cs <= 1, "mutual exclusion violated");
        }
        assert!(exec.quiescent());
    }

    #[test]
    fn solo_trip_is_two_steps_one_bit() {
        let alg = TasSpin::new(4);
        let trip =
            crate::measure::contention_free_trip(&alg, ProcessId::new(2)).unwrap();
        assert_eq!(trip.entry.steps, 1);
        assert_eq!(trip.exit.steps, 1);
        assert_eq!(trip.total.registers, 1);
    }

    #[test]
    fn loser_spins_in_place() {
        let mut lock = TasSpin::new(2).lock(ProcessId::new(1));
        lock.begin_entry();
        let before = lock.clone();
        // A failed test-and-set (bit already 1) leaves the state machine
        // exactly where it was: the spin is a graph self-loop.
        lock.advance(OpResult::Value(Value::ONE));
        assert_eq!(lock, before);
        lock.advance(OpResult::Value(Value::ZERO));
        assert!(matches!(lock.current(), Step::Halt)); // entry complete
    }
}
