//! Lamport's fast mutual exclusion algorithm [Lam87].
//!
//! The first algorithm with *constant* contention-free complexity: in the
//! absence of contention a process performs 5 shared accesses to enter its
//! critical section and 2 to exit — 7 accesses to 3 distinct registers —
//! independent of `n`. The price is registers of `⌈log₂(n+1)⌉` bits
//! (they hold process identities), i.e. atomicity `l = Θ(log n)`.
//!
//! Pseudocode for process `i` (identities are `1..=n`, `0` means "free"):
//!
//! ```text
//! start: b[i] := true
//!        x := i
//!        if y ≠ 0 { b[i] := false; await y = 0; goto start }
//!        y := i
//!        if x ≠ i {
//!            b[i] := false
//!            for j in 1..=n { await ¬b[j] }
//!            if y ≠ i { await y = 0; goto start }
//!        }
//!        -- critical section --
//! exit:  y := 0
//!        b[i] := false
//! ```
//!
//! The algorithm is deadlock-free but not starvation-free, and its
//! worst-case step complexity is unbounded [AT92].

use std::sync::Arc;

use cfc_core::{bits_for, Layout, Op, OpResult, ProcessId, RegisterId, Step, Value};

use crate::algorithm::{LockProcess, MutexAlgorithm};

/// The Lamport fast-mutex algorithm for `n` processes.
///
/// # Examples
///
/// ```
/// use cfc_mutex::{LamportFast, MutexAlgorithm};
/// use cfc_core::{run_solo, ProcessId};
/// use cfc_core::metrics::trip_complexities;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let alg = LamportFast::new(8);
/// let memory = alg.memory()?;
/// let (trace, _, _) = run_solo(memory, alg.client(ProcessId::new(3), 1))?;
/// // The solo trace indexes its lone process as pid 0.
/// let trip = trip_complexities(&trace, &alg.layout(), ProcessId::new(0))[0];
/// assert_eq!(trip.total.steps, 7);      // 5 entry + 2 exit
/// assert_eq!(trip.total.registers, 3);  // b[3], x, y
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct LamportFast {
    n: usize,
    width: u32,
    layout: Layout,
    x: RegisterId,
    y: RegisterId,
    b: Arc<[RegisterId]>,
}

impl LamportFast {
    /// Creates the algorithm for `n ≥ 1` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one process");
        let width = bits_for(n as u64);
        let mut layout = Layout::new();
        let x = layout.register("x", width, 0);
        let y = layout.register("y", width, 0);
        let b: Arc<[RegisterId]> = layout.bits("b", n, false).into();
        LamportFast {
            n,
            width,
            layout,
            x,
            y,
            b,
        }
    }

    /// The register width (`⌈log₂(n+1)⌉` bits to hold ids `0..=n`).
    pub fn width(&self) -> u32 {
        self.width
    }
}

impl MutexAlgorithm for LamportFast {
    type Lock = LamportLock;

    fn name(&self) -> &str {
        "lamport-fast"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn atomicity(&self) -> u32 {
        self.width
    }

    fn layout(&self) -> Layout {
        self.layout.clone()
    }

    fn lock(&self, pid: ProcessId) -> LamportLock {
        assert!(pid.index() < self.n, "pid out of range");
        LamportLock::new(self.x, self.y, Arc::clone(&self.b), pid.index())
    }
}

/// Program counter of [`LamportLock`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Pc {
    Idle,
    /// `b[i] := true`
    WriteB1,
    /// `x := i`
    WriteX,
    /// read `y`; 0 ⇒ proceed, else back off
    ReadY,
    /// `b[i] := false` before waiting for `y = 0`
    WriteB0Restart,
    /// `await y = 0`, then restart
    AwaitY,
    /// `y := i`
    WriteY,
    /// read `x`; still `i` ⇒ fast path into the critical section
    ReadX,
    /// slow path: `b[i] := false`
    WriteB0Slow,
    /// slow path: `await ¬b[j]` for each j in turn
    ScanB(u32),
    /// slow path: read `y`; `i` ⇒ enter, else wait for free and restart
    ReadY2,
    /// `await y = 0`, then restart
    AwaitY2,
    /// entry phase complete (at the critical-section boundary)
    EntryDone,
    /// exit: `y := 0`
    ExitWriteY,
    /// exit: `b[i] := false`
    ExitWriteB,
    /// exit phase complete
    ExitDone,
}

/// The per-process entry/exit state machine of [`LamportFast`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct LamportLock {
    x: RegisterId,
    y: RegisterId,
    b: Arc<[RegisterId]>,
    /// Zero-based slot; the identity written to `x`/`y` is `slot + 1`.
    slot: usize,
    pc: Pc,
}

impl LamportLock {
    /// Creates the lock for `slot` (zero-based) among `b.len()` slots.
    pub fn new(x: RegisterId, y: RegisterId, b: Arc<[RegisterId]>, slot: usize) -> Self {
        assert!(slot < b.len(), "slot out of range");
        LamportLock {
            x,
            y,
            b,
            slot,
            pc: Pc::Idle,
        }
    }

    fn id(&self) -> Value {
        Value::new(self.slot as u64 + 1)
    }
}

impl LockProcess for LamportLock {
    fn begin_entry(&mut self) {
        self.pc = Pc::WriteB1;
    }

    fn begin_exit(&mut self) {
        debug_assert_eq!(self.pc, Pc::EntryDone, "exit before entry completed");
        self.pc = Pc::ExitWriteY;
    }

    fn current(&self) -> Step {
        match self.pc {
            Pc::Idle | Pc::EntryDone | Pc::ExitDone => Step::Halt,
            Pc::WriteB1 => Step::Op(Op::Write(self.b[self.slot], Value::ONE)),
            Pc::WriteX => Step::Op(Op::Write(self.x, self.id())),
            Pc::ReadY | Pc::AwaitY | Pc::ReadY2 | Pc::AwaitY2 => Step::Op(Op::Read(self.y)),
            Pc::WriteB0Restart | Pc::WriteB0Slow | Pc::ExitWriteB => {
                Step::Op(Op::Write(self.b[self.slot], Value::ZERO))
            }
            Pc::WriteY => Step::Op(Op::Write(self.y, self.id())),
            Pc::ReadX => Step::Op(Op::Read(self.x)),
            Pc::ScanB(j) => Step::Op(Op::Read(self.b[j as usize])),
            Pc::ExitWriteY => Step::Op(Op::Write(self.y, Value::ZERO)),
        }
    }

    fn protocol_footprint(&self, out: &mut cfc_core::RegisterSet) -> bool {
        out.insert(self.x);
        out.insert(self.y);
        out.extend(self.b.iter().copied());
        true
    }

    fn advance(&mut self, result: OpResult) {
        self.pc = match self.pc {
            Pc::Idle | Pc::EntryDone | Pc::ExitDone => {
                unreachable!("advance called outside a phase")
            }
            Pc::WriteB1 => Pc::WriteX,
            Pc::WriteX => Pc::ReadY,
            Pc::ReadY => {
                if result.value() == Value::ZERO {
                    Pc::WriteY
                } else {
                    Pc::WriteB0Restart
                }
            }
            Pc::WriteB0Restart => Pc::AwaitY,
            Pc::AwaitY => {
                if result.value() == Value::ZERO {
                    Pc::WriteB1
                } else {
                    Pc::AwaitY
                }
            }
            Pc::WriteY => Pc::ReadX,
            Pc::ReadX => {
                if result.value() == self.id() {
                    Pc::EntryDone
                } else {
                    Pc::WriteB0Slow
                }
            }
            Pc::WriteB0Slow => Pc::ScanB(0),
            Pc::ScanB(j) => {
                if result.bit() {
                    Pc::ScanB(j) // await ¬b[j]
                } else if (j as usize) + 1 < self.b.len() {
                    Pc::ScanB(j + 1)
                } else {
                    Pc::ReadY2
                }
            }
            Pc::ReadY2 => {
                let v = result.value();
                if v == self.id() {
                    Pc::EntryDone
                } else if v == Value::ZERO {
                    Pc::WriteB1 // y already free: restart immediately
                } else {
                    Pc::AwaitY2
                }
            }
            Pc::AwaitY2 => {
                if result.value() == Value::ZERO {
                    Pc::WriteB1
                } else {
                    Pc::AwaitY2
                }
            }
            Pc::ExitWriteY => Pc::ExitWriteB,
            Pc::ExitWriteB => Pc::ExitDone,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_core::metrics::trip_complexities;
    use cfc_core::{run_solo, ExecConfig, FaultPlan, RoundRobin, Section};

    #[test]
    fn contention_free_profile_matches_lam87() {
        // 5 entry accesses + 2 exit accesses, 3 distinct registers,
        // for every n and every participant.
        for n in [1usize, 2, 3, 8, 100] {
            let alg = LamportFast::new(n);
            for pid in [0, n - 1] {
                let pid = ProcessId::new(pid as u32);
                let (trace, _, _) =
                    run_solo(alg.memory().unwrap(), alg.client(pid, 1)).unwrap();
                // Solo traces index the lone process as pid 0.
                let trips = trip_complexities(&trace, &alg.layout(), ProcessId::new(0));
                assert_eq!(trips.len(), 1);
                let t = trips[0];
                assert_eq!(t.entry.steps, 5, "n={n}");
                assert_eq!(t.exit.steps, 2, "n={n}");
                assert_eq!(t.total.steps, 7, "n={n}");
                assert_eq!(t.total.registers, 3, "n={n}");
                assert_eq!(t.total.read_steps, 2); // read y, read x
                assert_eq!(t.total.write_steps, 5);
            }
        }
    }

    #[test]
    fn solo_run_leaves_memory_clean() {
        let alg = LamportFast::new(4);
        let pid = ProcessId::new(2);
        let (_, _, memory) = run_solo(alg.memory().unwrap(), alg.client(pid, 1)).unwrap();
        // After a complete trip, y and all b flags are back to 0.
        assert_eq!(memory.get(alg.y), Value::ZERO);
        for &b in alg.b.iter() {
            assert_eq!(memory.get(b), Value::ZERO);
        }
    }

    #[test]
    fn two_processes_round_robin_both_complete() {
        let alg = LamportFast::new(2);
        let clients = vec![
            alg.client(ProcessId::new(0), 3),
            alg.client(ProcessId::new(1), 3),
        ];
        let exec = cfc_core::run_schedule(
            alg.memory().unwrap(),
            clients,
            RoundRobin::new(),
            FaultPlan::new(),
            ExecConfig::default(),
        )
        .unwrap();
        assert!(exec.quiescent());
    }

    #[test]
    fn mutual_exclusion_under_round_robin() {
        // Count processes in the critical section after every event.
        let alg = LamportFast::new(3);
        let mut exec = cfc_core::Executor::new(
            alg.memory().unwrap(),
            (0..3)
                .map(|i| alg.client_with_cs(ProcessId::new(i), 2, 1))
                .collect::<Vec<_>>(),
        );
        let mut sched = RoundRobin::new();
        use cfc_core::{Process, Scheduler};
        loop {
            let runnable = exec.runnable();
            if runnable.is_empty() {
                break;
            }
            let pid = sched.pick(&runnable).unwrap();
            exec.step_process(pid).unwrap();
            let in_cs = (0..3)
                .filter(|&i| {
                    exec.process(ProcessId::new(i)).section() == Some(Section::Critical)
                })
                .count();
            assert!(in_cs <= 1, "mutual exclusion violated");
        }
    }

    #[test]
    fn atomicity_is_log_n() {
        assert_eq!(LamportFast::new(1).atomicity(), 1);
        assert_eq!(LamportFast::new(7).atomicity(), 3);
        assert_eq!(LamportFast::new(8).atomicity(), 4);
        assert_eq!(LamportFast::new(255).atomicity(), 8);
    }

    #[test]
    #[should_panic(expected = "pid out of range")]
    fn rejects_out_of_range_pid() {
        let alg = LamportFast::new(2);
        let _ = alg.lock(ProcessId::new(2));
    }
}
