//! Tree-based naming with `test-and-set` + `test-and-reset`
//! (Theorem 4.2).
//!
//! The same balanced binary tree as [`TafTree`](crate::TafTree), but
//! without `test-and-flip`: at each node a process alternately applies
//! `test-and-set` and `test-and-reset` until either the `test-and-set`
//! returns `0` or the `test-and-reset` returns `1`; the value of that last
//! (successful) operation routes it, exactly as the flip's return value
//! would.
//!
//! A successful operation toggles the bit and observes its old value —
//! precisely `test-and-flip` — while failed operations do not modify the
//! bit at all, so the node's routing history is identical to the flip
//! tree's and names stay unique. A process can fail at a node only when
//! another process succeeds there in between, and at most `n` successes
//! ever occur per node, so the walk is wait-free with worst-case register
//! complexity `log₂ n` — the tight bound for this model — though its
//! worst-case **step** complexity is super-logarithmic (the model's tight
//! step bound, `n − 1`, is achieved by
//! [`TasScan`](crate::TasScan) instead).

use std::sync::Arc;

use cfc_core::{BitOp, Layout, Op, OpResult, Process, RegisterId, Step, Value};

use crate::algorithm::NamingAlgorithm;
use crate::model::Model;
use crate::taf_tree::{insert_subtree, NotAPowerOfTwo};

/// The `test-and-set`/`test-and-reset` alternation tree.
#[derive(Clone, Debug)]
pub struct TasTarTree {
    n: usize,
    layout: Layout,
    nodes: Arc<[RegisterId]>,
}

impl TasTarTree {
    /// Creates the algorithm for `n` processes (`n` a power of two, ≥ 2).
    ///
    /// # Errors
    ///
    /// Returns [`NotAPowerOfTwo`] otherwise.
    pub fn new(n: usize) -> Result<Self, NotAPowerOfTwo> {
        if n < 2 || !n.is_power_of_two() {
            return Err(NotAPowerOfTwo(n));
        }
        let mut layout = Layout::new();
        let nodes: Arc<[RegisterId]> = layout.bits("node", n - 1, false).into();
        Ok(TasTarTree { n, layout, nodes })
    }

    /// The tree depth `log₂ n`.
    pub fn depth(&self) -> u32 {
        self.n.trailing_zeros()
    }
}

impl NamingAlgorithm for TasTarTree {
    type Proc = TasTarTreeProc;

    fn name(&self) -> &str {
        "tas-tar-tree"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn model(&self) -> Model {
        Model::new(&[BitOp::TestAndSet, BitOp::TestAndReset])
    }

    fn layout(&self) -> Layout {
        self.layout.clone()
    }

    fn process(&self) -> TasTarTreeProc {
        TasTarTreeProc {
            nodes: Arc::clone(&self.nodes),
            n: self.n as u64,
            pc: TreePc::AtNode(1, BitOp::TestAndSet),
        }
    }

    fn step_budget(&self) -> u64 {
        // Per node: each failure is flanked by another process's success,
        // and at most n successes happen per node; alternation costs at
        // most 2 steps per foreign success plus 2 of its own.
        u64::from(self.depth()) * (2 * self.n as u64 + 2)
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum TreePc {
    /// At heap node `v`, about to apply the given operation
    /// (`TestAndSet` or `TestAndReset`).
    AtNode(u64, BitOp),
    Done(u64),
}

/// The participant process of [`TasTarTree`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TasTarTreeProc {
    nodes: Arc<[RegisterId]>,
    n: u64,
    pc: TreePc,
}

impl TasTarTreeProc {
    fn route(&self, v: u64, bit: bool) -> TreePc {
        let child = 2 * v + u64::from(bit);
        if child <= self.nodes.len() as u64 {
            TreePc::AtNode(child, BitOp::TestAndSet)
        } else {
            let leaf_number = v - self.n / 2 + 1;
            TreePc::Done(2 * leaf_number - 1 + u64::from(bit))
        }
    }
}

impl Process for TasTarTreeProc {
    fn current(&self) -> Step {
        match self.pc {
            TreePc::AtNode(v, op) => Step::Op(Op::Bit(self.nodes[(v - 1) as usize], op)),
            TreePc::Done(_) => Step::Halt,
        }
    }

    fn advance(&mut self, result: OpResult) {
        let TreePc::AtNode(v, op) = self.pc else {
            unreachable!("halted process advanced")
        };
        let old = result.bit();
        self.pc = match op {
            // test-and-set succeeded: observed 0, flipped the bit to 1.
            BitOp::TestAndSet if !old => self.route(v, false),
            // test-and-reset succeeded: observed 1, flipped it to 0.
            BitOp::TestAndReset if old => self.route(v, true),
            // Failure: the bit was unchanged; try the other operation.
            BitOp::TestAndSet => TreePc::AtNode(v, BitOp::TestAndReset),
            BitOp::TestAndReset => TreePc::AtNode(v, BitOp::TestAndSet),
            _ => unreachable!("only TAS/TAR are issued"),
        };
    }

    fn output(&self) -> Option<Value> {
        match self.pc {
            TreePc::Done(name) => Some(Value::new(name)),
            _ => None,
        }
    }

    fn fingerprint(&self) -> Option<u64> {
        Some(match self.pc {
            TreePc::AtNode(v, op) => {
                (v << 2) | u64::from(matches!(op, cfc_core::BitOp::TestAndReset))
            }
            TreePc::Done(name) => (name << 2) | 2,
        })
    }

    fn may_access(&self, out: &mut cfc_core::RegisterSet) -> bool {
        if let TreePc::AtNode(v, _) = self.pc {
            insert_subtree(&self.nodes, v, out);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_core::metrics::all_process_complexities;
    use cfc_core::{run_sequential, ExecConfig, FaultPlan, Lockstep, ProcessId, RandomSched};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sequential_assignment_matches_taf_tree() {
        // With no contention every alternation succeeds at the first
        // attempt that can succeed, emulating the flip exactly.
        let taf = crate::TafTree::new(8).unwrap();
        let tt = TasTarTree::new(8).unwrap();
        let (_, _, taf_procs) = run_sequential(taf.memory().unwrap(), taf.processes()).unwrap();
        let (_, _, tt_procs) = run_sequential(tt.memory().unwrap(), tt.processes()).unwrap();
        let taf_names: Vec<u64> = taf_procs.iter().map(|p| p.output().unwrap().raw()).collect();
        let tt_names: Vec<u64> = tt_procs.iter().map(|p| p.output().unwrap().raw()).collect();
        assert_eq!(taf_names, tt_names);
    }

    #[test]
    fn lockstep_names_are_unique_and_registers_logarithmic() {
        for n in [4usize, 8, 16] {
            let alg = TasTarTree::new(n).unwrap();
            let exec = cfc_core::run_schedule(
                alg.memory().unwrap(),
                alg.processes(),
                Lockstep::new(),
                FaultPlan::new(),
                ExecConfig::default(),
            )
            .unwrap();
            let mut names: Vec<u64> = exec.outputs().iter().map(|o| o.unwrap().raw()).collect();
            names.sort_unstable();
            assert_eq!(names, (1..=n as u64).collect::<Vec<_>>(), "n={n}");
            // Worst-case register complexity: one bit per level.
            let layout = alg.layout();
            for c in all_process_complexities(exec.trace(), &layout, n) {
                assert!(c.registers <= u64::from(alg.depth()), "n={n}: {c}");
                assert!(c.steps <= alg.step_budget());
            }
        }
    }

    #[test]
    fn random_schedules_and_crashes_stay_safe() {
        for seed in 0..15 {
            let alg = TasTarTree::new(8).unwrap();
            let faults = if seed % 3 == 0 {
                FaultPlan::new().with_crash(ProcessId::new((seed % 8) as u32), seed % 5)
            } else {
                FaultPlan::new()
            };
            let exec = cfc_core::run_schedule(
                alg.memory().unwrap(),
                alg.processes(),
                RandomSched::new(StdRng::seed_from_u64(seed)),
                faults,
                ExecConfig::default(),
            )
            .unwrap();
            let names: Vec<u64> = exec.outputs().iter().flatten().map(|v| v.raw()).collect();
            let mut sorted = names.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), names.len(), "duplicates: {names:?}");
        }
    }

    #[test]
    fn model_is_tas_tar() {
        let alg = TasTarTree::new(4).unwrap();
        assert!(alg.model().contains(BitOp::TestAndSet));
        assert!(alg.model().contains(BitOp::TestAndReset));
        assert!(!alg.model().contains(BitOp::TestAndFlip));
        assert!(!alg.model().contains(BitOp::Read));
    }
}
