//! Executable impossibility: symmetry cannot be broken without
//! read–modify–write.
//!
//! Section 3.1 observes that "if in one atomic step a process can either
//! read or write a shared register, but cannot do both, then the naming
//! problem is not solvable deterministically, since it is not possible to
//! break symmetry". This module makes that argument (and the engine of
//! Theorem 6) executable:
//!
//! * A model is [*symmetry-breaking*](Model::breaks_symmetry) iff it
//!   contains an operation that both **mutates** the bit and **returns**
//!   its old value (`test-and-set`, `test-and-reset`, or
//!   `test-and-flip`). Operations that only observe (`read`, `skip`) or
//!   only mutate (`write-0/1`, `flip`) cannot distinguish two identical
//!   processes driven in lockstep.
//! * [`lockstep_symmetry_witness`] *demonstrates* the impossibility on
//!   any concrete algorithm: if the algorithm only uses
//!   non-symmetry-breaking operations, driving `n` identical copies in
//!   lockstep keeps their states bitwise identical after every round —
//!   so they can never decide distinct names. The function runs the
//!   lockstep schedule and returns the per-round equality witness.
//!
//! The proof idea is the paper's: after both processes apply the same
//! operation to the same bit, an op that returns a value *without
//! mutating* returns the same value to both; an op that *mutates without
//! returning* leaves both with no information. Only an op that returns
//! the old value **and** changes the bit can answer differently to the
//! first and second arrival.

use cfc_core::{BitOp, Memory, Op, OpResult, Process, Step};

use crate::algorithm::NamingAlgorithm;
use crate::model::Model;

impl Model {
    /// Does the model contain an operation that can break symmetry — one
    /// that both mutates the bit and returns its old value?
    pub fn breaks_symmetry(self) -> bool {
        self.iter().any(|op| op.mutates() && op.returns_value())
    }
}

/// The outcome of driving identical processes in lockstep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SymmetryWitness {
    /// Rounds executed before the run quiesced or diverged.
    pub rounds: u64,
    /// `true` if the processes' states were identical after every round
    /// (so no naming algorithm in this model can be correct).
    pub stayed_identical: bool,
}

/// Drives `n` identical copies of the algorithm's process in lockstep and
/// checks state equality after every round.
///
/// For algorithms confined to non-symmetry-breaking operations this
/// *must* report `stayed_identical: true` — the executable form of the
/// paper's impossibility remark. For an algorithm with `test-and-set`
/// etc., divergence is expected at the first contended RMW.
///
/// `max_rounds` bounds the run for non-terminating symmetric algorithms
/// (identical processes may loop forever precisely because they cannot
/// decide distinct names).
///
/// # Errors
///
/// Propagates memory errors from the algorithm's operations.
pub fn lockstep_symmetry_witness<A>(
    alg: &A,
    max_rounds: u64,
) -> Result<SymmetryWitness, cfc_core::MemoryError>
where
    A: NamingAlgorithm,
    A::Proc: Clone + PartialEq,
{
    let mut memory: Memory = alg.memory()?;
    let mut procs: Vec<A::Proc> = alg.processes();
    let n = procs.len();
    let mut rounds = 0u64;

    while rounds < max_rounds {
        // One lockstep round: every non-halted process takes one step.
        let mut any_running = false;
        for proc_ in procs.iter_mut().take(n) {
            match proc_.current() {
                Step::Halt => {}
                Step::Internal => {
                    proc_.advance(OpResult::None);
                    any_running = true;
                }
                Step::Op(op) => {
                    let result = memory.apply(&op)?;
                    proc_.advance(result);
                    any_running = true;
                }
            }
        }
        rounds += 1;
        if !any_running {
            break;
        }
        // Symmetry check: all process states identical?
        if !procs.windows(2).all(|w| w[0] == w[1]) {
            return Ok(SymmetryWitness {
                rounds,
                stayed_identical: false,
            });
        }
    }
    Ok(SymmetryWitness {
        rounds,
        stayed_identical: true,
    })
}

/// A "naming attempt" restricted to a read/write/flip-style model, used
/// to demonstrate the impossibility: walk the [`TafTree`](crate::TafTree)
/// shape, but with `flip` + `read` instead of `test-and-flip` (flip the
/// node, then read it, route on the read value).
///
/// This is the natural way one might try to simulate `test-and-flip`
/// without an RMW — and it cannot work: in lockstep, both processes flip
/// (restoring the bit), then both read the same value.
#[derive(Clone, Debug)]
pub struct FlipReadAttempt {
    n: usize,
    layout: cfc_core::Layout,
    nodes: std::sync::Arc<[cfc_core::RegisterId]>,
}

impl FlipReadAttempt {
    /// Creates the attempt for `n` processes (`n` a power of two ≥ 2).
    ///
    /// # Errors
    ///
    /// Returns [`NotAPowerOfTwo`](crate::NotAPowerOfTwo) otherwise.
    pub fn new(n: usize) -> Result<Self, crate::NotAPowerOfTwo> {
        if n < 2 || !n.is_power_of_two() {
            return Err(crate::NotAPowerOfTwo(n));
        }
        let mut layout = cfc_core::Layout::new();
        let nodes: std::sync::Arc<[cfc_core::RegisterId]> =
            layout.bits("node", n - 1, false).into();
        Ok(FlipReadAttempt { n, layout, nodes })
    }
}

impl NamingAlgorithm for FlipReadAttempt {
    type Proc = FlipReadProc;

    fn name(&self) -> &str {
        "flip-read-attempt (impossible model)"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn model(&self) -> Model {
        Model::new(&[BitOp::Flip, BitOp::Read])
    }

    fn layout(&self) -> cfc_core::Layout {
        self.layout.clone()
    }

    fn process(&self) -> FlipReadProc {
        FlipReadProc {
            nodes: std::sync::Arc::clone(&self.nodes),
            n: self.n as u64,
            node: 1,
            about_to_read: false,
            decided: None,
        }
    }

    fn step_budget(&self) -> u64 {
        2 * u64::from(64 - (self.n as u64 - 1).leading_zeros())
    }
}

/// The participant of [`FlipReadAttempt`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FlipReadProc {
    nodes: std::sync::Arc<[cfc_core::RegisterId]>,
    n: u64,
    node: u64,
    about_to_read: bool,
    decided: Option<u64>,
}

impl Process for FlipReadProc {
    fn current(&self) -> Step {
        if self.decided.is_some() {
            return Step::Halt;
        }
        let reg = self.nodes[(self.node - 1) as usize];
        if self.about_to_read {
            Step::Op(Op::Bit(reg, BitOp::Read))
        } else {
            Step::Op(Op::Bit(reg, BitOp::Flip))
        }
    }

    fn advance(&mut self, result: OpResult) {
        if !self.about_to_read {
            self.about_to_read = true;
            return;
        }
        self.about_to_read = false;
        let bit = result.bit();
        let child = 2 * self.node + u64::from(bit);
        if child <= self.nodes.len() as u64 {
            self.node = child;
        } else {
            let leaf = self.node - self.n / 2 + 1;
            self.decided = Some(2 * leaf - 1 + u64::from(bit));
        }
    }

    fn output(&self) -> Option<cfc_core::Value> {
        self.decided.map(cfc_core::Value::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TafTree, TasScan};

    #[test]
    fn symmetry_breaking_classification() {
        assert!(Model::TAS_ONLY.breaks_symmetry());
        assert!(Model::TAF_ONLY.breaks_symmetry());
        assert!(Model::RMW.breaks_symmetry());
        assert!(!Model::new(&[BitOp::Read, BitOp::Write0, BitOp::Write1]).breaks_symmetry());
        assert!(!Model::new(&[BitOp::Flip, BitOp::Read]).breaks_symmetry());
        assert!(!Model::EMPTY.breaks_symmetry());
        // Exactly the models containing tas, tar, or taf break symmetry.
        let breaking = Model::all_models().filter(|m| m.breaks_symmetry()).count();
        // 256 models total; those avoiding all three RMW ops: subsets of
        // the other five operations = 2^5 = 32. So 256 - 32 = 224 break.
        assert_eq!(breaking, 224);
    }

    #[test]
    fn flip_read_attempt_stays_symmetric_forever() {
        // The impossibility, executed: identical processes in the
        // {flip, read} model remain identical after every lockstep round
        // and never decide distinct names.
        let alg = FlipReadAttempt::new(8).unwrap();
        assert!(!alg.model().breaks_symmetry());
        let w = lockstep_symmetry_witness(&alg, 1_000).unwrap();
        assert!(w.stayed_identical);
    }

    #[test]
    fn flip_read_attempt_gives_duplicate_names() {
        // Concretely: in lockstep every process decides the SAME name.
        use cfc_core::{run_schedule, ExecConfig, FaultPlan, Lockstep};
        let alg = FlipReadAttempt::new(4).unwrap();
        let exec = run_schedule(
            alg.memory().unwrap(),
            alg.processes(),
            Lockstep::new(),
            FaultPlan::new(),
            ExecConfig::default(),
        )
        .unwrap();
        let names: Vec<u64> = exec.outputs().iter().map(|o| o.unwrap().raw()).collect();
        assert!(names.windows(2).all(|w| w[0] == w[1]), "{names:?}");
    }

    #[test]
    fn rmw_algorithms_diverge_under_lockstep() {
        // Contrast: test-and-flip DOES break the tie at the first node.
        let taf = TafTree::new(4).unwrap();
        let w = lockstep_symmetry_witness(&taf, 1_000).unwrap();
        assert!(!w.stayed_identical);
        assert_eq!(w.rounds, 1, "the very first round distinguishes");

        let scan = TasScan::new(4);
        let w = lockstep_symmetry_witness(&scan, 1_000).unwrap();
        assert!(!w.stayed_identical);
    }

    #[test]
    fn sequential_runs_of_the_attempt_do_assign_names() {
        // Without contention the flip-read walk behaves like the taf
        // tree; the impossibility is specifically about breaking ties.
        use cfc_core::run_sequential;
        let alg = FlipReadAttempt::new(4).unwrap();
        let (_, _, procs) = run_sequential(alg.memory().unwrap(), alg.processes()).unwrap();
        let mut names: Vec<u64> = procs.iter().map(|p| p.output().unwrap().raw()).collect();
        names.sort_unstable();
        assert_eq!(names, vec![1, 2, 3, 4]);
    }
}
