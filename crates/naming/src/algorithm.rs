//! The naming-algorithm abstraction.

use cfc_core::{Layout, Memory, MemoryError, Process, SymmetryGroup};

use crate::model::Model;

/// A wait-free naming algorithm (Section 3): assigns unique names from
/// `1..=n` to `n` initially **identical** processes.
///
/// Symmetry is enforced structurally: [`NamingAlgorithm::process`] takes no
/// process identity — every participant starts from the same state and can
/// diverge only through the values shared bits return.
///
/// Implementations must be wait-free: a process terminates within
/// [`NamingAlgorithm::step_budget`] of its **own** steps regardless of the
/// scheduling and crashes of others.
pub trait NamingAlgorithm {
    /// The participant process type.
    type Proc: Process;

    /// A human-readable name for reports.
    fn name(&self) -> &str;

    /// The number of participating processes (and the name-space size).
    fn n(&self) -> usize;

    /// The model whose operations this algorithm uses.
    fn model(&self) -> Model;

    /// The shared bit layout.
    fn layout(&self) -> Layout;

    /// One (identical) participant process.
    fn process(&self) -> Self::Proc;

    /// An upper bound on the number of steps any participant takes before
    /// halting, regardless of scheduling and crashes (the wait-freedom
    /// budget). Tests assert it.
    fn step_budget(&self) -> u64;

    /// A fresh shared memory (atomicity 1: the naming model is shared
    /// bits).
    ///
    /// # Errors
    ///
    /// Propagates layout validation errors (none for well-formed
    /// algorithms).
    fn memory(&self) -> Result<Memory, MemoryError> {
        Memory::new(self.layout(), 1)
    }

    /// `n` identical participant processes.
    fn processes(&self) -> Vec<Self::Proc> {
        (0..self.n()).map(|_| self.process()).collect()
    }

    /// The process-symmetry group: the **full** group over all `n`
    /// participants.
    ///
    /// Symmetry is structural for naming — [`NamingAlgorithm::process`]
    /// takes no identity, so every participant starts identical and any
    /// permutation of the process vector is an automorphism of the state
    /// graph. The symmetry-reduced explorer in `cfc-verify` exploits this
    /// to explore one representative per orbit.
    fn symmetry(&self) -> SymmetryGroup {
        SymmetryGroup::full(self.n())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_core::{Op, OpResult, RegisterId, Step, Value};

    /// A one-process "algorithm" used to exercise the trait's defaults.
    #[derive(Clone, Debug)]
    struct Trivial {
        layout: Layout,
        bit: RegisterId,
    }

    impl Trivial {
        fn new() -> Self {
            let mut layout = Layout::new();
            let bit = layout.bit("b", false);
            Trivial { layout, bit }
        }
    }

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct TrivialProc {
        bit: RegisterId,
        done: bool,
    }

    impl Process for TrivialProc {
        fn current(&self) -> Step {
            if self.done {
                Step::Halt
            } else {
                Step::Op(Op::Bit(self.bit, cfc_core::BitOp::TestAndSet))
            }
        }
        fn advance(&mut self, _: OpResult) {
            self.done = true;
        }
        fn output(&self) -> Option<Value> {
            self.done.then_some(Value::ONE)
        }
    }

    impl NamingAlgorithm for Trivial {
        type Proc = TrivialProc;
        fn name(&self) -> &str {
            "trivial"
        }
        fn n(&self) -> usize {
            1
        }
        fn model(&self) -> Model {
            Model::TAS_ONLY
        }
        fn layout(&self) -> Layout {
            self.layout.clone()
        }
        fn process(&self) -> TrivialProc {
            TrivialProc {
                bit: self.bit,
                done: false,
            }
        }
        fn step_budget(&self) -> u64 {
            1
        }
    }

    #[test]
    fn defaults_build_memory_and_processes() {
        let alg = Trivial::new();
        let memory = alg.memory().unwrap();
        assert_eq!(memory.atomicity(), 1);
        let procs = alg.processes();
        assert_eq!(procs.len(), 1);
        // Identical processes: all equal at construction.
        let (a, b) = (alg.process(), alg.process());
        assert_eq!(a, b);
    }
}
