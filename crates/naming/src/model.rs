//! Models: subsets of the eight single-bit operations (Section 3.1).

use std::fmt;

use cfc_core::BitOp;

/// A *model*: the set of operations supported on each shared bit.
///
/// There are 2⁸ models. The model containing all eight operations is the
/// read–modify–write model. Naming algorithms declare the model they
/// operate in, and the runtime checks every issued operation against it.
///
/// # Examples
///
/// ```
/// use cfc_naming::Model;
/// use cfc_core::BitOp;
///
/// let m = Model::READ_TAS;
/// assert!(m.contains(BitOp::TestAndSet));
/// assert!(!m.contains(BitOp::TestAndFlip));
/// assert_eq!(m.dual(), Model::new(&[BitOp::Read, BitOp::TestAndReset]));
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Model(u8);

impl Model {
    /// The empty model (no operations).
    pub const EMPTY: Model = Model(0);

    /// `{test-and-set}`.
    pub const TAS_ONLY: Model = Model::new(&[BitOp::TestAndSet]);

    /// `{read, test-and-set}`.
    pub const READ_TAS: Model = Model::new(&[BitOp::Read, BitOp::TestAndSet]);

    /// `{read, test-and-set, test-and-reset}`.
    pub const READ_TAS_TAR: Model =
        Model::new(&[BitOp::Read, BitOp::TestAndSet, BitOp::TestAndReset]);

    /// `{test-and-flip}`.
    pub const TAF_ONLY: Model = Model::new(&[BitOp::TestAndFlip]);

    /// The full read–modify–write model (all eight operations).
    pub const RMW: Model = Model(0xFF);

    const fn bit(op: BitOp) -> u8 {
        1 << (op as u8)
    }

    /// Creates a model from a list of operations.
    pub const fn new(ops: &[BitOp]) -> Model {
        let mut mask = 0u8;
        let mut i = 0;
        while i < ops.len() {
            mask |= Model::bit(ops[i]);
            i += 1;
        }
        Model(mask)
    }

    /// Does the model support `op`?
    pub const fn contains(self, op: BitOp) -> bool {
        self.0 & Model::bit(op) != 0
    }

    /// The model extended with `op`.
    #[must_use]
    pub const fn with(self, op: BitOp) -> Model {
        Model(self.0 | Model::bit(op))
    }

    /// The union of two models.
    #[must_use]
    pub const fn union(self, other: Model) -> Model {
        Model(self.0 | other.0)
    }

    /// Is every operation of `other` also in `self`?
    pub const fn superset_of(self, other: Model) -> bool {
        self.0 & other.0 == other.0
    }

    /// The number of supported operations.
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Returns `true` if no operations are supported.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The dual model (Section 3.2): each operation replaced by its dual.
    ///
    /// For every complexity measure, bounds for a model hold for its dual.
    #[must_use]
    pub fn dual(self) -> Model {
        let mut out = Model::EMPTY;
        for op in self.iter() {
            out = out.with(op.dual());
        }
        out
    }

    /// Is the model its own dual?
    pub fn is_self_dual(self) -> bool {
        self.dual() == self
    }

    /// Iterates over the supported operations in [`BitOp::ALL`] order.
    pub fn iter(self) -> impl Iterator<Item = BitOp> {
        BitOp::ALL.into_iter().filter(move |&op| self.contains(op))
    }

    /// Iterates over all 2⁸ models.
    pub fn all_models() -> impl Iterator<Item = Model> {
        (0u16..256).map(|m| Model(m as u8))
    }
}

impl fmt::Debug for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Model{{{self}}}")
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("∅");
        }
        let mut first = true;
        for op in self.iter() {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "{op}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromIterator<BitOp> for Model {
    fn from_iter<T: IntoIterator<Item = BitOp>>(iter: T) -> Self {
        iter.into_iter().fold(Model::EMPTY, Model::with)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_and_len() {
        let m = Model::READ_TAS_TAR;
        assert_eq!(m.len(), 3);
        assert!(m.contains(BitOp::Read));
        assert!(m.contains(BitOp::TestAndSet));
        assert!(m.contains(BitOp::TestAndReset));
        assert!(!m.contains(BitOp::Flip));
        assert!(!Model::EMPTY.contains(BitOp::Read));
        assert!(Model::EMPTY.is_empty());
    }

    #[test]
    fn rmw_contains_everything() {
        for op in BitOp::ALL {
            assert!(Model::RMW.contains(op));
        }
        assert_eq!(Model::RMW.len(), 8);
    }

    #[test]
    fn duality_is_involution_on_models() {
        for m in Model::all_models() {
            assert_eq!(m.dual().dual(), m);
            assert_eq!(m.dual().len(), m.len());
        }
    }

    #[test]
    fn dual_of_named_models() {
        assert_eq!(Model::TAS_ONLY.dual(), Model::new(&[BitOp::TestAndReset]));
        assert!(Model::TAF_ONLY.is_self_dual());
        assert!(Model::RMW.is_self_dual());
        assert!(!Model::READ_TAS.is_self_dual());
    }

    #[test]
    fn subset_relation() {
        assert!(Model::RMW.superset_of(Model::READ_TAS_TAR));
        assert!(Model::READ_TAS_TAR.superset_of(Model::READ_TAS));
        assert!(!Model::TAS_ONLY.superset_of(Model::READ_TAS));
    }

    #[test]
    fn all_models_enumerates_256() {
        assert_eq!(Model::all_models().count(), 256);
        let distinct: std::collections::HashSet<_> = Model::all_models().collect();
        assert_eq!(distinct.len(), 256);
    }

    #[test]
    fn collect_from_ops() {
        let m: Model = [BitOp::Read, BitOp::Read, BitOp::Flip].into_iter().collect();
        assert_eq!(m.len(), 2);
        assert_eq!(m.to_string(), "read, flip");
    }
}
