//! Binary-search naming with `read` + `test-and-set` (Theorem 4.4).
//!
//! The linear scan of [`TasScan`](crate::TasScan) made fast in the absence
//! of contention: a process first binary-searches the `n − 1` bit array
//! for the lowest bit that is still `0`, using `⌈log₂ n⌉ − 1` reads; the
//! final probe is a `test-and-set` on the located candidate. If that
//! returns `0` the process stops with the candidate's name; otherwise it
//! falls back to linearly scanning the remaining bits as in the plain
//! algorithm.
//!
//! In a contention-free run, previously finished processes have set a
//! *prefix* of the bits, so the binary search lands exactly on the first
//! free bit: contention-free step complexity `⌈log₂ n⌉` — the tight bound
//! for the `{read, test-and-set}` model — while the worst case stays
//! linear (the model's `n − 1` lower bound, Theorem 6, is unavoidable).

use std::sync::Arc;

use cfc_core::{BitOp, Layout, Op, OpResult, Process, RegisterId, RegisterSet, Step, Value};

use crate::algorithm::NamingAlgorithm;
use crate::model::Model;

/// The binary-search + scan naming algorithm for the
/// `{read, test-and-set}` model.
#[derive(Clone, Debug)]
pub struct TasReadSearch {
    n: usize,
    layout: Layout,
    bits: Arc<[RegisterId]>,
}

impl TasReadSearch {
    /// Creates the algorithm for `n ≥ 1` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one process");
        let mut layout = Layout::new();
        let bits: Arc<[RegisterId]> = layout.bits("name", n - 1, false).into();
        TasReadSearch { n, layout, bits }
    }
}

impl NamingAlgorithm for TasReadSearch {
    type Proc = TasReadSearchProc;

    fn name(&self) -> &str {
        "tas-read-search"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn model(&self) -> Model {
        Model::READ_TAS
    }

    fn layout(&self) -> Layout {
        self.layout.clone()
    }

    fn process(&self) -> TasReadSearchProc {
        let hi = self.bits.len() as u64; // virtual sentinel: "name n"
        TasReadSearchProc {
            bits: Arc::clone(&self.bits),
            pc: if self.bits.is_empty() {
                SearchPc::Done(1)
            } else {
                SearchPc::Search { lo: 0, hi }
            },
        }
    }

    fn step_budget(&self) -> u64 {
        // <= ceil(log2 n) search probes + a full fallback scan.
        let n = self.n as u64;
        64 - n.leading_zeros() as u64 + n
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum SearchPc {
    /// Binary search: the first `0` bit is believed to lie in `lo..=hi`
    /// (`hi` may be the virtual always-0 sentinel at index `len`).
    Search { lo: u64, hi: u64 },
    /// About to `test-and-set` the search's candidate bit.
    Probe(u64),
    /// Fallback linear scan from this index.
    Scan(u64),
    Done(u64),
}

/// The participant process of [`TasReadSearch`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TasReadSearchProc {
    bits: Arc<[RegisterId]>,
    pc: SearchPc,
}

impl Process for TasReadSearchProc {
    fn current(&self) -> Step {
        match self.pc {
            SearchPc::Search { lo, hi } => {
                let mid = (lo + hi) / 2;
                Step::Op(Op::Bit(self.bits[mid as usize], BitOp::Read))
            }
            SearchPc::Probe(i) | SearchPc::Scan(i) => {
                Step::Op(Op::Bit(self.bits[i as usize], BitOp::TestAndSet))
            }
            SearchPc::Done(_) => Step::Halt,
        }
    }

    fn advance(&mut self, result: OpResult) {
        self.pc = match self.pc {
            SearchPc::Search { lo, hi } => {
                let mid = (lo + hi) / 2;
                let (lo, hi) = if result.bit() {
                    (mid + 1, hi)
                } else {
                    (lo, mid)
                };
                if hi.saturating_sub(lo) >= 1 && lo < self.bits.len() as u64 {
                    if hi - lo >= 2 {
                        SearchPc::Search { lo, hi }
                    } else {
                        SearchPc::Probe(lo)
                    }
                } else if lo >= self.bits.len() as u64 {
                    // Search concluded every real bit is taken; verify by
                    // scanning from the last bit (cheap: the scan
                    // immediately confirms or wins a late free bit).
                    SearchPc::Scan(self.bits.len() as u64 - 1)
                } else {
                    SearchPc::Probe(lo)
                }
            }
            SearchPc::Probe(i) | SearchPc::Scan(i) => {
                if !result.bit() {
                    SearchPc::Done(i + 1)
                } else if i + 1 < self.bits.len() as u64 {
                    SearchPc::Scan(i + 1)
                } else {
                    SearchPc::Done(self.bits.len() as u64 + 1)
                }
            }
            SearchPc::Done(_) => unreachable!("halted process advanced"),
        };
    }

    fn output(&self) -> Option<Value> {
        match self.pc {
            SearchPc::Done(name) => Some(Value::new(name)),
            _ => None,
        }
    }

    fn fingerprint(&self) -> Option<u64> {
        // Low 4 bits tag the variant; indices are far below 2^30.
        Some(match self.pc {
            SearchPc::Search { lo, hi } => (lo << 34) | (hi << 4),
            SearchPc::Probe(i) => (i << 4) | 1,
            SearchPc::Scan(i) => (i << 4) | 2,
            SearchPc::Done(name) => (name << 4) | 3,
        })
    }

    fn may_access(&self, out: &mut RegisterSet) -> bool {
        let start = match self.pc {
            // The search never looks below `lo` again — except for the
            // everything-taken conclusion, which re-probes the last bit.
            SearchPc::Search { lo, .. } => {
                lo.min((self.bits.len() as u64).saturating_sub(1))
            }
            SearchPc::Probe(i) | SearchPc::Scan(i) => i,
            SearchPc::Done(_) => return true,
        };
        out.extend(self.bits[start as usize..].iter().copied());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_core::metrics::all_process_complexities;
    use cfc_core::{run_sequential, ExecConfig, FaultPlan, Lockstep, ProcessId, RandomSched};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sequential_names_are_in_order() {
        for n in [1usize, 2, 3, 4, 7, 8, 16, 33] {
            let alg = TasReadSearch::new(n);
            let (_, _, procs) = run_sequential(alg.memory().unwrap(), alg.processes()).unwrap();
            let names: Vec<u64> = procs.iter().map(|p| p.output().unwrap().raw()).collect();
            assert_eq!(names, (1..=n as u64).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn contention_free_step_complexity_is_logarithmic() {
        // Run processes sequentially and measure each one's own steps.
        // The search narrows to a two-candidate range with ceil(log n) - 1
        // reads and resolves it with at most two test-and-sets, so every
        // contention-free run takes at most ceil(log2 n) + 1 steps. (The
        // paper's "exactly log n" is the happy path where the first
        // test-and-set succeeds; when the free bit is the upper candidate
        // its algorithm takes log n + 1 steps too.)
        for n in [4usize, 8, 16, 64, 256] {
            let alg = TasReadSearch::new(n);
            let (trace, _, _) = run_sequential(alg.memory().unwrap(), alg.processes()).unwrap();
            let log_n = u64::from(64 - (n as u64 - 1).leading_zeros());
            let layout = alg.layout();
            for (i, c) in all_process_complexities(&trace, &layout, n).iter().enumerate() {
                assert!(
                    c.steps <= log_n + 1,
                    "n={n} process {i}: {} steps > log n + 1 = {}",
                    c.steps,
                    log_n + 1
                );
            }
        }
    }

    #[test]
    fn lockstep_names_are_unique() {
        for n in [2usize, 3, 4, 6, 8, 16] {
            let alg = TasReadSearch::new(n);
            let exec = cfc_core::run_schedule(
                alg.memory().unwrap(),
                alg.processes(),
                Lockstep::new(),
                FaultPlan::new(),
                ExecConfig::default(),
            )
            .unwrap();
            let mut names: Vec<u64> = exec.outputs().iter().map(|o| o.unwrap().raw()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), n, "n={n}: duplicate names");
            assert!(names.iter().all(|&x| (1..=n as u64).contains(&x)));
        }
    }

    #[test]
    fn random_schedules_with_crashes_stay_safe_and_wait_free() {
        for seed in 0u64..25 {
            let n = 8;
            let alg = TasReadSearch::new(n);
            let faults =
                FaultPlan::new().with_crash(ProcessId::new((seed % n as u64) as u32), seed / 3);
            let exec = cfc_core::run_schedule(
                alg.memory().unwrap(),
                alg.processes(),
                RandomSched::new(StdRng::seed_from_u64(seed)),
                faults,
                ExecConfig::default(),
            )
            .unwrap();
            let names: Vec<u64> = exec.outputs().iter().flatten().map(|v| v.raw()).collect();
            let mut sorted = names.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), names.len(), "seed {seed}: duplicates {names:?}");
            for pid in 0..n {
                assert!(exec.steps_taken(ProcessId::new(pid as u32)) <= alg.step_budget());
            }
        }
    }

    #[test]
    fn n_one_terminates_immediately() {
        let alg = TasReadSearch::new(1);
        let (_, _, procs) = run_sequential(alg.memory().unwrap(), alg.processes()).unwrap();
        assert_eq!(procs[0].output(), Some(Value::new(1)));
    }
}
