//! Correctness checkers for naming runs: uniqueness, name-space bounds,
//! and wait-freedom budgets.

use std::collections::HashMap;
use std::fmt;

use cfc_core::{ExecConfig, ExecError, FaultPlan, ProcessId, Scheduler};

use crate::algorithm::NamingAlgorithm;

/// A violation of the naming specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NamingViolation {
    /// Two processes decided the same name.
    Duplicate {
        /// The duplicated name.
        name: u64,
        /// The processes that chose it.
        holders: Vec<ProcessId>,
    },
    /// A process decided a name outside `1..=n`.
    OutOfRange {
        /// The offending process.
        pid: ProcessId,
        /// Its name.
        name: u64,
        /// The name-space size.
        n: usize,
    },
    /// A non-crashed process exceeded the algorithm's wait-freedom budget.
    BudgetExceeded {
        /// The offending process.
        pid: ProcessId,
        /// Steps it took.
        steps: u64,
        /// The declared budget.
        budget: u64,
    },
    /// A non-crashed process failed to decide.
    Undecided {
        /// The offending process.
        pid: ProcessId,
    },
}

impl fmt::Display for NamingViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NamingViolation::Duplicate { name, holders } => {
                write!(f, "name {name} assigned to {} processes", holders.len())
            }
            NamingViolation::OutOfRange { pid, name, n } => {
                write!(f, "{pid} decided name {name} outside 1..={n}")
            }
            NamingViolation::BudgetExceeded { pid, steps, budget } => {
                write!(f, "{pid} took {steps} steps, budget {budget}")
            }
            NamingViolation::Undecided { pid } => {
                write!(f, "{pid} neither crashed nor decided")
            }
        }
    }
}

impl std::error::Error for NamingViolation {}

/// The result of a checked naming run.
#[derive(Clone, Debug)]
pub struct NamingRun {
    /// Decided names by process (crashed processes are `None`).
    pub names: Vec<Option<u64>>,
    /// Steps taken by each process.
    pub steps: Vec<u64>,
    /// Total shared accesses in the run.
    pub total_accesses: usize,
}

/// Runs `alg` under `sched` and `faults`, then checks the full naming
/// specification: every surviving process decides a unique name in
/// `1..=n` within the algorithm's step budget.
///
/// # Errors
///
/// Returns the first [`NamingViolation`] found, or propagates executor
/// errors (as a budget-exceeded style failure they indicate lost
/// wait-freedom).
pub fn run_checked<A, S>(
    alg: &A,
    sched: S,
    faults: FaultPlan,
) -> Result<NamingRun, CheckError>
where
    A: NamingAlgorithm,
    S: Scheduler,
{
    let exec = cfc_core::run_schedule(
        alg.memory().map_err(ExecError::from)?,
        alg.processes(),
        sched,
        faults,
        ExecConfig::default(),
    )?;
    let n = alg.n();
    let names: Vec<Option<u64>> = exec.outputs().iter().map(|o| o.map(|v| v.raw())).collect();
    let steps: Vec<u64> = (0..n)
        .map(|i| exec.steps_taken(ProcessId::new(i as u32)))
        .collect();

    let mut holders: HashMap<u64, Vec<ProcessId>> = HashMap::new();
    for (i, name) in names.iter().enumerate() {
        let pid = ProcessId::new(i as u32);
        let crashed = exec.status(pid) == cfc_core::Status::Crashed;
        match name {
            Some(name) => {
                if *name == 0 || *name > n as u64 {
                    return Err(NamingViolation::OutOfRange {
                        pid,
                        name: *name,
                        n,
                    }
                    .into());
                }
                holders.entry(*name).or_default().push(pid);
            }
            None if !crashed => return Err(NamingViolation::Undecided { pid }.into()),
            None => {}
        }
        if !crashed && steps[i] > alg.step_budget() {
            return Err(NamingViolation::BudgetExceeded {
                pid,
                steps: steps[i],
                budget: alg.step_budget(),
            }
            .into());
        }
    }
    for (name, who) in holders {
        if who.len() > 1 {
            return Err(NamingViolation::Duplicate { name, holders: who }.into());
        }
    }
    Ok(NamingRun {
        total_accesses: exec.trace().access_count(),
        names,
        steps,
    })
}

/// An error from [`run_checked`]: either a specification violation or an
/// execution failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// The run violated the naming specification.
    Violation(NamingViolation),
    /// The executor failed (budget exhaustion indicates lost
    /// wait-freedom).
    Exec(ExecError),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Violation(v) => write!(f, "naming violation: {v}"),
            CheckError::Exec(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for CheckError {}

impl From<NamingViolation> for CheckError {
    fn from(v: NamingViolation) -> Self {
        CheckError::Violation(v)
    }
}

impl From<ExecError> for CheckError {
    fn from(e: ExecError) -> Self {
        CheckError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TafTree, TasScan};
    use cfc_core::{Lockstep, RandomSched, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sequential_run_passes_checks() {
        let run = run_checked(&TasScan::new(5), Sequential, FaultPlan::new()).unwrap();
        assert_eq!(run.names.iter().flatten().count(), 5);
        assert_eq!(run.total_accesses as u64, run.steps.iter().sum::<u64>());
    }

    #[test]
    fn lockstep_run_passes_checks() {
        run_checked(&TafTree::new(16).unwrap(), Lockstep::new(), FaultPlan::new()).unwrap();
    }

    #[test]
    fn crashes_are_tolerated() {
        let faults = FaultPlan::new()
            .with_crash(ProcessId::new(0), 0)
            .with_crash(ProcessId::new(2), 1);
        let run = run_checked(&TasScan::new(5), Lockstep::new(), faults).unwrap();
        assert_eq!(run.names[0], None);
        assert!(run.names.iter().flatten().count() >= 3);
    }

    #[test]
    fn random_schedules_pass_checks() {
        for seed in 0..10 {
            run_checked(
                &TafTree::new(8).unwrap(),
                RandomSched::new(StdRng::seed_from_u64(seed)),
                FaultPlan::new(),
            )
            .unwrap();
        }
    }

    #[test]
    fn violations_render() {
        let v = NamingViolation::Duplicate {
            name: 3,
            holders: vec![ProcessId::new(0), ProcessId::new(1)],
        };
        assert!(v.to_string().contains("name 3"));
        let e = CheckError::from(v);
        assert!(e.to_string().contains("violation"));
    }
}
