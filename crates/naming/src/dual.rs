//! Generic dualization of naming algorithms (Section 3.2).
//!
//! If `M` is the dual of `M'`, every bound for `M` holds for `M'`: the
//! dual algorithm runs on complemented initial values, replaces each
//! operation by its dual, and complements every returned bit. This module
//! implements that transformation *generically*, turning any
//! [`NamingAlgorithm`] into its dual with identical complexity and
//! identical outputs — an executable proof of the paper's duality remark.

use cfc_core::{Layout, Op, OpResult, Process, Step, Value};

use crate::algorithm::NamingAlgorithm;
use crate::model::Model;

/// The dual of a naming algorithm: dual model, complemented bits,
/// identical names and complexity.
///
/// # Examples
///
/// ```
/// use cfc_naming::{Dualized, NamingAlgorithm, TasScan};
/// use cfc_core::{run_sequential, BitOp};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // tas-scan dualizes to a tar-scan over bits initialized to 1.
/// let alg = Dualized::new(TasScan::new(4));
/// assert!(alg.model().contains(BitOp::TestAndReset));
/// let (_, _, procs) = run_sequential(alg.memory()?, alg.processes())?;
/// let names: Vec<u64> = procs
///     .iter()
///     .map(|p| cfc_core::Process::output(p).unwrap().raw())
///     .collect();
/// assert_eq!(names, vec![1, 2, 3, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Dualized<A> {
    inner: A,
    name: String,
}

impl<A: NamingAlgorithm> Dualized<A> {
    /// Wraps `inner` as its dual.
    pub fn new(inner: A) -> Self {
        let name = format!("dual({})", inner.name());
        Dualized { inner, name }
    }

    /// The wrapped algorithm.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A: NamingAlgorithm> NamingAlgorithm for Dualized<A> {
    type Proc = DualProc<A::Proc>;

    fn name(&self) -> &str {
        &self.name
    }

    fn n(&self) -> usize {
        self.inner.n()
    }

    fn model(&self) -> Model {
        self.inner.model().dual()
    }

    fn layout(&self) -> Layout {
        // Same registers, complemented initial values.
        let inner = self.inner.layout();
        let mut layout = Layout::new();
        for (_, spec) in inner.iter() {
            assert_eq!(
                spec.width(),
                1,
                "naming layouts are shared bits; cannot dualize wide register `{}`",
                spec.name()
            );
            layout.bit(spec.name(), !spec.init().bit());
        }
        layout
    }

    fn process(&self) -> DualProc<A::Proc> {
        DualProc {
            inner: self.inner.process(),
        }
    }

    fn step_budget(&self) -> u64 {
        self.inner.step_budget()
    }
}

/// The participant process of [`Dualized`]: forwards its inner process's
/// steps with dual operations and complemented results.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct DualProc<P> {
    inner: P,
}

impl<P: Process> Process for DualProc<P> {
    fn fingerprint(&self) -> Option<u64> {
        self.inner.fingerprint()
    }

    fn may_access(&self, out: &mut cfc_core::RegisterSet) -> bool {
        // The dual layout rebuilds the same registers in the same order,
        // so the inner over-approximation carries over unchanged.
        self.inner.may_access(out)
    }

    fn current(&self) -> Step {
        match self.inner.current() {
            Step::Op(Op::Bit(r, op)) => Step::Op(Op::Bit(r, op.dual())),
            Step::Op(other) => {
                panic!("dualization applies to bit operations only, got {other}")
            }
            step => step,
        }
    }

    fn advance(&mut self, result: OpResult) {
        // Complement returned bits so the inner process observes the
        // original algorithm's semantics.
        let translated = match result {
            OpResult::Value(v) => OpResult::Value(Value::from(!v.bit())),
            other => other,
        };
        self.inner.advance(translated);
    }

    fn output(&self) -> Option<Value> {
        self.inner.output()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TafTree, TasReadSearch, TasScan};
    use cfc_core::{run_schedule, BitOp, ExecConfig, FaultPlan, FixedOrder, ProcessId};

    /// Runs an algorithm and its dual under the same schedule and checks
    /// that outputs coincide event for event.
    fn assert_dual_equivalent<A>(alg: A, schedule: Vec<ProcessId>)
    where
        A: NamingAlgorithm + Clone,
        A::Proc: Process,
    {
        let dual = Dualized::new(alg.clone());
        let run = |names: Vec<Option<u64>>| names;
        let base = run_schedule(
            alg.memory().unwrap(),
            alg.processes(),
            FixedOrder::then_fair(schedule.clone()),
            FaultPlan::new(),
            ExecConfig::default(),
        )
        .unwrap();
        let dualled = run_schedule(
            dual.memory().unwrap(),
            dual.processes(),
            FixedOrder::then_fair(schedule),
            FaultPlan::new(),
            ExecConfig::default(),
        )
        .unwrap();
        let base_names: Vec<Option<u64>> =
            base.outputs().iter().map(|o| o.map(|v| v.raw())).collect();
        let dual_names: Vec<Option<u64>> =
            dualled.outputs().iter().map(|o| o.map(|v| v.raw())).collect();
        assert_eq!(run(base_names), run(dual_names));
        // Same number of events: complexity is preserved exactly.
        assert_eq!(base.trace().access_count(), dualled.trace().access_count());
    }

    fn interleaved(n: u32, len: usize) -> Vec<ProcessId> {
        (0..len).map(|i| ProcessId::new((i as u32 * 7 + 3) % n)).collect()
    }

    #[test]
    fn dual_tas_scan_is_tar_scan() {
        let dual = Dualized::new(TasScan::new(4));
        assert_eq!(dual.model(), Model::new(&[BitOp::TestAndReset]));
        // Initial bits are complemented.
        let layout = dual.layout();
        for (_, spec) in layout.iter() {
            assert!(spec.init().bit());
        }
        assert_dual_equivalent(TasScan::new(4), interleaved(4, 40));
    }

    #[test]
    fn dual_taf_tree_is_itself_behaviorally() {
        assert_dual_equivalent(TafTree::new(8).unwrap(), interleaved(8, 60));
    }

    #[test]
    fn dual_search_matches_original() {
        assert_dual_equivalent(TasReadSearch::new(8), interleaved(8, 80));
    }

    #[test]
    fn double_dual_restores_model_and_layout() {
        let alg = TasScan::new(4);
        let dd = Dualized::new(Dualized::new(alg.clone()));
        assert_eq!(dd.model(), alg.model());
        assert_eq!(dd.layout(), alg.layout());
    }
}
