//! Wait-free naming over single-bit read–modify–write models.
//!
//! Section 3 of *Alur & Taubenfeld (PODC 1994)*: assign unique names from
//! `1..=n` to `n` initially identical processes, wait-free (crashes of
//! others never block a participant). The shared memory supports atomic
//! access to individual **bits** only; a [`Model`] fixes which of the
//! eight [`BitOp`](cfc_core::BitOp)s are available, and the four
//! complexity measures tease the models apart (the paper's closing table,
//! reproduced by `cfc-bench`).
//!
//! Algorithms (Theorem 4):
//!
//! | Algorithm | Model | Headline bound |
//! |---|---|---|
//! | [`TafTree`] | `{test-and-flip}` | worst-case step `log n` |
//! | [`TasTarTree`] | `{tas, tar}` | worst-case register `log n` |
//! | [`TasScan`] | `{tas}` | worst-case step `n − 1` (tight for the model) |
//! | [`TasReadSearch`] | `{read, tas}` | contention-free step `log n` |
//! | [`Dualized`] | dual of any | identical bounds (Section 3.2) |
//!
//! ```
//! use cfc_naming::{check, NamingAlgorithm, TafTree};
//! use cfc_core::{FaultPlan, Lockstep};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let alg = TafTree::new(8)?;
//! let run = check::run_checked(&alg, Lockstep::new(), FaultPlan::new())?;
//! assert_eq!(run.names.iter().flatten().count(), 8); // all named, uniquely
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod algorithm;
pub mod check;
mod dual;
pub mod impossibility;
mod model;
mod taf_tree;
mod tas_read_search;
mod tas_scan;
mod tas_tar_tree;

pub use algorithm::NamingAlgorithm;
pub use impossibility::{lockstep_symmetry_witness, FlipReadAttempt, SymmetryWitness};
pub use dual::{DualProc, Dualized};
pub use model::Model;
pub use taf_tree::{NotAPowerOfTwo, TafTree, TreeWalkProc};
pub use tas_read_search::{TasReadSearch, TasReadSearchProc};
pub use tas_scan::{TasScan, TasScanProc};
pub use tas_tar_tree::{TasTarTree, TasTarTreeProc};
