//! Tree-based naming with `test-and-flip` (Theorem 4.1).
//!
//! `n − 1` shared bits arranged as a balanced binary tree (`n` a power of
//! two). Each process walks root-to-leaf applying `test-and-flip` at every
//! node: old value `0` routes left, `1` routes right; at a leaf numbered
//! `m` the returned value selects between names `2m − 1` and `2m`.
//!
//! The flip balances routing perfectly — among the `k` operations applied
//! at a node, `⌈k/2⌉` see `0` and `⌊k/2⌋` see `1` — so at most two
//! processes ever reach each leaf and names are unique, even with crashes.
//! Worst-case step complexity: exactly `log₂ n`, the tight bound for every
//! model containing `test-and-flip` on all four measures.

use std::sync::Arc;

use cfc_core::{BitOp, Layout, Op, OpResult, Process, RegisterId, RegisterSet, Step, Value};

use crate::algorithm::NamingAlgorithm;
use crate::model::Model;

/// Inserts every register of the heap subtree rooted at 1-based node `v`
/// into `out` — the set of nodes a tree walker at `v` can still reach.
/// Shared by the `test-and-flip` and `test-and-set`/`test-and-reset`
/// trees, whose layouts are identical.
pub(crate) fn insert_subtree(nodes: &[RegisterId], v: u64, out: &mut RegisterSet) {
    if v == 0 || v > nodes.len() as u64 {
        return;
    }
    out.insert(nodes[(v - 1) as usize]);
    insert_subtree(nodes, 2 * v, out);
    insert_subtree(nodes, 2 * v + 1, out);
}

/// The `test-and-flip` tree naming algorithm.
///
/// # Examples
///
/// ```
/// use cfc_naming::{NamingAlgorithm, TafTree};
/// use cfc_core::run_sequential;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let alg = TafTree::new(8)?;
/// let (_, _, procs) = run_sequential(alg.memory()?, alg.processes())?;
/// let mut names: Vec<u64> = procs
///     .iter()
///     .map(|p| cfc_core::Process::output(p).unwrap().raw())
///     .collect();
/// names.sort_unstable();
/// assert_eq!(names, (1..=8).collect::<Vec<u64>>());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct TafTree {
    n: usize,
    layout: Layout,
    /// Heap-ordered nodes: `nodes[i]` is heap node `i + 1`
    /// (children of heap node `v` are `2v` and `2v + 1`).
    nodes: Arc<[RegisterId]>,
}

/// Error creating a tree-based naming algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotAPowerOfTwo(pub usize);

impl std::fmt::Display for NotAPowerOfTwo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tree naming requires a power-of-two process count, got {}", self.0)
    }
}

impl std::error::Error for NotAPowerOfTwo {}

impl TafTree {
    /// Creates the algorithm for `n` processes (`n` a power of two, ≥ 2).
    ///
    /// # Errors
    ///
    /// Returns [`NotAPowerOfTwo`] otherwise.
    pub fn new(n: usize) -> Result<Self, NotAPowerOfTwo> {
        if n < 2 || !n.is_power_of_two() {
            return Err(NotAPowerOfTwo(n));
        }
        let mut layout = Layout::new();
        let nodes: Arc<[RegisterId]> = layout.bits("node", n - 1, false).into();
        Ok(TafTree { n, layout, nodes })
    }

    /// The tree depth: `log₂ n` (the path length of every process).
    pub fn depth(&self) -> u32 {
        self.n.trailing_zeros()
    }
}

impl NamingAlgorithm for TafTree {
    type Proc = TreeWalkProc;

    fn name(&self) -> &str {
        "taf-tree"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn model(&self) -> Model {
        Model::TAF_ONLY
    }

    fn layout(&self) -> Layout {
        self.layout.clone()
    }

    fn process(&self) -> TreeWalkProc {
        TreeWalkProc {
            nodes: Arc::clone(&self.nodes),
            n: self.n as u64,
            pc: TreePc::AtNode(1),
        }
    }

    fn step_budget(&self) -> u64 {
        u64::from(self.depth())
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum TreePc {
    /// About to operate on heap node `v` (1-based).
    AtNode(u64),
    Done(u64),
}

/// The participant process of [`TafTree`]: a root-to-leaf walk.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TreeWalkProc {
    nodes: Arc<[RegisterId]>,
    n: u64,
    pc: TreePc,
}

impl TreeWalkProc {
    fn step_to(&self, v: u64, bit: bool) -> TreePc {
        let child = 2 * v + u64::from(bit);
        if child <= self.nodes.len() as u64 {
            TreePc::AtNode(child)
        } else {
            // `v` is a leaf; leaves occupy heap positions n/2 ..= n-1 and
            // are numbered 1..=n/2.
            let leaf_number = v - self.n / 2 + 1;
            TreePc::Done(2 * leaf_number - 1 + u64::from(bit))
        }
    }
}

impl Process for TreeWalkProc {
    fn current(&self) -> Step {
        match self.pc {
            TreePc::AtNode(v) => Step::Op(Op::Bit(
                self.nodes[(v - 1) as usize],
                BitOp::TestAndFlip,
            )),
            TreePc::Done(_) => Step::Halt,
        }
    }

    fn advance(&mut self, result: OpResult) {
        let TreePc::AtNode(v) = self.pc else {
            unreachable!("halted process advanced")
        };
        self.pc = self.step_to(v, result.bit());
    }

    fn output(&self) -> Option<Value> {
        match self.pc {
            TreePc::Done(name) => Some(Value::new(name)),
            _ => None,
        }
    }

    fn fingerprint(&self) -> Option<u64> {
        // Injective per instance: heap positions and names are disjointly
        // tagged by the low bit.
        Some(match self.pc {
            TreePc::AtNode(v) => v << 1,
            TreePc::Done(name) => (name << 1) | 1,
        })
    }

    fn may_access(&self, out: &mut RegisterSet) -> bool {
        if let TreePc::AtNode(v) = self.pc {
            insert_subtree(&self.nodes, v, out);
        }
        true
    }

    // The fingerprint already encodes the whole varying state (heap
    // position or name), and every walker runs the identical program —
    // no identity in the local state — so sharing location keys across
    // processes only merges states with equal footprints and futures.
    fn location(&self) -> Option<u64> {
        self.fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_core::{run_sequential, ExecConfig, FaultPlan, Lockstep, ProcessId, RandomSched};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_unique_full(names: &mut Vec<u64>, n: usize) {
        names.sort_unstable();
        assert_eq!(*names, (1..=n as u64).collect::<Vec<_>>());
    }

    #[test]
    fn rejects_non_powers_of_two() {
        assert!(TafTree::new(0).is_err());
        assert!(TafTree::new(1).is_err());
        assert!(TafTree::new(6).is_err());
        assert!(TafTree::new(8).is_ok());
    }

    #[test]
    fn every_process_takes_exactly_log_n_steps() {
        for n in [2usize, 4, 8, 16, 32] {
            let alg = TafTree::new(n).unwrap();
            let exec = cfc_core::run_schedule(
                alg.memory().unwrap(),
                alg.processes(),
                Lockstep::new(),
                FaultPlan::new(),
                ExecConfig::default(),
            )
            .unwrap();
            for pid in 0..n {
                assert_eq!(
                    exec.steps_taken(ProcessId::new(pid as u32)),
                    u64::from(alg.depth()),
                    "n={n}"
                );
            }
            let mut names: Vec<u64> = exec.outputs().iter().map(|o| o.unwrap().raw()).collect();
            assert_unique_full(&mut names, n);
        }
    }

    #[test]
    fn sequential_assignment_is_complete() {
        let alg = TafTree::new(16).unwrap();
        let (_, _, procs) = run_sequential(alg.memory().unwrap(), alg.processes()).unwrap();
        let mut names: Vec<u64> = procs.iter().map(|p| p.output().unwrap().raw()).collect();
        assert_unique_full(&mut names, 16);
    }

    #[test]
    fn random_schedules_keep_names_unique() {
        for seed in 0..20 {
            let alg = TafTree::new(8).unwrap();
            let exec = cfc_core::run_schedule(
                alg.memory().unwrap(),
                alg.processes(),
                RandomSched::new(StdRng::seed_from_u64(seed)),
                FaultPlan::new(),
                ExecConfig::default(),
            )
            .unwrap();
            let mut names: Vec<u64> = exec.outputs().iter().map(|o| o.unwrap().raw()).collect();
            assert_unique_full(&mut names, 8);
        }
    }

    #[test]
    fn crashed_processes_leave_unique_survivors() {
        let alg = TafTree::new(8).unwrap();
        let faults = FaultPlan::new()
            .with_crash(ProcessId::new(0), 1)
            .with_crash(ProcessId::new(3), 2);
        let exec = cfc_core::run_schedule(
            alg.memory().unwrap(),
            alg.processes(),
            Lockstep::new(),
            faults,
            ExecConfig::default(),
        )
        .unwrap();
        let survivors: Vec<u64> = exec
            .outputs()
            .iter()
            .flatten()
            .map(|v| v.raw())
            .collect();
        assert_eq!(survivors.len(), 6);
        let mut sorted = survivors.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6, "duplicates among {survivors:?}");
    }

    #[test]
    fn name_computation_at_leaves() {
        // n = 4: heap nodes 1 (root), 2, 3 (leaves). Leaf 2 -> names 1/2,
        // leaf 3 -> names 3/4.
        let alg = TafTree::new(4).unwrap();
        let p = alg.process();
        assert_eq!(p.step_to(2, false), TreePc::Done(1));
        assert_eq!(p.step_to(2, true), TreePc::Done(2));
        assert_eq!(p.step_to(3, false), TreePc::Done(3));
        assert_eq!(p.step_to(3, true), TreePc::Done(4));
        assert_eq!(p.step_to(1, false), TreePc::AtNode(2));
        assert_eq!(p.step_to(1, true), TreePc::AtNode(3));
    }
}
