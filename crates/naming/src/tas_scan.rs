//! Linear-scan naming with `test-and-set` only (Theorem 4.3).
//!
//! `n − 1` bits, initially `0`, numbered `1..n`. Each process scans them in
//! order applying `test-and-set`; it stops at the first bit whose old value
//! was `0` and takes that bit's number as its name, or the name `n` if
//! every operation returned `1`.
//!
//! Worst-case step complexity `n − 1` — the tight bound for the
//! `{test-and-set}` model on **all four** measures (even contention-free
//! register complexity is `n − 1` in this model, Theorem 7).

use std::sync::Arc;

use cfc_core::{BitOp, Layout, Op, OpResult, Process, RegisterId, RegisterSet, Step, Value};

use crate::algorithm::NamingAlgorithm;
use crate::model::Model;

/// The `test-and-set` linear-scan naming algorithm.
///
/// # Examples
///
/// ```
/// use cfc_naming::{NamingAlgorithm, TasScan};
/// use cfc_core::run_sequential;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let alg = TasScan::new(4);
/// let (_, _, procs) = run_sequential(alg.memory()?, alg.processes())?;
/// let names: Vec<u64> = procs
///     .iter()
///     .map(|p| cfc_core::Process::output(p).unwrap().raw())
///     .collect();
/// assert_eq!(names, vec![1, 2, 3, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct TasScan {
    n: usize,
    layout: Layout,
    bits: Arc<[RegisterId]>,
}

impl TasScan {
    /// Creates the algorithm for `n ≥ 1` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one process");
        let mut layout = Layout::new();
        let bits: Arc<[RegisterId]> = layout.bits("name", n - 1, false).into();
        TasScan { n, layout, bits }
    }
}

impl NamingAlgorithm for TasScan {
    type Proc = TasScanProc;

    fn name(&self) -> &str {
        "tas-scan"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn model(&self) -> Model {
        Model::TAS_ONLY
    }

    fn layout(&self) -> Layout {
        self.layout.clone()
    }

    fn process(&self) -> TasScanProc {
        TasScanProc {
            bits: Arc::clone(&self.bits),
            pc: if self.bits.is_empty() {
                // n = 1: no bits; the only process takes name 1 at once.
                ScanPc::Done(1)
            } else {
                ScanPc::Scan(0)
            },
        }
    }

    fn step_budget(&self) -> u64 {
        (self.n as u64).saturating_sub(1).max(1)
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum ScanPc {
    /// About to `test-and-set` bit `i`.
    Scan(u32),
    Done(u64),
}

/// The participant process of [`TasScan`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TasScanProc {
    bits: Arc<[RegisterId]>,
    pc: ScanPc,
}

impl Process for TasScanProc {
    fn current(&self) -> Step {
        match self.pc {
            ScanPc::Scan(i) => Step::Op(Op::Bit(self.bits[i as usize], BitOp::TestAndSet)),
            ScanPc::Done(_) => Step::Halt,
        }
    }

    fn advance(&mut self, result: OpResult) {
        let ScanPc::Scan(i) = self.pc else {
            unreachable!("halted process advanced")
        };
        self.pc = if !result.bit() {
            // Old value 0: this bit is ours; names are 1-based.
            ScanPc::Done(u64::from(i) + 1)
        } else if (i as usize) + 1 < self.bits.len() {
            ScanPc::Scan(i + 1)
        } else {
            // Every bit was taken: the name-space's last name.
            ScanPc::Done(self.bits.len() as u64 + 1)
        };
    }

    fn output(&self) -> Option<Value> {
        match self.pc {
            ScanPc::Done(name) => Some(Value::new(name)),
            _ => None,
        }
    }

    fn fingerprint(&self) -> Option<u64> {
        Some(match self.pc {
            ScanPc::Scan(i) => u64::from(i) << 1,
            ScanPc::Done(name) => (name << 1) | 1,
        })
    }

    fn may_access(&self, out: &mut RegisterSet) -> bool {
        if let ScanPc::Scan(i) = self.pc {
            // The scan only ever moves right: bits before `i` are settled.
            out.extend(self.bits[i as usize..].iter().copied());
        }
        true
    }

    // The fingerprint already encodes the whole varying state (the pc),
    // and every participant runs the identical program — no identity in
    // the local state — so sharing location keys across processes only
    // merges states with equal step footprints and equal futures.
    fn location(&self) -> Option<u64> {
        self.fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_core::{run_sequential, ExecConfig, FaultPlan, Lockstep, ProcessId};

    #[test]
    fn sequential_names_are_in_order() {
        let alg = TasScan::new(5);
        let (_, _, procs) = run_sequential(alg.memory().unwrap(), alg.processes()).unwrap();
        let names: Vec<u64> = procs.iter().map(|p| p.output().unwrap().raw()).collect();
        assert_eq!(names, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn single_process_gets_name_one() {
        let alg = TasScan::new(1);
        let (_, _, procs) = run_sequential(alg.memory().unwrap(), alg.processes()).unwrap();
        assert_eq!(procs[0].output(), Some(Value::new(1)));
    }

    #[test]
    fn lockstep_adversary_forces_n_minus_1_steps() {
        // Theorem 6's schedule: identical processes in lockstep; some
        // process is forced through all n - 1 bits.
        let alg = TasScan::new(6);
        let exec = cfc_core::run_schedule(
            alg.memory().unwrap(),
            alg.processes(),
            Lockstep::new(),
            FaultPlan::new(),
            ExecConfig::default(),
        )
        .unwrap();
        let max_steps = (0..6)
            .map(|i| exec.steps_taken(ProcessId::new(i)))
            .max()
            .unwrap();
        assert_eq!(max_steps, 5);
        // All names distinct.
        let mut names: Vec<u64> = exec
            .outputs()
            .into_iter()
            .map(|o| o.unwrap().raw())
            .collect();
        names.sort_unstable();
        assert_eq!(names, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn crashes_do_not_block_survivors() {
        let alg = TasScan::new(4);
        // Process 0 crashes after its first step (it may have consumed a
        // bit); the others must still terminate with distinct names.
        let faults = FaultPlan::new().with_crash(ProcessId::new(0), 1);
        let exec = cfc_core::run_schedule(
            alg.memory().unwrap(),
            alg.processes(),
            Lockstep::new(),
            faults,
            ExecConfig::default(),
        )
        .unwrap();
        let survivors: Vec<u64> = (1..4)
            .map(|i| exec.outputs()[i].unwrap().raw())
            .collect();
        let mut sorted = survivors.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "duplicate names among {survivors:?}");
        assert!(survivors.iter().all(|&x| (1..=4).contains(&x)));
    }

    #[test]
    fn budget_matches_worst_case() {
        assert_eq!(TasScan::new(6).step_budget(), 5);
        assert_eq!(TasScan::new(1).step_budget(), 1);
    }
}
