//! Adversarial schedules realizing the paper's worst-case lower bounds.
//!
//! * **Theorem 6** (`n − 1` worst-case steps without `test-and-flip`):
//!   identical processes driven in *lockstep* receive identical responses
//!   as long as possible, so at least one is forced through `n − 1` steps.
//! * **Theorem 7** (`n − 1` contention-free registers with `{tas}` only):
//!   the *sequential* schedule — each process runs to completion alone —
//!   already forces the last process to visit `n − 1` distinct bits.
//!
//! These helpers run an algorithm under the adversarial schedule plus a
//! battery of random schedules and report the worst observed complexity
//! per measure, which the bench harness compares against the table's
//! bounds.

use cfc_core::metrics::all_process_complexities;
use cfc_core::{
    Complexity, ExecConfig, ExecError, FaultPlan, Lockstep, RandomSched, Sequential,
};
use cfc_naming::NamingAlgorithm;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The measured complexity profile of a naming algorithm: contention-free
/// (sequential schedule) and worst-case observed (max over lockstep +
/// random schedules).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NamingProfile {
    /// Max per-process complexity over the sequential (contention-free)
    /// run.
    pub contention_free: Complexity,
    /// Max per-process complexity over all adversarial runs tried.
    pub worst_case: Complexity,
}

/// Measures a naming algorithm under the sequential schedule, the
/// Theorem 6 lockstep adversary, and `random_seeds` random schedules.
///
/// # Errors
///
/// Propagates executor errors (a budget error would mean wait-freedom is
/// violated).
pub fn naming_profile<A: NamingAlgorithm>(
    alg: &A,
    random_seeds: u64,
) -> Result<NamingProfile, ExecError> {
    let layout = alg.layout();
    let n = alg.n();

    let max_of = |exec: &cfc_core::Executor<A::Proc>| {
        all_process_complexities(exec.trace(), &layout, n)
            .into_iter()
            .reduce(Complexity::max_fields)
            .unwrap_or_default()
    };

    // Contention-free: the sequential schedule.
    let seq = cfc_core::run_schedule(
        alg.memory().map_err(ExecError::from)?,
        alg.processes(),
        Sequential,
        FaultPlan::new(),
        ExecConfig::default(),
    )?;
    let contention_free = max_of(&seq);

    // Worst case: lockstep (Theorem 6) plus random schedules.
    let lockstep = cfc_core::run_schedule(
        alg.memory().map_err(ExecError::from)?,
        alg.processes(),
        Lockstep::new(),
        FaultPlan::new(),
        ExecConfig::default(),
    )?;
    let mut worst_case = contention_free.max_fields(max_of(&lockstep));

    for seed in 0..random_seeds {
        let run = cfc_core::run_schedule(
            alg.memory().map_err(ExecError::from)?,
            alg.processes(),
            RandomSched::new(StdRng::seed_from_u64(seed)),
            FaultPlan::new(),
            ExecConfig::default(),
        )?;
        worst_case = worst_case.max_fields(max_of(&run));
    }

    Ok(NamingProfile {
        contention_free,
        worst_case,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_naming::{TafTree, TasReadSearch, TasScan, TasTarTree};

    #[test]
    fn tas_scan_realizes_theorem6_and_theorem7() {
        let n = 8u64;
        let p = naming_profile(&TasScan::new(n as usize), 10).unwrap();
        // Theorem 6: worst-case step n-1, realized by lockstep.
        assert_eq!(p.worst_case.steps, n - 1);
        // Theorem 7: even contention-free register complexity is n-1
        // (the last sequential process touches every bit).
        assert_eq!(p.contention_free.registers, n - 1);
        assert_eq!(p.contention_free.steps, n - 1);
    }

    #[test]
    fn taf_tree_is_logarithmic_everywhere() {
        let p = naming_profile(&TafTree::new(16).unwrap(), 10).unwrap();
        assert_eq!(p.worst_case.steps, 4);
        assert_eq!(p.worst_case.registers, 4);
        assert_eq!(p.contention_free.steps, 4);
    }

    #[test]
    fn tas_tar_tree_has_log_registers_but_more_steps() {
        let p = naming_profile(&TasTarTree::new(8).unwrap(), 20).unwrap();
        assert_eq!(p.worst_case.registers, 3); // log n bits
        assert!(p.worst_case.steps >= 3); // steps can exceed log n under contention
    }

    #[test]
    fn tas_read_search_contention_free_is_logarithmic_worst_linear() {
        let n = 16u64;
        let p = naming_profile(&TasReadSearch::new(n as usize), 20).unwrap();
        assert!(p.contention_free.steps <= 5); // ceil(log 16) + 1
        assert!(p.worst_case.steps > p.contention_free.steps);
    }

    #[test]
    fn worst_case_dominates_contention_free() {
        for alg in [TasScan::new(6), TasScan::new(3)] {
            let p = naming_profile(&alg, 5).unwrap();
            assert!(p.worst_case.steps >= p.contention_free.steps);
            assert!(p.worst_case.registers >= p.contention_free.registers);
        }
    }

    #[test]
    fn single_process_profile_degenerates_cleanly() {
        // n = 1: the sequential, lockstep, and random schedules coincide
        // (there is nobody to contend with), so the "worst case" is the
        // contention-free run: one step, one register, name 1.
        let p = naming_profile(&TasScan::new(1), 5).unwrap();
        assert_eq!(p.contention_free, p.worst_case);
        // The scan walks n - 1 shared bits, so a lone process decides
        // its name without touching shared memory at all.
        assert_eq!(p.contention_free.steps, 0);
        assert_eq!(p.contention_free.registers, 0);
    }

    #[test]
    fn zero_random_seeds_still_covers_both_adversaries() {
        // The deterministic schedules alone must already realize the
        // Theorem 6 bound: lockstep forces n - 1 steps with no help from
        // randomized runs.
        let n = 8u64;
        let p = naming_profile(&TasScan::new(n as usize), 0).unwrap();
        assert_eq!(p.worst_case.steps, n - 1);
        assert!(p.worst_case.steps >= p.contention_free.steps);
    }
}
