//! Verification substrate: exhaustive interleaving exploration,
//! lower-bound adversaries, and the Lemma 2 run-merge attack.
//!
//! The paper's lower bounds are proofs about *all* runs; this crate makes
//! them executable:
//!
//! * [`explore`](mod@explore) — a memoizing DFS over every interleaving (and optional
//!   crash pattern) of a small system, with safety checks in every state,
//!   plus a BFS progress checker over the same shared state-graph engine;
//!   both support partial-order and symmetry reduction.
//! * [`checks`] — ready-made exhaustive checks: mutual exclusion,
//!   detection safety, naming uniqueness + wait-freedom, and
//!   deadlock-freedom (progress) for all three problem families.
//! * [`liveness`] — fair-cycle liveness on the same engine: starvation
//!   freedom under weak fairness and bounded-bypass measurement, with
//!   replayable lasso witnesses for starvable verdicts **and**
//!   [`BypassWitness`] overtaking schedules for every finite bypass
//!   bound ([`check_mutex_starvation`], [`check_naming_lockout`];
//!   no reported bound without a replayable schedule).
//! * [`analysis`] — solo-execution control automata: each process
//!   stepped exhaustively over havoc memory, yielding a static lint of
//!   the hand-written reduction hooks ([`lint_model`]) and
//!   location-sensitive future-access sets that sharpen ample-set
//!   selection ([`MayAccessMode::Automaton`]).
//! * [`dynamic`] — dynamic partial-order reduction on top of the
//!   automaton substrate ([`MayAccessMode::Dynamic`]): read/write-split
//!   future sets, sleep sets over conflicts *observed* on explored
//!   paths, and vector-clock trace causality ([`trace_causality`]) so
//!   the test wall can audit the happens-before relation directly.
//! * [`merge`] — Lemma 2's merge construction: extract solo-run profiles,
//!   test the lemma's condition, and build the forbidden two-winner run
//!   when an algorithm violates it.
//! * [`adversary`] — the Theorem 6 lockstep and Theorem 7 sequential
//!   schedules, measuring worst-case naming complexity.
//! * [`stress`] — randomized long-run safety monitors for systems too
//!   large to explore exhaustively, for both mutual exclusion and
//!   naming, with seed-reported violations.
//! * [`telemetry`] — the observability layer every driver above
//!   reports through: phase spans, stride-sampled progress snapshots,
//!   and store events, delivered to pluggable sinks (stderr heartbeat,
//!   JSONL stream, in-memory recorder) that are provably passive —
//!   attaching one cannot change any count or verdict.
//!
//! ```
//! use cfc_verify::checks::check_mutex_safety;
//! use cfc_verify::explore::ExploreConfig;
//! use cfc_mutex::PetersonTwo;
//!
//! // Every interleaving of two single-trip Peterson clients is safe:
//! let stats = check_mutex_safety(&PetersonTwo::new(), 1, ExploreConfig::default()).unwrap();
//! assert!(stats.states > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adversary;
pub mod analysis;
pub mod checks;
pub mod csr;
pub mod dynamic;
pub mod explore;
mod graph;
pub mod index;
pub mod liveness;
pub mod merge;
pub mod store;
pub mod stress;
pub mod telemetry;

pub use adversary::{naming_profile, NamingProfile};
pub use analysis::{
    lint_model, ControlAutomaton, ExtractError, Finding, FindingKind, FutureIndex, LintReport,
    MayAccessMode,
};
pub use dynamic::{
    observed_conflict, trace_causality, CausalEvent, ConflictEdge, TraceCausality,
    MAX_SLEEP_PROCS,
};
pub use checks::{
    check_detection_progress, check_detection_safety, check_mutex_progress, check_mutex_safety,
    check_naming_progress, check_naming_uniqueness,
};
pub use explore::{
    canonical_key, check_progress, check_progress_sym, explore, explore_sym, replay,
    ExploreConfig, ExploreError, ExploreStats, ProgressStats, Replayed, ScheduleStep, Violation,
};
pub use index::OpenIndex;
pub use store::{IndexMode, StoreMode};
pub use liveness::{
    check_liveness_sym, check_mutex_starvation, check_naming_lockout, validate_bypass,
    validate_lasso, BypassWitness, Lasso, LassoWitness, LivenessReport, LivenessSpec,
    LivenessStats, LivenessVerdict, NormalizeFn,
};
pub use merge::{
    assert_resists_merge, lemma2_condition, merge_attack, solo_profile, MergeError, MergeFailure,
    MergeWitness, SoloProfile,
};
pub use stress::{
    stress_mutex, stress_naming, MutexViolation, NamingViolation, StressError, StressStats,
};
pub use telemetry::{
    current as current_telemetry, with_telemetry, HeartbeatSink, JsonlSink, NoopSink, Observer,
    Phase, Recorder, Sample, Snapshot, StoreFootprint, Telemetry, TelemetryEvent,
};
