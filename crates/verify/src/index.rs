//! The open-addressed digest index behind the packed visited set.
//!
//! PR 6's packed arena cut the per-state payload to ~10–20 bytes, which
//! left the *index* as the resident bottleneck: a `HashMap<u64, u32>` of
//! digest heads plus an intrusive `next` chain costs ~12–16 B/state.
//! [`OpenIndex`] replaces both with a single open-addressed table of
//! `u32` arena ids — linear probing, power-of-two capacity, no
//! tombstones (the visited set is insert-only) — at ~4–6 B/state.
//!
//! The table stores **only** record ids, not digests: a probe starts at
//! `digest & mask` and byte-compares each occupied slot's record (via a
//! caller-supplied matcher) until it hits the record or an empty slot.
//! Collisions therefore cost extra compares, never correctness — the
//! exactness guarantees of the packed store (`Fresh` vs `RevisitSame`
//! vs `RevisitMerged`, and the `orbits_merged` count) are decided by
//! byte equality exactly as the chained index decided them.
//!
//! Growth doubles the capacity once the load factor reaches 7/8 and
//! rehashes by re-deriving every stored id's digest through a second
//! caller-supplied callback (`digest_of`), so the table never has to
//! store digests even transiently. Doubling re-reads each arena record
//! O(1) amortized times over the life of the store (n + n/2 + n/4 + …).
//!
//! The digest is a parameter of every call rather than a field of the
//! table, which is what makes the structure testable: suites can force
//! total collisions (`digest = 0` for everything) or adversarial
//! clustering and check that lookups still distinguish records by
//! content alone (`tests/prop_index.rs`).

/// An insert-only open-addressed hash table mapping 64-bit digests to
/// `u32` record ids, resolving collisions by caller-side byte
/// comparison (see the [module docs](self)).
#[derive(Clone)]
pub struct OpenIndex {
    /// Power-of-two slot array; [`OpenIndex::EMPTY`] marks free slots.
    slots: Box<[u32]>,
    len: u32,
}

impl std::fmt::Debug for OpenIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpenIndex")
            .field("len", &self.len)
            .field("capacity", &self.slots.len())
            .finish()
    }
}

impl Default for OpenIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl OpenIndex {
    /// The free-slot sentinel; record ids must stay below it (the arena
    /// enforces the same bound on its side).
    pub const EMPTY: u32 = u32::MAX;

    /// Initial slot count (a power of two).
    const INITIAL_CAPACITY: usize = 64;

    /// Creates an empty index with a small pre-allocated slot array.
    pub fn new() -> Self {
        OpenIndex {
            slots: vec![Self::EMPTY; Self::INITIAL_CAPACITY].into(),
            len: 0,
        }
    }

    /// The number of stored ids.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The current slot count (always a power of two, always strictly
    /// greater than [`len`](Self::len) — the growth policy keeps the
    /// load factor at or below 7/8, so probes terminate).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Heap bytes held by the slot array.
    pub fn heap_bytes(&self) -> u64 {
        (self.slots.len() * std::mem::size_of::<u32>()) as u64
    }

    fn mask(&self) -> u64 {
        (self.slots.len() - 1) as u64
    }

    /// Looks up the id whose record matches, starting the linear probe
    /// at `digest & mask`. `matches` is called for every occupied slot
    /// on the probe path (ids with *different* digests included — the
    /// table stores no digests, so content comparison is the only
    /// discriminator); the walk stops at the first empty slot.
    pub fn find(&self, digest: u64, mut matches: impl FnMut(u32) -> bool) -> Option<u32> {
        let mask = self.mask();
        let mut i = digest & mask;
        loop {
            let slot = self.slots[i as usize];
            if slot == Self::EMPTY {
                return None;
            }
            if matches(slot) {
                return Some(slot);
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts `id` under `digest`. The caller must have established the
    /// id is absent (the visited set always probes first); the table is
    /// insert-only, so there is no update or delete path. When the load
    /// factor would exceed 7/8 the table doubles first, re-deriving the
    /// digest of every resident id through `digest_of`.
    pub fn insert(&mut self, digest: u64, id: u32, digest_of: impl FnMut(u32) -> u64) {
        assert!(id != Self::EMPTY, "id space exhausted (u32::MAX is the free-slot sentinel)");
        if (u64::from(self.len) + 1) * 8 > (self.slots.len() as u64) * 7 {
            self.grow(digest_of);
        }
        Self::place(&mut self.slots, digest, id);
        self.len += 1;
    }

    /// Probes `slots` from `digest & mask` to the first empty slot and
    /// stores `id` there.
    fn place(slots: &mut [u32], digest: u64, id: u32) {
        let mask = (slots.len() - 1) as u64;
        let mut i = digest & mask;
        while slots[i as usize] != Self::EMPTY {
            i = (i + 1) & mask;
        }
        slots[i as usize] = id;
    }

    fn grow(&mut self, mut digest_of: impl FnMut(u32) -> u64) {
        let mut bigger = vec![Self::EMPTY; self.slots.len() * 2].into_boxed_slice();
        for &slot in self.slots.iter() {
            if slot != Self::EMPTY {
                Self::place(&mut bigger, digest_of(slot), slot);
            }
        }
        self.slots = bigger;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the index with u64 "records" held in a plain Vec, the way
    /// the store drives it with arena records.
    struct Harness {
        records: Vec<u64>,
        index: OpenIndex,
        digest: fn(u64) -> u64,
    }

    impl Harness {
        fn new(digest: fn(u64) -> u64) -> Self {
            Harness {
                records: Vec::new(),
                index: OpenIndex::new(),
                digest,
            }
        }

        fn find(&self, value: u64) -> Option<u32> {
            self.index
                .find((self.digest)(value), |id| self.records[id as usize] == value)
        }

        /// Interns `value`, returning (id, fresh) like the store does.
        fn intern(&mut self, value: u64) -> (u32, bool) {
            if let Some(id) = self.find(value) {
                return (id, false);
            }
            let id = self.records.len() as u32;
            self.records.push(value);
            let records = &self.records;
            self.index
                .insert((self.digest)(value), id, |i| (self.digest)(records[i as usize]));
            (id, true)
        }
    }

    #[test]
    fn interns_each_value_once_across_growth() {
        // Well-spread digests; enough values for several doublings.
        let mut h = Harness::new(|v| v.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        for v in 0..10_000u64 {
            let (id, fresh) = h.intern(v);
            assert!(fresh);
            assert_eq!(id, v as u32);
        }
        assert!(h.index.capacity() >= 10_000 * 8 / 7);
        for v in 0..10_000u64 {
            let (id, fresh) = h.intern(v);
            assert!(!fresh, "duplicate insert for {v}");
            assert_eq!(id, v as u32);
        }
        assert_eq!(h.find(10_000), None);
    }

    #[test]
    fn total_digest_collision_still_distinguishes_by_content() {
        // Every value hashes to 0: one maximal probe run. Lookups must
        // still tell records apart purely by content.
        let mut h = Harness::new(|_| 0);
        for v in 0..200u64 {
            assert!(h.intern(v).1, "fresh insert for {v}");
        }
        for v in 0..200u64 {
            assert_eq!(h.find(v), Some(v as u32));
            assert!(!h.intern(v).1);
        }
        assert_eq!(h.find(200), None);
        assert_eq!(h.index.len(), 200);
    }

    #[test]
    fn probe_wraps_around_the_table_end() {
        // Digests at the last slot force every probe to wrap.
        let mut h = Harness::new(|_| u64::MAX);
        for v in 0..50u64 {
            h.intern(v);
        }
        for v in 0..50u64 {
            assert_eq!(h.find(v), Some(v as u32));
        }
        assert_eq!(h.find(50), None);
    }

    #[test]
    fn load_factor_stays_at_or_below_seven_eighths() {
        let mut h = Harness::new(|v| v.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        for v in 0..5_000u64 {
            h.intern(v);
            assert!(
                h.index.len() * 8 <= h.index.capacity() * 7,
                "load factor exceeded 7/8 at {} / {}",
                h.index.len(),
                h.index.capacity()
            );
        }
    }

    #[test]
    fn heap_bytes_tracks_the_slot_array() {
        let h = Harness::new(|v| v);
        assert_eq!(h.index.heap_bytes(), 64 * 4);
        assert!(h.index.is_empty());
    }
}
