//! CSR-style edge storage for explored state graphs.
//!
//! The BFS drivers historically kept forward edges as `Vec<Vec<GEdge>>`
//! — one heap allocation (24-byte spine + capacity slack) per node plus
//! 16 bytes per edge, which dwarfs the packed state arena itself at
//! liveness/progress scale. [`EdgeArena`] flattens that into compressed
//! sparse row form: one offsets array (4 B/node) plus one stream of
//! packed 6-byte edge records held in the same segmented arena machinery
//! as the states, so cold edge segments can spill through the same
//! temp-file tier (see [`crate::store`]).
//!
//! The BFS driver only ever appends edges at its current cursor node and
//! never retroactively, so CSR builds online: [`EdgeArena::push`]
//! appends to the open node, [`EdgeArena::seal`] closes it when the
//! cursor advances. [`EdgeArena::reversed`] derives the predecessor
//! adjacency as a counting-sort CSR pass whose per-node order is exactly
//! the order a nested-Vec reversal would produce (ascending source, then
//! source-local edge order) — in particular, the **first predecessor of
//! every non-root node is its creator**, which progress-schedule
//! reconstruction depends on (`tests/prop_index.rs` pins the order
//! against a nested-Vec reference).

use std::cell::RefCell;

use crate::store::SegArena;

/// One labeled forward edge of an explored state graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GEdge {
    /// Successor node id.
    pub to: u32,
    /// The process that stepped (or crashed). At most 14 bits — process
    /// counts are tiny, and the packed record stores it alongside the
    /// two flag bits in one u16.
    pub pid: u32,
    /// Whether this edge is a crash transition.
    pub crash: bool,
    /// Whether the stepping process received service across this edge.
    pub served: bool,
}

/// Packed record stride: 4 bytes of `to` + one u16 of `pid | crash<<14 |
/// served<<15`.
const EDGE_BYTES: usize = 6;
const PID_BITS: u32 = 14;

fn encode(e: GEdge, out: &mut [u8; EDGE_BYTES]) {
    assert!(e.pid < (1 << PID_BITS), "pid {} exceeds the 14-bit edge field", e.pid);
    out[..4].copy_from_slice(&e.to.to_le_bytes());
    let tag = (e.pid as u16) | (u16::from(e.crash) << 14) | (u16::from(e.served) << 15);
    out[4..].copy_from_slice(&tag.to_le_bytes());
}

fn decode(bytes: &[u8]) -> GEdge {
    let to = u32::from_le_bytes(bytes[..4].try_into().expect("4-byte to field"));
    let tag = u16::from_le_bytes(bytes[4..].try_into().expect("2-byte tag field"));
    GEdge {
        to,
        pid: u32::from(tag & ((1 << PID_BITS) - 1)),
        crash: tag & (1 << 14) != 0,
        served: tag & (1 << 15) != 0,
    }
}

/// Forward edges of a state graph in online-built CSR form: an offsets
/// array over a packed, spillable edge-record arena (see the [module
/// docs](self)).
pub struct EdgeArena {
    arena: SegArena,
    /// `offsets[v]..offsets[v + 1]` is sealed node `v`'s record range;
    /// the last entry is the running total, i.e. the open node's start.
    offsets: Vec<u32>,
    /// Read scratch for records in spilled segments.
    probe: RefCell<Vec<u8>>,
}

impl std::fmt::Debug for EdgeArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EdgeArena")
            .field("nodes", &self.nodes())
            .field("edges", &self.total_edges())
            .field("spilled_segs", &self.spilled_segs())
            .finish()
    }
}

impl EdgeArena {
    /// Creates an empty arena. `spill_budget` bounds resident bytes of
    /// full edge segments exactly like the state arena's budget (`None`:
    /// never spill).
    pub fn new(spill_budget: Option<usize>) -> Self {
        EdgeArena {
            arena: SegArena::new(EDGE_BYTES, spill_budget),
            offsets: vec![0],
            probe: RefCell::new(Vec::new()),
        }
    }

    /// The number of sealed nodes.
    pub fn nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total recorded edges (sealed and open).
    pub fn total_edges(&self) -> usize {
        self.arena.len() as usize
    }

    /// Appends an edge to the currently open node — the node the next
    /// [`seal`](Self::seal) closes. The BFS cursor discipline (edges are
    /// recorded only at the cursor, nodes seal in cursor order) is what
    /// makes online CSR construction valid.
    pub fn push(&mut self, e: GEdge) {
        let mut rec = [0u8; EDGE_BYTES];
        encode(e, &mut rec);
        self.arena.push(&rec);
    }

    /// Closes the open node's record range and opens the next node's.
    pub fn seal(&mut self) {
        self.offsets.push(self.arena.len());
    }

    /// The out-degree of sealed node `v`.
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Decodes the `i`-th edge of sealed node `v` (in recording order).
    pub fn edge(&self, v: usize, i: usize) -> GEdge {
        debug_assert!(i < self.degree(v));
        self.arena
            .with_record(self.offsets[v] + i as u32, &self.probe, decode)
    }

    /// Iterates sealed node `v`'s edges in recording order.
    pub fn edges(&self, v: usize) -> impl Iterator<Item = GEdge> + '_ {
        (0..self.degree(v)).map(move |i| self.edge(v, i))
    }

    /// Bytes attributable to the edge structure: packed record payload
    /// (resident + spilled) plus the offsets array.
    pub fn heap_bytes(&self) -> u64 {
        self.arena.payload_bytes()
            + (self.offsets.len() * std::mem::size_of::<u32>()) as u64
    }

    /// Edge segments written to the spill tier so far.
    pub fn spilled_segs(&self) -> u64 {
        self.arena.spilled_segs()
    }

    /// The reversed adjacency over `nodes` nodes (every edge target must
    /// be below `nodes`; nodes past the sealed count simply have no
    /// outgoing edges), built by counting sort: count in-degrees, prefix
    /// sum, then replay every forward edge in (ascending source,
    /// recording order) — which lands each node's predecessors in
    /// exactly the order a nested-Vec reversal would push them, creator
    /// first.
    pub fn reversed(&self, nodes: usize) -> ReversedCsr {
        let mut offsets = vec![0u32; nodes + 1];
        for v in 0..self.nodes() {
            for e in self.edges(v) {
                offsets[e.to as usize + 1] += 1;
            }
        }
        for i in 0..nodes {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut preds = vec![0u32; self.total_edges()];
        for v in 0..self.nodes() {
            for e in self.edges(v) {
                let slot = &mut cursor[e.to as usize];
                preds[*slot as usize] = v as u32;
                *slot += 1;
            }
        }
        ReversedCsr { offsets, preds }
    }
}

/// The predecessor adjacency of an [`EdgeArena`], as two flat arrays
/// (offsets + packed predecessor ids) — the memoizable replacement for
/// the historical per-call `Vec<Vec<u32>>` reversal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReversedCsr {
    offsets: Vec<u32>,
    preds: Vec<u32>,
}

impl ReversedCsr {
    /// The number of nodes.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Node `v`'s predecessors, in ascending discovery order of the
    /// predecessor (the first entry of a non-root node is its creator).
    pub fn preds(&self, v: usize) -> &[u32] {
        &self.preds[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(to: u32, pid: u32, crash: bool, served: bool) -> GEdge {
        GEdge {
            to,
            pid,
            crash,
            served,
        }
    }

    #[test]
    fn records_round_trip_all_fields() {
        let cases = [
            edge(0, 0, false, false),
            edge(u32::MAX - 1, (1 << PID_BITS) - 1, true, true),
            edge(7, 3, true, false),
            edge(42, 11, false, true),
        ];
        let mut a = EdgeArena::new(None);
        for &e in &cases {
            a.push(e);
        }
        a.seal();
        for (i, &e) in cases.iter().enumerate() {
            assert_eq!(a.edge(0, i), e);
        }
        assert_eq!(a.degree(0), cases.len());
    }

    #[test]
    #[should_panic(expected = "14-bit edge field")]
    fn oversized_pid_is_rejected() {
        EdgeArena::new(None).push(edge(0, 1 << PID_BITS, false, false));
    }

    #[test]
    fn reversal_orders_predecessors_by_source_then_recording_order() {
        // Node 0 -> {1, 2}, node 1 -> {2, 2}, node 2 -> {0}.
        let mut a = EdgeArena::new(None);
        a.push(edge(1, 0, false, false));
        a.push(edge(2, 1, false, false));
        a.seal();
        a.push(edge(2, 0, false, false));
        a.push(edge(2, 1, false, true));
        a.seal();
        a.push(edge(0, 0, false, false));
        a.seal();
        let rev = a.reversed(3);
        assert_eq!(rev.preds(0), &[2]);
        assert_eq!(rev.preds(1), &[0]);
        assert_eq!(rev.preds(2), &[0, 1, 1]);
    }

    #[test]
    fn spilled_edge_segments_decode_exactly() {
        // Budget 0 spills every full segment; reads must still be exact.
        let mut a = EdgeArena::new(Some(0));
        let n = 60_000u32;
        for v in 0..n {
            a.push(edge((v + 1) % n, v % 7, v % 3 == 0, v % 5 == 0));
            a.seal();
        }
        assert!(a.spilled_segs() > 0, "budget 0 must spill");
        for v in (0..n).step_by(997) {
            let e = a.edge(v as usize, 0);
            assert_eq!(e.to, (v + 1) % n);
            assert_eq!(e.pid, v % 7);
            assert_eq!(e.crash, v % 3 == 0);
            assert_eq!(e.served, v % 5 == 0);
        }
        let rev = a.reversed(n as usize);
        assert_eq!(rev.preds(1), &[0]);
        assert_eq!(rev.preds(0), &[n - 1]);
    }
}
