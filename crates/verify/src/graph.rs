//! The shared state-graph engine and the **unified traversal driver**
//! behind every exhaustive checker.
//!
//! All three search drivers in this crate — the DFS safety explorer
//! ([`crate::explore::explore_sym`]), the BFS progress checker
//! ([`crate::explore::check_progress_sym`]), and the fair-cycle liveness
//! builder in [`crate::liveness`] — walk the same state graph: global
//! states (process local states, register values, liveness statuses,
//! remaining crash budget) connected by process steps and crash
//! transitions. This module owns everything they share so the graph
//! semantics cannot drift apart:
//!
//! * [`Node`] — the global-state representation and its successor
//!   function ([`expand_step`], crash branching inside [`Engine::expand`]);
//! * canonicalization under a [`SymmetryGroup`] ([`canonicalize`],
//!   [`state_fingerprint`]) for symmetry-reduced visited keys;
//! * ample-set selection for partial-order reduction, parameterized by
//!   [`AmpleMode`]: the safety explorer needs the full C1–C3 conditions,
//!   while progress checking can drop the invisibility condition C2
//!   (quiescence is a property of the graph, not of the per-state
//!   observation) and instead relies on the *fresh-successor* proviso —
//!   see the soundness notes on [`AmpleMode::Progress`];
//! * [`GraphBuilder`] — the single traversal loop, configured by a
//!   [`TraversalSpec`] (search order, edge recording, ample mode,
//!   symmetry group, state normalizer, crash budget). The DFS entry
//!   point ([`GraphBuilder::run_dfs`]) memoizes concrete states keyed
//!   canonically at pop time and invokes per-state checks; the BFS entry
//!   point ([`GraphBuilder::build_graph`]) interns one canonical
//!   representative per orbit and returns the labeled [`BuiltGraph`].
//!   The interning discipline, crash branching, budget accounting, and
//!   reduction bookkeeping live here exactly once.

use std::cell::OnceCell;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

use cfc_core::{
    Footprint, Memory, OpResult, Process, ProcessId, RegisterSet, Status, Step, SymmetryGroup,
    Value,
};

use crate::analysis::{FutureIndex, MayAccessMode};
pub(crate) use crate::csr::GEdge;
use crate::csr::{EdgeArena, ReversedCsr};
use crate::dynamic::{observed_conflict, sleep_sets_active, SleepTable};
use crate::explore::{ExploreConfig, ExploreError, ScheduleStep, StateView, Violation};
use crate::store::{IndexMode, NodeStore, StoreMode, VisitOutcome};
use crate::telemetry::{self, Phase, Sample, StoreFootprint};

/// A global state of the explored system.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) struct Node<P> {
    /// Process local states, indexed by pid.
    pub(crate) procs: Vec<P>,
    /// The shared-register values (the memory image).
    pub(crate) values: Vec<Value>,
    /// Per-process liveness statuses.
    pub(crate) status: Vec<Status>,
    /// How many crash transitions the adversary may still inject.
    pub(crate) crashes_left: u32,
}

/// The fingerprint used to canonically order interchangeable processes:
/// the process's own [`Process::fingerprint`] if it provides one, a hash
/// of its full state otherwise, mixed with its liveness status.
pub(crate) fn state_fingerprint<P: Process + Hash>(p: &P, status: Status) -> u64 {
    let mut h = DefaultHasher::new();
    match p.fingerprint() {
        Some(fp) => fp.hash(&mut h),
        None => p.hash(&mut h),
    }
    status.hash(&mut h);
    h.finish()
}

pub(crate) fn full_hash<T: Hash>(t: &T) -> u64 {
    let mut h = DefaultHasher::new();
    t.hash(&mut h);
    h.finish()
}

/// The orbit representative of a node: within every symmetry class, the
/// (local state, status) pairs are rearranged into fingerprint order.
///
/// Sorting is *stable*, so fingerprint collisions between distinct local
/// states can only forfeit a merge, never create an unsound one: two
/// nodes canonicalize equally iff they are genuine class-respecting
/// permutations of one another.
pub(crate) fn canonicalize<P: Process + Clone + Hash>(
    node: &Node<P>,
    group: &SymmetryGroup,
) -> Node<P> {
    let mut canon = node.clone();
    for class in group.classes() {
        let mut order: Vec<usize> = class.clone();
        order.sort_by_key(|&i| state_fingerprint(&node.procs[i], node.status[i]));
        for (&dst, &src) in class.iter().zip(order.iter()) {
            if dst != src {
                canon.procs[dst] = node.procs[src].clone();
                canon.status[dst] = node.status[src];
            }
        }
    }
    canon
}

/// Computes the successor of `node` when process `i` takes its next step.
pub(crate) fn expand_step<P: Process + Clone>(
    node: &Node<P>,
    i: usize,
    template: &Memory,
) -> Result<Node<P>, ExploreError> {
    let mut next = node.clone();
    match next.procs[i].current() {
        Step::Halt => next.status[i] = Status::Done,
        Step::Internal => next.procs[i].advance(OpResult::None),
        Step::Op(op) => {
            // Runtime analog of the static hook lint (`crate::analysis`):
            // the executed step must be covered by the declared
            // `may_access` at the pre-state. Debug builds only — this
            // catches hook drift the solo analysis cannot see, such as a
            // normalizer rewriting a process into a control point its
            // hook never anticipated.
            #[cfg(debug_assertions)]
            {
                let mut declared = RegisterSet::new();
                if node.procs[i].may_access(&mut declared) {
                    let fp = Footprint::of_op(&op, template.layout());
                    debug_assert!(
                        fp.reads.is_subset(&declared) && fp.writes.is_subset(&declared),
                        "process {i}: step footprint {fp:?} escapes its declared may_access set"
                    );
                }
            }
            let mut mem = rebuild_memory(template, &next.values);
            let result = mem.apply(&op).map_err(ExploreError::Memory)?;
            next.values = mem.snapshot().to_vec();
            next.procs[i].advance(result);
        }
    }
    Ok(next)
}

/// A memory instance with `values` poked over the layout of `template`.
pub(crate) fn rebuild_memory(template: &Memory, values: &[Value]) -> Memory {
    let mut mem = template.clone();
    for (i, v) in values.iter().enumerate() {
        mem.poke(cfc_core::RegisterId::new(i as u32), *v);
    }
    mem
}

/// Which property the search preserves — this decides how aggressive the
/// ample-set selection may be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AmpleMode {
    /// Per-state observations (sections and outputs) must be preserved up
    /// to stuttering: the classical conditions C1 (independence), C2
    /// (invisibility), and C3 (cycle proviso) all apply. Used by the DFS
    /// safety explorer.
    Safety,
    /// Only *reachability of quiescence* must be preserved, in both
    /// directions. The invisibility condition C2 is dropped — quiescence
    /// is a property of the graph shape, not of sections or outputs, so a
    /// visible step is as good an ample candidate as an invisible one.
    ///
    /// Soundness (sketch; the full argument is in the README):
    ///
    /// * *No false alarms.* Ample sets here are singletons, and C1 makes
    ///   the ample step independent of every step any other running
    ///   process can ever take, so it commutes with any path to
    ///   quiescence: if a state can quiesce in the full graph, its single
    ///   ample successor still can, by induction on the path length.
    /// * *No missed violations.* The fresh-successor proviso (the ample
    ///   successor must never have been seen) guarantees every cycle of
    ///   the reduced graph contains a fully expanded state, so no enabled
    ///   transition is deferred forever: any full-graph run can be
    ///   mimicked, up to commuting deferred ample steps past it, by a
    ///   reduced run reaching a state from which the original state's
    ///   fate (stuck or not) is unchanged.
    Progress,
    /// Fair infinite behaviors (lassos) must be preserved: the liveness
    /// checker hunts cycles in which a pending process is overtaken
    /// forever, observing sections, outputs, **and statuses** at every
    /// state of the loop. Invisibility is therefore *strict* — unlike
    /// [`AmpleMode::Safety`], a `Halt` step does not qualify (it changes
    /// the stepping process's status, which the fairness analysis reads)
    /// — and the cycle-closing condition C3 is kept verbatim: an ample
    /// successor must be fresh, so every cycle of the reduced graph
    /// contains a fully expanded state and no process's steps (in
    /// particular, no self-looping spin of a starved victim) are pruned
    /// from every state of a cycle. Fair lassos reported on the reduced
    /// graph are re-derived concretely and validated step by step, so a
    /// `Starvable` verdict never rests on the reduction; a
    /// starvation-free verdict additionally leans on the differential
    /// suite in `tests/liveness.rs` (see the README's "when to trust a
    /// verdict" notes).
    Liveness,
}

/// The successors of one node, as chosen by the engine.
#[derive(Debug)]
pub(crate) enum Expansion<P> {
    /// Partial-order reduction proved one process sufficient: its single
    /// successor stands for the whole enabled set.
    Ample {
        /// The process that stepped.
        pid: ProcessId,
        /// Its successor state.
        succ: Node<P>,
        /// The canonical form of `succ`, already computed for the
        /// fresh-successor proviso when symmetry reduction is on — so
        /// callers that intern canonically need not recanonicalize.
        canon: Option<Node<P>>,
    },
    /// Full expansion: for every runnable process, its step successor —
    /// preceded by its crash successor whenever crashes remain.
    Full(Vec<(ScheduleStep, Node<P>)>),
}

/// The result of an ample selection: the winning candidate's process
/// index paired with its successor's canonical form (already computed
/// for the fresh-successor proviso when symmetry reduction is on), or
/// `None` when the state must be fully expanded.
type AmpleChoice<P> = Option<(usize, Option<Node<P>>)>;

/// Reused per-state scratch of the ample selection: future-access sets
/// and the successors computed while testing candidates (handed to the
/// full expansion on fallback, so no transition is computed twice).
struct AmpleScratch<P> {
    may: Vec<(bool, RegisterSet)>,
    succ: Vec<Option<Node<P>>>,
}

impl<P> AmpleScratch<P> {
    fn new(n: usize) -> Self {
        AmpleScratch {
            may: (0..n).map(|_| (false, RegisterSet::new())).collect(),
            succ: (0..n).map(|_| None).collect(),
        }
    }
}

/// The shared state-graph engine: owns the memory template, the symmetry
/// group, the reduction configuration, and the ample-selection scratch.
pub(crate) struct Engine<P> {
    template: Memory,
    symmetry: SymmetryGroup,
    config: ExploreConfig,
    use_sym: bool,
    scratch: AmpleScratch<P>,
    /// Per-location future-access sets from the solo control automata,
    /// installed by the traversal entry points when the configuration
    /// asks for [`MayAccessMode::Automaton`]; `None` means ample
    /// selection consults the declared `may_access` hooks only.
    future: Option<FutureIndex<P>>,
}

impl<P: Process + Clone + Eq + Hash> Engine<P> {
    /// Builds an engine for `n` processes over `memory`.
    ///
    /// # Panics
    ///
    /// Panics if `symmetry` is defined over a different process count.
    pub(crate) fn new(memory: Memory, symmetry: SymmetryGroup, config: ExploreConfig, n: usize) -> Self {
        assert_eq!(
            symmetry.n(),
            n,
            "symmetry group is over {} processes, system has {n}",
            symmetry.n()
        );
        let use_sym = config.symmetry && !symmetry.is_trivial();
        Engine {
            template: memory,
            symmetry,
            config,
            use_sym,
            scratch: AmpleScratch::new(n),
            future: None,
        }
    }

    /// Whether the configuration asks for automaton-derived future sets
    /// — both the static [`MayAccessMode::Automaton`] and the dynamic
    /// mode build on the same per-location index (meaningful only with
    /// partial-order reduction on — the engine's `por` flag already
    /// accounts for the normalizer override).
    pub(crate) fn wants_future_index(&self) -> bool {
        self.config.por && self.config.may_access != MayAccessMode::Declared
    }

    /// Installs the future-access index ample selection consults under
    /// [`MayAccessMode::Automaton`].
    pub(crate) fn set_future_index(&mut self, index: FutureIndex<P>) {
        self.future = Some(index);
    }

    /// The initial node: all processes running, the template memory image,
    /// the configured crash budget.
    pub(crate) fn root(&self, procs: Vec<P>) -> Node<P> {
        Node {
            status: vec![Status::Running; procs.len()],
            values: self.template.snapshot().to_vec(),
            procs,
            crashes_left: self.config.max_crashes,
        }
    }

    /// The memory template (layout + atomicity) states are expanded over.
    pub(crate) fn template(&self) -> &Memory {
        &self.template
    }

    /// Whether symmetry reduction is effective (enabled and non-trivial).
    pub(crate) fn use_sym(&self) -> bool {
        self.use_sym
    }

    /// A [`Memory`] carrying `node`'s register values.
    pub(crate) fn memory_of(&self, node: &Node<P>) -> Memory {
        rebuild_memory(&self.template, &node.values)
    }

    /// The canonical (orbit-representative) form of `node` — `node`
    /// itself, cloned, when symmetry reduction is off.
    pub(crate) fn canonical_of(&self, node: &Node<P>) -> Node<P> {
        if self.use_sym {
            canonicalize(node, &self.symmetry)
        } else {
            node.clone()
        }
    }

    /// Whether the concrete node `concrete` falls into the orbit whose
    /// canonical representative is `canon`.
    pub(crate) fn matches_canonical(&self, concrete: &Node<P>, canon: &Node<P>) -> bool {
        if self.use_sym {
            canonicalize(concrete, &self.symmetry) == *canon
        } else {
            concrete == canon
        }
    }

    /// Computes the successors of `node` (whose runnable processes are
    /// `runnable`): a single ample successor when partial-order reduction
    /// applies, the full enabled set (crash transitions first) otherwise.
    ///
    /// `visited` answers whether a (canonical) node has already been seen;
    /// the ample conditions consult it for the cycle/fresh-successor
    /// proviso. Crash branching disables the reduction at any state that
    /// can still crash (a crash commutes with nothing its victim would
    /// do).
    pub(crate) fn expand<F>(
        &mut self,
        node: &Node<P>,
        runnable: &[usize],
        mode: AmpleMode,
        visited: F,
    ) -> Result<Expansion<P>, ExploreError>
    where
        F: Fn(&Node<P>) -> bool,
    {
        if self.config.por && node.crashes_left == 0 && runnable.len() > 1 {
            if let Some((i, canon)) = self.select_ample(node, runnable, mode, &visited)? {
                let succ = self.scratch.succ[i].take().expect("ample successor cached");
                for s in self.scratch.succ.iter_mut() {
                    *s = None;
                }
                return Ok(Expansion::Ample {
                    pid: ProcessId::new(i as u32),
                    succ,
                    canon,
                });
            }
        }
        let crashing = node.crashes_left > 0;
        let mut out = Vec::with_capacity(runnable.len() * if crashing { 2 } else { 1 });
        for &i in runnable {
            if crashing {
                let mut next = node.clone();
                next.status[i] = Status::Crashed;
                next.crashes_left -= 1;
                out.push((ScheduleStep::Crash(ProcessId::new(i as u32)), next));
            }
            // Reuse any successor the ample selection already computed for
            // this candidate instead of recomputing it.
            let next = match self.scratch.succ[i].take() {
                Some(cached) => cached,
                None => expand_step(node, i, &self.template)?,
            };
            out.push((ScheduleStep::Step(ProcessId::new(i as u32)), next));
        }
        Ok(Expansion::Full(out))
    }

    /// Selects an ample process at `node`, leaving its (already computed)
    /// successor in the scratch, or returns `None` when the state must be
    /// fully expanded.
    ///
    /// A candidate `i` is ample when its next step is
    /// 1. independent of every step any *other* running process can ever
    ///    take — trivially so for local (`Internal`/`Halt`) steps, and via
    ///    disjointness of the op footprint from the others'
    ///    [`Process::may_access`] over-approximations otherwise (an
    ///    unknown over-approximation disqualifies the candidate);
    /// 2. under [`AmpleMode::Safety`] only, invisible: the stepping
    ///    process's section and output are unchanged (halting changes
    ///    only the liveness status, which `state_check` must not read
    ///    under reduction — see the `explore` module docs);
    /// 3. fresh: its successor has not been visited yet. For the DFS this
    ///    is the classical C3 cycle proviso; for the BFS progress graph
    ///    it is the strengthened fresh-successor proviso — either way,
    ///    every cycle of the reduced graph contains a fully expanded
    ///    state, so no transition is ignored forever.
    fn select_ample<F>(
        &mut self,
        node: &Node<P>,
        runnable: &[usize],
        mode: AmpleMode,
        visited: &F,
    ) -> Result<AmpleChoice<P>, ExploreError>
    where
        F: Fn(&Node<P>) -> bool,
    {
        // Future-access over-approximations, computed once per state into
        // the reused scratch buffers. Under `MayAccessMode::Automaton`
        // the per-location sets of the solo control automata take
        // precedence (sharper and known for more states); any state the
        // index cannot resolve falls back to the declared hook.
        let future = self.future.as_ref();
        for &j in runnable {
            let (known, set) = &mut self.scratch.may[j];
            set.clear();
            *known = match future.and_then(|f| f.future_of(&node.procs[j])) {
                Some(fut) => {
                    set.union_with(fut);
                    true
                }
                None => node.procs[j].may_access(set),
            };
        }
        let dynamic = self.config.may_access == MayAccessMode::Dynamic;
        let layout = self.template.layout();
        'candidates: for &i in runnable {
            let step = node.procs[i].current();
            // Condition 1: independence with all concurrent futures.
            if let Step::Op(op) = &step {
                let fp = Footprint::of_op(op, layout);
                for &j in runnable {
                    if j == i {
                        continue;
                    }
                    // Dynamic mode sharpens C1 where the automaton keeps
                    // the read/write split of the future fixpoint: the
                    // candidate's step must be *independent* of every
                    // future access of `j` — a merely shared future
                    // *read* no longer disqualifies. Sound because
                    // independence against the union of a process's
                    // future footprints implies pairwise independence
                    // with each future step.
                    if dynamic {
                        if let Some(split) =
                            future.and_then(|f| f.future_split_of(&node.procs[j]))
                        {
                            if fp.independent(split) {
                                continue;
                            }
                            continue 'candidates;
                        }
                    }
                    match &self.scratch.may[j] {
                        (true, set) if !fp.touches(set) => {}
                        _ => continue 'candidates,
                    }
                }
            }
            // Successors computed here are kept in the scratch: if no
            // ample candidate survives, the full expansion reuses them
            // instead of recomputing.
            let succ = expand_step(node, i, &self.template)?;
            let succ = self.scratch.succ[i].insert(succ);
            // Condition 2: invisibility of the step — required whenever
            // per-state observations must be preserved. Safety checks
            // never read liveness statuses under reduction, so `Halt`
            // steps are exempt there; the liveness analysis reads them,
            // so under `Liveness` a `Halt` step is visible by definition.
            let visible = |succ: &Node<P>| {
                succ.procs[i].section() != node.procs[i].section()
                    || succ.procs[i].output() != node.procs[i].output()
            };
            match mode {
                AmpleMode::Safety if !matches!(step, Step::Halt) && visible(succ) => {
                    continue 'candidates;
                }
                AmpleMode::Liveness if matches!(step, Step::Halt) || visible(succ) => {
                    continue 'candidates;
                }
                _ => {}
            }
            // Condition 3: the cycle / fresh-successor proviso. The
            // canonical form computed here rides along with the winner so
            // canonically-interning callers need not recompute it.
            if self.use_sym {
                let canon = canonicalize(succ, &self.symmetry);
                if visited(&canon) {
                    continue 'candidates;
                }
                return Ok(Some((i, Some(canon))));
            }
            if visited(succ) {
                continue 'candidates;
            }
            return Ok(Some((i, None)));
        }
        Ok(None)
    }
}

// ---------------------------------------------------------------------
// The unified traversal driver.
// ---------------------------------------------------------------------

/// The search order of a [`GraphBuilder`] traversal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Order {
    /// Depth-first with per-state property checks and schedule tracking
    /// ([`GraphBuilder::run_dfs`]): the safety explorer's order.
    Dfs,
    /// Breadth-first interning one canonical representative per orbit
    /// ([`GraphBuilder::build_graph`]): the progress and liveness order.
    Bfs,
}

/// A borrowed state normalizer (see `cfc_mutex::StateNormalizer` for the
/// owned form and the bisimulation contract).
pub(crate) type NormalizerFn<'a, P> = &'a dyn Fn(&mut [P], &mut [Value]);

/// A borrowed service predicate over the stepping process's
/// `(before, after)` local states.
pub(crate) type ServedFn<'a, P> = &'a dyn Fn(&P, &P) -> bool;

/// The configuration of one [`GraphBuilder`] traversal: everything the
/// three historical search loops disagreed on, made explicit.
pub(crate) struct TraversalSpec<'a, P> {
    /// Search order; must match the entry point called.
    pub(crate) order: Order,
    /// Record labeled forward edges and the creator tree (BFS only).
    /// The safety DFS keeps no graph; progress and liveness need one.
    pub(crate) record_edges: bool,
    /// Which ample-set conditions partial-order reduction must respect.
    pub(crate) ample_mode: AmpleMode,
    /// The symmetry group canonical visited keys are computed under.
    pub(crate) symmetry: SymmetryGroup,
    /// Optional behavioral-quotient normalizer applied to the root and to
    /// every successor before interning (see
    /// `cfc_mutex::StateNormalizer` for the bisimulation contract).
    /// Partial-order reduction is force-disabled while one is active —
    /// the ample bookkeeping cannot see through the abstraction — and
    /// reported schedules replay *modulo* the quotient: same sections,
    /// outputs, and statuses, not necessarily byte-equal register values.
    pub(crate) normalizer: Option<NormalizerFn<'a, P>>,
    /// Optional service predicate `(before, after)` on the stepping
    /// process, recorded on forward edges ([`GEdge::served`]); only
    /// meaningful with `record_edges`.
    pub(crate) served: Option<ServedFn<'a, P>>,
    /// How many crash transitions the adversary may inject; overrides
    /// [`ExploreConfig::max_crashes`] so wrappers that thread a separate
    /// crash budget state it in one place.
    pub(crate) crash_budget: u32,
    /// The telemetry phase this traversal's span and snapshots are
    /// attributed to (the BFS loop serves both the progress checker and
    /// the liveness graph builder; the phase tells them apart in the
    /// event stream).
    pub(crate) phase: Phase,
}

impl<P> std::fmt::Debug for TraversalSpec<'_, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraversalSpec")
            .field("order", &self.order)
            .field("record_edges", &self.record_edges)
            .field("ample_mode", &self.ample_mode)
            .field("normalizer", &self.normalizer.is_some())
            .field("served", &self.served.is_some())
            .field("crash_budget", &self.crash_budget)
            .field("phase", &self.phase)
            .finish()
    }
}

/// The canonical state graph a BFS traversal produces: one interned
/// representative per orbit (held packed in the [`NodeStore`]), labeled
/// forward edges in CSR form (when recorded), the creator tree, and
/// terminal flags.
pub(crate) struct BuiltGraph<P> {
    /// Canonical orbit representatives in discovery (BFS) order, one
    /// single-copy record per orbit; decode on demand via
    /// [`BuiltGraph::node`].
    pub(crate) store: NodeStore<P>,
    /// Labeled forward edges in CSR form, packed 6 bytes each in a
    /// spillable arena; empty unless [`TraversalSpec::record_edges`] was
    /// set.
    pub(crate) edges: EdgeArena,
    /// The node that first generated each node (`u32::MAX` at the root);
    /// always strictly smaller than its child, so creator chains
    /// terminate at the root — the predecessor tree schedules are
    /// reconstructed from.
    pub(crate) first_pred: Vec<u32>,
    /// Whether the node is quiescent (no process runnable).
    pub(crate) terminal: Vec<bool>,
    /// Memoized reversed adjacency (built on first use; the historical
    /// implementation re-allocated a `Vec<Vec<u32>>` per call, doubling
    /// peak edge memory every time the progress checker asked).
    rev: OnceCell<ReversedCsr>,
}

impl<P> BuiltGraph<P> {
    /// The number of interned nodes.
    pub(crate) fn len(&self) -> usize {
        self.first_pred.len()
    }

    /// The reversed adjacency of the recorded forward edges, memoized,
    /// in the exact order the historical progress checker accumulated
    /// its reversed edges: predecessors appear in discovery order, and
    /// the first predecessor of every non-root node is its creator.
    pub(crate) fn reversed(&self) -> &ReversedCsr {
        self.rev.get_or_init(|| self.edges.reversed(self.len()))
    }
}

impl<P: Process + Clone + Eq + Hash> BuiltGraph<P> {
    /// Decodes node `id` out of the store (an owned copy; the packed
    /// backend materializes states transiently).
    pub(crate) fn node(&self, id: u32) -> Node<P> {
        self.store.node(id)
    }
}

impl<P> std::fmt::Debug for BuiltGraph<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuiltGraph")
            .field("nodes", &self.len())
            .field("edges", &self.edges.total_edges())
            .finish()
    }
}

/// Statistics of one [`GraphBuilder`] traversal, in the shared shape the
/// public stat types (`ExploreStats`, `ProgressStats`, `LivenessStats`)
/// are projected from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct TraversalStats {
    pub(crate) states: usize,
    pub(crate) transitions: u64,
    pub(crate) terminals: usize,
    pub(crate) states_pruned_por: u64,
    pub(crate) orbits_merged: u64,
    /// Transitions skipped by dynamic sleep sets (safety DFS under
    /// [`MayAccessMode::Dynamic`] only; zero everywhere else).
    pub(crate) transitions_slept: u64,
    /// Store/index/edge bytes and spill counts (exact in packed mode,
    /// comparable estimates for the boxed/chained structures;
    /// `edge_bytes` is zero for the DFS and for BFS without edge
    /// recording).
    pub(crate) footprint: StoreFootprint,
    /// Wall time of the traversal, measured by the telemetry clock
    /// (ambient, so tests can inject a deterministic one).
    pub(crate) wall_ns: u64,
}

/// One link of a DFS schedule, shared structurally between stack entries:
/// the historical per-entry `Vec<ScheduleStep>` clone cost O(depth) per
/// *pushed successor* (O(depth²) memory across one expansion chain); a
/// parent pointer costs O(1) and materializes only on violation.
struct PathLink {
    step: ScheduleStep,
    /// Steps from the root (parent depth + 1): telemetry snapshots
    /// report the current DFS path depth without walking the chain.
    depth: u32,
    parent: Option<Rc<PathLink>>,
}

impl Drop for PathLink {
    // Unlink iteratively: the default recursive drop would overflow the
    // call stack on search paths millions of steps deep.
    fn drop(&mut self) {
        let mut cur = self.parent.take();
        while let Some(rc) = cur {
            match Rc::try_unwrap(rc) {
                Ok(mut link) => cur = link.parent.take(),
                Err(_) => break,
            }
        }
    }
}

/// Filters a sleep mask after a step with footprint `taken` fires at
/// `node`: every sleeping process whose next step races with the taken
/// step wakes up (its deferred step no longer commutes past the trace).
/// Bits of processes that are not runnable are dropped defensively —
/// they cannot arise, since a process's status only changes on its own
/// steps and crash budgets disable sleeping.
fn wake_conflicting<P: Process + Clone>(
    mask: u32,
    node: &Node<P>,
    layout: &cfc_core::Layout,
    taken: &Footprint,
    drop_races: Option<cfc_core::RegisterId>,
) -> u32 {
    let mut out = 0u32;
    let mut rest = mask;
    while rest != 0 {
        let p = rest.trailing_zeros() as usize;
        rest &= rest - 1;
        if p < node.procs.len()
            && node.status[p].runnable()
            && !observed_conflict(
                &Footprint::of_step(&node.procs[p].current(), layout),
                taken,
                drop_races,
            )
        {
            out |= 1 << p;
        }
    }
    out
}

/// Materializes the schedule a path link encodes, root-first.
fn materialize_path(link: &Option<Rc<PathLink>>) -> Vec<ScheduleStep> {
    let mut out = Vec::new();
    let mut cur = link.as_deref();
    while let Some(l) = cur {
        out.push(l.step);
        cur = l.parent.as_deref();
    }
    out.reverse();
    out
}

/// The unified traversal driver: an [`Engine`] plus a [`TraversalSpec`],
/// running the one canonical search loop every checker in this crate is
/// a client of.
pub(crate) struct GraphBuilder<'a, P> {
    engine: Engine<P>,
    spec: TraversalSpec<'a, P>,
    max_states: usize,
    store_mode: StoreMode,
    index_mode: IndexMode,
    spill_budget: Option<usize>,
    progress: bool,
}

impl<P> std::fmt::Debug for GraphBuilder<'_, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphBuilder")
            .field("spec", &self.spec)
            .field("max_states", &self.max_states)
            .field("store_mode", &self.store_mode)
            .finish()
    }
}

impl<'a, P: Process + Clone + Eq + Hash> GraphBuilder<'a, P> {
    /// Builds a driver for `n` processes over `memory`.
    ///
    /// The spec's crash budget replaces `config.max_crashes`, and
    /// partial-order reduction is force-disabled when the spec carries a
    /// normalizer (the ample bookkeeping cannot see through the
    /// abstraction — asserted by the driver edge-case suite).
    ///
    /// # Panics
    ///
    /// Panics if the spec's symmetry group is over a different process
    /// count.
    pub(crate) fn new(
        memory: Memory,
        config: ExploreConfig,
        spec: TraversalSpec<'a, P>,
        n: usize,
    ) -> Self {
        let engine_config = ExploreConfig {
            max_crashes: spec.crash_budget,
            por: config.por && spec.normalizer.is_none(),
            ..config
        };
        let engine = Engine::new(memory, spec.symmetry.clone(), engine_config, n);
        GraphBuilder {
            engine,
            spec,
            max_states: config.max_states,
            store_mode: config.store,
            index_mode: config.index,
            spill_budget: config.spill_budget_bytes,
            progress: config.progress,
        }
    }

    /// The underlying engine — for witness re-derivation against the
    /// graph this builder produced (`matches_canonical`, `template`,
    /// `root`).
    pub(crate) fn engine(&self) -> &Engine<P> {
        &self.engine
    }

    /// Applies the spec's normalizer (if any) to `node` in place.
    fn normalize(normalizer: Option<NormalizerFn<'_, P>>, node: &mut Node<P>) {
        if let Some(f) = normalizer {
            f(&mut node.procs, &mut node.values);
        }
    }

    /// Depth-first traversal with per-state property checks — the safety
    /// explorer's loop, byte-identical to its historical search order:
    /// states are memoized at pop time (keyed canonically under the
    /// spec's symmetry group), `state_check` runs in every reachable
    /// state, `terminal_check` in every quiescent one, and violations
    /// carry the schedule that reached them.
    ///
    /// # Errors
    ///
    /// The first violation found, state-budget exhaustion, or a memory
    /// error.
    pub(crate) fn run_dfs<FS, FT>(
        &mut self,
        procs: Vec<P>,
        mut state_check: FS,
        mut terminal_check: FT,
    ) -> Result<TraversalStats, ExploreError>
    where
        FS: FnMut(&StateView<'_, P>) -> Result<(), String>,
        FT: FnMut(&StateView<'_, P>) -> Result<(), String>,
    {
        debug_assert_eq!(self.spec.order, Order::Dfs, "run_dfs needs Order::Dfs");
        debug_assert!(!self.spec.record_edges, "the DFS records no graph");
        let n = procs.len();
        let normalizer = self.spec.normalizer;
        let mode = self.spec.ample_mode;
        let tel = telemetry::runtime(self.progress);
        let mut span = tel.span(self.spec.phase);
        let engine = &mut self.engine;

        if engine.wants_future_index() {
            let auto_span = tel.span(Phase::ExtractAutomaton);
            let index = FutureIndex::build(engine.template().layout(), &procs);
            auto_span.finish(Sample {
                states: index.len() as u64,
                ..Sample::default()
            });
            engine.set_future_index(index);
        }
        // Sleep-set pruning rides only on the safety DFS under dynamic
        // mode, concretely (no symmetry), crash-free, and within mask
        // width — see `crate::dynamic` for why each boundary is
        // load-bearing.
        let sleep_on = sleep_sets_active(
            engine.config.por,
            engine.config.may_access == MayAccessMode::Dynamic,
            mode == AmpleMode::Safety,
            engine.use_sym(),
            self.spec.crash_budget,
            n,
        );
        let drop_races = engine.config.drop_races_on;
        let mut sleep = SleepTable::new();
        let mut root = engine.root(procs);
        Self::normalize(normalizer, &mut root);

        // Visited canonical states, held single-copy in the packed store.
        // With symmetry on, each entry also tracks the identity of the
        // concrete state that first reached it — that lets the
        // orbit-merge counter tell a merge with a permuted sibling apart
        // from a plain revisit, by exact comparison (a hash could
        // collide and miscount).
        let mut visited: NodeStore<P> = NodeStore::new(
            self.store_mode,
            self.index_mode,
            self.spill_budget,
            engine.template().layout(),
            &root,
            engine.use_sym(),
        );
        let mut stats = TraversalStats::default();
        // DFS stack: (node, schedule-so-far, sleep mask). Schedules share
        // structure through parent links — one O(1) link per pushed
        // successor — and are materialized only to report a violation.
        // The mask (bit per pid; always 0 when sleeping is off) names the
        // processes whose next step out of this node is covered by an
        // already-pushed sibling branch.
        let mut stack: Vec<(Node<P>, Option<Rc<PathLink>>, u32)> = vec![(root, None, 0)];

        while let Some((node, path, mut mask)) = stack.pop() {
            let (id, outcome) = if engine.use_sym() {
                let canon = engine.canonical_of(&node);
                visited.visit(&canon, Some(&node))
            } else {
                visited.visit(&node, None)
            };
            // A revisit normally ends the branch. With sleeping on, a
            // revisit that sleeps *fewer* processes than every earlier
            // visit covered must re-expand the state (without re-counting
            // or re-checking it) — the stored mask shrinks strictly each
            // time, so this terminates.
            let fresh = match outcome {
                VisitOutcome::Fresh => {
                    if sleep_on {
                        sleep.record_fresh(id, mask);
                    }
                    true
                }
                VisitOutcome::RevisitSame | VisitOutcome::RevisitMerged => {
                    if outcome == VisitOutcome::RevisitMerged {
                        stats.orbits_merged += 1;
                    }
                    if !sleep_on {
                        continue;
                    }
                    match sleep.revisit(id, mask) {
                        None => continue,
                        Some(narrowed) => {
                            mask = narrowed;
                            false
                        }
                    }
                }
            };
            if fresh {
                stats.states += 1;
                if stats.states > self.max_states {
                    return Err(ExploreError::StateBudget(stats.states));
                }
                span.tick(|| Sample {
                    states: stats.states as u64,
                    transitions: stats.transitions,
                    frontier: stack.len() as u64,
                    depth: path.as_ref().map_or(0, |l| l.depth as u64),
                    states_pruned_por: stats.states_pruned_por,
                    orbits_merged: stats.orbits_merged,
                    transitions_slept: stats.transitions_slept,
                    footprint: StoreFootprint {
                        arena_bytes: visited.arena_bytes(),
                        index_bytes: visited.index_bytes() + sleep.heap_bytes() as u64,
                        edge_bytes: 0,
                        spilled_buckets: visited.spilled_buckets(),
                    },
                });

                let mem = engine.memory_of(&node);
                let view = StateView {
                    procs: &node.procs,
                    status: &node.status,
                    memory: &mem,
                };
                if let Err(message) = state_check(&view) {
                    return Err(ExploreError::Violation(Box::new(Violation {
                        schedule: materialize_path(&path),
                        message,
                    })));
                }
            }

            let runnable: Vec<usize> =
                (0..n).filter(|&i| node.status[i].runnable()).collect();
            if runnable.is_empty() {
                // Terminals have no transitions to re-cover; count and
                // check them on the first visit only.
                if fresh {
                    stats.terminals += 1;
                    let mem = engine.memory_of(&node);
                    let view = StateView {
                        procs: &node.procs,
                        status: &node.status,
                        memory: &mem,
                    };
                    if let Err(message) = terminal_check(&view) {
                        return Err(ExploreError::Violation(Box::new(Violation {
                            schedule: materialize_path(&path),
                            message,
                        })));
                    }
                }
                continue;
            }

            let depth = path.as_ref().map_or(0, |l| l.depth) + 1;
            match engine.expand(&node, &runnable, mode, |key| visited.contains(key))? {
                Expansion::Ample { pid, mut succ, .. } => {
                    stats.states_pruned_por += runnable.len() as u64 - 1;
                    if sleep_on && mask & (1 << pid.index()) != 0 {
                        // The single ample transition is asleep: a
                        // sibling branch of some ancestor already covers
                        // it, so this branch ends here.
                        stats.transitions_slept += 1;
                        continue;
                    }
                    stats.transitions += 1;
                    let child_mask = if sleep_on {
                        let layout = engine.template().layout();
                        let fp = Footprint::of_step(&node.procs[pid.index()].current(), layout);
                        wake_conflicting(mask, &node, layout, &fp, drop_races)
                    } else {
                        0
                    };
                    Self::normalize(normalizer, &mut succ);
                    let link = Rc::new(PathLink {
                        step: ScheduleStep::Step(pid),
                        depth,
                        parent: path,
                    });
                    stack.push((succ, Some(link), child_mask));
                }
                Expansion::Full(succs) => {
                    if sleep_on {
                        // Crash budget is zero under sleeping, so the
                        // successor list is exactly one step per runnable
                        // process, in `runnable` order.
                        debug_assert_eq!(succs.len(), runnable.len());
                        let layout = engine.template().layout();
                        let fps: Vec<Footprint> = runnable
                            .iter()
                            .map(|&i| Footprint::of_step(&node.procs[i].current(), layout))
                            .collect();
                        for (k, (step, mut succ)) in succs.into_iter().enumerate() {
                            let pid_bit = 1u32 << runnable[k];
                            if mask & pid_bit != 0 {
                                stats.transitions_slept += 1;
                                continue;
                            }
                            stats.transitions += 1;
                            // Inherited sleepers stay asleep unless the
                            // taken step races with their next step...
                            let mut child_mask =
                                wake_conflicting(mask, &node, layout, &fps[k], drop_races);
                            // ...and every awake sibling explored before
                            // this branch (pushed later — the stack pops
                            // in reverse) whose step is independent of
                            // the taken one goes to sleep: its successor
                            // here is reachable, via commutation, from
                            // the sibling's subtree.
                            for (k2, &j) in runnable.iter().enumerate().skip(k + 1) {
                                let bit = 1u32 << j;
                                if mask & bit == 0
                                    && !observed_conflict(&fps[k2], &fps[k], drop_races)
                                {
                                    child_mask |= bit;
                                }
                            }
                            Self::normalize(normalizer, &mut succ);
                            let link = Rc::new(PathLink {
                                step,
                                depth,
                                parent: path.clone(),
                            });
                            stack.push((succ, Some(link), child_mask));
                        }
                    } else {
                        for (step, mut succ) in succs {
                            stats.transitions += 1;
                            Self::normalize(normalizer, &mut succ);
                            let link = Rc::new(PathLink {
                                step,
                                depth,
                                parent: path.clone(),
                            });
                            stack.push((succ, Some(link), 0));
                        }
                    }
                }
            }
        }
        stats.footprint = StoreFootprint {
            arena_bytes: visited.arena_bytes(),
            index_bytes: visited.index_bytes() + sleep.heap_bytes() as u64,
            edge_bytes: 0,
            spilled_buckets: visited.spilled_buckets(),
        };
        stats.wall_ns = span.finish(Sample {
            states: stats.states as u64,
            transitions: stats.transitions,
            frontier: 0,
            depth: 0,
            states_pruned_por: stats.states_pruned_por,
            orbits_merged: stats.orbits_merged,
            transitions_slept: stats.transitions_slept,
            footprint: stats.footprint,
        });
        Ok(stats)
    }

    /// Breadth-first traversal interning one canonical representative per
    /// orbit — the loop behind the progress checker and the liveness
    /// graph builder, byte-identical to their historical search order:
    /// the same interning discipline (single-copy store keyed by digest
    /// buckets), crash branching, ample selection, budget accounting, and
    /// reduction bookkeeping, with edge recording controlled by the spec.
    ///
    /// # Errors
    ///
    /// State-budget exhaustion or a memory error. Property evaluation is
    /// the *client's* job — the builder returns the graph and stats.
    pub(crate) fn build_graph(
        &mut self,
        procs: Vec<P>,
    ) -> Result<(BuiltGraph<P>, TraversalStats), ExploreError> {
        debug_assert_eq!(self.spec.order, Order::Bfs, "build_graph needs Order::Bfs");
        let n = procs.len();
        let normalizer = self.spec.normalizer;
        let served_hook = self.spec.served;
        let record = self.spec.record_edges;
        let mode = self.spec.ample_mode;
        let tel = telemetry::runtime(self.progress);
        let mut span = tel.span(self.spec.phase);
        let engine = &mut self.engine;
        let mut stats = TraversalStats::default();

        if engine.wants_future_index() {
            let auto_span = tel.span(Phase::ExtractAutomaton);
            let index = FutureIndex::build(engine.template().layout(), &procs);
            auto_span.finish(Sample {
                states: index.len() as u64,
                ..Sample::default()
            });
            engine.set_future_index(index);
        }
        let mut root = engine.root(procs);
        Self::normalize(normalizer, &mut root);
        let root_canon = engine.canonical_of(&root);

        let mut store: NodeStore<P> = NodeStore::new(
            self.store_mode,
            self.index_mode,
            self.spill_budget,
            engine.template().layout(),
            &root_canon,
            false,
        );
        let (root_id, root_fresh) = store.intern(root_canon);
        debug_assert!(root_fresh && root_id == 0, "the root interns first");
        let mut g = BuiltGraph {
            store,
            edges: EdgeArena::new(self.spill_budget),
            first_pred: vec![u32::MAX],
            terminal: vec![false],
            rev: OnceCell::new(),
        };
        // The budget is inclusive: a graph of exactly `max_states` nodes
        // completes; the first intern beyond it aborts immediately.
        if g.store.len() > self.max_states {
            return Err(ExploreError::StateBudget(g.store.len()));
        }

        let mut cursor = 0usize;
        while cursor < g.store.len() {
            span.tick(|| Sample {
                states: g.store.len() as u64,
                transitions: stats.transitions,
                frontier: (g.store.len() - cursor) as u64,
                depth: 0,
                states_pruned_por: stats.states_pruned_por,
                orbits_merged: stats.orbits_merged,
                transitions_slept: 0,
                footprint: StoreFootprint {
                    arena_bytes: g.store.arena_bytes(),
                    index_bytes: g.store.index_bytes(),
                    edge_bytes: g.edges.heap_bytes(),
                    spilled_buckets: g.store.spilled_buckets() + g.edges.spilled_segs(),
                },
            });
            let current = g.store.node(cursor as u32);
            let runnable: Vec<usize> = (0..n)
                .filter(|&i| current.status[i].runnable())
                .collect();
            if runnable.is_empty() {
                g.terminal[cursor] = true;
                stats.terminals += 1;
                g.edges.seal();
                cursor += 1;
                continue;
            }
            let expansion =
                engine.expand(&current, &runnable, mode, |key| g.store.contains(key))?;
            // Successors paired with their canonical form, when the ample
            // selection already computed it for the fresh-successor
            // proviso. (The ample path precomputes it only when no
            // normalizer rewrites the successor afterwards — POR is off
            // with one active — so a cached form is always still valid.)
            let succs = match expansion {
                Expansion::Ample { pid, succ, canon } => {
                    stats.states_pruned_por += runnable.len() as u64 - 1;
                    vec![(ScheduleStep::Step(pid), succ, canon)]
                }
                Expansion::Full(list) => list
                    .into_iter()
                    .map(|(step, succ)| (step, succ, None))
                    .collect(),
            };
            for (step, mut succ, canon) in succs {
                stats.transitions += 1;
                Self::normalize(normalizer, &mut succ);
                let label = record.then(|| {
                    let (pid, crash) = match step {
                        ScheduleStep::Step(p) => (p.index() as u32, false),
                        ScheduleStep::Crash(p) => (p.index() as u32, true),
                    };
                    let served = !crash
                        && served_hook.is_some_and(|f| {
                            f(&current.procs[pid as usize], &succ.procs[pid as usize])
                        });
                    (pid, crash, served)
                });
                let (canon, permuted) = match canon {
                    Some(canon) => {
                        let permuted = canon != succ;
                        (canon, permuted)
                    }
                    None if engine.use_sym() => {
                        let canon = engine.canonical_of(&succ);
                        let permuted = canon != succ;
                        (canon, permuted)
                    }
                    None => (succ, false),
                };
                let (to, fresh) = g.store.intern(canon);
                if fresh {
                    g.first_pred.push(cursor as u32);
                    g.terminal.push(false);
                    if g.store.len() > self.max_states {
                        return Err(ExploreError::StateBudget(g.store.len()));
                    }
                } else if permuted {
                    stats.orbits_merged += 1;
                }
                if let Some((pid, crash, served)) = label {
                    // The CSR arena appends at its open node, which is
                    // exactly the cursor: edges are recorded only while
                    // expanding it, and the seal below closes its range.
                    g.edges.push(GEdge {
                        to,
                        pid,
                        crash,
                        served,
                    });
                }
            }
            g.edges.seal();
            cursor += 1;
        }
        stats.states = g.store.len();
        stats.footprint = StoreFootprint {
            arena_bytes: g.store.arena_bytes(),
            index_bytes: g.store.index_bytes(),
            edge_bytes: g.edges.heap_bytes(),
            spilled_buckets: g.store.spilled_buckets() + g.edges.spilled_segs(),
        };
        stats.wall_ns = span.finish(Sample {
            states: stats.states as u64,
            transitions: stats.transitions,
            frontier: 0,
            depth: 0,
            states_pruned_por: stats.states_pruned_por,
            orbits_merged: stats.orbits_merged,
            transitions_slept: 0,
            footprint: stats.footprint,
        });
        Ok((g, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_core::{Layout, Op, RegisterId};

    /// A process bumping a private counter `laps` times, tracking a lap
    /// count in otherwise-dead local state the normalizer can fold.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct Bumper {
        reg: RegisterId,
        laps: u8,
        done: u8,
        /// Dead scratch: remembers the last value read, though nothing
        /// ever branches on it — exactly the shape a normalizer erases.
        scratch: u64,
        pc: u8,
    }

    impl Process for Bumper {
        fn current(&self) -> Step {
            if self.done == self.laps {
                return Step::Halt;
            }
            match self.pc {
                0 => Step::Op(Op::Read(self.reg)),
                _ => Step::Op(Op::Write(self.reg, Value::new(1))),
            }
        }
        fn advance(&mut self, result: OpResult) {
            if self.pc == 0 {
                self.scratch = result.value().raw() + u64::from(self.done) * 1000;
                self.pc = 1;
            } else {
                self.pc = 0;
                self.done += 1;
            }
        }
    }

    fn bumper_system(laps: u8) -> (Memory, Vec<Bumper>) {
        let mut layout = Layout::new();
        let r = layout.register("r", 2, 0);
        let memory = Memory::new(layout, 2).unwrap();
        let mk = || Bumper {
            reg: r,
            laps,
            done: 0,
            scratch: 0,
            pc: 0,
        };
        (memory, vec![mk(), mk()])
    }

    fn spec<'a, P>(order: Order, record_edges: bool) -> TraversalSpec<'a, P> {
        TraversalSpec {
            order,
            record_edges,
            ample_mode: AmpleMode::Safety,
            symmetry: SymmetryGroup::trivial(2),
            normalizer: None,
            served: None,
            crash_budget: 0,
            phase: match order {
                Order::Dfs => Phase::SafetyDfs,
                Order::Bfs => Phase::ProgressBfs,
            },
        }
    }

    /// The spec combination no public wrapper exercises yet: a DFS with
    /// a normalizer. Folding the dead scratch must merge states (the
    /// scratch multiplies the space by the values read), while the
    /// reachable terminal observations stay identical.
    #[test]
    fn dfs_with_normalizer_merges_dead_scratch() {
        let normalizer = |procs: &mut [Bumper], _values: &mut [Value]| {
            for p in procs {
                p.scratch = 0;
            }
        };
        let run = |normalize: bool| {
            let (memory, procs) = bumper_system(2);
            let mut spec = spec(Order::Dfs, false);
            spec.normalizer = normalize.then_some(&normalizer as &dyn Fn(&mut _, &mut _));
            let mut builder =
                GraphBuilder::new(memory, ExploreConfig::default(), spec, procs.len());
            builder.run_dfs(procs, |_| Ok(()), |_| Ok(())).unwrap()
        };
        let raw = run(false);
        let folded = run(true);
        assert!(
            folded.states < raw.states,
            "normalizer must merge scratch-only differences: {folded:?} vs {raw:?}"
        );
        assert_eq!(folded.terminals, 1, "both-done is a single folded terminal");
    }

    /// `record_edges: false` on the BFS (a combination neither progress
    /// nor liveness uses): the node store, creator tree, and terminal
    /// flags are still produced; only the edge lists stay empty.
    #[test]
    fn bfs_without_edge_recording_keeps_the_creator_tree() {
        let (memory, procs) = bumper_system(1);
        let mut builder = GraphBuilder::new(
            memory,
            ExploreConfig::default(),
            spec(Order::Bfs, false),
            procs.len(),
        );
        let (g, stats) = builder.build_graph(procs).unwrap();
        assert_eq!(g.len(), stats.states);
        assert_eq!(g.edges.total_edges(), 0);
        assert_eq!(g.edges.nodes(), g.len(), "every node seals, even edgeless");
        assert_eq!(
            stats.footprint.edge_bytes,
            (g.len() as u64 + 1) * 4,
            "offsets only"
        );
        assert_eq!(g.first_pred[0], u32::MAX);
        for (id, &pred) in g.first_pred.iter().enumerate().skip(1) {
            assert!((pred as usize) < id, "creator ids decrease toward the root");
        }
        assert!(g.terminal.iter().any(|t| *t));
    }

    /// The spec's crash budget overrides the config's, so a wrapper that
    /// threads crashes separately cannot desynchronize the two.
    #[test]
    fn spec_crash_budget_overrides_config() {
        let (memory, procs) = bumper_system(1);
        let mut s = spec(Order::Bfs, true);
        s.crash_budget = 1;
        // Deliberately contradictory config: zero crashes.
        let mut builder = GraphBuilder::new(
            memory,
            ExploreConfig::default().with_max_crashes(0),
            s,
            procs.len(),
        );
        let (g, _) = builder.build_graph(procs).unwrap();
        assert_eq!(g.node(0).crashes_left, 1, "spec budget wins");
        assert!(
            (0..g.len()).flat_map(|v| g.edges.edges(v)).any(|e| e.crash),
            "crash transitions must be explored"
        );
    }

    /// A normalizer force-disables partial-order reduction: the ample
    /// bookkeeping cannot see through the abstraction, so the driver
    /// must not prune even when the config asks for POR.
    #[test]
    fn normalizer_disables_partial_order_reduction() {
        let normalizer = |procs: &mut [Bumper], _values: &mut [Value]| {
            for p in procs {
                p.scratch = 0;
            }
        };
        let (memory, procs) = bumper_system(1);
        let mut s = spec(Order::Bfs, true);
        s.normalizer = Some(&normalizer);
        let config = ExploreConfig {
            por: true,
            ..ExploreConfig::default()
        };
        let mut builder = GraphBuilder::new(memory, config, s, procs.len());
        let (_, stats) = builder.build_graph(procs).unwrap();
        assert_eq!(stats.states_pruned_por, 0, "POR must be suspended");

        // Without the normalizer the same config does prune (the Halt
        // steps at least are ample).
        let (memory, procs) = bumper_system(1);
        let mut builder = GraphBuilder::new(memory, config, spec(Order::Bfs, true), procs.len());
        let (_, stats) = builder.build_graph(procs).unwrap();
        assert!(stats.states_pruned_por > 0, "{stats:?}");
    }

    /// One-process systems degenerate cleanly: a single chain of states,
    /// no crash branching at zero budget, one terminal.
    #[test]
    fn single_process_graph_is_a_chain() {
        let (memory, mut procs) = bumper_system(1);
        procs.truncate(1);
        let mut s = spec(Order::Bfs, true);
        s.symmetry = SymmetryGroup::trivial(1);
        let mut builder = GraphBuilder::new(memory, ExploreConfig::default(), s, 1);
        let (g, stats) = builder.build_graph(procs).unwrap();
        assert_eq!(stats.terminals, 1);
        assert!((0..g.len()).all(|v| g.edges.degree(v) <= 1));
        assert!((0..g.len()).flat_map(|v| g.edges.edges(v)).all(|e| !e.crash));
    }

    /// The memoized reversal equals a fresh nested-Vec reversal — same
    /// predecessors, same per-node order — and the creator-first
    /// invariant progress-schedule reconstruction depends on holds.
    #[test]
    fn memoized_reversal_preserves_creator_first_order() {
        let (memory, procs) = bumper_system(2);
        let mut s = spec(Order::Bfs, true);
        s.crash_budget = 1;
        let mut builder = GraphBuilder::new(
            memory,
            ExploreConfig::default().with_max_crashes(1),
            s,
            procs.len(),
        );
        let (g, _) = builder.build_graph(procs).unwrap();
        // Nested-Vec reference, the historical implementation.
        let mut reference: Vec<Vec<u32>> = vec![Vec::new(); g.len()];
        for v in 0..g.len() {
            for e in g.edges.edges(v) {
                reference[e.to as usize].push(v as u32);
            }
        }
        let rev = g.reversed();
        assert_eq!(rev.len(), g.len());
        for (v, expect) in reference.iter().enumerate() {
            assert_eq!(rev.preds(v), expect.as_slice(), "node {v}");
            if v > 0 && !rev.preds(v).is_empty() {
                assert_eq!(rev.preds(v)[0], g.first_pred[v], "creator first");
            }
        }
        // Memoized: the second call returns the same allocation.
        assert!(std::ptr::eq(g.reversed(), rev));
    }
}
