//! The shared state-graph engine behind the exhaustive explorers.
//!
//! Both search drivers in [`crate::explore`] — the DFS safety explorer
//! ([`crate::explore::explore_sym`]) and the BFS progress checker
//! ([`crate::explore::check_progress_sym`]) — walk the same state graph:
//! global states (process local states, register values, liveness
//! statuses, remaining crash budget) connected by process steps and crash
//! transitions. This module owns everything the two drivers share so the
//! graph semantics cannot drift apart:
//!
//! * [`Node`] — the global-state representation and its successor
//!   function ([`expand_step`], crash branching inside [`Engine::expand`]);
//! * canonicalization under a [`SymmetryGroup`] ([`canonicalize`],
//!   [`state_fingerprint`]) for symmetry-reduced visited keys;
//! * ample-set selection for partial-order reduction, parameterized by
//!   [`AmpleMode`]: the safety explorer needs the full C1–C3 conditions,
//!   while progress checking can drop the invisibility condition C2
//!   (quiescence is a property of the graph, not of the per-state
//!   observation) and instead relies on the *fresh-successor* proviso —
//!   see the soundness notes on [`AmpleMode::Progress`].
//!
//! The drivers keep their own visited structures (the DFS memoizes
//! concrete states keyed canonically at pop time; the BFS interns one
//! canonical representative per orbit with predecessor edges) and pass
//! the engine a containment query, so each preserves its historical
//! search order exactly.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use cfc_core::{
    Footprint, Memory, OpResult, Process, ProcessId, RegisterSet, Status, Step, SymmetryGroup,
    Value,
};

use crate::explore::{ExploreConfig, ExploreError, ScheduleStep};

/// A global state of the explored system.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) struct Node<P> {
    /// Process local states, indexed by pid.
    pub(crate) procs: Vec<P>,
    /// The shared-register values (the memory image).
    pub(crate) values: Vec<Value>,
    /// Per-process liveness statuses.
    pub(crate) status: Vec<Status>,
    /// How many crash transitions the adversary may still inject.
    pub(crate) crashes_left: u32,
}

/// The fingerprint used to canonically order interchangeable processes:
/// the process's own [`Process::fingerprint`] if it provides one, a hash
/// of its full state otherwise, mixed with its liveness status.
pub(crate) fn state_fingerprint<P: Process + Hash>(p: &P, status: Status) -> u64 {
    let mut h = DefaultHasher::new();
    match p.fingerprint() {
        Some(fp) => fp.hash(&mut h),
        None => p.hash(&mut h),
    }
    status.hash(&mut h);
    h.finish()
}

pub(crate) fn full_hash<T: Hash>(t: &T) -> u64 {
    let mut h = DefaultHasher::new();
    t.hash(&mut h);
    h.finish()
}

/// The orbit representative of a node: within every symmetry class, the
/// (local state, status) pairs are rearranged into fingerprint order.
///
/// Sorting is *stable*, so fingerprint collisions between distinct local
/// states can only forfeit a merge, never create an unsound one: two
/// nodes canonicalize equally iff they are genuine class-respecting
/// permutations of one another.
pub(crate) fn canonicalize<P: Process + Clone + Hash>(
    node: &Node<P>,
    group: &SymmetryGroup,
) -> Node<P> {
    let mut canon = node.clone();
    for class in group.classes() {
        let mut order: Vec<usize> = class.clone();
        order.sort_by_key(|&i| state_fingerprint(&node.procs[i], node.status[i]));
        for (&dst, &src) in class.iter().zip(order.iter()) {
            if dst != src {
                canon.procs[dst] = node.procs[src].clone();
                canon.status[dst] = node.status[src];
            }
        }
    }
    canon
}

/// Computes the successor of `node` when process `i` takes its next step.
pub(crate) fn expand_step<P: Process + Clone>(
    node: &Node<P>,
    i: usize,
    template: &Memory,
) -> Result<Node<P>, ExploreError> {
    let mut next = node.clone();
    match next.procs[i].current() {
        Step::Halt => next.status[i] = Status::Done,
        Step::Internal => next.procs[i].advance(OpResult::None),
        Step::Op(op) => {
            let mut mem = rebuild_memory(template, &next.values);
            let result = mem.apply(&op).map_err(ExploreError::Memory)?;
            next.values = mem.snapshot().to_vec();
            next.procs[i].advance(result);
        }
    }
    Ok(next)
}

/// A memory instance with `values` poked over the layout of `template`.
pub(crate) fn rebuild_memory(template: &Memory, values: &[Value]) -> Memory {
    let mut mem = template.clone();
    for (i, v) in values.iter().enumerate() {
        mem.poke(cfc_core::RegisterId::new(i as u32), *v);
    }
    mem
}

/// Which property the search preserves — this decides how aggressive the
/// ample-set selection may be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AmpleMode {
    /// Per-state observations (sections and outputs) must be preserved up
    /// to stuttering: the classical conditions C1 (independence), C2
    /// (invisibility), and C3 (cycle proviso) all apply. Used by the DFS
    /// safety explorer.
    Safety,
    /// Only *reachability of quiescence* must be preserved, in both
    /// directions. The invisibility condition C2 is dropped — quiescence
    /// is a property of the graph shape, not of sections or outputs, so a
    /// visible step is as good an ample candidate as an invisible one.
    ///
    /// Soundness (sketch; the full argument is in the README):
    ///
    /// * *No false alarms.* Ample sets here are singletons, and C1 makes
    ///   the ample step independent of every step any other running
    ///   process can ever take, so it commutes with any path to
    ///   quiescence: if a state can quiesce in the full graph, its single
    ///   ample successor still can, by induction on the path length.
    /// * *No missed violations.* The fresh-successor proviso (the ample
    ///   successor must never have been seen) guarantees every cycle of
    ///   the reduced graph contains a fully expanded state, so no enabled
    ///   transition is deferred forever: any full-graph run can be
    ///   mimicked, up to commuting deferred ample steps past it, by a
    ///   reduced run reaching a state from which the original state's
    ///   fate (stuck or not) is unchanged.
    Progress,
    /// Fair infinite behaviors (lassos) must be preserved: the liveness
    /// checker hunts cycles in which a pending process is overtaken
    /// forever, observing sections, outputs, **and statuses** at every
    /// state of the loop. Invisibility is therefore *strict* — unlike
    /// [`AmpleMode::Safety`], a `Halt` step does not qualify (it changes
    /// the stepping process's status, which the fairness analysis reads)
    /// — and the cycle-closing condition C3 is kept verbatim: an ample
    /// successor must be fresh, so every cycle of the reduced graph
    /// contains a fully expanded state and no process's steps (in
    /// particular, no self-looping spin of a starved victim) are pruned
    /// from every state of a cycle. Fair lassos reported on the reduced
    /// graph are re-derived concretely and validated step by step, so a
    /// `Starvable` verdict never rests on the reduction; a
    /// starvation-free verdict additionally leans on the differential
    /// suite in `tests/liveness.rs` (see the README's "when to trust a
    /// verdict" notes).
    Liveness,
}

/// The successors of one node, as chosen by the engine.
#[derive(Debug)]
pub(crate) enum Expansion<P> {
    /// Partial-order reduction proved one process sufficient: its single
    /// successor stands for the whole enabled set.
    Ample {
        /// The process that stepped.
        pid: ProcessId,
        /// Its successor state.
        succ: Node<P>,
        /// The canonical form of `succ`, already computed for the
        /// fresh-successor proviso when symmetry reduction is on — so
        /// callers that intern canonically need not recanonicalize.
        canon: Option<Node<P>>,
    },
    /// Full expansion: for every runnable process, its step successor —
    /// preceded by its crash successor whenever crashes remain.
    Full(Vec<(ScheduleStep, Node<P>)>),
}

/// The result of an ample selection: the winning candidate's process
/// index paired with its successor's canonical form (already computed
/// for the fresh-successor proviso when symmetry reduction is on), or
/// `None` when the state must be fully expanded.
type AmpleChoice<P> = Option<(usize, Option<Node<P>>)>;

/// Reused per-state scratch of the ample selection: future-access sets
/// and the successors computed while testing candidates (handed to the
/// full expansion on fallback, so no transition is computed twice).
struct AmpleScratch<P> {
    may: Vec<(bool, RegisterSet)>,
    succ: Vec<Option<Node<P>>>,
}

impl<P> AmpleScratch<P> {
    fn new(n: usize) -> Self {
        AmpleScratch {
            may: (0..n).map(|_| (false, RegisterSet::new())).collect(),
            succ: (0..n).map(|_| None).collect(),
        }
    }
}

/// The shared state-graph engine: owns the memory template, the symmetry
/// group, the reduction configuration, and the ample-selection scratch.
pub(crate) struct Engine<P> {
    template: Memory,
    symmetry: SymmetryGroup,
    config: ExploreConfig,
    use_sym: bool,
    scratch: AmpleScratch<P>,
}

impl<P: Process + Clone + Eq + Hash> Engine<P> {
    /// Builds an engine for `n` processes over `memory`.
    ///
    /// # Panics
    ///
    /// Panics if `symmetry` is defined over a different process count.
    pub(crate) fn new(memory: Memory, symmetry: SymmetryGroup, config: ExploreConfig, n: usize) -> Self {
        assert_eq!(
            symmetry.n(),
            n,
            "symmetry group is over {} processes, system has {n}",
            symmetry.n()
        );
        let use_sym = config.symmetry && !symmetry.is_trivial();
        Engine {
            template: memory,
            symmetry,
            config,
            use_sym,
            scratch: AmpleScratch::new(n),
        }
    }

    /// The initial node: all processes running, the template memory image,
    /// the configured crash budget.
    pub(crate) fn root(&self, procs: Vec<P>) -> Node<P> {
        Node {
            status: vec![Status::Running; procs.len()],
            values: self.template.snapshot().to_vec(),
            procs,
            crashes_left: self.config.max_crashes,
        }
    }

    /// The memory template (layout + atomicity) states are expanded over.
    pub(crate) fn template(&self) -> &Memory {
        &self.template
    }

    /// Whether symmetry reduction is effective (enabled and non-trivial).
    pub(crate) fn use_sym(&self) -> bool {
        self.use_sym
    }

    /// A [`Memory`] carrying `node`'s register values.
    pub(crate) fn memory_of(&self, node: &Node<P>) -> Memory {
        rebuild_memory(&self.template, &node.values)
    }

    /// The canonical (orbit-representative) form of `node` — `node`
    /// itself, cloned, when symmetry reduction is off.
    pub(crate) fn canonical_of(&self, node: &Node<P>) -> Node<P> {
        if self.use_sym {
            canonicalize(node, &self.symmetry)
        } else {
            node.clone()
        }
    }

    /// Whether the concrete node `concrete` falls into the orbit whose
    /// canonical representative is `canon`.
    pub(crate) fn matches_canonical(&self, concrete: &Node<P>, canon: &Node<P>) -> bool {
        if self.use_sym {
            canonicalize(concrete, &self.symmetry) == *canon
        } else {
            concrete == canon
        }
    }

    /// Computes the successors of `node` (whose runnable processes are
    /// `runnable`): a single ample successor when partial-order reduction
    /// applies, the full enabled set (crash transitions first) otherwise.
    ///
    /// `visited` answers whether a (canonical) node has already been seen;
    /// the ample conditions consult it for the cycle/fresh-successor
    /// proviso. Crash branching disables the reduction at any state that
    /// can still crash (a crash commutes with nothing its victim would
    /// do).
    pub(crate) fn expand<F>(
        &mut self,
        node: &Node<P>,
        runnable: &[usize],
        mode: AmpleMode,
        visited: F,
    ) -> Result<Expansion<P>, ExploreError>
    where
        F: Fn(&Node<P>) -> bool,
    {
        if self.config.por && node.crashes_left == 0 && runnable.len() > 1 {
            if let Some((i, canon)) = self.select_ample(node, runnable, mode, &visited)? {
                let succ = self.scratch.succ[i].take().expect("ample successor cached");
                for s in self.scratch.succ.iter_mut() {
                    *s = None;
                }
                return Ok(Expansion::Ample {
                    pid: ProcessId::new(i as u32),
                    succ,
                    canon,
                });
            }
        }
        let crashing = node.crashes_left > 0;
        let mut out = Vec::with_capacity(runnable.len() * if crashing { 2 } else { 1 });
        for &i in runnable {
            if crashing {
                let mut next = node.clone();
                next.status[i] = Status::Crashed;
                next.crashes_left -= 1;
                out.push((ScheduleStep::Crash(ProcessId::new(i as u32)), next));
            }
            // Reuse any successor the ample selection already computed for
            // this candidate instead of recomputing it.
            let next = match self.scratch.succ[i].take() {
                Some(cached) => cached,
                None => expand_step(node, i, &self.template)?,
            };
            out.push((ScheduleStep::Step(ProcessId::new(i as u32)), next));
        }
        Ok(Expansion::Full(out))
    }

    /// Selects an ample process at `node`, leaving its (already computed)
    /// successor in the scratch, or returns `None` when the state must be
    /// fully expanded.
    ///
    /// A candidate `i` is ample when its next step is
    /// 1. independent of every step any *other* running process can ever
    ///    take — trivially so for local (`Internal`/`Halt`) steps, and via
    ///    disjointness of the op footprint from the others'
    ///    [`Process::may_access`] over-approximations otherwise (an
    ///    unknown over-approximation disqualifies the candidate);
    /// 2. under [`AmpleMode::Safety`] only, invisible: the stepping
    ///    process's section and output are unchanged (halting changes
    ///    only the liveness status, which `state_check` must not read
    ///    under reduction — see the `explore` module docs);
    /// 3. fresh: its successor has not been visited yet. For the DFS this
    ///    is the classical C3 cycle proviso; for the BFS progress graph
    ///    it is the strengthened fresh-successor proviso — either way,
    ///    every cycle of the reduced graph contains a fully expanded
    ///    state, so no transition is ignored forever.
    fn select_ample<F>(
        &mut self,
        node: &Node<P>,
        runnable: &[usize],
        mode: AmpleMode,
        visited: &F,
    ) -> Result<AmpleChoice<P>, ExploreError>
    where
        F: Fn(&Node<P>) -> bool,
    {
        // Future-access over-approximations, computed once per state into
        // the reused scratch buffers.
        for &j in runnable {
            let (known, set) = &mut self.scratch.may[j];
            set.clear();
            *known = node.procs[j].may_access(set);
        }
        let layout = self.template.layout();
        'candidates: for &i in runnable {
            let step = node.procs[i].current();
            // Condition 1: independence with all concurrent futures.
            if let Step::Op(op) = &step {
                let fp = Footprint::of_op(op, layout);
                for &j in runnable {
                    if j == i {
                        continue;
                    }
                    match &self.scratch.may[j] {
                        (true, set) if !fp.touches(set) => {}
                        _ => continue 'candidates,
                    }
                }
            }
            // Successors computed here are kept in the scratch: if no
            // ample candidate survives, the full expansion reuses them
            // instead of recomputing.
            let succ = expand_step(node, i, &self.template)?;
            let succ = self.scratch.succ[i].insert(succ);
            // Condition 2: invisibility of the step — required whenever
            // per-state observations must be preserved. Safety checks
            // never read liveness statuses under reduction, so `Halt`
            // steps are exempt there; the liveness analysis reads them,
            // so under `Liveness` a `Halt` step is visible by definition.
            let visible = |succ: &Node<P>| {
                succ.procs[i].section() != node.procs[i].section()
                    || succ.procs[i].output() != node.procs[i].output()
            };
            match mode {
                AmpleMode::Safety if !matches!(step, Step::Halt) && visible(succ) => {
                    continue 'candidates;
                }
                AmpleMode::Liveness if matches!(step, Step::Halt) || visible(succ) => {
                    continue 'candidates;
                }
                _ => {}
            }
            // Condition 3: the cycle / fresh-successor proviso. The
            // canonical form computed here rides along with the winner so
            // canonically-interning callers need not recompute it.
            if self.use_sym {
                let canon = canonicalize(succ, &self.symmetry);
                if visited(&canon) {
                    continue 'candidates;
                }
                return Ok(Some((i, Some(canon))));
            }
            if visited(succ) {
                continue 'candidates;
            }
            return Ok(Some((i, None)));
        }
        Ok(None)
    }
}
