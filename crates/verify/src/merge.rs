//! The Lemma 2 run-merge attack, made executable.
//!
//! Lemma 2 states that in any correct contention-detection algorithm, for
//! every pair of processes `p₁, p₂` there is a write index `m` with
//! `W(p₁, m) ≠ W(p₂, m)` such that one process's `m`-th written register
//! is *read* by the other in its solo run. The proof is constructive: if
//! the condition fails, the two solo runs can be merged — interleaved so
//! that each process observes only its own writes and initial values —
//! into a run where **both** processes output `1`, violating safety.
//!
//! This module extracts solo-run profiles, evaluates the lemma's
//! condition, and, when the condition fails, actually constructs and
//! executes the merged run, returning the two-winner witness. Running it
//! against the paper's algorithms shows the condition always holds;
//! running it against [`BrokenDetector`](cfc_mutex::BrokenDetector)
//! produces the forbidden run.

use std::collections::BTreeSet;
use std::fmt;

use cfc_core::{run_solo, ExecError, Op, Process, ProcessId, RegisterId, Status, Step, Value};
use cfc_mutex::DetectionAlgorithm;

/// The solo-run profile of one process: its write sequence and read set
/// (the paper's `W(p, ·)` and `R(p)`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SoloProfile {
    /// `W(p, m)`: the m-th write's register and value (0-based `m`).
    pub writes: Vec<(RegisterId, Value)>,
    /// `R(p)`: the set of registers read.
    pub reads: BTreeSet<RegisterId>,
    /// The process's solo output.
    pub output: Option<Value>,
}

/// Extracts the solo-run profile of participant `pid`.
///
/// # Errors
///
/// Propagates executor errors, and rejects algorithms that use operations
/// other than atomic register reads/writes (the Section 2 model).
pub fn solo_profile<A: DetectionAlgorithm>(
    alg: &A,
    pid: ProcessId,
) -> Result<SoloProfile, MergeError> {
    let memory = alg.memory().map_err(ExecError::from)?;
    let (trace, proc_, _) = run_solo(memory, alg.process(pid))?;
    let mut writes = Vec::new();
    let mut reads = BTreeSet::new();
    for (op, _) in trace.accesses_by(ProcessId::new(0)) {
        match op {
            Op::Read(r) => {
                reads.insert(*r);
            }
            Op::Write(r, v) => writes.push((*r, *v)),
            other => return Err(MergeError::UnsupportedOp(other.clone())),
        }
    }
    Ok(SoloProfile {
        writes,
        reads,
        output: proc_.output(),
    })
}

/// Evaluates Lemma 2's condition for a pair of solo profiles: does there
/// exist `m` with `W(p₁, m) ≠ W(p₂, m)` and `Wʳ(p₁, m) ∈ R(p₂)` or
/// `Wʳ(p₂, m) ∈ R(p₁)`?
///
/// Runs of different write counts are padded with conceptual dummy writes
/// to fresh registers (as in the paper's proof): an index where only one
/// process writes counts as "different", and crosses iff that register is
/// in the other's read set.
pub fn lemma2_condition(p1: &SoloProfile, p2: &SoloProfile) -> bool {
    let w = p1.writes.len().max(p2.writes.len());
    for m in 0..w {
        match (p1.writes.get(m), p2.writes.get(m)) {
            (Some(a), Some(b)) => {
                if a != b && (p2.reads.contains(&a.0) || p1.reads.contains(&b.0)) {
                    return true;
                }
            }
            (Some(a), None) => {
                if p2.reads.contains(&a.0) {
                    return true;
                }
            }
            (None, Some(b)) => {
                if p1.reads.contains(&b.0) {
                    return true;
                }
            }
            (None, None) => unreachable!("m < max write count"),
        }
    }
    false
}

/// A successful merge attack: the schedule produced two winners.
#[derive(Clone, Debug)]
pub struct MergeWitness {
    /// The two processes that both output `1`.
    pub pids: (ProcessId, ProcessId),
    /// The merged run's trace.
    pub trace: cfc_core::Trace,
}

impl fmt::Display for MergeWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "merge attack succeeded: {} and {} both output 1; merged run:",
            self.pids.0, self.pids.1
        )?;
        write!(f, "{}", self.trace)
    }
}

/// Errors from the merge machinery.
#[derive(Clone, Debug)]
pub enum MergeError {
    /// The algorithm issued an operation outside the atomic-register model.
    UnsupportedOp(Op),
    /// Execution failed.
    Exec(ExecError),
    /// The merged run diverged from the solo profiles (the algorithm's
    /// processes noticed each other), so no witness was produced.
    Diverged,
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::UnsupportedOp(op) => {
                write!(f, "merge attack supports atomic registers only, got {op}")
            }
            MergeError::Exec(e) => write!(f, "execution error: {e}"),
            MergeError::Diverged => write!(f, "merged run diverged from solo profiles"),
        }
    }
}

impl std::error::Error for MergeError {}

impl From<ExecError> for MergeError {
    fn from(e: ExecError) -> Self {
        MergeError::Exec(e)
    }
}

/// Attempts the Lemma 2 merge attack on a pair of participants.
///
/// Returns `Ok(None)` if the pair satisfies the lemma's condition (the
/// algorithm resists — expected for every correct detector), or
/// `Ok(Some(witness))` with the two-winner run when it does not.
///
/// The merged schedule follows the proof of Lemma 2: repeatedly let each
/// process run its reads up to its next write; then let the second process
/// perform its `i`-th write followed by the first, so that every read
/// observes only initial values or the reader's own writes.
///
/// # Errors
///
/// Propagates profile-extraction and execution errors.
pub fn merge_attack<A>(
    alg: &A,
    pid1: ProcessId,
    pid2: ProcessId,
) -> Result<Option<MergeWitness>, MergeError>
where
    A: DetectionAlgorithm,
{
    let prof1 = solo_profile(alg, pid1)?;
    let prof2 = solo_profile(alg, pid2)?;
    if lemma2_condition(&prof1, &prof2) {
        return Ok(None);
    }

    // Premise fails: build the merged run.
    let memory = alg.memory().map_err(ExecError::from)?;
    let mut exec = cfc_core::Executor::new(memory, vec![alg.process(pid1), alg.process(pid2)]);
    let p = [ProcessId::new(0), ProcessId::new(1)];

    // Drive: drain non-write steps of p1, then of p2; then perform p2's
    // write followed by p1's write; repeat. When a process halts it drops
    // out of the rotation.
    let mut guard = 0u64;
    while !exec.quiescent() {
        guard += 1;
        if guard > 1_000_000 {
            return Err(MergeError::Diverged);
        }
        // Phase 1: non-write steps.
        let mut progressed = true;
        while progressed {
            progressed = false;
            for &pid in &p {
                while exec.status(pid) == Status::Running && !poised_at_write(exec.process(pid)) {
                    exec.step_process(pid)?;
                    progressed = true;
                }
            }
        }
        // Phase 2: both (or the remaining one) poised at writes; let the
        // second process write first, then the first.
        for &pid in p.iter().rev() {
            if exec.status(pid) == Status::Running {
                exec.step_process(pid)?;
            }
        }
    }

    let outputs = exec.outputs();
    if outputs[0] == Some(Value::ONE) && outputs[1] == Some(Value::ONE) {
        let (trace, _, _) = exec.into_parts();
        Ok(Some(MergeWitness {
            pids: (pid1, pid2),
            trace,
        }))
    } else {
        // The merged run did not produce two winners: the schedule
        // perturbed the processes (their runs were not mergeable after
        // all). For algorithms satisfying Lemma 2's premise-failure this
        // cannot happen; report divergence.
        Err(MergeError::Diverged)
    }
}

fn poised_at_write<P: Process>(proc_: &P) -> bool {
    matches!(proc_.current(), Step::Op(Op::Write(..)))
}

/// Runs the merge attack over **all** pairs, asserting the algorithm
/// resists (Lemma 2's condition holds for every pair).
///
/// # Errors
///
/// Returns the first pair for which an attack witness was constructed, or
/// any mechanical error.
pub fn assert_resists_merge<A: DetectionAlgorithm>(alg: &A) -> Result<(), MergeFailure> {
    for i in 0..alg.n() as u32 {
        for j in (i + 1)..alg.n() as u32 {
            match merge_attack(alg, ProcessId::new(i), ProcessId::new(j)) {
                Ok(None) => {}
                Ok(Some(witness)) => return Err(MergeFailure::Witness(Box::new(witness))),
                Err(e) => return Err(MergeFailure::Error(e)),
            }
        }
    }
    Ok(())
}

/// A merge-attack result against an algorithm expected to resist.
#[derive(Debug)]
pub enum MergeFailure {
    /// A two-winner witness was constructed.
    Witness(Box<MergeWitness>),
    /// A mechanical error occurred.
    Error(MergeError),
}

impl fmt::Display for MergeFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeFailure::Witness(w) => write!(f, "{w}"),
            MergeFailure::Error(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MergeFailure {}

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_mutex::{BrokenDetector, LamportFast, MutexDetector, Splitter};

    #[test]
    fn splitter_resists_the_attack() {
        let alg = Splitter::new(4);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                let p1 = solo_profile(&alg, ProcessId::new(i)).unwrap();
                let p2 = solo_profile(&alg, ProcessId::new(j)).unwrap();
                assert!(lemma2_condition(&p1, &p2), "pair ({i}, {j})");
                assert!(merge_attack(&alg, ProcessId::new(i), ProcessId::new(j))
                    .unwrap()
                    .is_none());
            }
        }
    }

    #[test]
    fn lamport_detector_resists_the_attack() {
        let alg = MutexDetector::new(LamportFast::new(3));
        for i in 0..3u32 {
            for j in (i + 1)..3 {
                assert!(merge_attack(&alg, ProcessId::new(i), ProcessId::new(j))
                    .unwrap()
                    .is_none());
            }
        }
    }

    #[test]
    fn broken_detector_is_defeated() {
        let alg = BrokenDetector::new(2);
        let witness = merge_attack(&alg, ProcessId::new(0), ProcessId::new(1))
            .unwrap()
            .expect("attack must succeed");
        assert_eq!(witness.pids, (ProcessId::new(0), ProcessId::new(1)));
        let rendered = witness.to_string();
        assert!(rendered.contains("both output 1"));
    }

    #[test]
    fn solo_profiles_capture_reads_and_writes() {
        let alg = Splitter::new(2);
        let p = solo_profile(&alg, ProcessId::new(1)).unwrap();
        // Writes: x chunk, then y.
        assert_eq!(p.writes.len(), 2);
        assert_eq!(p.output, Some(Value::ONE));
        // Reads: y and the x chunk.
        assert_eq!(p.reads.len(), 2);
    }

    #[test]
    fn single_process_detector_has_no_pairs_to_attack() {
        // n = 1: the all-pairs sweep is vacuous and must succeed without
        // ever extracting a profile.
        assert_resists_merge(&Splitter::new(1)).unwrap();
    }

    #[test]
    fn lemma2_condition_on_empty_profiles_fails_vacuously() {
        // Two processes that write nothing cannot satisfy the lemma's
        // premise — there is no index m at all — which is exactly the
        // degenerate case the merge construction then defeats (both solo
        // runs are trivially mergeable). The condition must come back
        // `false`, not loop or panic.
        let empty = SoloProfile {
            writes: Vec::new(),
            reads: BTreeSet::new(),
            output: Some(Value::ONE),
        };
        assert!(!lemma2_condition(&empty, &empty));
        // One-sided emptiness: a lone unread write still fails the
        // condition, an unread-but-present write set crosses only when
        // the other side reads it.
        let writer = SoloProfile {
            writes: vec![(RegisterId::new(0), Value::ONE)],
            reads: BTreeSet::new(),
            output: Some(Value::ONE),
        };
        assert!(!lemma2_condition(&writer, &empty));
        let reader = SoloProfile {
            writes: Vec::new(),
            reads: [RegisterId::new(0)].into_iter().collect(),
            output: Some(Value::ONE),
        };
        assert!(lemma2_condition(&writer, &reader));
        assert!(lemma2_condition(&reader, &writer));
    }

    #[test]
    fn non_register_operations_are_rejected_not_merged() {
        // The Lemma 2 machinery is defined for the atomic-register model
        // only; a detector built from a test-and-set lock must be turned
        // away at profile extraction, not silently mis-profiled.
        let alg = MutexDetector::new(cfc_mutex::TasSpin::new(2));
        let err = solo_profile(&alg, ProcessId::new(0)).unwrap_err();
        assert!(matches!(err, MergeError::UnsupportedOp(_)), "{err}");
        let err = merge_attack(&alg, ProcessId::new(0), ProcessId::new(1)).unwrap_err();
        assert!(err.to_string().contains("atomic registers only"));
    }
}
