//! Solo-execution control automata: static analysis of reduction hooks.
//!
//! The paper's central object is the *contention-free* execution — a
//! process running solo, with no interference. This module finally
//! materializes it: each process is stepped exhaustively over a *havoc*
//! memory ([`cfc_core::op_result_domain`]) in which every read may
//! return any value its register's layout width admits. The resulting
//! branching structure is the process's **control automaton**: one
//! location per distinguishable control point, each labeled with the
//! exact read/write [`Footprint`] of its current step.
//!
//! The tree is finitized by the [`Process::location`] hook: states
//! reporting the same location key are merged into one automaton
//! location (bakery projects its unbounded ticket values away here —
//! the same role the liveness engine's `StateNormalizer` plays for
//! state exploration, played instead at the control level so the
//! automaton stays consumable by partial-order reduction, which is
//! force-disabled under a normalizer). States without a location key
//! are keyed on their full value via `Eq`/`Hash`, which is always
//! sound and stays finite for processes that retain no wide data.
//!
//! Soundness of the construction: any run of the process embedded in an
//! arbitrary *concurrent* execution projects, step by step, to a path
//! of the automaton — every result a real memory can return is in the
//! havoc domain of the step's operation. Two analyses ride on that:
//!
//! * **The hook lint** ([`lint_model`]): for every location, the union
//!   of footprints reachable from it (the *future-access* fixpoint)
//!   must be contained in the hand-written [`Process::may_access`]
//!   over-approximation at that location, and [`Process::fingerprint`]
//!   must be injective across distinct locations. An unsound
//!   `may_access` hook would silently corrupt every reduced verdict;
//!   the lint catches it statically, before any state is explored.
//! * **Sharpened ample sets** ([`FutureIndex`], consumed by the engine
//!   under [`MayAccessMode::Automaton`]): the per-location
//!   future-access sets are *location-sensitive* where the hand-written
//!   hooks are whole-protocol-conservative (bakery's per-index waits,
//!   the splitter scan suffixes), so partial-order reduction finds
//!   independence the declared sets cannot express. Any lookup miss
//!   falls back to the declared hook, so the mode is never less sound —
//!   and with a clean lint, never less sharp — than
//!   [`MayAccessMode::Declared`].

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

use cfc_core::{op_result_domain, Footprint, Layout, OpResult, Process, RegisterSet, Step};

use crate::telemetry::{self, Phase, Sample};

/// Which future-access over-approximation ample-set selection consults.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum MayAccessMode {
    /// The hand-written [`Process::may_access`] hooks (the default, and
    /// the differential oracle for the automaton mode).
    #[default]
    Declared,
    /// Per-location future-access sets from the solo control automaton,
    /// extracted once per traversal; any state the automaton cannot
    /// resolve falls back to the declared hook.
    Automaton,
    /// Dynamic partial-order reduction: the automaton's future sets
    /// split into read and write components (independence instead of
    /// mere overlap against the candidate's footprint), plus sleep sets
    /// over the conflicts actually *observed* on explored paths (safety
    /// DFS only; see `cfc-verify::dynamic`). Falls back exactly like
    /// [`MayAccessMode::Automaton`] on any lookup miss.
    Dynamic,
}

/// Hard cap on automaton locations per process: a location hook that
/// fails to project wide data away diverges toward the full havoc tree,
/// and the analysis must refuse rather than enumerate it.
pub const MAX_LOCATIONS: usize = 1 << 16;

/// Why an automaton could not be extracted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExtractError {
    /// A step's havoc result domain exceeds [`cfc_core::HAVOC_WIDTH_CAP`]
    /// bits at the given location.
    DomainTooWide {
        /// The automaton location whose step is too wide to enumerate.
        location: u32,
    },
    /// The extraction exceeded [`MAX_LOCATIONS`] distinct locations.
    TooManyLocations,
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::DomainTooWide { location } => write!(
                f,
                "havoc result domain at location {location} is too wide to enumerate \
                 (> 2^{} branches)",
                cfc_core::HAVOC_WIDTH_CAP
            ),
            ExtractError::TooManyLocations => write!(
                f,
                "more than {MAX_LOCATIONS} distinct locations; the location hook \
                 does not project unbounded data away"
            ),
        }
    }
}

impl std::error::Error for ExtractError {}

/// The key a local state is merged under: the [`Process::location`]
/// projection when the process provides one, the full state otherwise.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum LocKey<P> {
    Loc(u64),
    State(P),
}

fn key_of<P: Process + Clone>(state: &P) -> LocKey<P> {
    match state.location() {
        Some(l) => LocKey::Loc(l),
        None => LocKey::State(state.clone()),
    }
}

/// One control location: a representative local state, its current-step
/// footprint, its successor locations, and the future-access fixpoint.
#[derive(Clone, Debug, PartialEq)]
struct Location<P> {
    representative: P,
    footprint: Footprint,
    successors: Vec<u32>,
    future: RegisterSet,
    /// The same fixpoint with the read/write split retained:
    /// `future_rw.reads ∪ future_rw.writes == future`. Dynamic mode
    /// tests *independence* against this instead of mere overlap with
    /// the union — a candidate whose write set misses every future
    /// write and whose reads miss every future write stays ample even
    /// when both sides read a common register.
    future_rw: Footprint,
    terminal: bool,
}

/// A per-process control automaton over havoc memory.
///
/// Locations are numbered in discovery order (breadth-first over an
/// insertion-ordered worklist, successors in havoc-domain order), so
/// extraction is fully deterministic — no `HashMap` iteration order
/// leaks into ids, successor lists, or findings.
#[derive(Clone, Debug)]
pub struct ControlAutomaton<P> {
    locations: Vec<Location<P>>,
    keys: HashMap<LocKey<P>, u32>,
    /// Locations reached by a state whose current-step footprint
    /// disagrees with the location's — a broken [`Process::location`]
    /// congruence contract, surfaced by the lint.
    incongruent: Vec<(u32, Footprint)>,
}

/// Two automata are equal when their location tables agree — ids,
/// representatives, footprints, successor lists, future sets, and
/// congruence findings all match (the key map is derived data).
impl<P: PartialEq> PartialEq for ControlAutomaton<P> {
    fn eq(&self, other: &Self) -> bool {
        self.locations == other.locations && self.incongruent == other.incongruent
    }
}

impl<P: Process + Clone + Eq + Hash> ControlAutomaton<P> {
    /// Extracts the automaton of the process rooted at `p0`.
    pub fn extract(layout: &Layout, p0: &P) -> Result<Self, ExtractError> {
        let mut auto = ControlAutomaton {
            locations: Vec::new(),
            keys: HashMap::new(),
            incongruent: Vec::new(),
        };
        auto.intern(layout, p0.clone())?;
        let mut i = 0;
        while i < auto.locations.len() {
            let rep = auto.locations[i].representative.clone();
            let results = match rep.current() {
                Step::Halt => {
                    auto.locations[i].terminal = true;
                    i += 1;
                    continue;
                }
                Step::Internal => vec![OpResult::None],
                Step::Op(op) => op_result_domain(&op, layout)
                    .ok_or(ExtractError::DomainTooWide { location: i as u32 })?,
            };
            for result in results {
                let mut succ = rep.clone();
                succ.advance(result);
                let id = auto.intern(layout, succ)?;
                if !auto.locations[i].successors.contains(&id) {
                    auto.locations[i].successors.push(id);
                }
            }
            i += 1;
        }
        auto.compute_future();
        Ok(auto)
    }

    fn intern(&mut self, layout: &Layout, state: P) -> Result<u32, ExtractError> {
        let fp = Footprint::of_step(&state.current(), layout);
        match self.keys.entry(key_of(&state)) {
            Entry::Occupied(e) => {
                let id = *e.get();
                if fp != self.locations[id as usize].footprint
                    && !self.incongruent.iter().any(|(l, f)| *l == id && *f == fp)
                {
                    self.incongruent.push((id, fp));
                }
                Ok(id)
            }
            Entry::Vacant(e) => {
                if self.locations.len() >= MAX_LOCATIONS {
                    return Err(ExtractError::TooManyLocations);
                }
                let id = self.locations.len() as u32;
                e.insert(id);
                self.locations.push(Location {
                    representative: state,
                    footprint: fp,
                    successors: Vec::new(),
                    future: RegisterSet::new(),
                    future_rw: Footprint::default(),
                    terminal: false,
                });
                Ok(id)
            }
        }
    }

    /// The future-access fixpoint: `future(l) = fp(l) ∪ ⋃ future(succ)`,
    /// iterated to stability (spin self-loops contribute nothing new, so
    /// cycles converge). The read/write split is the same fixpoint run
    /// componentwise; the union set is derived from it afterwards, so
    /// the two views can never disagree.
    fn compute_future(&mut self) {
        for loc in &mut self.locations {
            loc.future_rw = loc.footprint.clone();
        }
        let mut changed = true;
        while changed {
            changed = false;
            // Reverse sweep: successors mostly have larger ids, so one
            // pass usually reaches the fixpoint on acyclic regions.
            for i in (0..self.locations.len()).rev() {
                let mut acc = self.locations[i].future_rw.clone();
                for s in self.locations[i].successors.clone() {
                    if s as usize != i {
                        acc.reads.union_with(&self.locations[s as usize].future_rw.reads);
                        acc.writes.union_with(&self.locations[s as usize].future_rw.writes);
                    }
                }
                if acc != self.locations[i].future_rw {
                    self.locations[i].future_rw = acc;
                    changed = true;
                }
            }
        }
        for loc in &mut self.locations {
            loc.future.union_with(&loc.future_rw.reads);
            loc.future.union_with(&loc.future_rw.writes);
        }
    }

    /// The number of locations.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// Whether the automaton has no locations (never true after a
    /// successful extraction — the root always interns).
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// The automaton location a local state resolves to, if any.
    pub fn location_of(&self, state: &P) -> Option<u32> {
        self.keys.get(&key_of(state)).copied()
    }

    /// The future-access set of a local state: every register any
    /// continuation of the state (solo or embedded in a concurrent run)
    /// can read or write.
    pub fn future_of(&self, state: &P) -> Option<&RegisterSet> {
        self.location_of(state).map(|id| &self.locations[id as usize].future)
    }

    /// The current-step footprint at a location.
    pub fn footprint(&self, id: u32) -> &Footprint {
        &self.locations[id as usize].footprint
    }

    /// The future-access set at a location.
    pub fn future(&self, id: u32) -> &RegisterSet {
        &self.locations[id as usize].future
    }

    /// The future-access fixpoint at a location with its read/write
    /// split retained (`reads ∪ writes` equals [`Self::future`]).
    pub fn future_split(&self, id: u32) -> &Footprint {
        &self.locations[id as usize].future_rw
    }

    /// The split future-access set of a local state (the split analogue
    /// of [`Self::future_of`]).
    pub fn future_split_of(&self, state: &P) -> Option<&Footprint> {
        self.location_of(state)
            .map(|id| &self.locations[id as usize].future_rw)
    }

    /// The representative local state of a location.
    pub fn representative(&self, id: u32) -> &P {
        &self.locations[id as usize].representative
    }
}

/// The kind of a lint finding, in decreasing severity order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FindingKind {
    /// The declared `may_access` set at a location does not contain the
    /// location's future-access fixpoint — the hook under-approximates,
    /// and every reduced verdict that trusted it is suspect.
    FutureNotCovered,
    /// Two states merged into one location disagree on their
    /// current-step footprint — the `location` hook projects away data
    /// that changes which registers are accessed.
    IncongruentLocation,
    /// Two distinct locations report the same `fingerprint` — the
    /// symmetry quotient may merge orbits of genuinely distinct states.
    FingerprintCollision,
    /// The automaton could not be extracted (domain too wide, or the
    /// location hook fails to finitize); nothing is certified.
    Unanalyzable,
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FindingKind::FutureNotCovered => "future-not-covered",
            FindingKind::IncongruentLocation => "incongruent-location",
            FindingKind::FingerprintCollision => "fingerprint-collision",
            FindingKind::Unanalyzable => "unanalyzable",
        };
        f.write_str(s)
    }
}

/// One machine-readable lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Index of the process (in the linted process vector).
    pub process: usize,
    /// The automaton location the finding is anchored at.
    pub location: u32,
    /// What went wrong.
    pub kind: FindingKind,
    /// Human-readable specifics (missing registers, colliding ids, …).
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "process {} location {}: {}: {}",
            self.process, self.location, self.kind, self.detail
        )
    }
}

/// The result of linting one model's processes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LintReport {
    /// All findings, sorted by (process, location, kind).
    pub findings: Vec<Finding>,
    /// How many processes were analyzed.
    pub processes: usize,
    /// Total automaton locations across all processes.
    pub locations: usize,
    /// Wall-clock time of the lint, in nanoseconds (telemetry clock).
    pub wall_ns: u64,
}

impl LintReport {
    /// Did every check pass?
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Lints the reduction hooks of a model's initial processes: extracts
/// each process's control automaton and checks (a) the declared
/// [`Process::may_access`] set at every location contains the location's
/// future-access fixpoint, (b) merged states agree on their footprints
/// (the [`Process::location`] congruence contract), and (c)
/// [`Process::fingerprint`] is injective across distinct locations.
pub fn lint_model<P>(layout: &Layout, procs: &[P]) -> LintReport
where
    P: Process + Clone + Eq + Hash,
{
    let tel = telemetry::runtime(false);
    let span = tel.span(Phase::Lint);
    let mut report = LintReport {
        processes: procs.len(),
        ..LintReport::default()
    };
    for (pi, p) in procs.iter().enumerate() {
        let auto = match ControlAutomaton::extract(layout, p) {
            Ok(auto) => auto,
            Err(e) => {
                let location = match e {
                    ExtractError::DomainTooWide { location } => location,
                    ExtractError::TooManyLocations => 0,
                };
                report.findings.push(Finding {
                    process: pi,
                    location,
                    kind: FindingKind::Unanalyzable,
                    detail: e.to_string(),
                });
                continue;
            }
        };
        report.locations += auto.len();
        for (loc, fp) in &auto.incongruent {
            report.findings.push(Finding {
                process: pi,
                location: *loc,
                kind: FindingKind::IncongruentLocation,
                detail: format!(
                    "states merged into one location disagree on the current-step \
                     footprint: representative {:?}, offender {:?}",
                    auto.footprint(*loc),
                    fp
                ),
            });
        }
        let mut declared = RegisterSet::new();
        let mut fingerprints: HashMap<u64, u32> = HashMap::new();
        for id in 0..auto.len() as u32 {
            let rep = auto.representative(id);
            declared.clear();
            if rep.may_access(&mut declared) && !auto.future(id).is_subset(&declared) {
                let missing: Vec<String> = auto
                    .future(id)
                    .iter()
                    .filter(|r| !declared.contains(*r))
                    .map(|r| r.to_string())
                    .collect();
                report.findings.push(Finding {
                    process: pi,
                    location: id,
                    kind: FindingKind::FutureNotCovered,
                    detail: format!(
                        "declared may_access misses future accesses: {}",
                        missing.join(", ")
                    ),
                });
            }
            if let Some(fp) = rep.fingerprint() {
                match fingerprints.entry(fp) {
                    Entry::Occupied(e) => {
                        report.findings.push(Finding {
                            process: pi,
                            location: id,
                            kind: FindingKind::FingerprintCollision,
                            detail: format!(
                                "fingerprint {fp:#x} collides with location {}",
                                e.get()
                            ),
                        });
                    }
                    Entry::Vacant(e) => {
                        e.insert(id);
                    }
                }
            }
        }
    }
    report
        .findings
        .sort_by_key(|f| (f.process, f.location, f.kind));
    report.wall_ns = span.finish(Sample {
        states: report.locations as u64,
        transitions: report.findings.len() as u64,
        ..Sample::default()
    });
    report
}

/// The merged future-access index of one system's processes, consulted
/// by ample-set selection under [`MayAccessMode::Automaton`].
///
/// Location-keyed states share one entry per key; when distinct
/// processes map different futures to one key, the sets are unioned —
/// still a sound over-approximation for every state that resolves to
/// the key. States without a location key are indexed by value. A
/// process whose automaton cannot be extracted is simply skipped: its
/// states miss the index and the engine falls back to the declared
/// hook.
#[derive(Clone, Debug)]
pub struct FutureIndex<P> {
    by_loc: HashMap<u64, FutureAccess>,
    by_state: HashMap<P, FutureAccess>,
}

/// One index entry: the union future-access set (consulted by
/// [`MayAccessMode::Automaton`]) and the same fixpoint with the
/// read/write split retained (consulted by [`MayAccessMode::Dynamic`]).
/// Invariant: `split.reads ∪ split.writes == union`.
#[derive(Clone, Debug, Default)]
struct FutureAccess {
    union: RegisterSet,
    split: Footprint,
}

impl FutureAccess {
    fn merge(&mut self, union: &RegisterSet, split: &Footprint) {
        self.union.union_with(union);
        self.split.reads.union_with(&split.reads);
        self.split.writes.union_with(&split.writes);
    }
}

impl<P: Process + Clone + Eq + Hash> FutureIndex<P> {
    /// Builds the index over a system's initial processes.
    pub fn build(layout: &Layout, procs: &[P]) -> FutureIndex<P> {
        let mut idx = FutureIndex {
            by_loc: HashMap::new(),
            by_state: HashMap::new(),
        };
        for p in procs {
            // Identical processes (naming models share one program)
            // yield identical automata; one extraction suffices.
            if idx.future_of(p).is_some() {
                continue;
            }
            let Ok(auto) = ControlAutomaton::extract(layout, p) else {
                continue;
            };
            for loc in &auto.locations {
                let entry = match loc.representative.location() {
                    Some(l) => idx.by_loc.entry(l).or_insert_with(FutureAccess::default),
                    None => idx
                        .by_state
                        .entry(loc.representative.clone())
                        .or_insert_with(FutureAccess::default),
                };
                entry.merge(&loc.future, &loc.future_rw);
            }
        }
        idx
    }

    /// Number of indexed entries (location keys plus by-value states) —
    /// the work a telemetry `extract-automaton` span attributes.
    pub fn len(&self) -> usize {
        self.by_loc.len() + self.by_state.len()
    }

    /// True when no automaton could be extracted.
    pub fn is_empty(&self) -> bool {
        self.by_loc.is_empty() && self.by_state.is_empty()
    }

    /// The future-access set of a local state, or `None` when the state
    /// is not resolved by any extracted automaton (the caller must fall
    /// back to the declared hook).
    pub fn future_of(&self, state: &P) -> Option<&RegisterSet> {
        self.entry_of(state).map(|e| &e.union)
    }

    /// The split future-access set of a local state (same resolution and
    /// fallback contract as [`Self::future_of`]).
    pub fn future_split_of(&self, state: &P) -> Option<&Footprint> {
        self.entry_of(state).map(|e| &e.split)
    }

    fn entry_of(&self, state: &P) -> Option<&FutureAccess> {
        match state.location() {
            Some(l) => self.by_loc.get(&l),
            None => self.by_state.get(state),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_core::{Op, RegisterId, Value};

    /// Reads a 1-bit flag; if set, writes the other register, else
    /// halts. Exercises branching, footprints, and the future fixpoint.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct Brancher {
        flag: RegisterId,
        out: RegisterId,
        pc: u8,
        honest: bool,
    }

    impl Process for Brancher {
        fn current(&self) -> Step {
            match self.pc {
                0 => Step::Op(Op::Read(self.flag)),
                1 => Step::Op(Op::Write(self.out, Value::ONE)),
                _ => Step::Halt,
            }
        }
        fn advance(&mut self, result: OpResult) {
            self.pc = if self.pc == 0 {
                if result.bit() {
                    1
                } else {
                    2
                }
            } else {
                2
            };
        }
        fn location(&self) -> Option<u64> {
            Some(u64::from(self.pc))
        }
        fn may_access(&self, out: &mut RegisterSet) -> bool {
            if self.honest {
                match self.pc {
                    0 => {
                        out.insert(self.flag);
                        out.insert(self.out);
                    }
                    1 => out.insert(self.out),
                    _ => {}
                }
            } else if self.pc == 0 {
                // Planted under-report: forgets the conditional write.
                out.insert(self.flag);
            }
            true
        }
    }

    fn setup() -> (Layout, Brancher) {
        let mut layout = Layout::new();
        let flag = layout.bit("flag", false);
        let out = layout.register("out", 2, 0);
        (
            layout,
            Brancher {
                flag,
                out,
                pc: 0,
                honest: true,
            },
        )
    }

    #[test]
    fn extraction_covers_both_branches() {
        let (layout, p) = setup();
        let auto = ControlAutomaton::extract(&layout, &p).unwrap();
        assert_eq!(auto.len(), 3);
        let future = auto.future_of(&p).unwrap();
        assert!(future.contains(p.flag) && future.contains(p.out));
        let write_state = Brancher { pc: 1, ..p.clone() };
        let at_write = auto.future_of(&write_state).unwrap();
        assert!(!at_write.contains(p.flag) && at_write.contains(p.out));
        let done = Brancher { pc: 2, ..p };
        assert!(auto.future_of(&done).unwrap().is_empty());
    }

    #[test]
    fn honest_hook_lints_clean_dishonest_is_flagged() {
        let (layout, p) = setup();
        let clean = lint_model(&layout, std::slice::from_ref(&p));
        assert!(clean.is_clean(), "unexpected findings: {:?}", clean.findings);
        assert_eq!(clean.locations, 3);
        let dirty = lint_model(
            &layout,
            &[Brancher {
                honest: false,
                ..p
            }],
        );
        // The under-report breaks coverage at the read location (misses
        // the conditional write) and at the write location itself.
        assert_eq!(dirty.findings.len(), 2);
        assert!(dirty
            .findings
            .iter()
            .all(|f| f.kind == FindingKind::FutureNotCovered));
        assert!(dirty.findings[0].detail.contains("r1"));
    }

    #[test]
    fn future_index_unions_and_misses_fall_through() {
        let (layout, p) = setup();
        let idx = FutureIndex::build(&layout, std::slice::from_ref(&p));
        assert!(idx.future_of(&p).unwrap().contains(p.out));
        let foreign = Brancher { pc: 9, ..p };
        assert!(idx.future_of(&foreign).is_none());
        assert!(idx.future_split_of(&foreign).is_none());
    }

    #[test]
    fn split_future_separates_reads_from_writes() {
        let (layout, p) = setup();
        let auto = ControlAutomaton::extract(&layout, &p).unwrap();
        // At the read location, the future reads are {flag} and the
        // future writes are {out}; the union view collapses them.
        let split = auto.future_split_of(&p).unwrap();
        assert!(split.reads.contains(p.flag) && !split.reads.contains(p.out));
        assert!(split.writes.contains(p.out) && !split.writes.contains(p.flag));
        let mut union = split.reads.clone();
        union.union_with(&split.writes);
        assert_eq!(&union, auto.future_of(&p).unwrap());
        // At the write location only the write remains.
        let write_state = Brancher { pc: 1, ..p.clone() };
        let at_write = auto.future_split_of(&write_state).unwrap();
        assert!(at_write.reads.is_empty() && at_write.writes.contains(p.out));
        // The index agrees with the automaton on both views.
        let idx = FutureIndex::build(&layout, std::slice::from_ref(&p));
        assert_eq!(idx.future_split_of(&p).unwrap(), split);
        assert_eq!(idx.future_of(&p).unwrap(), auto.future_of(&p).unwrap());
    }

    #[test]
    fn extraction_is_deterministic() {
        let (layout, p) = setup();
        let a = ControlAutomaton::extract(&layout, &p).unwrap();
        let b = ControlAutomaton::extract(&layout, &p).unwrap();
        assert_eq!(a, b);
    }
}
