//! Ready-made exhaustive checks for the paper's three problem families.

use std::hash::Hash;

use cfc_core::{Process, Section, Status, Value};
use cfc_mutex::{DetectionAlgorithm, MutexAlgorithm};
use cfc_naming::NamingAlgorithm;

use crate::explore::{explore_sym, ExploreConfig, ExploreError, ExploreStats, StateView};

/// Exhaustively verifies mutual exclusion: across **every** interleaving
/// of `trips`-trip clients, no two processes are simultaneously in their
/// critical sections, and every maximal run ends with all clients done.
///
/// # Errors
///
/// Returns a violation with its schedule, or budget exhaustion for
/// oversized systems.
pub fn check_mutex_safety<A>(alg: &A, trips: u32, config: ExploreConfig) -> Result<ExploreStats, ExploreError>
where
    A: MutexAlgorithm,
    A::Lock: Clone + Eq + Hash,
{
    let memory = alg.memory().map_err(cfc_core::ExecError::from).map_err(|e| {
        ExploreError::Memory(match e {
            cfc_core::ExecError::Memory(m) => m,
            _ => unreachable!(),
        })
    })?;
    // One internal step inside the critical section makes occupancy an
    // observable state; with zero dwell the monitor could never witness
    // two simultaneous occupants.
    let clients: Vec<_> = (0..alg.n() as u32)
        .map(|i| alg.client_with_cs(cfc_core::ProcessId::new(i), trips, 1))
        .collect();
    explore_sym(
        memory,
        clients,
        &alg.symmetry(),
        config,
        |view| {
            let in_cs = view
                .procs
                .iter()
                .filter(|p| p.section() == Some(Section::Critical))
                .count();
            if in_cs > 1 {
                Err(format!("{in_cs} processes in the critical section"))
            } else {
                Ok(())
            }
        },
        |view| {
            // With a fair-terminating system, every quiescent state has
            // all clients done (no one stuck mid-entry).
            if view.status.iter().all(|s| *s == Status::Done) {
                Ok(())
            } else {
                Err("quiescent state with a stuck client".to_string())
            }
        },
    )
}

/// Exhaustively verifies contention-detection safety: in every state of
/// every interleaving, at most one process has output `1`; and in every
/// terminal state at least one process decided (weak progress).
///
/// # Errors
///
/// Returns a violation with its schedule, or budget exhaustion.
pub fn check_detection_safety<A>(alg: &A, config: ExploreConfig) -> Result<ExploreStats, ExploreError>
where
    A: DetectionAlgorithm,
    A::Proc: Clone + Eq + Hash,
{
    let memory = memory_of(alg.memory())?;
    let procs: Vec<_> = (0..alg.n() as u32)
        .map(|i| alg.process(cfc_core::ProcessId::new(i)))
        .collect();
    // Detection processes carry their pid and write it into the splitter
    // registers, so no two are interchangeable: the trivial group.
    explore_sym(
        memory,
        procs,
        &cfc_core::SymmetryGroup::trivial(alg.n()),
        config,
        |view| {
            let winners = view.count_output(Value::ONE);
            if winners > 1 {
                Err(format!("{winners} processes output 1"))
            } else {
                Ok(())
            }
        },
        |_| Ok(()),
    )
}

/// Exhaustively verifies naming uniqueness and wait-freedom under up to
/// `max_crashes` adversarial crashes: in every terminal state, decided
/// names are pairwise distinct and within `1..=n`, and every non-crashed
/// process decided.
///
/// # Errors
///
/// Returns a violation with its schedule, or budget exhaustion.
pub fn check_naming_uniqueness<A>(
    alg: &A,
    max_crashes: u32,
    config: ExploreConfig,
) -> Result<ExploreStats, ExploreError>
where
    A: NamingAlgorithm,
    A::Proc: Clone + Eq + Hash,
{
    let memory = memory_of(alg.memory())?;
    let n = alg.n();
    let procs = alg.processes();
    explore_sym(
        memory,
        procs,
        &alg.symmetry(),
        ExploreConfig {
            max_crashes,
            ..config
        },
        move |view| check_names_distinct(view, n),
        move |view| {
            check_names_distinct(view, n)?;
            for (i, status) in view.status.iter().enumerate() {
                if *status == Status::Done && view.procs[i].output().is_none() {
                    return Err(format!("process {i} halted without a name"));
                }
                if *status != Status::Crashed && view.procs[i].output().is_none() {
                    return Err(format!("process {i} neither crashed nor decided"));
                }
            }
            Ok(())
        },
    )
}

/// Exhaustively verifies deadlock freedom of a mutual-exclusion
/// algorithm: from every reachable state of `trips`-trip clients, some
/// continuation reaches a state where every client has finished.
///
/// Runs on the reduced state graph when `config` asks for it: symmetry
/// reduction uses the algorithm's declared [`MutexAlgorithm::symmetry`]
/// group, partial-order reduction the clients' footprints — see
/// [`crate::explore::check_progress_sym`] for the soundness argument and
/// crash-budget semantics (crashed clients count as quiesced).
///
/// # Errors
///
/// Returns a violation with a replayable schedule to a stuck state, or
/// budget exhaustion.
pub fn check_mutex_progress<A>(
    alg: &A,
    trips: u32,
    config: ExploreConfig,
) -> Result<crate::explore::ProgressStats, ExploreError>
where
    A: MutexAlgorithm,
    A::Lock: Clone + Eq + std::hash::Hash,
{
    let memory = memory_of(alg.memory())?;
    let clients: Vec<_> = (0..alg.n() as u32)
        .map(|i| alg.client(cfc_core::ProcessId::new(i), trips))
        .collect();
    crate::explore::check_progress_sym(memory, clients, &alg.symmetry(), config)
}

/// Exhaustively verifies progress of a naming algorithm: from every
/// reachable state under up to `max_crashes` adversarial crashes, some
/// continuation quiesces **all** walkers — every process either decides
/// a name and halts or has crashed.
///
/// This is weaker than the wait-freedom the algorithms guarantee (which
/// [`check_naming_uniqueness`] validates terminally) but it is checked
/// from *every* reachable state, so it rules out any reachable wedge.
/// Naming processes are structurally identical, so the algorithm's full
/// [`NamingAlgorithm::symmetry`] group applies; with
/// `ExploreConfig::reduced()` the canonical quotient reaches process
/// counts the un-reduced graph cannot.
///
/// # Errors
///
/// Returns a violation with a replayable schedule to a stuck state, or
/// budget exhaustion.
pub fn check_naming_progress<A>(
    alg: &A,
    max_crashes: u32,
    config: ExploreConfig,
) -> Result<crate::explore::ProgressStats, ExploreError>
where
    A: NamingAlgorithm,
    A::Proc: Clone + Eq + Hash,
{
    let memory = memory_of(alg.memory())?;
    crate::explore::check_progress_sym(
        memory,
        alg.processes(),
        &alg.symmetry(),
        ExploreConfig {
            max_crashes,
            ..config
        },
    )
}

/// Exhaustively verifies progress of a contention-detection algorithm:
/// from every reachable state, some continuation has every participant
/// decide and halt.
///
/// The splitter-based detectors satisfy this (every participant always
/// terminates); the Lemma 1 mutex-derived detector does **not** — its
/// losers may busy-wait forever, which is permitted by weak deadlock
/// freedom — so this check distinguishes the two families. Detection
/// processes carry their pid, so the trivial symmetry group applies and
/// only partial-order reduction can shrink the graph.
///
/// # Errors
///
/// Returns a violation with a replayable schedule to a stuck state, or
/// budget exhaustion.
pub fn check_detection_progress<A>(
    alg: &A,
    config: ExploreConfig,
) -> Result<crate::explore::ProgressStats, ExploreError>
where
    A: DetectionAlgorithm,
    A::Proc: Clone + Eq + Hash,
{
    let memory = memory_of(alg.memory())?;
    let procs: Vec<_> = (0..alg.n() as u32)
        .map(|i| alg.process(cfc_core::ProcessId::new(i)))
        .collect();
    crate::explore::check_progress_sym(
        memory,
        procs,
        &cfc_core::SymmetryGroup::trivial(alg.n()),
        config,
    )
}

fn check_names_distinct<P: Process>(view: &StateView<'_, P>, n: usize) -> Result<(), String> {
    let mut seen = std::collections::HashSet::new();
    for (i, p) in view.procs.iter().enumerate() {
        if let Some(name) = p.output() {
            let name = name.raw();
            if name == 0 || name > n as u64 {
                return Err(format!("process {i} decided out-of-range name {name}"));
            }
            if !seen.insert(name) {
                return Err(format!("duplicate name {name}"));
            }
        }
    }
    Ok(())
}

fn memory_of(
    r: Result<cfc_core::Memory, cfc_core::MemoryError>,
) -> Result<cfc_core::Memory, ExploreError> {
    r.map_err(ExploreError::Memory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_mutex::{
        BrokenDetector, ChunkedSplitter, LamportFast, PetersonTwo, Splitter, SplitterTree,
        Tournament,
    };
    use cfc_naming::{TafTree, TasReadSearch, TasScan, TasTarTree};

    #[test]
    fn peterson_two_is_safe_for_two_trips() {
        let stats = check_mutex_safety(&PetersonTwo::new(), 2, ExploreConfig::default()).unwrap();
        assert!(stats.states > 100);
        assert!(stats.terminals > 0);
    }

    #[test]
    fn lamport_two_processes_is_safe() {
        let stats =
            check_mutex_safety(&LamportFast::new(2), 1, ExploreConfig::default()).unwrap();
        assert!(stats.states > 50);
    }

    #[test]
    fn deadlock_freedom_verified_exhaustively() {
        // From every reachable state, the system can still quiesce:
        // deadlock freedom, checked over the full state graph.
        let stats =
            check_mutex_progress(&PetersonTwo::new(), 2, ExploreConfig::default()).unwrap();
        assert!(stats.terminals >= 1);
        check_mutex_progress(&LamportFast::new(2), 1, ExploreConfig::default()).unwrap();
        check_mutex_progress(&Tournament::new(4, 1), 1, ExploreConfig::default()).unwrap();
        check_mutex_progress(&cfc_mutex::Dijkstra::new(2), 1, ExploreConfig::default()).unwrap();
        check_mutex_progress(&cfc_mutex::Bakery::new(2), 1, ExploreConfig::default()).unwrap();
    }

    #[test]
    fn deadlock_freedom_verified_on_the_reduced_graph() {
        // The same checks on the reduced graph: partial-order reduction
        // must prune something for the tournament (disjoint subtrees
        // serialize) and the verdict must stay "deadlock-free".
        let red =
            check_mutex_progress(&Tournament::new(4, 1), 1, ExploreConfig::reduced()).unwrap();
        let base =
            check_mutex_progress(&Tournament::new(4, 1), 1, ExploreConfig::default()).unwrap();
        assert!(red.states <= base.states);
        assert!(red.states_pruned_por > 0, "{red:?}");
        check_mutex_progress(&cfc_mutex::Bakery::new(2), 1, ExploreConfig::reduced()).unwrap();
        check_mutex_progress(&cfc_mutex::Dijkstra::new(2), 1, ExploreConfig::reduced()).unwrap();
    }

    #[test]
    fn naming_progress_all_walkers_quiesce() {
        // From every reachable state (including mid-crash ones), some
        // continuation has every walker decide or crash.
        check_naming_progress(&TasScan::new(3), 1, ExploreConfig::default()).unwrap();
        let red = check_naming_progress(&TafTree::new(4).unwrap(), 0, ExploreConfig::reduced())
            .unwrap();
        assert!(red.orbits_merged > 0, "{red:?}");
        check_naming_progress(&TasReadSearch::new(3), 0, ExploreConfig::reduced()).unwrap();
        check_naming_progress(&TasTarTree::new(2).unwrap(), 1, ExploreConfig::reduced()).unwrap();
    }

    #[test]
    fn detection_progress_holds_for_splitters_not_for_lemma1() {
        check_detection_progress(&Splitter::new(3), ExploreConfig::default()).unwrap();
        check_detection_progress(&SplitterTree::new(3, 1), ExploreConfig::reduced()).unwrap();
        // The Lemma 1 mutex-derived detector only has *weak* deadlock
        // freedom: losers busy-wait forever once the winner claims, so a
        // reachable state with a spinning loser and a finished winner can
        // never fully quiesce — a genuine, expected progress violation.
        let detector = cfc_mutex::MutexDetector::new(PetersonTwo::new());
        let err = check_detection_progress(&detector, ExploreConfig::default()).unwrap_err();
        match err {
            ExploreError::Violation(v) => {
                assert!(v.message.contains("quiescence"), "{v}");
                assert!(!v.schedule.is_empty());
            }
            other => panic!("expected a progress violation, got {other:?}"),
        }
    }

    #[test]
    fn baseline_algorithms_are_safe_exhaustively() {
        check_mutex_safety(&cfc_mutex::Dijkstra::new(2), 1, ExploreConfig::default()).unwrap();
        check_mutex_safety(&cfc_mutex::Bakery::new(2), 1, ExploreConfig::default()).unwrap();
    }

    #[test]
    fn peterson_tournament_four_processes_is_safe() {
        let stats =
            check_mutex_safety(&Tournament::new(4, 1), 1, ExploreConfig::default()).unwrap();
        assert!(stats.states > 1000);
    }

    /// The paper's prose releases tree nodes "from the leaf to the root".
    /// For composed Peterson nodes that order is unsafe: after the leaf
    /// is freed, a successor acquires a still-held upper node, and the
    /// departing process's later release of that node wipes the
    /// successor's flag — admitting a third process to the critical
    /// section. The explorer finds the interleaving; our tournament
    /// therefore defaults to the safe root-to-leaf order.
    #[test]
    fn leaf_to_root_exit_order_is_unsafe() {
        use cfc_mutex::ExitOrder;
        let alg = Tournament::new(4, 1).with_exit_order(ExitOrder::LeafToRoot);
        let err = check_mutex_safety(&alg, 1, ExploreConfig::default()).unwrap_err();
        match err {
            ExploreError::Violation(v) => {
                assert!(v.message.contains("critical section"), "{v}");
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn splitter_detection_is_safe_for_three() {
        let stats =
            check_detection_safety(&Splitter::new(3), ExploreConfig::default()).unwrap();
        assert!(stats.states > 100);
    }

    #[test]
    fn splitter_tree_detection_is_safe() {
        check_detection_safety(&SplitterTree::new(3, 1), ExploreConfig::default()).unwrap();
        check_detection_safety(&SplitterTree::new(4, 1), ExploreConfig::default()).unwrap();
        check_detection_safety(&SplitterTree::new(4, 2), ExploreConfig::default()).unwrap();
    }

    /// The chunked splitter writes its id across several sub-atomic
    /// chunks. The explorer finds the three-process interleaving where a
    /// straggler's chunk write hands two leaders their own ids from
    /// different mixes of `x` — a genuine torn-write bug that the
    /// single-register splitter's atomicity rules out.
    #[test]
    fn chunked_splitter_is_unsafe_for_three() {
        let err = check_detection_safety(&ChunkedSplitter::new(3, 1), ExploreConfig::default())
            .unwrap_err();
        match err {
            ExploreError::Violation(v) => {
                assert!(v.message.contains("2 processes output 1"));
                assert!(v.schedule.len() >= 10);
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn broken_detector_is_caught() {
        let err =
            check_detection_safety(&BrokenDetector::new(2), ExploreConfig::default()).unwrap_err();
        match err {
            ExploreError::Violation(v) => assert!(v.message.contains("output 1")),
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn taf_tree_names_unique_under_crashes() {
        let stats = check_naming_uniqueness(
            &TafTree::new(4).unwrap(),
            2,
            ExploreConfig::default(),
        )
        .unwrap();
        assert!(stats.terminals > 0);
    }

    #[test]
    fn tas_scan_names_unique_under_crashes() {
        check_naming_uniqueness(&TasScan::new(3), 1, ExploreConfig::default()).unwrap();
    }

    #[test]
    fn tas_tar_tree_names_unique() {
        check_naming_uniqueness(&TasTarTree::new(4).unwrap(), 1, ExploreConfig::default())
            .unwrap();
    }

    #[test]
    fn tas_read_search_names_unique() {
        check_naming_uniqueness(&TasReadSearch::new(3), 1, ExploreConfig::default()).unwrap();
    }
}
