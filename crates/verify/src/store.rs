//! The packed, arena-interned state store behind every exhaustive
//! checker's visited set.
//!
//! The historical store kept each canonical state **twice** — once boxed
//! in the graph's `Vec<Node<P>>` and once cloned into a `HashMap` visited
//! key — at several hundred bytes per state. This module replaces both
//! with one copy of every canonical state, bit-packed at declared widths
//! (the paper's own packing discipline, applied to the verifier's
//! footprint; see [`cfc_core::LayoutCodec`]):
//!
//! * [`NodeCodec`] — a fixed-stride record codec for [`Node`]s: per-process
//!   statuses at 2 bits, the crash budget at its exact width, register
//!   values at their [`cfc_core::Layout`] widths, and process local states
//!   either through the [`cfc_core::Process::pack_state`] hooks (when every
//!   root process supports them) or as 32-bit slots into a side table of
//!   interned distinct local states;
//! * [`SegArena`] — an append-only segmented arena of those records, with
//!   a **spill tier**: once a configured resident-byte budget fills, cold
//!   (oldest, discovery-ordered) full segments move to one temp file and
//!   are read back on demand;
//! * [`NodeStore`] — the visited set / intern table: a digest index maps
//!   a 64-bit hash of the record bytes to record ids, so membership and
//!   interning cost one encode plus a short probe, and node ids decode
//!   transiently on expansion. The index is an open-addressed `u32`
//!   table by default ([`crate::index::OpenIndex`], ~4–6 B/state); the
//!   historical `HashMap` heads + intrusive `next` chain survive behind
//!   [`IndexMode::Chained`] as the differential oracle
//!   (`tests/index_equiv.rs`).
//!
//! Round-trip identity of the codec (checked by a construction-time probe
//! and debug assertions on early insertions) makes the encoding
//! injective, so byte-equality of records coincides with `Node` equality
//! and the packed store makes **exactly** the freshness and interning
//! decisions the boxed one would — search semantics are byte-identical;
//! only the bytes per state change. [`Backend::Boxed`] keeps the
//! historical representation alive for differential testing
//! (`tests/packed_equiv.rs`) and as a fallback surface.

use std::cell::RefCell;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::hash::{Hash, Hasher};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use cfc_core::{bits_for, Layout, LayoutCodec, Process, StateCodec, StateReader, StateWriter,
    Status, Value};

use crate::graph::Node;
use crate::index::OpenIndex;

/// Which representation a [`NodeStore`] uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum StoreMode {
    /// One bit-packed copy of every canonical state in a spillable arena
    /// (the default).
    #[default]
    Packed,
    /// The historical boxed representation: a `Vec<Node>` plus digest
    /// buckets of ids. Kept for differential testing and as an escape
    /// hatch; never spills.
    Boxed,
}

/// Which digest-index structure a packed [`NodeStore`] uses to map
/// record digests to arena ids (ignored in boxed mode, which keeps its
/// own buckets).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum IndexMode {
    /// A single open-addressed `u32` table with linear probing
    /// ([`crate::index::OpenIndex`], the default): ~4–6 B/state.
    #[default]
    Open,
    /// The historical `HashMap<u64, u32>` digest heads plus an intrusive
    /// `next` chain (~16–20 B/state). Kept as the differential oracle —
    /// worth running whenever the index itself is under suspicion, the
    /// same way [`StoreMode::Boxed`] cross-checks the codec.
    Chained,
}

/// The outcome of recording a state in the visited set
/// ([`NodeStore::visit`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum VisitOutcome {
    /// First visit of this (canonical) state.
    Fresh,
    /// Revisit by the same concrete state that first reached it.
    RevisitSame,
    /// Revisit by a *different* concrete state of the same orbit — a
    /// genuine symmetry merge. Only reported when first-visitor tracking
    /// is on; decided by comparing stored concrete identity, never hashes.
    RevisitMerged,
}

// ---------------------------------------------------------------------
// Record codec.
// ---------------------------------------------------------------------

/// How process local states are encoded.
enum ProcMode<P> {
    /// Every process packs itself via the [`Process::pack_state`] hooks at
    /// a fixed probed width; decoding unpacks onto a clone of the
    /// prototype (sound because the hooks pack all identity, see the
    /// trait contract).
    Hooks { proto: P, bits_per_proc: usize },
    /// Opaque local states interned into a side table; records hold
    /// 32-bit slots. The table grows with the number of *distinct* local
    /// states, not with the number of global states.
    Interned {
        table: Vec<P>,
        lookup: HashMap<P, u32>,
    },
}

/// A fixed-stride codec for whole [`Node`]s.
struct NodeCodec<P> {
    values: LayoutCodec,
    crash_bits: u32,
    n: usize,
    procs: ProcMode<P>,
    rec_bytes: usize,
}

fn status_tag(s: Status) -> u64 {
    match s {
        Status::Running => 0,
        Status::Done => 1,
        Status::Crashed => 2,
    }
}

fn tag_status(t: u64) -> Status {
    match t {
        0 => Status::Running,
        1 => Status::Done,
        _ => Status::Crashed,
    }
}

impl<P: Process + Clone + Eq + Hash> NodeCodec<P> {
    /// Derives the codec from the layout and the root node: the crash
    /// budget's width comes from the root (it only ever decreases), and a
    /// probe decides between hook-packed and interned process encoding.
    fn new(layout: &Layout, root: &Node<P>) -> Self {
        let values = LayoutCodec::new(layout);
        let crash_bits = bits_for(u64::from(root.crashes_left));
        let n = root.procs.len();
        let procs = match Self::probe_hooks(root) {
            Some((proto, bits_per_proc)) => ProcMode::Hooks {
                proto,
                bits_per_proc,
            },
            None => ProcMode::Interned {
                table: Vec::new(),
                lookup: HashMap::new(),
            },
        };
        let proc_bits = match &procs {
            ProcMode::Hooks { bits_per_proc, .. } => *bits_per_proc,
            ProcMode::Interned { .. } => 32,
        };
        let total_bits =
            2 * n + crash_bits as usize + values.encoded_bits() + proc_bits * n;
        NodeCodec {
            values,
            crash_bits,
            n,
            procs,
            rec_bytes: total_bits.div_ceil(8).max(1),
        }
    }

    /// Checks whether every root process packs itself at one fixed width
    /// *and* round-trips onto a clone of an arbitrary prototype; any
    /// failure selects the interned fallback.
    fn probe_hooks(root: &Node<P>) -> Option<(P, usize)> {
        let proto = root.procs.first()?.clone();
        let mut width = None;
        for p in &root.procs {
            let mut w = StateWriter::new();
            if !p.pack_state(&mut w) {
                return None;
            }
            match width {
                None => width = Some(w.bit_len()),
                Some(prev) if prev != w.bit_len() => return None,
                Some(_) => {}
            }
            let bytes = w.finish();
            let mut restored = proto.clone();
            let mut r = StateReader::new(&bytes);
            if !restored.unpack_state(&mut r) || restored != *p {
                return None;
            }
        }
        Some((proto, width?))
    }

    fn rec_bytes(&self) -> usize {
        self.rec_bytes
    }

    /// Encodes `node`, interning any process local states not seen before
    /// (hence `&mut`). Infallible: used on the insertion path.
    fn encode_mut(&mut self, node: &Node<P>, out: &mut Vec<u8>) {
        let mut w = StateWriter::new();
        self.encode_prefix(node, &mut w);
        match &mut self.procs {
            ProcMode::Hooks { .. } => {
                for p in &node.procs {
                    assert!(p.pack_state(&mut w), "pack_state regressed mid-run");
                }
            }
            ProcMode::Interned { table, lookup } => {
                for p in &node.procs {
                    let slot = *lookup.entry(p.clone()).or_insert_with(|| {
                        let id = u32::try_from(table.len())
                            .expect("more than u32::MAX distinct local states");
                        table.push(p.clone());
                        id
                    });
                    w.push_bits(u64::from(slot), 32);
                }
            }
        }
        Self::finish_into(w, self.rec_bytes, out);
    }

    /// Encodes `node` without interning: `None` when a local state is not
    /// in the table — which proves the node is absent from the store, so
    /// lookups can treat the failure as "not visited".
    fn try_encode(&self, node: &Node<P>, out: &mut Vec<u8>) -> bool {
        let mut w = StateWriter::new();
        self.encode_prefix(node, &mut w);
        match &self.procs {
            ProcMode::Hooks { .. } => {
                for p in &node.procs {
                    assert!(p.pack_state(&mut w), "pack_state regressed mid-run");
                }
            }
            ProcMode::Interned { lookup, .. } => {
                for p in &node.procs {
                    match lookup.get(p) {
                        Some(&slot) => w.push_bits(u64::from(slot), 32),
                        None => return false,
                    }
                }
            }
        }
        Self::finish_into(w, self.rec_bytes, out);
        true
    }

    fn encode_prefix(&self, node: &Node<P>, w: &mut StateWriter) {
        debug_assert_eq!(node.procs.len(), self.n);
        for &s in &node.status {
            w.push_bits(status_tag(s), 2);
        }
        w.push_bits(u64::from(node.crashes_left), self.crash_bits);
        self.values.encode(&node.values, w);
    }

    fn finish_into(w: StateWriter, rec_bytes: usize, out: &mut Vec<u8>) {
        out.clear();
        out.extend_from_slice(&w.finish());
        out.resize(rec_bytes, 0);
    }

    fn decode(&self, bytes: &[u8]) -> Node<P> {
        let mut r = StateReader::new(bytes);
        let status: Vec<Status> = (0..self.n).map(|_| tag_status(r.take_bits(2))).collect();
        let crashes_left = r.take_bits(self.crash_bits) as u32;
        let values: Vec<Value> = self.values.decode(&mut r);
        let procs: Vec<P> = match &self.procs {
            ProcMode::Hooks { proto, .. } => (0..self.n)
                .map(|_| {
                    let mut p = proto.clone();
                    assert!(p.unpack_state(&mut r), "unpack_state regressed mid-run");
                    p
                })
                .collect(),
            ProcMode::Interned { table, .. } => (0..self.n)
                .map(|_| table[r.take_bits(32) as usize].clone())
                .collect(),
        };
        Node {
            procs,
            values,
            status,
            crashes_left,
        }
    }
}

// ---------------------------------------------------------------------
// Segmented spillable arena.
// ---------------------------------------------------------------------

/// Resident segment size target, in bytes.
const SEG_TARGET: usize = 64 * 1024;

static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

enum Seg {
    Resident(Box<[u8]>),
    /// Spilled to the temp file at this byte offset.
    Spilled(u64),
}

/// An append-only arena of fixed-stride records with an optional spill
/// tier: when the resident bytes of *full* segments exceed the budget,
/// the oldest full segments are written sequentially to one temp file
/// (removed on drop) and read back on demand. The partially filled tail
/// segment — the hot end every fresh insertion compares against — never
/// spills.
pub(crate) struct SegArena {
    rec_bytes: usize,
    recs_per_seg: usize,
    len: u32,
    segs: Vec<Seg>,
    /// Index of the oldest still-resident segment (spilling is strictly
    /// front-to-back, so everything before it is spilled).
    first_resident: usize,
    budget: Option<usize>,
    spilled_segs: u64,
    file: RefCell<Option<File>>,
    path: Option<PathBuf>,
    file_len: u64,
}

impl SegArena {
    pub(crate) fn new(rec_bytes: usize, budget: Option<usize>) -> Self {
        SegArena {
            rec_bytes,
            recs_per_seg: (SEG_TARGET / rec_bytes).max(1),
            len: 0,
            segs: Vec::new(),
            first_resident: 0,
            budget,
            spilled_segs: 0,
            file: RefCell::new(None),
            path: None,
            file_len: 0,
        }
    }

    pub(crate) fn len(&self) -> u32 {
        self.len
    }

    /// Total payload bytes ever appended (resident + spilled).
    pub(crate) fn payload_bytes(&self) -> u64 {
        u64::from(self.len) * self.rec_bytes as u64
    }

    pub(crate) fn spilled_segs(&self) -> u64 {
        self.spilled_segs
    }

    pub(crate) fn push(&mut self, record: &[u8]) -> u32 {
        debug_assert_eq!(record.len(), self.rec_bytes);
        let id = self.len;
        assert!(id != u32::MAX, "arena full (u32::MAX records)");
        let slot = id as usize % self.recs_per_seg;
        if slot == 0 {
            self.segs
                .push(Seg::Resident(vec![0u8; self.recs_per_seg * self.rec_bytes].into()));
            self.maybe_spill();
        }
        match self.segs.last_mut().expect("segment pushed above") {
            Seg::Resident(buf) => {
                buf[slot * self.rec_bytes..(slot + 1) * self.rec_bytes].copy_from_slice(record);
            }
            Seg::Spilled(_) => unreachable!("the tail segment never spills"),
        }
        self.len = id + 1;
        id
    }

    /// Copies record `id` into `buf` (reading through the spill file for
    /// cold segments).
    fn read_into(&self, id: u32, buf: &mut Vec<u8>) {
        debug_assert!(id < self.len);
        let seg = id as usize / self.recs_per_seg;
        let off = (id as usize % self.recs_per_seg) * self.rec_bytes;
        buf.clear();
        match &self.segs[seg] {
            Seg::Resident(bytes) => buf.extend_from_slice(&bytes[off..off + self.rec_bytes]),
            Seg::Spilled(file_off) => {
                buf.resize(self.rec_bytes, 0);
                let mut file = self.file.borrow_mut();
                let f = file.as_mut().expect("spilled segment implies a file");
                f.seek(SeekFrom::Start(file_off + off as u64))
                    .expect("seek spill file");
                f.read_exact(buf).expect("read spill file");
            }
        }
    }

    /// Applies `f` to record `id`'s bytes: borrowed in place for
    /// resident segments (the hot path — no copy), bounced through the
    /// `probe` scratch buffer for spilled ones. This is what keeps the
    /// open index's probe runs cheap: each occupied slot on the path
    /// costs one in-place compare, not a buffer copy.
    pub(crate) fn with_record<R>(
        &self,
        id: u32,
        probe: &RefCell<Vec<u8>>,
        f: impl FnOnce(&[u8]) -> R,
    ) -> R {
        debug_assert!(id < self.len);
        let seg = id as usize / self.recs_per_seg;
        let off = (id as usize % self.recs_per_seg) * self.rec_bytes;
        match &self.segs[seg] {
            Seg::Resident(bytes) => f(&bytes[off..off + self.rec_bytes]),
            Seg::Spilled(_) => {
                let mut buf = probe.borrow_mut();
                self.read_into(id, &mut buf);
                f(&buf)
            }
        }
    }

    /// Spills the oldest full resident segments until the resident bytes
    /// of full segments fit the budget.
    fn maybe_spill(&mut self) {
        let Some(budget) = self.budget else { return };
        let seg_bytes = self.recs_per_seg * self.rec_bytes;
        // The last segment is the (empty, just pushed) tail; only the
        // full segments before it are spill candidates.
        let full = self.segs.len() - 1;
        while full.saturating_sub(self.first_resident) * seg_bytes > budget
            && self.first_resident < full
        {
            let victim = self.first_resident;
            let Seg::Resident(bytes) = &self.segs[victim] else {
                unreachable!("first_resident points at a resident segment");
            };
            let offset = self.file_len;
            {
                let mut file = self.file.borrow_mut();
                if file.is_none() {
                    let path = spill_path();
                    let f = OpenOptions::new()
                        .create_new(true)
                        .read(true)
                        .write(true)
                        .open(&path)
                        .expect("create spill file");
                    self.path = Some(path);
                    *file = Some(f);
                }
                let f = file.as_mut().expect("spill file opened above");
                f.seek(SeekFrom::Start(offset)).expect("seek spill file");
                f.write_all(bytes).expect("write spill file");
            }
            self.file_len = offset + seg_bytes as u64;
            self.segs[victim] = Seg::Spilled(offset);
            self.first_resident = victim + 1;
            self.spilled_segs += 1;
        }
    }
}

fn spill_path() -> PathBuf {
    let n = SPILL_COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "cfc-visited-{}-{n}.spill",
        std::process::id()
    ))
}

impl Drop for SegArena {
    fn drop(&mut self) {
        if let Some(path) = self.path.take() {
            self.file.borrow_mut().take();
            let _ = std::fs::remove_file(path);
        }
    }
}

// ---------------------------------------------------------------------
// The digest index.
// ---------------------------------------------------------------------

/// The record-digest → arena-id index of a packed store, in either of
/// the two [`IndexMode`] structures. The digest function is a field so
/// tests can engineer collisions (e.g. a constant digest) and assert
/// lookups still distinguish records by content alone.
struct DigestIndex {
    digest: fn(&[u8]) -> u64,
    kind: IndexKind,
}

enum IndexKind {
    Open(OpenIndex),
    Chained {
        /// Digest → head record id of an intrusive chain through `next`.
        heads: HashMap<u64, u32>,
        next: Vec<u32>,
    },
}

impl DigestIndex {
    fn new(mode: IndexMode) -> Self {
        let kind = match mode {
            IndexMode::Open => IndexKind::Open(OpenIndex::new()),
            IndexMode::Chained => IndexKind::Chained {
                heads: HashMap::new(),
                next: Vec::new(),
            },
        };
        DigestIndex { digest, kind }
    }

    /// Finds the id of the record byte-equal to `rec`, if stored.
    fn find(&self, arena: &SegArena, probe: &RefCell<Vec<u8>>, rec: &[u8]) -> Option<u32> {
        let d = (self.digest)(rec);
        match &self.kind {
            IndexKind::Open(table) => {
                table.find(d, |id| arena.with_record(id, probe, |bytes| bytes == rec))
            }
            IndexKind::Chained { heads, next } => {
                let mut cur = *heads.get(&d)?;
                loop {
                    if arena.with_record(cur, probe, |bytes| bytes == rec) {
                        return Some(cur);
                    }
                    cur = next[cur as usize];
                    if cur == u32::MAX {
                        return None;
                    }
                }
            }
        }
    }

    /// Records the freshly pushed `id` whose record bytes are `rec`.
    /// The caller just pushed `rec` at `id`, so `digest_of(id)` (needed
    /// when the open table grows) can re-derive digests straight from
    /// the arena.
    fn insert(&mut self, arena: &SegArena, probe: &RefCell<Vec<u8>>, rec: &[u8], id: u32) {
        let digest_fn = self.digest;
        let d = digest_fn(rec);
        match &mut self.kind {
            IndexKind::Open(table) => {
                table.insert(d, id, |x| arena.with_record(x, probe, digest_fn));
            }
            IndexKind::Chained { heads, next } => {
                let head = heads.insert(d, id);
                debug_assert_eq!(next.len(), id as usize);
                next.push(head.unwrap_or(u32::MAX));
            }
        }
    }

    /// Heap bytes held by the index: exact for the open table, an
    /// estimate (entry payload + chain links, ignoring `HashMap` control
    /// overhead) for the chained oracle so the two stay comparable.
    fn heap_bytes(&self) -> u64 {
        match &self.kind {
            IndexKind::Open(table) => table.heap_bytes(),
            IndexKind::Chained { heads, next } => {
                (heads.len() * (std::mem::size_of::<u64>() + std::mem::size_of::<u32>())
                    + next.len() * std::mem::size_of::<u32>()) as u64
            }
        }
    }
}

// ---------------------------------------------------------------------
// The store.
// ---------------------------------------------------------------------

/// First-visitor identity per stored state, for exact orbit-merge
/// accounting in the symmetry-reduced DFS.
enum Firsts<P> {
    /// `u32::MAX` means the first concrete visitor was byte-equal to the
    /// canonical representative; anything else indexes the side arena of
    /// differing first visitors.
    Packed {
        ids: Vec<u32>,
        arena: SegArena,
    },
    /// `None` means the first concrete visitor equaled the canonical
    /// representative.
    Boxed(Vec<Option<Node<P>>>),
}

// One `Backend` exists per traversal and lives as long as the search,
// so boxing the packed variant's fields would buy nothing but an
// indirection on every probe.
#[allow(clippy::large_enum_variant)]
enum Backend<P> {
    Boxed {
        nodes: Vec<Node<P>>,
        buckets: HashMap<u64, Vec<u32>>,
        /// Estimated heap bytes per boxed node (struct + spines), used so
        /// `arena_bytes` is comparable across backends.
        bytes_per_node: usize,
    },
    Packed {
        codec: NodeCodec<P>,
        arena: SegArena,
        index: DigestIndex,
        /// Encode scratch, `RefCell` so `&self` lookups can encode.
        scratch: RefCell<Vec<u8>>,
        /// Read scratch for probes through possibly-spilled records.
        probe: RefCell<Vec<u8>>,
    },
}

/// The visited set + canonical state table shared by every traversal:
/// states go in once (canonically), get a dense `u32` id, and decode
/// transiently on expansion.
pub(crate) struct NodeStore<P> {
    backend: Backend<P>,
    firsts: Option<Firsts<P>>,
    debug_checked: u32,
}

impl<P> std::fmt::Debug for NodeStore<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeStore")
            .field("len", &self.len())
            .field("arena_bytes", &self.arena_bytes())
            .field("spilled_buckets", &self.spilled_buckets())
            .finish()
    }
}

fn digest(bytes: &[u8]) -> u64 {
    let mut h = DefaultHasher::new();
    bytes.hash(&mut h);
    h.finish()
}

fn boxed_bytes_per_node<P>(root: &Node<P>) -> usize {
    std::mem::size_of::<Node<P>>()
        + root.procs.len() * std::mem::size_of::<P>()
        + root.values.len() * std::mem::size_of::<Value>()
        + root.status.len() * std::mem::size_of::<Status>()
}

impl<P> NodeStore<P> {
    /// The number of stored states.
    pub(crate) fn len(&self) -> usize {
        match &self.backend {
            Backend::Boxed { nodes, .. } => nodes.len(),
            Backend::Packed { arena, .. } => arena.len() as usize,
        }
    }

    /// Bytes of canonical state payload: exact arena bytes in packed
    /// mode, an estimated equivalent (states × per-node heap footprint)
    /// in boxed mode — comparable across backends by construction.
    pub(crate) fn arena_bytes(&self) -> u64 {
        match &self.backend {
            Backend::Boxed {
                nodes,
                bytes_per_node,
                ..
            } => nodes.len() as u64 * *bytes_per_node as u64,
            Backend::Packed { arena, .. } => arena.payload_bytes(),
        }
    }

    /// Arena segments written to the spill tier so far (0 without a
    /// budget and always 0 in boxed mode).
    pub(crate) fn spilled_buckets(&self) -> u64 {
        let main = match &self.backend {
            Backend::Boxed { .. } => 0,
            Backend::Packed { arena, .. } => arena.spilled_segs(),
        };
        let firsts = match &self.firsts {
            Some(Firsts::Packed { arena, .. }) => arena.spilled_segs(),
            _ => 0,
        };
        main + firsts
    }

    /// Heap bytes held by the digest index (the open table's slot array,
    /// or comparable estimates for the chained oracle and the boxed
    /// backend's buckets).
    pub(crate) fn index_bytes(&self) -> u64 {
        match &self.backend {
            Backend::Boxed { nodes, buckets, .. } => {
                // Entry payload + one Vec spine per bucket + one id per
                // node; HashMap control overhead ignored, like the
                // chained estimate.
                (buckets.len()
                    * (std::mem::size_of::<u64>() + std::mem::size_of::<Vec<u32>>())
                    + nodes.len() * std::mem::size_of::<u32>()) as u64
            }
            Backend::Packed { index, .. } => index.heap_bytes(),
        }
    }
}

impl<P: Process + Clone + Eq + Hash> NodeStore<P> {
    /// Builds a store for states shaped like `root` (which is **not**
    /// inserted). `track_firsts` enables first-visitor identity for the
    /// DFS orbit-merge counter; `spill_budget` bounds resident arena
    /// bytes in packed mode (`None`: never spill); `index` picks the
    /// digest-index structure (ignored in boxed mode).
    pub(crate) fn new(
        mode: StoreMode,
        index: IndexMode,
        spill_budget: Option<usize>,
        layout: &Layout,
        root: &Node<P>,
        track_firsts: bool,
    ) -> Self {
        let backend = match mode {
            StoreMode::Boxed => Backend::Boxed {
                nodes: Vec::new(),
                buckets: HashMap::new(),
                bytes_per_node: boxed_bytes_per_node(root),
            },
            StoreMode::Packed => {
                let codec = NodeCodec::new(layout, root);
                let rec_bytes = codec.rec_bytes();
                Backend::Packed {
                    codec,
                    arena: SegArena::new(rec_bytes, spill_budget),
                    index: DigestIndex::new(index),
                    scratch: RefCell::new(Vec::new()),
                    probe: RefCell::new(Vec::new()),
                }
            }
        };
        let firsts = track_firsts.then(|| match &backend {
            Backend::Boxed { .. } => Firsts::Boxed(Vec::new()),
            Backend::Packed { codec, .. } => Firsts::Packed {
                ids: Vec::new(),
                arena: SegArena::new(codec.rec_bytes(), spill_budget),
            },
        });
        NodeStore {
            backend,
            firsts,
            debug_checked: 0,
        }
    }

    /// Whether `key` (already canonical) is stored. `&self`, so traversal
    /// loops can consult it while the engine is mutably borrowed.
    pub(crate) fn contains(&self, key: &Node<P>) -> bool {
        match &self.backend {
            Backend::Boxed { nodes, buckets, .. } => buckets
                .get(&node_hash(key))
                .is_some_and(|b| b.iter().any(|&id| nodes[id as usize] == *key)),
            Backend::Packed {
                codec,
                arena,
                index,
                scratch,
                probe,
            } => {
                let mut rec = scratch.borrow_mut();
                if !codec.try_encode(key, &mut rec) {
                    // A local state the intern table has never seen: the
                    // node cannot be stored.
                    return false;
                }
                index.find(arena, probe, &rec).is_some()
            }
        }
    }

    /// Interns `canon`, returning its dense id and whether it was fresh.
    pub(crate) fn intern(&mut self, canon: Node<P>) -> (u32, bool) {
        match &mut self.backend {
            Backend::Boxed { nodes, buckets, .. } => {
                let bucket = buckets.entry(node_hash(&canon)).or_default();
                match bucket
                    .iter()
                    .copied()
                    .find(|&id| nodes[id as usize] == canon)
                {
                    Some(id) => (id, false),
                    None => {
                        let id = nodes.len() as u32;
                        bucket.push(id);
                        nodes.push(canon);
                        (id, true)
                    }
                }
            }
            Backend::Packed {
                codec,
                arena,
                index,
                scratch,
                probe,
            } => {
                let mut rec = scratch.borrow_mut();
                codec.encode_mut(&canon, &mut rec);
                if let Some(id) = index.find(arena, probe, &rec) {
                    return (id, false);
                }
                let id = arena.push(&rec);
                index.insert(arena, probe, &rec, id);
                // Early-insertion decode-back check: `decode(encode(x)) ==
                // x` is the injectivity contract everything rests on, so
                // the first insertions of every debug run verify it end to
                // end.
                if cfg!(debug_assertions) && self.debug_checked < 1024 {
                    self.debug_checked += 1;
                    debug_assert!(
                        codec.decode(&rec) == canon,
                        "packed store round-trip mismatch: \
                         the codec is not injective for this system"
                    );
                }
                (id, true)
            }
        }
    }

    /// Records a visit of the canonical key `canon` reached by the
    /// concrete state `concrete` (pass `None` when canonical and concrete
    /// coincide, i.e. without symmetry reduction). Returns the interned
    /// id of the canonical state (dense, assigned in first-visit order —
    /// the key dynamic reduction's per-state sleep masks are stored
    /// under) alongside the visit classification.
    pub(crate) fn visit(
        &mut self,
        canon: &Node<P>,
        concrete: Option<&Node<P>>,
    ) -> (u32, VisitOutcome) {
        let (id, fresh) = self.intern(canon.clone());
        let Some(firsts) = &mut self.firsts else {
            let outcome = if fresh {
                VisitOutcome::Fresh
            } else {
                VisitOutcome::RevisitSame
            };
            return (id, outcome);
        };
        let outcome = match firsts {
            Firsts::Boxed(list) => {
                if fresh {
                    list.push(concrete.filter(|c| **c != *canon).cloned());
                    VisitOutcome::Fresh
                } else {
                    let first_differs = match &list[id as usize] {
                        // First visitor *was* the canonical form.
                        None => concrete.is_some_and(|c| *c != *canon),
                        Some(first) => concrete != Some(first),
                    };
                    if first_differs {
                        VisitOutcome::RevisitMerged
                    } else {
                        VisitOutcome::RevisitSame
                    }
                }
            }
            Firsts::Packed { ids, arena } => {
                let Backend::Packed {
                    codec,
                    arena: main,
                    scratch,
                    probe,
                    ..
                } = &mut self.backend
                else {
                    unreachable!("packed firsts imply a packed backend");
                };
                // Encode the concrete visitor; its local states are the
                // same multiset as the canon's (a permutation), so the
                // intern table already covers them.
                let mut rec = scratch.borrow_mut();
                let concrete_rec: Option<&[u8]> = match concrete {
                    Some(c) => {
                        assert!(
                            codec.try_encode(c, &mut rec),
                            "concrete visitor uses local states absent from its own orbit"
                        );
                        Some(&rec)
                    }
                    None => None,
                };
                if fresh {
                    debug_assert_eq!(ids.len(), id as usize);
                    let mut canon_rec = probe.borrow_mut();
                    main.read_into(id, &mut canon_rec);
                    match concrete_rec {
                        Some(c) if c != canon_rec.as_slice() => {
                            let fid = arena.push(c);
                            ids.push(fid);
                        }
                        _ => ids.push(u32::MAX),
                    }
                    VisitOutcome::Fresh
                } else {
                    let mut first_rec = probe.borrow_mut();
                    let fid = ids[id as usize];
                    if fid == u32::MAX {
                        main.read_into(id, &mut first_rec);
                    } else {
                        arena.read_into(fid, &mut first_rec);
                    }
                    let same = match concrete_rec {
                        Some(c) => c == first_rec.as_slice(),
                        // No concrete passed: the visitor is the canon
                        // itself.
                        None => fid == u32::MAX,
                    };
                    if same {
                        VisitOutcome::RevisitSame
                    } else {
                        VisitOutcome::RevisitMerged
                    }
                }
            }
        };
        (id, outcome)
    }

    /// Decodes stored state `id` (a transient owned copy).
    pub(crate) fn node(&self, id: u32) -> Node<P> {
        match &self.backend {
            Backend::Boxed { nodes, .. } => nodes[id as usize].clone(),
            Backend::Packed {
                codec,
                arena,
                probe,
                ..
            } => {
                let mut rec = probe.borrow_mut();
                arena.read_into(id, &mut rec);
                codec.decode(&rec)
            }
        }
    }

}

fn node_hash<P: Hash>(node: &Node<P>) -> u64 {
    let mut h = DefaultHasher::new();
    node.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_core::{Op, OpResult, RegisterId, Step};

    /// A minimal packable process: one counter, hook-encoded in 8 bits.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct Packable {
        reg: RegisterId,
        count: u8,
    }

    impl Process for Packable {
        fn current(&self) -> Step {
            Step::Op(Op::Read(self.reg))
        }
        fn advance(&mut self, _: OpResult) {
            self.count += 1;
        }
        fn pack_state(&self, w: &mut StateWriter) -> bool {
            w.push_bits(u64::from(self.count), 8);
            true
        }
        fn unpack_state(&mut self, r: &mut StateReader<'_>) -> bool {
            self.count = r.take_bits(8) as u8;
            true
        }
    }

    /// An opaque process (no hooks): forces the interned fallback.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct Opaque {
        word: u64,
    }

    impl Process for Opaque {
        fn current(&self) -> Step {
            Step::Halt
        }
        fn advance(&mut self, _: OpResult) {}
    }

    fn layout2() -> Layout {
        let mut layout = Layout::new();
        layout.register("a", 3, 0);
        layout.register("b", 5, 0);
        layout
    }

    fn node(counts: [u8; 2], a: u64, b: u64, crashes: u32) -> Node<Packable> {
        Node {
            procs: counts
                .iter()
                .map(|&c| Packable {
                    reg: RegisterId::new(0),
                    count: c,
                })
                .collect(),
            values: vec![Value::new(a), Value::new(b)],
            status: vec![Status::Running, Status::Done],
            crashes_left: crashes,
        }
    }

    fn store(
        mode: StoreMode,
        budget: Option<usize>,
        track_firsts: bool,
    ) -> NodeStore<Packable> {
        store_with(mode, IndexMode::default(), budget, track_firsts)
    }

    fn store_with(
        mode: StoreMode,
        index: IndexMode,
        budget: Option<usize>,
        track_firsts: bool,
    ) -> NodeStore<Packable> {
        let layout = layout2();
        let root = node([0, 0], 0, 0, 2);
        NodeStore::new(mode, index, budget, &layout, &root, track_firsts)
    }

    #[test]
    fn packed_store_interns_each_state_once() {
        for mode in [StoreMode::Packed, StoreMode::Boxed] {
            let mut s = store(mode, None, false);
            let x = node([1, 2], 3, 4, 1);
            let y = node([2, 1], 3, 4, 1);
            assert!(!s.contains(&x));
            let (idx, fresh) = s.intern(x.clone());
            assert!(fresh);
            let (idx2, fresh2) = s.intern(x.clone());
            assert!(!fresh2);
            assert_eq!(idx, idx2);
            let (idy, fresh3) = s.intern(y.clone());
            assert!(fresh3);
            assert_ne!(idx, idy);
            assert!(s.contains(&x));
            assert_eq!(s.node(idx), x, "{mode:?}");
            assert_eq!(s.node(idy), y, "{mode:?}");
            assert_eq!(s.len(), 2);
        }
    }

    #[test]
    fn packed_records_are_a_fraction_of_boxed_footprint() {
        let mut packed = store(StoreMode::Packed, None, false);
        let mut boxed = store(StoreMode::Boxed, None, false);
        for c in 0..100u8 {
            packed.intern(node([c, c], 1, 2, 0));
            boxed.intern(node([c, c], 1, 2, 0));
        }
        // 2 statuses (4b) + crash (2b) + values (8b) + 2 hook procs
        // (16b) = 30 bits -> 4 bytes/record.
        assert!(packed.arena_bytes() * 2 <= boxed.arena_bytes());
    }

    #[test]
    fn interned_fallback_round_trips_opaque_processes() {
        let mut layout = Layout::new();
        layout.register("r", 4, 0);
        let root: Node<Opaque> = Node {
            procs: vec![Opaque { word: 0 }, Opaque { word: 0 }],
            values: vec![Value::ZERO],
            status: vec![Status::Running; 2],
            crashes_left: 0,
        };
        let mut s =
            NodeStore::new(StoreMode::Packed, IndexMode::default(), None, &layout, &root, false);
        let x = Node {
            procs: vec![Opaque { word: 7 }, Opaque { word: 9 }],
            ..root.clone()
        };
        // A node with unseen local states is provably absent.
        assert!(!s.contains(&x));
        let (id, fresh) = s.intern(x.clone());
        assert!(fresh);
        assert_eq!(s.node(id), x);
        assert!(s.contains(&x));
        // Same multiset, different arrangement: a distinct state, but the
        // lookup-only encode now succeeds (both local states interned).
        let y = Node {
            procs: vec![Opaque { word: 9 }, Opaque { word: 7 }],
            ..root.clone()
        };
        assert!(!s.contains(&y));
    }

    #[test]
    fn spill_tier_keeps_lookups_exact() {
        // A budget of one segment forces everything but the tail to
        // disk; both index structures must probe spilled records
        // exactly.
        for imode in [IndexMode::Open, IndexMode::Chained] {
            let mut s = store_with(StoreMode::Packed, imode, Some(SEG_TARGET), false);
            let mut ids = Vec::new();
            // Enough records to fill several 64 KiB segments (4-byte
            // records, 16384 per segment).
            for i in 0..60_000u32 {
                let x = node(
                    [(i % 251) as u8, (i / 251) as u8],
                    u64::from(i % 8),
                    u64::from(i % 32),
                    i % 3,
                );
                let (id, fresh) = s.intern(x);
                assert!(fresh, "all states distinct ({imode:?})");
                ids.push(id);
            }
            assert!(s.spilled_buckets() > 0, "budget must have forced spills");
            // Reads and membership still hit spilled records exactly.
            let probe = node([77, 0], u64::from(77u32 % 8), u64::from(77u32 % 32), 77 % 3);
            assert!(s.contains(&probe));
            let (_, fresh) = s.intern(probe);
            assert!(!fresh, "reinterning a spilled state must dedupe ({imode:?})");
            assert_eq!(s.len(), 60_000);
            let decoded = s.node(ids[123]);
            assert_eq!(decoded.values[0], Value::new(123 % 8));
        }
    }

    #[test]
    fn engineered_digest_collision_keeps_distinct_states_fresh() {
        // Two distinct canonical states with an *engineered* equal
        // digest must both intern Fresh and never report a merge: the
        // index resolves collisions by byte comparison, never by hash.
        for imode in [IndexMode::Open, IndexMode::Chained] {
            let mut s = store_with(StoreMode::Packed, imode, None, true);
            let Backend::Packed { index, .. } = &mut s.backend else {
                unreachable!("packed store requested above");
            };
            index.digest = |_| 0xdead_beef;
            let x = node([1, 2], 3, 4, 1);
            let y = node([9, 9], 5, 5, 0);
            assert_eq!(s.visit(&x, None), (0, VisitOutcome::Fresh), "{imode:?}");
            assert_eq!(s.visit(&y, None), (1, VisitOutcome::Fresh), "{imode:?}");
            assert_eq!(s.visit(&x, None), (0, VisitOutcome::RevisitSame), "{imode:?}");
            assert_eq!(s.visit(&y, None), (1, VisitOutcome::RevisitSame), "{imode:?}");
            assert_eq!(s.len(), 2);
        }
    }

    #[test]
    fn open_and_chained_indexes_agree_across_growth() {
        // Enough distinct states to force several open-table doublings;
        // the two index structures must assign identical ids.
        let mut open = store_with(StoreMode::Packed, IndexMode::Open, None, false);
        let mut chained = store_with(StoreMode::Packed, IndexMode::Chained, None, false);
        for i in 0..3_000u32 {
            let x = node([(i % 251) as u8, (i / 251) as u8], u64::from(i % 8), 0, 0);
            assert_eq!(open.intern(x.clone()), chained.intern(x));
        }
        assert_eq!(open.len(), chained.len());
        assert!(
            open.index_bytes() < chained.index_bytes(),
            "open index must be smaller: {} vs {}",
            open.index_bytes(),
            chained.index_bytes()
        );
    }

    #[test]
    fn visit_tracks_first_concrete_visitor_exactly() {
        for mode in [StoreMode::Packed, StoreMode::Boxed] {
            let mut s = store(mode, None, true);
            let canon = node([1, 2], 0, 0, 0);
            let permuted = node([2, 1], 0, 0, 0);
            // First visit by a non-canonical concrete state.
            assert_eq!(s.visit(&canon, Some(&permuted)), (0, VisitOutcome::Fresh));
            // Same concrete again: not a merge.
            assert_eq!(
                s.visit(&canon, Some(&permuted)),
                (0, VisitOutcome::RevisitSame),
                "{mode:?}"
            );
            // A different concrete sibling: a genuine merge.
            assert_eq!(
                s.visit(&canon, Some(&canon.clone())),
                (0, VisitOutcome::RevisitMerged),
                "{mode:?}"
            );

            // And a canonical-first orbit: the sentinel path.
            let c2 = node([3, 4], 1, 1, 0);
            let p2 = node([4, 3], 1, 1, 0);
            assert_eq!(s.visit(&c2, Some(&c2.clone())), (1, VisitOutcome::Fresh));
            assert_eq!(
                s.visit(&c2, Some(&c2.clone())),
                (1, VisitOutcome::RevisitSame)
            );
            assert_eq!(
                s.visit(&c2, Some(&p2)),
                (1, VisitOutcome::RevisitMerged),
                "{mode:?}"
            );
        }
    }

    #[test]
    fn visit_without_tracking_reports_fresh_and_same_only() {
        let mut s = store(StoreMode::Packed, None, false);
        let x = node([1, 1], 0, 0, 0);
        assert_eq!(s.visit(&x, None), (0, VisitOutcome::Fresh));
        assert_eq!(s.visit(&x, None), (0, VisitOutcome::RevisitSame));
    }
}
