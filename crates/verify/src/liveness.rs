//! Fair-cycle liveness checking: starvation freedom and bounded bypass
//! on the shared state graph.
//!
//! The paper's algorithms promise *deadlock freedom* — somebody can
//! always finish — which is strictly weaker than *starvation freedom* —
//! everybody who keeps trying eventually finishes. The progress checker
//! in [`crate::explore`] verifies the former; this module mechanizes the
//! latter as a search for **fair lassos** in the same state graph the
//! other checkers walk ([`crate::graph`]):
//!
//! * Clients cycle through their protocol forever
//!   ([`cfc_mutex::MutexAlgorithm::client_cycling`]), so the graph's
//!   cycles are exactly the system's infinite behaviors.
//! * A run is **weakly fair** when every process that stays
//!   [runnable](Status::runnable) takes infinitely many steps. On a
//!   finite graph an infinite run is a lasso (stem + loop), and since
//!   `Done`/`Crashed` are absorbing, statuses are constant around any
//!   loop — so a lasso is weakly fair iff every process running in its
//!   loop steps at least once per revolution.
//! * A process is **starved** when some weakly fair lasso keeps it
//!   *pending* (trying, never served: in its entry section and never in
//!   the critical section; running and never named) around the whole
//!   loop — despite the victim itself spinning infinitely often.
//!
//! The detector runs per victim: it restricts the graph to the states
//! where the victim is pending, computes strongly connected components
//! (iterative Tarjan), and reports any reachable SCC whose internal
//! edges cover every running process — by strong connectivity such an
//! SCC contains a single cycle through one covering edge per process,
//! which is precisely a weakly fair starvation loop. The witness is
//! rebuilt as a concrete schedule ([`Lasso`]) that [`replay`] accepts
//! and [`validate_lasso`] re-checks step by step against the un-reduced
//! semantics, so a [`LivenessVerdict::Starvable`] verdict never rests on
//! the reductions below.
//!
//! # Reductions, per victim
//!
//! * **Symmetry** must not canonicalize the victim away: permuting the
//!   starved process with its peers changes *who* is starved. The
//!   checker therefore quotients each victim's graph by the
//!   [stabilizer](SymmetryGroup::stabilizer) of the victim — its peers
//!   still merge orbits, the victim's slot is pinned — and checks one
//!   victim per symmetry class. That representative argument needs class
//!   members to be interchangeable *from the initial state*, so declared
//!   classes are first refined by initial-state equality: identity-free
//!   processes (naming walkers, test-and-set spinners) keep their
//!   classes, while identity-embedding locks fall back to per-process
//!   victims on one shared graph. Because canonical edge labels are
//!   slots rather than concrete identities, a fair-looking quotient SCC
//!   is only a *candidate*: each is concretized and validated, and if
//!   none survives the victim is settled on an exact (trivial-group)
//!   graph.
//! * **Partial-order reduction** runs in [`AmpleMode::Liveness`]:
//!   independence (C1) plus *strict* invisibility (C2 with no `Halt`
//!   exemption — the fairness analysis reads statuses) plus the
//!   cycle-closing condition (C3, the fresh-successor proviso), so every
//!   cycle of the reduced graph contains a fully expanded state and no
//!   process's transitions — in particular no self-looping spin of a
//!   starved victim — are pruned from every state of a loop.
//! * An optional [state normalizer](cfc_mutex::StateNormalizer) folds
//!   behaviorally inert unbounded counters (bakery tickets) into a
//!   finite quotient; POR is disabled whenever one is active, since the
//!   ample bookkeeping does not see through the abstraction.
//!
//! # Bounded bypass
//!
//! Alongside the binary verdict, the checker measures **bypass**: the
//! supremum, over all weakly fair runs, of how many times *other*
//! processes are served while the victim is pending and *engaged* (past
//! its first entry step — before that the algorithm cannot know the
//! victim exists). Because any finite unfair prefix extends to a weakly
//! fair run, this equals the maximum service-edge weight over paths of
//! the engaged-pending subgraph: infinite (`None`) iff some reachable
//! SCC of that subgraph contains a service edge, else the longest
//! weighted path over the SCC condensation. Peterson's `turn` handshake
//! yields bound 1; the bakery's FCFS order bounds it by the waiters
//! ahead at the doorway; a plain test-and-set lock is unbounded (and
//! starvable with it).
//!
//! Every **finite** bound additionally ships a [`BypassWitness`]: the
//! argmax path of that longest-path computation, concretized into a
//! replayable schedule (stem to an engaged-pending state, then the
//! overtaking suffix) and re-checked by [`validate_bypass`] against the
//! un-reduced semantics — including an independent recount of the
//! overtakes — so a reported bound is never just a number. A witness
//! whose quotient-level derivation fails validation (slot labels can in
//! principle mislabel a serve) is re-derived on the exact trivial-group
//! graph, whose labels are concrete.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

use cfc_core::{Memory, Process, ProcessId, Section, Status, SymmetryGroup, Value};
use cfc_mutex::{MutexAlgorithm, MutexClient};
use cfc_naming::NamingAlgorithm;

use crate::csr::EdgeArena;
use crate::explore::{replay, ExploreConfig, ExploreError, ScheduleStep};
use crate::graph::{
    expand_step, AmpleMode, BuiltGraph, Engine, GEdge, GraphBuilder, Node, Order, TraversalSpec,
};
use crate::telemetry::{self, Phase, Sample, StoreFootprint};

/// A borrowed state normalizer (see [`cfc_mutex::StateNormalizer`] for
/// the owned form and the behavioral contract).
pub type NormalizeFn<'a, P> = &'a dyn Fn(&mut [P], &mut [Value]);

/// The property hooks of a liveness check: what it means for a process
/// to be waiting, to be counted against, and to be served.
pub struct LivenessSpec<'a, P> {
    /// Is the process *pending* — wanting service it has not received?
    /// (Mutex: in its entry section. Naming: not yet decided.) Evaluated
    /// only on running processes.
    pub pending: &'a dyn Fn(&P) -> bool,
    /// Is the pending process *engaged* — past the point where the
    /// algorithm can observe it (its first entry step)? Bypass counting
    /// starts here; starvation detection uses `pending` alone.
    pub engaged: &'a dyn Fn(&P) -> bool,
    /// Did the stepping process receive service across this step
    /// (`(before, after)` local states)? (Mutex: entered the critical
    /// section. Naming: decided a name.)
    pub served: &'a dyn Fn(&P, &P) -> bool,
    /// Optional behavioral-quotient normalizer applied to every explored
    /// state (see [`cfc_mutex::StateNormalizer`] for the contract).
    /// Partial-order reduction is disabled while one is active.
    pub normalize: Option<NormalizeFn<'a, P>>,
}

impl<P> fmt::Debug for LivenessSpec<'_, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LivenessSpec")
            .field("normalize", &self.normalize.is_some())
            .finish()
    }
}

/// A replayable infinite run: after the `stem`, repeating `cycle`
/// forever is a weakly fair schedule of the system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lasso {
    /// The finite prefix from the initial state to the loop entry.
    pub stem: Vec<ScheduleStep>,
    /// The loop body; never empty, never contains a crash.
    pub cycle: Vec<ScheduleStep>,
}

impl Lasso {
    /// The stem followed by one revolution of the loop — the schedule
    /// shape [`replay`] accepts.
    pub fn unrolled(&self) -> Vec<ScheduleStep> {
        let mut all = self.stem.clone();
        all.extend(self.cycle.iter().copied());
        all
    }
}

/// A starvation witness: a concrete weakly fair lasso around which
/// `victim` stays pending.
#[derive(Clone, Debug)]
pub struct LassoWitness {
    /// The starved process.
    pub victim: ProcessId,
    /// The lasso schedule; [`validate_lasso`] re-checks it concretely.
    pub lasso: Lasso,
    /// What the lasso demonstrates.
    pub message: String,
}

impl fmt::Display for LassoWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (stem {} steps, loop {} steps)",
            self.message,
            self.lasso.stem.len(),
            self.lasso.cycle.len()
        )
    }
}

/// A bypass witness: a concrete, replayable schedule in which `victim`
/// completes its doorway (becomes pending **and** engaged) and is then
/// overtaken exactly `bypass` times while it stays pending — the
/// machine-checked evidence behind a measured bypass bound.
///
/// [`validate_bypass`] re-checks the whole claim against the plain,
/// un-reduced step semantics, including re-counting the overtakes
/// independently.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BypassWitness {
    /// The overtaken process.
    pub victim: ProcessId,
    /// How many times the victim is overtaken along `overtaking`.
    pub bypass: u64,
    /// The prefix from the initial state to a state where the victim is
    /// pending and engaged.
    pub stem: Vec<ScheduleStep>,
    /// The overtaking suffix: the victim stays pending and engaged at
    /// every state, and exactly `bypass` of these steps serve another
    /// process.
    pub overtaking: Vec<ScheduleStep>,
}

impl BypassWitness {
    /// The stem followed by the overtaking suffix — the full schedule
    /// shape [`crate::explore::replay`] accepts.
    pub fn schedule(&self) -> Vec<ScheduleStep> {
        let mut all = self.stem.clone();
        all.extend(self.overtaking.iter().copied());
        all
    }
}

impl fmt::Display for BypassWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "process {} is overtaken {} times while pending and engaged \
             (stem {} steps, overtaking {} steps)",
            self.victim,
            self.bypass,
            self.stem.len(),
            self.overtaking.len()
        )
    }
}

/// The outcome of a liveness check.
#[derive(Clone, Debug)]
pub enum LivenessVerdict {
    /// No weakly fair lasso starves any process. `bypass` is the
    /// bounded-bypass measurement: `Some(b)` when no pending-and-engaged
    /// waiter can be overtaken more than `b` times, `None` when unfair
    /// (but fair-terminating) overtaking is unbounded.
    StarvationFree {
        /// Max overtakes of an engaged waiter; `None` = unbounded.
        bypass: Option<u64>,
        /// A [`validate_bypass`]-checked schedule achieving the bound —
        /// present whenever `bypass` is `Some(b)` and some reachable
        /// state has a pending, engaged victim. Absent when bypass is
        /// unbounded, when no waiter ever engages, or — rare, and only
        /// under a symmetry quotient — when the quotient-derived
        /// schedule failed validation and rebuilding the exact graph to
        /// re-derive it exceeded the state budget (the bound itself is
        /// still reported; only its witness is forfeited).
        witness: Option<Box<BypassWitness>>,
    },
    /// Some process is starved by a weakly fair schedule; the witness
    /// lasso replays concretely.
    Starvable(Box<LassoWitness>),
}

/// Statistics of a completed liveness check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LivenessStats {
    /// Distinct (canonical) states, summed over all per-victim graphs.
    pub states: usize,
    /// Transitions, summed over all per-victim graphs.
    pub transitions: u64,
    /// Victims analyzed (one representative per symmetry class when
    /// symmetry reduction is on; every process otherwise).
    pub victims: usize,
    /// State graphs built (victims sharing a quotient share a graph).
    pub graphs: usize,
    /// Transitions not expanded thanks to the liveness-safe ample sets.
    pub states_pruned_por: u64,
    /// Successors folded into a distinct member of their orbit.
    pub orbits_merged: u64,
    /// Store, index, and edge memory summed over all per-victim graphs
    /// (see `ExploreStats::footprint` for the backend semantics;
    /// `spilled_buckets` sums state and edge segments alike).
    pub footprint: StoreFootprint,
    /// Wall time of the whole check — every graph build, SCC analysis,
    /// and witness validation — in nanoseconds, measured by the
    /// telemetry clock (see `ExploreStats::wall_ns`).
    pub wall_ns: u64,
}

impl LivenessStats {
    /// Cumulative throughput over the whole check, `states / wall`
    /// (integer states-per-second; 0 when no time was observed).
    pub fn states_per_sec(&self) -> u64 {
        crate::telemetry::rate_per_sec(self.states as u64, self.wall_ns)
    }

    /// This stats value with the wall-clock field zeroed (see
    /// `ExploreStats::sans_wall`).
    #[must_use]
    pub fn sans_wall(mut self) -> Self {
        self.wall_ns = 0;
        self
    }

    /// The final telemetry sample of a liveness check: the summed
    /// counters, attributed to the `liveness-check` span.
    fn final_sample(&self) -> Sample {
        Sample {
            states: self.states as u64,
            transitions: self.transitions,
            frontier: 0,
            depth: 0,
            states_pruned_por: self.states_pruned_por,
            orbits_merged: self.orbits_merged,
            transitions_slept: 0,
            footprint: self.footprint,
        }
    }
}

/// The result of a liveness check: the verdict plus search statistics.
#[derive(Clone, Debug)]
pub struct LivenessReport {
    /// Starvation-free (with bypass bound) or starvable (with witness).
    pub verdict: LivenessVerdict,
    /// Search statistics.
    pub stats: LivenessStats,
}

impl LivenessReport {
    /// Whether the check found no fair starvation lasso.
    pub fn is_starvation_free(&self) -> bool {
        matches!(self.verdict, LivenessVerdict::StarvationFree { .. })
    }

    /// The starvation witness, if the verdict is starvable.
    pub fn witness(&self) -> Option<&LassoWitness> {
        match &self.verdict {
            LivenessVerdict::Starvable(w) => Some(w),
            LivenessVerdict::StarvationFree { .. } => None,
        }
    }

    /// The bypass bound of a starvation-free verdict (`None` if the
    /// verdict is starvable; `Some(None)` means bypass is unbounded).
    pub fn bypass(&self) -> Option<Option<u64>> {
        match &self.verdict {
            LivenessVerdict::StarvationFree { bypass, .. } => Some(*bypass),
            LivenessVerdict::Starvable(_) => None,
        }
    }

    /// The validated overtaking schedule behind a bounded-bypass
    /// measurement, when one exists (see
    /// [`LivenessVerdict::StarvationFree`]).
    pub fn bypass_witness(&self) -> Option<&BypassWitness> {
        match &self.verdict {
            LivenessVerdict::StarvationFree { witness, .. } => witness.as_deref(),
            LivenessVerdict::Starvable(_) => None,
        }
    }
}

/// Exhaustively checks the liveness property described by `spec` over
/// every interleaving (and crash pattern) of the processes: no weakly
/// fair lasso may keep any process pending forever, and the bypass of
/// engaged waiters is measured.
///
/// See the module docs for the victim-per-class strategy under symmetry
/// reduction and the liveness-safe ample mode under partial-order
/// reduction; with both flags off this is an exact check of the full
/// graph. `config.max_states` bounds **each** per-victim graph.
///
/// # Errors
///
/// Returns [`ExploreError::StateBudget`] when a graph outgrows the
/// budget, or a memory error. A starvation finding is **not** an error —
/// it is reported in the verdict, with its witness validated against the
/// un-reduced step semantics before being returned.
///
/// # Panics
///
/// Panics if `symmetry` is defined over a different process count, or on
/// an internal inconsistency (a discovered lasso that fails concrete
/// validation — which the engine's invariants rule out).
pub fn check_liveness_sym<P>(
    memory: Memory,
    procs: Vec<P>,
    symmetry: &SymmetryGroup,
    config: ExploreConfig,
    spec: &LivenessSpec<'_, P>,
) -> Result<LivenessReport, ExploreError>
where
    P: Process + Clone + Eq + Hash,
{
    let n = procs.len();
    // "Starvation of any class member ⇔ starvation of the class
    // representative" holds only when the members are interchangeable
    // *from the initial state* — permuting them must map the root to
    // itself. Locks that embed an identity (Peterson's side, the
    // bakery's index, tournament paths) start in distinct local states,
    // so their declared classes are refined by initial-state equality
    // before victims are chosen; refining a symmetry group is always
    // sound (it only forfeits merges).
    let refined = SymmetryGroup::from_classes(
        n,
        symmetry
            .classes()
            .iter()
            .flat_map(|class| {
                let mut parts: Vec<Vec<usize>> = Vec::new();
                for &i in class {
                    match parts.iter_mut().find(|p| procs[p[0]] == procs[i]) {
                        Some(p) => p.push(i),
                        None => parts.push(vec![i]),
                    }
                }
                parts
            })
            .collect(),
    );
    let use_sym = config.symmetry && !refined.is_trivial();

    // Victim sets, each with the quotient that pins its victims: one
    // representative per refined class (peers merge under the class
    // stabilizer), every unclassed process under the unchanged group.
    let victim_sets: Vec<(SymmetryGroup, Vec<usize>)> = if use_sym {
        let mut in_class = vec![false; n];
        let mut sets = Vec::new();
        for class in refined.classes() {
            for &i in class {
                in_class[i] = true;
            }
            sets.push((refined.stabilizer(class[0]), vec![class[0]]));
        }
        let singles: Vec<usize> = (0..n).filter(|&i| !in_class[i]).collect();
        if !singles.is_empty() {
            sets.push((refined.clone(), singles));
        }
        sets
    } else {
        vec![(SymmetryGroup::trivial(n), (0..n).collect())]
    };

    // The outer span wraps every per-victim graph build, SCC pass, and
    // witness validation; its wall time is what the report's stats
    // carry. Spans opened by the builder (liveness-graph,
    // extract-automaton) and the per-victim passes nest inside it.
    // `runtime` + ambient install means the env-hook sinks see the
    // wrapper span too, and the builder attaches nothing on top.
    let tel = telemetry::runtime(config.progress);
    let _tel_guard = telemetry::install(&tel);
    let check_span = tel.span(Phase::LivenessCheck);
    let mut stats = LivenessStats::default();
    let mut bypass: Option<u64> = Some(0);
    let mut bypass_witness: Option<Box<BypassWitness>> = None;
    // The exact trivial-group graph used to settle quotient artifacts is
    // victim-independent, so it is built at most once per check.
    let mut exact_cache: Option<(GraphBuilder<'_, P>, BuiltGraph<P>)> = None;
    for (group, victims) in victim_sets {
        let sym_quotient = config.symmetry && !group.is_trivial();
        let (builder, graph) =
            liveness_graph(&memory, &procs, group.clone(), config, spec, &mut stats)?;
        for v in victims {
            stats.victims += 1;
            let scc_span = tel.span(Phase::SccAnalysis);
            let candidates = find_fair_starvation(&graph, v, spec);
            scc_span.finish(Sample {
                states: graph.len() as u64,
                ..Sample::default()
            });
            let mut confirmed = None;
            if !candidates.is_empty() {
                let witness_span = tel.span(Phase::WitnessValidation);
                for scc in &candidates {
                    let Some(witness) = extract_witness(
                        builder.engine(),
                        &graph,
                        scc,
                        v,
                        spec,
                        procs.clone(),
                        group.order(),
                    ) else {
                        continue;
                    };
                    if validate_lasso(&memory, &procs, &witness, spec).is_ok() {
                        confirmed = Some(witness);
                        break;
                    }
                    debug_assert!(sym_quotient, "exact candidates must validate");
                }
                witness_span.finish(Sample {
                    states: candidates.len() as u64,
                    ..Sample::default()
                });
            }
            if let Some(witness) = confirmed {
                stats.wall_ns = check_span.finish(stats.final_sample());
                return Ok(LivenessReport {
                    verdict: LivenessVerdict::Starvable(Box::new(witness)),
                    stats,
                });
            }
            if !candidates.is_empty() && sym_quotient {
                // Every candidate was a quotient artifact (slot-labeled
                // fairness that no concrete loop realizes). Settle this
                // victim exactly, on the graph of the trivial group,
                // where labels are concrete and the fairness test is
                // precise.
                if exact_cache.is_none() {
                    exact_cache =
                        Some(exact_graph(&memory, &procs, config, spec, &mut stats)?);
                }
                let (exact_builder, exact) = exact_cache.as_ref().expect("just built");
                let scc_span = tel.span(Phase::SccAnalysis);
                let exact_candidates = find_fair_starvation(exact, v, spec);
                scc_span.finish(Sample {
                    states: exact.len() as u64,
                    ..Sample::default()
                });
                if let Some(scc) = exact_candidates.first() {
                    let witness_span = tel.span(Phase::WitnessValidation);
                    let witness = extract_witness(
                        exact_builder.engine(),
                        exact,
                        scc,
                        v,
                        spec,
                        procs.clone(),
                        1,
                    )
                    .expect("exact fair SCCs concretize");
                    validate_lasso(&memory, &procs, &witness, spec)
                        .expect("exact lassos validate against the un-reduced semantics");
                    witness_span.finish(Sample {
                        states: 1,
                        ..Sample::default()
                    });
                    stats.wall_ns = check_span.finish(stats.final_sample());
                    return Ok(LivenessReport {
                        verdict: LivenessVerdict::Starvable(Box::new(witness)),
                        stats,
                    });
                }
                // Bypass for this victim, settled on the exact graph —
                // its labels are concrete, so a derived witness always
                // validates.
                let Some(a) = bypass else { continue };
                let (bound, plan) = measure_bypass(exact, v, spec);
                match bound {
                    None => {
                        bypass = None;
                        bypass_witness = None;
                    }
                    Some(b) => {
                        if b > a || (b == a && bypass_witness.is_none()) {
                            bypass_witness = plan.map(|plan| {
                                let w = concretize_bypass(
                                    exact_builder.engine(),
                                    exact,
                                    &plan,
                                    v,
                                    b,
                                    spec,
                                    &procs,
                                );
                                validate_bypass(&memory, &procs, &w, spec)
                                    .expect("exact bypass witnesses validate");
                                Box::new(w)
                            });
                        }
                        bypass = Some(a.max(b));
                    }
                }
                continue;
            }
            // Bypass for this victim on the (possibly quotient) graph.
            let Some(a) = bypass else { continue };
            let (bound, plan) = measure_bypass(&graph, v, spec);
            match bound {
                None => {
                    bypass = None;
                    bypass_witness = None;
                }
                Some(b) => {
                    if b > a || (b == a && bypass_witness.is_none()) {
                        bypass_witness = None;
                        if let Some(plan) = plan {
                            let w = concretize_bypass(
                                builder.engine(),
                                &graph,
                                &plan,
                                v,
                                b,
                                spec,
                                &procs,
                            );
                            if validate_bypass(&memory, &procs, &w, spec).is_ok() {
                                bypass_witness = Some(Box::new(w));
                            } else {
                                // The quotient's slot labels admitted a
                                // path no concrete run realizes: settle
                                // the witness on the exact graph (the
                                // bound itself is quotient-invariant —
                                // differential suites assert it). A
                                // budget failure here only forfeits the
                                // witness, never the verdict.
                                debug_assert!(
                                    sym_quotient,
                                    "exact bypass witnesses validate"
                                );
                                if exact_cache.is_none() {
                                    if let Ok(built) =
                                        exact_graph(&memory, &procs, config, spec, &mut stats)
                                    {
                                        exact_cache = Some(built);
                                    }
                                }
                                if let Some((exact_builder, exact)) = exact_cache.as_ref() {
                                    let (ebound, eplan) = measure_bypass(exact, v, spec);
                                    debug_assert_eq!(
                                        ebound,
                                        Some(b),
                                        "quotient and exact bypass bounds agree"
                                    );
                                    if ebound == Some(b) {
                                        if let Some(eplan) = eplan {
                                            let w = concretize_bypass(
                                                exact_builder.engine(),
                                                exact,
                                                &eplan,
                                                v,
                                                b,
                                                spec,
                                                &procs,
                                            );
                                            validate_bypass(&memory, &procs, &w, spec)
                                                .expect("exact bypass witnesses validate");
                                            bypass_witness = Some(Box::new(w));
                                        }
                                    }
                                }
                            }
                        }
                    }
                    bypass = Some(a.max(b));
                }
            }
        }
    }
    stats.wall_ns = check_span.finish(stats.final_sample());
    Ok(LivenessReport {
        verdict: LivenessVerdict::StarvationFree {
            bypass,
            witness: bypass_witness,
        },
        stats,
    })
}

/// Builds one labeled liveness graph over the unified traversal driver:
/// BFS order, recorded edges (service labels from the spec), the
/// liveness-safe ample mode, and the spec's normalizer. Accumulates the
/// traversal's counters into `stats`.
fn liveness_graph<'s, P>(
    memory: &Memory,
    procs: &[P],
    group: SymmetryGroup,
    config: ExploreConfig,
    spec: &LivenessSpec<'s, P>,
    stats: &mut LivenessStats,
) -> Result<(GraphBuilder<'s, P>, BuiltGraph<P>), ExploreError>
where
    P: Process + Clone + Eq + Hash,
{
    let traversal = TraversalSpec {
        order: Order::Bfs,
        record_edges: true,
        ample_mode: AmpleMode::Liveness,
        symmetry: group,
        normalizer: spec.normalize,
        served: Some(spec.served),
        crash_budget: config.max_crashes,
        phase: Phase::LivenessGraph,
    };
    let mut builder = GraphBuilder::new(memory.clone(), config, traversal, procs.len());
    let (graph, t) = builder.build_graph(procs.to_vec())?;
    stats.states += t.states;
    stats.transitions += t.transitions;
    stats.states_pruned_por += t.states_pruned_por;
    stats.orbits_merged += t.orbits_merged;
    stats.footprint.accumulate(&t.footprint);
    stats.graphs += 1;
    Ok((builder, graph))
}

/// The exact (trivial-group) liveness graph used to settle quotient
/// artifacts and re-derive witnesses with concrete edge labels.
fn exact_graph<'s, P>(
    memory: &Memory,
    procs: &[P],
    config: ExploreConfig,
    spec: &LivenessSpec<'s, P>,
    stats: &mut LivenessStats,
) -> Result<(GraphBuilder<'s, P>, BuiltGraph<P>), ExploreError>
where
    P: Process + Clone + Eq + Hash,
{
    let exact_config = ExploreConfig {
        symmetry: false,
        ..config
    };
    liveness_graph(
        memory,
        procs,
        SymmetryGroup::trivial(procs.len()),
        exact_config,
        spec,
        stats,
    )
}

/// Strongly connected components of the subgraph induced by `active`
/// nodes, via iterative Tarjan. Emitted in reverse topological order of
/// the condensation (every SCC before each of its predecessors).
fn tarjan_sccs(edges: &EdgeArena, active: &[bool]) -> Vec<Vec<u32>> {
    const UNSEEN: u32 = u32::MAX;
    let n = active.len();
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut sccs: Vec<Vec<u32>> = Vec::new();
    let mut next = 0u32;
    let mut call: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if !active[start] || index[start] != UNSEEN {
            continue;
        }
        call.push((start, 0));
        while let Some(frame) = call.last_mut() {
            let v = frame.0;
            if index[v] == UNSEEN {
                index[v] = next;
                low[v] = next;
                next += 1;
                stack.push(v as u32);
                on_stack[v] = true;
            }
            let mut descend = None;
            while frame.1 < edges.degree(v) {
                let w = edges.edge(v, frame.1).to as usize;
                frame.1 += 1;
                if !active[w] {
                    continue;
                }
                if index[w] == UNSEEN {
                    descend = Some(w);
                    break;
                }
                if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            }
            if let Some(w) = descend {
                call.push((w, 0));
                continue;
            }
            call.pop();
            if let Some(&(p, _)) = call.last() {
                low[p] = low[p].min(low[v]);
            }
            if low[v] == index[v] {
                let mut scc = Vec::new();
                loop {
                    let w = stack.pop().expect("Tarjan stack holds the SCC");
                    on_stack[w as usize] = false;
                    scc.push(w);
                    if w as usize == v {
                        break;
                    }
                }
                sccs.push(scc);
            }
        }
    }
    sccs
}

/// Marks the nodes where `victim` is running and pending.
fn pending_mask<P: Process + Clone + Eq + Hash>(
    g: &BuiltGraph<P>,
    victim: usize,
    spec: &LivenessSpec<'_, P>,
) -> Vec<bool> {
    (0..g.len())
        .map(|i| {
            let node = g.node(i as u32);
            node.status[victim].runnable() && (spec.pending)(&node.procs[victim])
        })
        .collect()
}

/// Finds the weakly fair SCCs that starve `victim`: nontrivial SCCs of
/// the victim-pending subgraph whose internal step edges cover every
/// running process.
///
/// Under a symmetry quotient the edge labels are canonical *slots*, not
/// concrete process identities — one concrete process's steps can show
/// up under several slots as its peers permute around it — so coverage
/// here is a candidate test, not a proof: every returned SCC must be
/// confirmed by concretizing a lasso and [`validate_lasso`]-ing it (the
/// caller falls back to an exact graph when no candidate survives).
/// Without symmetry the labels are concrete and the test is exact.
fn find_fair_starvation<P>(
    g: &BuiltGraph<P>,
    victim: usize,
    spec: &LivenessSpec<'_, P>,
) -> Vec<Vec<u32>>
where
    P: Process + Clone + Eq + Hash,
{
    let mut fair = Vec::new();
    let active = pending_mask(g, victim, spec);
    let mut member = vec![false; g.len()];
    'sccs: for scc in tarjan_sccs(&g.edges, &active) {
        for &v in &scc {
            member[v as usize] = true;
        }
        let internal = |e: &GEdge| member[e.to as usize];
        // Statuses are constant across an SCC (Done/Crashed absorb, and
        // a crash edge cannot be internal: the crash budget decreases),
        // so the fairness obligation can be read off any member.
        let rep = g.node(scc[0]);
        let running: Vec<u32> = (0..rep.status.len() as u32)
            .filter(|&q| rep.status[q as usize].runnable())
            .collect();
        let mut covered = vec![false; rep.status.len()];
        let mut nontrivial = scc.len() > 1;
        for &v in &scc {
            for e in g.edges.edges(v as usize) {
                if internal(&e) {
                    debug_assert!(!e.crash, "crash edges cannot close cycles");
                    covered[e.pid as usize] = true;
                    nontrivial = true;
                }
            }
        }
        for &v in &scc {
            member[v as usize] = false;
        }
        if !nontrivial {
            continue;
        }
        for &q in &running {
            if !covered[q as usize] {
                continue 'sccs; // some running process is denied steps: unfair
            }
        }
        fair.push(scc);
    }
    fair
}

/// A canonical-level bypass path: the node the overtaking run starts at
/// (the stem target) and its hops, each `(target node, pid hint)` — the
/// shape [`concretize_bypass`] turns into a concrete schedule.
#[derive(Clone, Debug)]
struct BypassPlan {
    start: u32,
    hops: Vec<(u32, u32)>,
}

/// Measures the bypass bound of `victim` on the engaged-pending
/// subgraph — `None` (unbounded) iff some SCC of that subgraph contains
/// a service-by-other edge, else the longest service-weighted path over
/// the SCC condensation — together with a [`BypassPlan`] tracing a path
/// that achieves the bound (absent when the bound is unbounded, or when
/// no reachable state has the victim pending and engaged).
fn measure_bypass<P>(
    g: &BuiltGraph<P>,
    victim: usize,
    spec: &LivenessSpec<'_, P>,
) -> (Option<u64>, Option<BypassPlan>)
where
    P: Process + Clone + Eq + Hash,
{
    let active: Vec<bool> = (0..g.len())
        .map(|i| {
            let node = g.node(i as u32);
            node.status[victim].runnable()
                && (spec.pending)(&node.procs[victim])
                && (spec.engaged)(&node.procs[victim])
        })
        .collect();
    let weight = |e: &GEdge| u64::from(e.served && !e.crash && e.pid as usize != victim);

    let sccs = tarjan_sccs(&g.edges, &active);
    let mut scc_id = vec![u32::MAX; g.len()];
    for (k, scc) in sccs.iter().enumerate() {
        for &v in scc {
            scc_id[v as usize] = k as u32;
        }
    }
    // Tarjan emits successors first, so one pass in emission order sees
    // every successor component's best value before its predecessors.
    // `choice[k]` remembers the outgoing edge achieving `best[k]`, for
    // path reconstruction.
    let mut best = vec![0u64; sccs.len()];
    let mut choice: Vec<Option<(u32, usize)>> = vec![None; sccs.len()];
    let mut answer = 0u64;
    let mut arg: Option<usize> = None;
    for (k, scc) in sccs.iter().enumerate() {
        let mut b = 0u64;
        let mut ch = None;
        for &v in scc {
            for (ei, e) in g.edges.edges(v as usize).enumerate() {
                if !active[e.to as usize] {
                    continue;
                }
                let m = scc_id[e.to as usize] as usize;
                if m == k {
                    if weight(&e) > 0 {
                        return (None, None); // pumpable overtaking cycle
                    }
                } else {
                    let cand = weight(&e) + best[m];
                    if cand > b {
                        b = cand;
                        ch = Some((v, ei));
                    }
                }
            }
        }
        best[k] = b;
        choice[k] = ch;
        if b > answer || arg.is_none() {
            answer = answer.max(b);
            arg = Some(k);
        }
    }

    // Trace out a path achieving `answer`: start inside the best SCC,
    // follow each component's chosen edge, routing between chosen edges
    // through intra-SCC hops (all weight 0, all active). `arg` is `None`
    // exactly when no reachable state is engaged-pending at all.
    let Some(start_scc) = arg else {
        return (Some(answer), None);
    };
    let mut hops: Vec<(u32, u32)> = Vec::new();
    let mut k = start_scc;
    let start = choice[k].map_or(sccs[k][0], |(v, _)| v);
    let mut cur = start;
    while let Some((v, ei)) = choice[k] {
        if cur != v {
            let mut member = vec![false; g.len()];
            for &x in &sccs[k] {
                member[x as usize] = true;
            }
            hops.extend(path_in_scc(g, &member, cur, v));
        }
        let e = g.edges.edge(v as usize, ei);
        hops.push((e.to, e.pid));
        cur = e.to;
        k = scc_id[cur as usize] as usize;
    }
    (Some(answer), Some(BypassPlan { start, hops }))
}

/// Turns a canonical-level [`BypassPlan`] into a concrete
/// [`BypassWitness`]: the stem is re-derived along the creator tree to
/// the plan's start node, the overtaking suffix along its hops —
/// exactly the re-derivation the lasso extractor uses, so every hop has
/// a concrete realization. The overtake count recorded in the witness
/// is the count the *concrete* schedule achieves (a stabilizer quotient
/// can in principle mislabel a serve, which is why the caller validates
/// the witness and falls back to the exact graph on a mismatch).
fn concretize_bypass<P>(
    engine: &Engine<P>,
    g: &BuiltGraph<P>,
    plan: &BypassPlan,
    victim: usize,
    bound: u64,
    spec: &LivenessSpec<'_, P>,
    procs: &[P],
) -> BypassWitness
where
    P: Process + Clone + Eq + Hash,
{
    let normalize = |node: &mut Node<P>| {
        if let Some(f) = spec.normalize {
            f(&mut node.procs, &mut node.values);
        }
    };
    let mut stem_ids = vec![plan.start];
    while *stem_ids.last().expect("nonempty") != 0 {
        let id = *stem_ids.last().expect("nonempty");
        stem_ids.push(g.first_pred[id as usize]);
    }
    stem_ids.reverse();

    let mut cur = engine.root(procs.to_vec());
    normalize(&mut cur);
    let mut stem = Vec::with_capacity(stem_ids.len() - 1);
    for &id in &stem_ids[1..] {
        let (step, next) = derive_step(engine, &cur, &g.node(id), None, spec);
        stem.push(step);
        cur = next;
    }
    let mut overtaking = Vec::with_capacity(plan.hops.len());
    for &(target, hint) in &plan.hops {
        let (step, next) = derive_step(engine, &cur, &g.node(target), Some(hint as usize), spec);
        overtaking.push(step);
        cur = next;
    }
    BypassWitness {
        victim: ProcessId::new(victim as u32),
        bypass: bound,
        stem,
        overtaking,
    }
}

/// Rebuilds a concrete, replayable lasso from a fair-candidate SCC of
/// the canonical quotient, or `None` when the candidate is a quotient
/// artifact (slot-labeled coverage that no concrete fair loop realizes).
///
/// The representative-level loop (one covering edge per running process,
/// connected by intra-SCC paths) is first threaded through the quotient,
/// then *unrolled* concretely: one revolution returns to the loop
/// entry's orbit but possibly to a permuted sibling, so revolutions are
/// repeated until a concrete lap-boundary state recurs — bounded by the
/// group order, since boundaries stay within one finite orbit. A
/// process whose hops were absorbed by an identical-state sibling is
/// repaired with an explicit self-loop spin; candidates that cannot be
/// repaired are rejected. Survivors are still re-checked by
/// [`validate_lasso`] before being reported.
fn extract_witness<P>(
    engine: &Engine<P>,
    g: &BuiltGraph<P>,
    scc: &[u32],
    victim: usize,
    spec: &LivenessSpec<'_, P>,
    procs: Vec<P>,
    group_order: u64,
) -> Option<LassoWitness>
where
    P: Process + Clone + Eq + Hash,
{
    let mut member = vec![false; g.len()];
    for &v in scc {
        member[v as usize] = true;
    }
    let rep = g.node(scc[0]);
    let running: Vec<u32> = (0..rep.status.len() as u32)
        .filter(|&q| rep.status[q as usize].runnable())
        .collect();

    // Representative-level loop: visit one covering edge per running
    // process, linked by BFS paths inside the SCC, and close back.
    let c0 = scc[0];
    let mut hops: Vec<(u32, u32)> = Vec::new(); // (target node, pid hint)
    let mut cur = c0;
    for &q in &running {
        let (from, edge) = scc
            .iter()
            .flat_map(|&v| g.edges.edges(v as usize).map(move |e| (v, e)))
            .find(|(_, e)| member[e.to as usize] && !e.crash && e.pid == q)
            .expect("fair SCC covers every running process");
        hops.extend(path_in_scc(g, &member, cur, from));
        hops.push((edge.to, edge.pid));
        cur = edge.to;
    }
    hops.extend(path_in_scc(g, &member, cur, c0));
    assert!(!hops.is_empty(), "fair SCC yields a nonempty loop");

    // Stem at the representative level, via the creator tree.
    let mut stem_ids = vec![c0];
    while *stem_ids.last().expect("nonempty") != 0 {
        let id = *stem_ids.last().expect("nonempty");
        stem_ids.push(g.first_pred[id as usize]);
    }
    stem_ids.reverse();

    // Concrete stem.
    let normalize = |node: &mut Node<P>| {
        if let Some(f) = spec.normalize {
            f(&mut node.procs, &mut node.values);
        }
    };
    let mut cur_node = engine.root(procs);
    normalize(&mut cur_node);
    let mut stem = Vec::new();
    for &id in &stem_ids[1..] {
        let (step, next) = derive_step(engine, &cur_node, &g.node(id), None, spec);
        stem.push(step);
        cur_node = next;
    }

    // Concrete laps, unrolled until a boundary state recurs.
    let mut boundaries = vec![cur_node.clone()];
    let mut laps: Vec<Vec<ScheduleStep>> = Vec::new();
    let prefix_laps = loop {
        let mut lap = Vec::with_capacity(hops.len());
        for &(target, hint) in &hops {
            let (step, next) =
                derive_step(engine, &cur_node, &g.node(target), Some(hint as usize), spec);
            lap.push(step);
            cur_node = next;
        }
        laps.push(lap);
        if let Some(j) = boundaries.iter().position(|b| *b == cur_node) {
            break j;
        }
        if laps.len() as u64 > group_order {
            debug_assert!(false, "lap boundaries must recur within the orbit");
            return None;
        }
        boundaries.push(cur_node.clone());
    };

    // Laps before the recurrence extend the stem; the recurring laps are
    // the genuine loop.
    let mut cycle = Vec::new();
    for lap in laps.drain(prefix_laps..) {
        cycle.extend(lap);
    }
    for lap in laps {
        stem.extend(lap);
    }

    // Fairness repair. Canonical matching cannot tell interchangeable
    // processes in identical local states apart, so one spinner can
    // absorb a sibling's hop during re-derivation and leave the sibling
    // unstepped. Any such absorbed step was state-preserving, so the
    // sibling's own step is a self-loop at some state of the loop:
    // insert it explicitly there — closure, pendingness, and everyone
    // else's steps are untouched.
    let loop_entry = boundaries[prefix_laps].clone();
    let mut states = vec![loop_entry];
    let mut stepped = vec![false; states[0].status.len()];
    for s in &cycle {
        let ScheduleStep::Step(pid) = s else {
            unreachable!("loops contain no crash edges")
        };
        stepped[pid.index()] = true;
        let mut next =
            expand_step(states.last().expect("nonempty"), pid.index(), engine.template())
                .expect("witness steps replay the explored semantics");
        normalize(&mut next);
        states.push(next);
    }
    let mut repairs: Vec<(usize, ScheduleStep)> = Vec::new();
    for q in running.iter().map(|&q| q as usize) {
        if stepped[q] {
            continue;
        }
        // No in-place spin to insert: the candidate has no concrete
        // weakly fair realization through this loop.
        let repair = states.iter().enumerate().find_map(|(k, s)| {
            let mut succ = expand_step(s, q, engine.template()).ok()?;
            normalize(&mut succ);
            (succ == *s).then_some((k, ScheduleStep::Step(ProcessId::new(q as u32))))
        })?;
        repairs.push(repair);
    }
    // Positions were computed against the pristine loop, so apply the
    // insertions back to front to keep them aligned.
    repairs.sort_by_key(|&(at, _)| std::cmp::Reverse(at));
    for (at, spin) in repairs {
        cycle.insert(at, spin);
    }

    Some(LassoWitness {
        victim: ProcessId::new(victim as u32),
        message: format!(
            "weak fairness does not save process {victim}: it stays pending around a \
             {}-step loop in which every running process keeps stepping",
            cycle.len()
        ),
        lasso: Lasso { stem, cycle },
    })
}

/// BFS path between two nodes inside an SCC, as (target, pid hint) hops.
fn path_in_scc<P>(g: &BuiltGraph<P>, member: &[bool], from: u32, to: u32) -> Vec<(u32, u32)> {
    if from == to {
        return Vec::new();
    }
    let mut prev: HashMap<u32, (u32, u32)> = HashMap::new(); // node -> (pred, pid)
    let mut queue = std::collections::VecDeque::from([from]);
    while let Some(v) = queue.pop_front() {
        for e in g.edges.edges(v as usize) {
            if !member[e.to as usize] || e.to == from || prev.contains_key(&e.to) {
                continue;
            }
            prev.insert(e.to, (v, e.pid));
            if e.to == to {
                let mut hops = Vec::new();
                let mut cur = to;
                while cur != from {
                    let (p, pid) = prev[&cur];
                    hops.push((cur, pid));
                    cur = p;
                }
                hops.reverse();
                return hops;
            }
            queue.push_back(e.to);
        }
    }
    unreachable!("SCC members are mutually reachable")
}

/// Finds a concrete step (or crash) from `cur` whose normalized
/// successor falls into the orbit of `target`, preferring the hinted
/// process.
fn derive_step<P>(
    engine: &Engine<P>,
    cur: &Node<P>,
    target: &Node<P>,
    hint: Option<usize>,
    spec: &LivenessSpec<'_, P>,
) -> (ScheduleStep, Node<P>)
where
    P: Process + Clone + Eq + Hash,
{
    let n = cur.status.len();
    let order: Vec<usize> = hint
        .into_iter()
        .chain((0..n).filter(|&i| Some(i) != hint))
        .filter(|&i| cur.status[i].runnable())
        .collect();
    for i in order {
        let mut succ = expand_step(cur, i, engine.template())
            .expect("witness steps replay the explored semantics");
        if let Some(f) = spec.normalize {
            f(&mut succ.procs, &mut succ.values);
        }
        if engine.matches_canonical(&succ, target) {
            return (ScheduleStep::Step(ProcessId::new(i as u32)), succ);
        }
        if cur.crashes_left > 0 {
            let mut crashed = cur.clone();
            crashed.status[i] = Status::Crashed;
            crashed.crashes_left -= 1;
            if let Some(f) = spec.normalize {
                f(&mut crashed.procs, &mut crashed.values);
            }
            if engine.matches_canonical(&crashed, target) {
                return (ScheduleStep::Crash(ProcessId::new(i as u32)), crashed);
            }
        }
    }
    unreachable!("every edge of the canonical quotient has a concrete witness")
}

/// Validates a starvation witness against the plain, un-reduced step
/// semantics: the stem must [`replay`] cleanly; the loop must return to
/// its entry state (modulo the spec's normalizer); the victim must be
/// running and pending at every state of the loop; and every process
/// running in the loop must take at least one step per revolution (weak
/// fairness). This is exactly the meaning of "`victim` is starved by a
/// weakly fair schedule", checked with no reduction in the loop.
///
/// # Errors
///
/// Returns a description of the first property the lasso fails.
pub fn validate_lasso<P>(
    memory: &Memory,
    procs: &[P],
    witness: &LassoWitness,
    spec: &LivenessSpec<'_, P>,
) -> Result<(), String>
where
    P: Process + Clone + Eq + Hash,
{
    use cfc_core::{OpResult, Step};

    if witness.lasso.cycle.is_empty() {
        return Err("empty loop".into());
    }
    let start = replay(memory.clone(), procs.to_vec(), &witness.lasso.stem)
        .map_err(|e| format!("stem does not replay: {e}"))?;
    let v = witness.victim.index();

    let mut cur_procs = start.procs.clone();
    let mut mem = start.memory.clone();
    let mut status = start.status.clone();
    let mut stepped = vec![false; cur_procs.len()];
    for (k, s) in witness.lasso.cycle.iter().enumerate() {
        if !status[v].runnable() || !(spec.pending)(&cur_procs[v]) {
            return Err(format!("victim not pending at loop step {k}"));
        }
        let ScheduleStep::Step(pid) = s else {
            return Err(format!("crash inside the loop at step {k}"));
        };
        let i = pid.index();
        if !status[i].runnable() {
            return Err(format!("loop steps non-running process {pid} at step {k}"));
        }
        match cur_procs[i].current() {
            Step::Halt => status[i] = Status::Done,
            Step::Internal => cur_procs[i].advance(OpResult::None),
            Step::Op(op) => {
                let result = mem
                    .apply(&op)
                    .map_err(|e| format!("loop step {k} fails to apply: {e}"))?;
                cur_procs[i].advance(result);
            }
        }
        stepped[i] = true;
    }
    if !status[v].runnable() || !(spec.pending)(&cur_procs[v]) {
        return Err("victim not pending at loop close".into());
    }
    for (q, st) in start.status.iter().enumerate() {
        if st.runnable() && !stepped[q] {
            return Err(format!("loop is not weakly fair: process {q} never steps"));
        }
    }
    if status != start.status {
        return Err("loop changes liveness statuses".into());
    }

    // Closure modulo the normalizer: the loop must return to a state the
    // checked semantics cannot distinguish from its entry.
    let mut a_procs = start.procs.clone();
    let mut a_values = start.memory.snapshot().to_vec();
    let mut b_procs = cur_procs;
    let mut b_values = mem.snapshot().to_vec();
    if let Some(f) = spec.normalize {
        f(&mut a_procs, &mut a_values);
        f(&mut b_procs, &mut b_values);
    }
    if a_procs != b_procs || a_values != b_values {
        return Err("loop does not return to its entry state".into());
    }
    Ok(())
}

/// Validates a bypass witness against the plain, un-reduced step
/// semantics, mirroring [`validate_lasso`]: the stem must [`replay`]
/// cleanly to a state where the victim is running, pending, **and**
/// engaged; the overtaking suffix must keep the victim pending and
/// engaged at every state; and the number of steps in which another
/// process is served — counted here independently, by re-executing the
/// schedule — must equal the witness's claimed `bypass`. This is
/// exactly the meaning of "`victim` completes its doorway and is then
/// overtaken `bypass` times", checked with no reduction in the loop.
///
/// # Errors
///
/// Returns a description of the first property the witness fails.
pub fn validate_bypass<P>(
    memory: &Memory,
    procs: &[P],
    witness: &BypassWitness,
    spec: &LivenessSpec<'_, P>,
) -> Result<(), String>
where
    P: Process + Clone + Eq + Hash,
{
    use cfc_core::{OpResult, Step};

    let start = replay(memory.clone(), procs.to_vec(), &witness.stem)
        .map_err(|e| format!("stem does not replay: {e}"))?;
    let v = witness.victim.index();
    let check = |procs: &[P], status: &[Status], at: &str| -> Result<(), String> {
        if !status[v].runnable() {
            return Err(format!("victim not running {at}"));
        }
        if !(spec.pending)(&procs[v]) {
            return Err(format!("victim not pending {at}"));
        }
        if !(spec.engaged)(&procs[v]) {
            return Err(format!("victim not engaged {at}"));
        }
        Ok(())
    };
    check(&start.procs, &start.status, "after the stem")?;

    let mut cur = start.procs;
    let mut mem = start.memory;
    let mut status = start.status;
    let mut overtakes = 0u64;
    for (k, s) in witness.overtaking.iter().enumerate() {
        match s {
            ScheduleStep::Crash(pid) => {
                let i = pid.index();
                if !status[i].runnable() {
                    return Err(format!("overtaking step {k} crashes non-running {pid}"));
                }
                status[i] = Status::Crashed;
            }
            ScheduleStep::Step(pid) => {
                let i = pid.index();
                if !status[i].runnable() {
                    return Err(format!("overtaking step {k} steps non-running {pid}"));
                }
                let before = cur[i].clone();
                match cur[i].current() {
                    Step::Halt => status[i] = Status::Done,
                    Step::Internal => cur[i].advance(OpResult::None),
                    Step::Op(op) => {
                        let result = mem
                            .apply(&op)
                            .map_err(|e| format!("overtaking step {k} fails to apply: {e}"))?;
                        cur[i].advance(result);
                    }
                }
                if i != v && (spec.served)(&before, &cur[i]) {
                    overtakes += 1;
                }
            }
        }
        check(&cur, &status, &format!("at overtaking step {}", k + 1))?;
    }
    if overtakes != witness.bypass {
        return Err(format!(
            "schedule overtakes the victim {overtakes} times, witness claims {}",
            witness.bypass
        ));
    }
    Ok(())
}

/// The [`LivenessSpec`] of mutual exclusion over cycling clients.
fn mutex_spec<'a, L>(
    normalize: Option<NormalizeFn<'a, MutexClient<L>>>,
) -> LivenessSpec<'a, MutexClient<L>>
where
    L: cfc_mutex::LockProcess + 'static,
{
    LivenessSpec {
        pending: &|c: &MutexClient<L>| c.section() == Some(Section::Entry),
        engaged: &|c: &MutexClient<L>| c.engaged(),
        served: &|before: &MutexClient<L>, after: &MutexClient<L>| {
            before.section() != Some(Section::Critical)
                && after.section() == Some(Section::Critical)
        },
        normalize,
    }
}

/// Exhaustively checks a mutual-exclusion algorithm for **starvation
/// freedom under weak fairness**, and measures its **bypass bound**.
///
/// The system is the algorithm's full set of clients cycling through
/// entry → critical section (one observable step) → exit **forever**:
/// its fair infinite behaviors are exactly the fair cycles of the finite
/// state graph, which [`check_liveness_sym`] hunts per victim (one per
/// symmetry class under `config.symmetry`, with the victim pinned by the
/// class stabilizer). Algorithms with unbounded auxiliary state supply a
/// [`cfc_mutex::StateNormalizer`] (the bakery's ticket shift) to keep
/// the graph finite.
///
/// Expected classifications, asserted in `tests/liveness.rs` and
/// `tests/starvation.rs`: Peterson starvation-free with bypass bound 1;
/// the bakery starvation-free (FCFS); Lamport's fast mutex and the plain
/// test-and-set lock starvable, each with a concrete validated lasso;
/// tournaments starvation-free level by level.
///
/// # Errors
///
/// Budget or memory errors, as [`check_liveness_sym`].
pub fn check_mutex_starvation<A>(
    alg: &A,
    config: ExploreConfig,
) -> Result<LivenessReport, ExploreError>
where
    A: MutexAlgorithm,
    A::Lock: Clone + Eq + Hash + 'static,
{
    let memory = alg.memory().map_err(ExploreError::Memory)?;
    let clients: Vec<_> = (0..alg.n() as u32)
        .map(|i| alg.client_cycling(ProcessId::new(i), 1))
        .collect();
    let normalizer = alg.liveness_normalizer();
    let spec = mutex_spec(
        normalizer
            .as_deref()
            .map(|f| f as &dyn Fn(&mut [MutexClient<A::Lock>], &mut [Value])),
    );
    check_liveness_sym(memory, clients, &alg.symmetry(), config, &spec)
}

/// Exhaustively checks a naming algorithm for **lockout freedom**: no
/// weakly fair schedule (with up to `max_crashes` crashes) keeps a
/// walker running-but-nameless forever.
///
/// The Section 3 algorithms are wait-free — every walker decides within
/// a bounded number of its *own* steps — so they pass outright: their
/// graphs contain no cycle in which an undecided walker steps at all.
/// The check still earns its keep as a differential oracle (a regression
/// that introduces a spin loop would surface here first) and reports the
/// naming analogue of bypass: how many peers can be named while a walker
/// is still undecided.
///
/// # Errors
///
/// Budget or memory errors, as [`check_liveness_sym`].
pub fn check_naming_lockout<A>(
    alg: &A,
    max_crashes: u32,
    config: ExploreConfig,
) -> Result<LivenessReport, ExploreError>
where
    A: NamingAlgorithm,
    A::Proc: Clone + Eq + Hash,
{
    let memory = alg.memory().map_err(ExploreError::Memory)?;
    let spec = LivenessSpec {
        pending: &|p: &A::Proc| p.output().is_none(),
        engaged: &|p: &A::Proc| p.output().is_none(),
        served: &|before: &A::Proc, after: &A::Proc| {
            before.output().is_none() && after.output().is_some()
        },
        normalize: None,
    };
    check_liveness_sym(
        memory,
        alg.processes(),
        &alg.symmetry(),
        ExploreConfig {
            max_crashes,
            ..config
        },
        &spec,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_mutex::{Bakery, LamportFast, PetersonTwo, TasSpin};
    use cfc_naming::{TafTree, TasScan};

    #[test]
    fn tas_spin_is_starvable_with_a_validated_lasso() {
        let alg = TasSpin::new(2);
        let report = check_mutex_starvation(&alg, ExploreConfig::default()).unwrap();
        let witness = report.witness().expect("tas-spin must starve");
        assert!(!witness.lasso.cycle.is_empty());
        // The loop keeps the victim out while the winner cycles; the
        // victim's own spin steps are part of the loop (weak fairness).
        let v = witness.victim;
        assert!(witness
            .lasso
            .cycle
            .iter()
            .any(|s| matches!(s, ScheduleStep::Step(p) if *p == v)));
        assert!(witness
            .lasso
            .cycle
            .iter()
            .any(|s| matches!(s, ScheduleStep::Step(p) if *p != v)));
        // And it replays: the stem plus one revolution is a plain
        // schedule of the un-reduced semantics.
        let clients: Vec<_> = (0..2)
            .map(|i| alg.client_cycling(ProcessId::new(i), 1))
            .collect();
        replay(alg.memory().unwrap(), clients, &witness.lasso.unrolled()).unwrap();
    }

    #[test]
    fn peterson_is_starvation_free_with_bypass_one() {
        let alg = PetersonTwo::new();
        let report = check_mutex_starvation(&alg, ExploreConfig::default()).unwrap();
        assert!(report.is_starvation_free());
        assert_eq!(report.bypass(), Some(Some(1)));
        assert_eq!(report.stats.victims, 2);
        // The measured bound is backed by a validated witness: a concrete
        // schedule in which an engaged waiter really is overtaken once.
        let witness = report.bypass_witness().expect("bounded bypass => witness");
        assert_eq!(witness.bypass, 1);
        let clients: Vec<_> = (0..2)
            .map(|i| alg.client_cycling(ProcessId::new(i), 1))
            .collect();
        validate_bypass(&alg.memory().unwrap(), &clients, witness, &mutex_spec(None)).unwrap();
    }

    #[test]
    fn tampered_bypass_witnesses_are_rejected() {
        let alg = PetersonTwo::new();
        let report = check_mutex_starvation(&alg, ExploreConfig::default()).unwrap();
        let witness = report.bypass_witness().unwrap().clone();
        let clients: Vec<_> = (0..2)
            .map(|i| alg.client_cycling(ProcessId::new(i), 1))
            .collect();
        let spec = mutex_spec(None);
        let memory = alg.memory().unwrap();
        validate_bypass(&memory, &clients, &witness, &spec).unwrap();

        // Claiming one more overtake than the schedule performs fails the
        // independent recount.
        let mut inflated = witness.clone();
        inflated.bypass += 1;
        let err = validate_bypass(&memory, &clients, &inflated, &spec).unwrap_err();
        assert!(err.contains("overtakes"), "{err}");

        // Dropping the stem leaves the victim un-engaged.
        let mut stemless = witness.clone();
        stemless.stem.clear();
        let err = validate_bypass(&memory, &clients, &stemless, &spec).unwrap_err();
        assert!(err.contains("engaged") || err.contains("pending"), "{err}");

        // Dropping the overtaking suffix breaks the independent recount:
        // zero observed overtakes cannot back a claimed bound of one.
        let mut truncated = witness;
        truncated.overtaking.clear();
        let err = validate_bypass(&memory, &clients, &truncated, &spec).unwrap_err();
        assert!(err.contains("overtakes the victim 0 times"), "{err}");
    }

    #[test]
    fn lamport_fast_is_starvable() {
        let report =
            check_mutex_starvation(&LamportFast::new(2), ExploreConfig::default()).unwrap();
        let witness = report.witness().expect("lamport-fast must starve");
        assert!(witness.message.contains("pending"));
    }

    #[test]
    fn bakery_is_starvation_free_via_the_ticket_quotient() {
        let alg = Bakery::new(2);
        let report = check_mutex_starvation(&alg, ExploreConfig::default()).unwrap();
        assert!(report.is_starvation_free());
        // The witness schedule was derived through the ticket-shift
        // quotient but must validate against the raw semantics.
        let witness = report.bypass_witness().expect("bounded bypass => witness");
        assert_eq!(witness.bypass, 2);
        let clients: Vec<_> = (0..2)
            .map(|i| alg.client_cycling(ProcessId::new(i), 1))
            .collect();
        validate_bypass(&alg.memory().unwrap(), &clients, witness, &mutex_spec(None)).unwrap();
        // FCFS protects doorway-*completed* waiters, and bypass counting
        // starts earlier (at the victim's first entry step), so the lone
        // competitor overtakes exactly twice: once from a gate check
        // already in flight, and once more by re-running its doorway
        // while the victim is still mid-scan (the victim's `number` is
        // still 0, so the competitor draws a smaller ticket). The
        // victim's own ticket then blocks any third pass.
        assert_eq!(report.bypass(), Some(Some(2)));
    }

    #[test]
    fn naming_walkers_are_lockout_free() {
        let alg = TasScan::new(3);
        let report = check_naming_lockout(&alg, 1, ExploreConfig::default()).unwrap();
        assert!(report.is_starvation_free());
        // The naming bypass bound carries a witness too, validated under
        // the naming spec (pending = engaged = still nameless).
        let witness = report.bypass_witness().expect("bounded => witness");
        let spec = LivenessSpec {
            pending: &|p: &<TasScan as cfc_naming::NamingAlgorithm>::Proc| p.output().is_none(),
            engaged: &|p: &<TasScan as cfc_naming::NamingAlgorithm>::Proc| p.output().is_none(),
            served: &|b: &<TasScan as cfc_naming::NamingAlgorithm>::Proc, a| {
                b.output().is_none() && a.output().is_some()
            },
            normalize: None,
        };
        validate_bypass(&alg.memory().unwrap(), &alg.processes(), witness, &spec).unwrap();
        let report =
            check_naming_lockout(&TafTree::new(4).unwrap(), 0, ExploreConfig::reduced()).unwrap();
        assert!(report.is_starvation_free());
        // Wait-freedom bounds the naming analogue of bypass by n - 1.
        let bypass = report.bypass().unwrap().expect("wait-free => bounded");
        assert!(bypass <= 3);
    }

    #[test]
    fn tampered_witnesses_are_rejected() {
        let alg = TasSpin::new(2);
        let report = check_mutex_starvation(&alg, ExploreConfig::default()).unwrap();
        let witness = report.witness().unwrap().clone();
        let clients: Vec<_> = (0..2)
            .map(|i| alg.client_cycling(ProcessId::new(i), 1))
            .collect();
        let spec = mutex_spec(None);
        validate_lasso(&alg.memory().unwrap(), &clients, &witness, &spec).unwrap();

        // Dropping the loop's tail breaks closure.
        let mut truncated = witness.clone();
        truncated.lasso.cycle.pop();
        assert!(validate_lasso(&alg.memory().unwrap(), &clients, &truncated, &spec).is_err());

        // An empty loop is not an infinite run.
        let mut empty = witness.clone();
        empty.lasso.cycle.clear();
        assert_eq!(
            validate_lasso(&alg.memory().unwrap(), &clients, &empty, &spec),
            Err("empty loop".into())
        );

        // A loop that drops one process's steps is unfair.
        let mut unfair = witness;
        let v = unfair.victim;
        unfair
            .lasso
            .cycle
            .retain(|s| matches!(s, ScheduleStep::Step(p) if *p != v));
        assert!(validate_lasso(&alg.memory().unwrap(), &clients, &unfair, &spec).is_err());
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let err = check_mutex_starvation(
            &LamportFast::new(2),
            ExploreConfig::default().with_max_states(10),
        )
        .unwrap_err();
        assert!(matches!(err, ExploreError::StateBudget(_)));
    }
}
