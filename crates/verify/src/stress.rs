//! Randomized stress testing: safety monitors over long random schedules.
//!
//! The exhaustive explorer covers small systems completely; the stress
//! harness covers larger systems probabilistically, checking mutual
//! exclusion after **every** event of randomly scheduled runs.

use cfc_core::{ExecError, Process, ProcessId, Scheduler, Section};
use cfc_mutex::MutexAlgorithm;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The result of a stress campaign.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StressStats {
    /// Runs executed.
    pub runs: u64,
    /// Total events across all runs.
    pub events: u64,
}

/// A mutual-exclusion violation found by stress testing.
#[derive(Clone, Debug)]
pub struct MutexViolation {
    /// The seed of the violating run.
    pub seed: u64,
    /// Number of processes simultaneously in the critical section.
    pub in_cs: usize,
    /// The event index at which the violation was observed.
    pub at_event: u64,
}

impl std::fmt::Display for MutexViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mutual exclusion violated: {} in critical section (seed {}, event {})",
            self.in_cs, self.seed, self.at_event
        )
    }
}

impl std::error::Error for MutexViolation {}

/// Errors from the stress harness.
#[derive(Debug)]
pub enum StressError {
    /// Mutual exclusion was violated.
    Violation(MutexViolation),
    /// Execution failed (budget exhaustion means suspected livelock).
    Exec(ExecError),
}

impl std::fmt::Display for StressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StressError::Violation(v) => write!(f, "{v}"),
            StressError::Exec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StressError {}

/// Runs `runs` random schedules of `trips`-trip clients, asserting mutual
/// exclusion after every event.
///
/// Random schedules are not fair, so a run may be cut off by the event
/// budget while processes still busy-wait; safety is checked up to that
/// point and the run counts toward the campaign.
///
/// # Errors
///
/// Returns the first violation found, or an execution error.
pub fn stress_mutex<A>(
    alg: &A,
    trips: u32,
    runs: u64,
    events_per_run: u64,
) -> Result<StressStats, StressError>
where
    A: MutexAlgorithm,
{
    let mut stats = StressStats::default();
    for seed in 0..runs {
        // Dwell two steps in the critical section so simultaneous
        // occupancy is observable by the monitor.
        let clients: Vec<_> = (0..alg.n() as u32)
            .map(|i| alg.client_with_cs(ProcessId::new(i), trips, 2))
            .collect();
        let memory = alg
            .memory()
            .map_err(|e| StressError::Exec(ExecError::from(e)))?;
        let mut exec = cfc_core::Executor::new(memory, clients);
        let mut sched = cfc_core::RandomSched::new(StdRng::seed_from_u64(seed));
        let mut events = 0u64;
        loop {
            let runnable = exec.runnable();
            if runnable.is_empty() || events >= events_per_run {
                break;
            }
            let pid = sched.pick(&runnable).expect("random scheduler always picks");
            exec.step_process(pid).map_err(StressError::Exec)?;
            events += 1;
            let in_cs = (0..alg.n() as u32)
                .filter(|&i| {
                    exec.process(ProcessId::new(i)).section() == Some(Section::Critical)
                })
                .count();
            if in_cs > 1 {
                return Err(StressError::Violation(MutexViolation {
                    seed,
                    in_cs,
                    at_event: events,
                }));
            }
        }
        stats.runs += 1;
        stats.events += events;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_mutex::{LamportFast, PetersonTwo, Tournament};

    #[test]
    fn lamport_survives_stress() {
        let stats = stress_mutex(&LamportFast::new(4), 2, 30, 4_000).unwrap();
        assert_eq!(stats.runs, 30);
        assert!(stats.events > 0);
    }

    #[test]
    fn peterson_survives_stress() {
        stress_mutex(&PetersonTwo::new(), 3, 30, 2_000).unwrap();
    }

    #[test]
    fn tournaments_survive_stress() {
        stress_mutex(&Tournament::new(6, 1), 1, 20, 6_000).unwrap();
        stress_mutex(&Tournament::new(9, 2), 1, 20, 8_000).unwrap();
    }
}
