//! Randomized stress testing: safety monitors over long random schedules.
//!
//! The exhaustive explorer covers small systems completely; the stress
//! harness covers larger systems probabilistically, checking the
//! family's safety property after **every** event of randomly scheduled
//! runs: mutual exclusion for locks ([`stress_mutex`]), name uniqueness
//! and range for naming ([`stress_naming`]). Both report the seed of a
//! violating run so it can be replayed deterministically.

use cfc_core::{ExecError, Process, ProcessId, Scheduler, Section, Status};
use cfc_mutex::MutexAlgorithm;
use cfc_naming::NamingAlgorithm;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The result of a stress campaign.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StressStats {
    /// Runs executed.
    pub runs: u64,
    /// Total events across all runs.
    pub events: u64,
}

/// A mutual-exclusion violation found by stress testing.
#[derive(Clone, Debug)]
pub struct MutexViolation {
    /// The seed of the violating run.
    pub seed: u64,
    /// Number of processes simultaneously in the critical section.
    pub in_cs: usize,
    /// The event index at which the violation was observed.
    pub at_event: u64,
}

impl std::fmt::Display for MutexViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mutual exclusion violated: {} in critical section (seed {}, event {})",
            self.in_cs, self.seed, self.at_event
        )
    }
}

impl std::error::Error for MutexViolation {}

/// A naming violation found by stress testing, with the seed that
/// deterministically reproduces the run.
#[derive(Clone, Debug)]
pub struct NamingViolation {
    /// The seed of the violating run.
    pub seed: u64,
    /// The event index at which the violation was observed.
    pub at_event: u64,
    /// What went wrong (duplicate name, out-of-range name, undecided
    /// walker at quiescence).
    pub message: String,
}

impl std::fmt::Display for NamingViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "naming violated: {} (seed {}, event {})",
            self.message, self.seed, self.at_event
        )
    }
}

impl std::error::Error for NamingViolation {}

/// Errors from the stress harness.
#[derive(Debug)]
pub enum StressError {
    /// Mutual exclusion was violated.
    Violation(MutexViolation),
    /// A naming property was violated.
    Naming(NamingViolation),
    /// Execution failed (budget exhaustion means suspected livelock).
    Exec(ExecError),
}

impl std::fmt::Display for StressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StressError::Violation(v) => write!(f, "{v}"),
            StressError::Naming(v) => write!(f, "{v}"),
            StressError::Exec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StressError {}

/// Runs `runs` random schedules of `trips`-trip clients, asserting mutual
/// exclusion after every event.
///
/// Random schedules are not fair, so a run may be cut off by the event
/// budget while processes still busy-wait; safety is checked up to that
/// point and the run counts toward the campaign.
///
/// # Errors
///
/// Returns the first violation found, or an execution error.
pub fn stress_mutex<A>(
    alg: &A,
    trips: u32,
    runs: u64,
    events_per_run: u64,
) -> Result<StressStats, StressError>
where
    A: MutexAlgorithm,
{
    let mut stats = StressStats::default();
    for seed in 0..runs {
        // Dwell two steps in the critical section so simultaneous
        // occupancy is observable by the monitor.
        let clients: Vec<_> = (0..alg.n() as u32)
            .map(|i| alg.client_with_cs(ProcessId::new(i), trips, 2))
            .collect();
        let memory = alg
            .memory()
            .map_err(|e| StressError::Exec(ExecError::from(e)))?;
        let mut exec = cfc_core::Executor::new(memory, clients);
        let mut sched = cfc_core::RandomSched::new(StdRng::seed_from_u64(seed));
        let mut events = 0u64;
        loop {
            let runnable = exec.runnable();
            if runnable.is_empty() || events >= events_per_run {
                break;
            }
            let pid = sched.pick(&runnable).expect("random scheduler always picks");
            exec.step_process(pid).map_err(StressError::Exec)?;
            events += 1;
            let in_cs = (0..alg.n() as u32)
                .filter(|&i| {
                    exec.process(ProcessId::new(i)).section() == Some(Section::Critical)
                })
                .count();
            if in_cs > 1 {
                return Err(StressError::Violation(MutexViolation {
                    seed,
                    in_cs,
                    at_event: events,
                }));
            }
        }
        stats.runs += 1;
        stats.events += events;
    }
    Ok(stats)
}

/// Runs `runs` random schedules of a naming algorithm's full walker set,
/// asserting after **every** event that decided names are pairwise
/// distinct and within `1..=n`, and at quiescence that every walker has
/// decided (wait-freedom's visible half). Reuses the same [`StressStats`]
/// accounting as [`stress_mutex`]; violations carry the run's seed.
///
/// Random schedules are not fair but naming walkers are wait-free, so
/// every run quiesces within `n * step_budget` events; the caller's
/// `events_per_run` bounds runaway loops of a *broken* implementation,
/// and a run cut off by that budget counts toward the campaign with its
/// safety checked up to the cut.
///
/// # Errors
///
/// Returns the first violation found (with its seed), or an execution
/// error.
pub fn stress_naming<A>(
    alg: &A,
    runs: u64,
    events_per_run: u64,
) -> Result<StressStats, StressError>
where
    A: NamingAlgorithm,
{
    let n = alg.n();
    let mut stats = StressStats::default();
    for seed in 0..runs {
        let memory = alg
            .memory()
            .map_err(|e| StressError::Exec(ExecError::from(e)))?;
        let mut exec = cfc_core::Executor::new(memory, alg.processes());
        let mut sched = cfc_core::RandomSched::new(StdRng::seed_from_u64(seed));
        let mut events = 0u64;
        let naming_err = |message: String, at_event: u64| {
            StressError::Naming(NamingViolation {
                seed,
                at_event,
                message,
            })
        };
        // Outputs are write-once (None until the walker decides), so the
        // per-event check only needs to look at the process that just
        // stepped: one decided-flag vector and one seen-set per run.
        let mut decided = vec![false; n];
        let mut seen = std::collections::HashSet::new();
        loop {
            let runnable = exec.runnable();
            if runnable.is_empty() || events >= events_per_run {
                break;
            }
            let pid = sched.pick(&runnable).expect("random scheduler always picks");
            exec.step_process(pid).map_err(StressError::Exec)?;
            events += 1;
            let i = pid.index();
            if !decided[i] {
                if let Some(name) = exec.process(pid).output() {
                    decided[i] = true;
                    let name = name.raw();
                    if name == 0 || name > n as u64 {
                        return Err(naming_err(
                            format!("process {i} decided out-of-range name {name}"),
                            events,
                        ));
                    }
                    if !seen.insert(name) {
                        return Err(naming_err(format!("duplicate name {name}"), events));
                    }
                }
            }
        }
        if exec.quiescent() {
            for i in 0..n as u32 {
                let pid = ProcessId::new(i);
                if exec.status(pid) == Status::Done && exec.process(pid).output().is_none() {
                    return Err(naming_err(
                        format!("process {i} halted without a name"),
                        events,
                    ));
                }
            }
        }
        stats.runs += 1;
        stats.events += events;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_core::{Layout, Op, OpResult, RegisterId, Step, Value};
    use cfc_mutex::{LamportFast, PetersonTwo, Tournament};
    use cfc_naming::{Model, TafTree, TasScan};

    #[test]
    fn lamport_survives_stress() {
        let stats = stress_mutex(&LamportFast::new(4), 2, 30, 4_000).unwrap();
        assert_eq!(stats.runs, 30);
        assert!(stats.events > 0);
    }

    #[test]
    fn peterson_survives_stress() {
        stress_mutex(&PetersonTwo::new(), 3, 30, 2_000).unwrap();
    }

    #[test]
    fn tournaments_survive_stress() {
        stress_mutex(&Tournament::new(6, 1), 1, 20, 6_000).unwrap();
        stress_mutex(&Tournament::new(9, 2), 1, 20, 8_000).unwrap();
    }

    #[test]
    fn naming_algorithms_survive_stress() {
        // Far beyond what the exhaustive explorer can enumerate: sixteen
        // scanners and sixteen tree walkers under random schedules.
        let stats = stress_naming(&TasScan::new(16), 20, 10_000).unwrap();
        assert_eq!(stats.runs, 20);
        assert!(stats.events > 0);
        stress_naming(&TafTree::new(16).unwrap(), 20, 10_000).unwrap();
    }

    /// A deliberately broken naming "algorithm": every walker wins bit 0
    /// and decides name 1, so any run with two finishers duplicates.
    #[derive(Clone, Debug)]
    struct EveryoneIsOne {
        layout: Layout,
        bit: RegisterId,
        n: usize,
    }

    impl EveryoneIsOne {
        fn new(n: usize) -> Self {
            let mut layout = Layout::new();
            let bit = layout.bit("b", false);
            EveryoneIsOne { layout, bit, n }
        }
    }

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct OneProc {
        bit: RegisterId,
        done: bool,
    }

    impl Process for OneProc {
        fn current(&self) -> Step {
            if self.done {
                Step::Halt
            } else {
                Step::Op(Op::Read(self.bit))
            }
        }
        fn advance(&mut self, _: OpResult) {
            self.done = true;
        }
        fn output(&self) -> Option<Value> {
            self.done.then_some(Value::ONE)
        }
    }

    impl NamingAlgorithm for EveryoneIsOne {
        type Proc = OneProc;
        fn name(&self) -> &str {
            "everyone-is-one"
        }
        fn n(&self) -> usize {
            self.n
        }
        fn model(&self) -> Model {
            Model::TAS_ONLY
        }
        fn layout(&self) -> Layout {
            self.layout.clone()
        }
        fn process(&self) -> OneProc {
            OneProc {
                bit: self.bit,
                done: false,
            }
        }
        fn step_budget(&self) -> u64 {
            1
        }
    }

    #[test]
    fn broken_naming_is_caught_with_a_seed() {
        let err = stress_naming(&EveryoneIsOne::new(3), 5, 1_000).unwrap_err();
        match err {
            StressError::Naming(v) => {
                assert!(v.message.contains("duplicate name 1"), "{v}");
                assert_eq!(v.seed, 0, "first seed already violates");
                assert!(v.at_event >= 2, "needs two finishers");
                assert!(v.to_string().contains("seed 0"));
            }
            other => panic!("expected a naming violation, got {other}"),
        }
    }
}
