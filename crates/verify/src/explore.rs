//! Exhaustive interleaving exploration for small systems.
//!
//! The paper's model admits *every* interleaving of process steps; for
//! small `n` we can enumerate all of them. The explorer performs a
//! depth-first search over global states — process states, register
//! values, liveness statuses — with memoization, invoking a safety check
//! in every reachable state and a terminal check in every quiescent one.
//! Optionally it also branches on crash transitions, which is how
//! wait-freedom claims of the naming algorithms are validated under every
//! adversarial failure pattern.

use std::collections::HashSet;
use std::fmt;
use std::hash::Hash;

use cfc_core::{Memory, OpResult, Process, ProcessId, Status, Step, Value};

/// Limits for an exploration.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Abort after visiting this many distinct states.
    pub max_states: usize,
    /// How many crash transitions the adversary may inject in one run.
    pub max_crashes: u32,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_states: 2_000_000,
            max_crashes: 0,
        }
    }
}

/// Statistics of a completed exploration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions executed.
    pub transitions: u64,
    /// Quiescent (terminal) states reached.
    pub terminals: usize,
}

/// One scheduling decision on a violating path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleStep {
    /// The process took its next step.
    Step(ProcessId),
    /// The adversary crashed the process.
    Crash(ProcessId),
}

impl fmt::Display for ScheduleStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleStep::Step(p) => write!(f, "{p}"),
            ScheduleStep::Crash(p) => write!(f, "crash({p})"),
        }
    }
}

/// A property violation, with the schedule that reaches it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The scheduling decisions from the initial state to the violation.
    pub schedule: Vec<ScheduleStep>,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} after schedule [", self.message)?;
        for (i, s) in self.schedule.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "]")
    }
}

impl std::error::Error for Violation {}

/// The error type of an exploration: a violation, or state-space overflow.
#[derive(Clone, Debug)]
pub enum ExploreError {
    /// The property failed on some schedule.
    Violation(Box<Violation>),
    /// The state budget was exhausted before the search completed.
    StateBudget(usize),
    /// A process issued an invalid operation.
    Memory(cfc_core::MemoryError),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Violation(v) => write!(f, "{v}"),
            ExploreError::StateBudget(n) => write!(f, "state budget exhausted at {n} states"),
            ExploreError::Memory(e) => write!(f, "memory error during exploration: {e}"),
        }
    }
}

impl std::error::Error for ExploreError {}

/// A snapshot of the global state handed to property checks.
#[derive(Debug)]
pub struct StateView<'a, P> {
    /// The processes, indexed by pid.
    pub procs: &'a [P],
    /// Their liveness statuses.
    pub status: &'a [Status],
    /// The shared memory.
    pub memory: &'a Memory,
}

impl<P: Process> StateView<'_, P> {
    /// The decided outputs of halted processes.
    pub fn outputs(&self) -> Vec<Option<Value>> {
        self.procs.iter().map(Process::output).collect()
    }

    /// How many processes have decided the given output.
    pub fn count_output(&self, v: Value) -> usize {
        self.procs
            .iter()
            .filter(|p| p.output() == Some(v))
            .count()
    }
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct Node<P> {
    procs: Vec<P>,
    values: Vec<Value>,
    status: Vec<Status>,
    crashes_left: u32,
}

/// Explores every interleaving (and crash pattern, if enabled) of the
/// processes, checking `state_check` in every reachable state and
/// `terminal_check` in every quiescent state.
///
/// Process types must be `Clone + Eq + Hash` so states can be memoized;
/// the enum-based state machines of `cfc-mutex`/`cfc-naming` all qualify.
///
/// # Errors
///
/// Returns the first violation found (with its schedule), state-budget
/// exhaustion, or an invalid memory operation.
pub fn explore<P, FS, FT>(
    memory: Memory,
    procs: Vec<P>,
    config: ExploreConfig,
    mut state_check: FS,
    mut terminal_check: FT,
) -> Result<ExploreStats, ExploreError>
where
    P: Process + Clone + Eq + Hash,
    FS: FnMut(&StateView<'_, P>) -> Result<(), String>,
    FT: FnMut(&StateView<'_, P>) -> Result<(), String>,
{
    let n = procs.len();
    let root = Node {
        status: vec![Status::Running; n],
        values: memory.snapshot().to_vec(),
        procs,
        crashes_left: config.max_crashes,
    };

    let mut visited: HashSet<Node<P>> = HashSet::new();
    let mut stats = ExploreStats::default();
    // DFS stack: (node, schedule-so-far). The schedule is stored per node
    // to report violating paths; for small systems this is affordable.
    let mut stack: Vec<(Node<P>, Vec<ScheduleStep>)> = vec![(root, Vec::new())];

    while let Some((node, path)) = stack.pop() {
        if !visited.insert(node.clone()) {
            continue;
        }
        stats.states += 1;
        if stats.states > config.max_states {
            return Err(ExploreError::StateBudget(stats.states));
        }

        let mem = rebuild_memory(&memory, &node.values);
        let view = StateView {
            procs: &node.procs,
            status: &node.status,
            memory: &mem,
        };
        if let Err(message) = state_check(&view) {
            return Err(ExploreError::Violation(Box::new(Violation {
                schedule: path,
                message,
            })));
        }

        let runnable: Vec<usize> = (0..n).filter(|&i| node.status[i] == Status::Running).collect();
        if runnable.is_empty() {
            stats.terminals += 1;
            if let Err(message) = terminal_check(&view) {
                return Err(ExploreError::Violation(Box::new(Violation {
                    schedule: path,
                    message,
                })));
            }
            continue;
        }

        for &i in &runnable {
            // Crash transition.
            if node.crashes_left > 0 {
                let mut next = node.clone();
                next.status[i] = Status::Crashed;
                next.crashes_left -= 1;
                let mut next_path = path.clone();
                next_path.push(ScheduleStep::Crash(ProcessId::new(i as u32)));
                stats.transitions += 1;
                stack.push((next, next_path));
            }
            // Step transition.
            let mut next = node.clone();
            let step = next.procs[i].current();
            match step {
                Step::Halt => {
                    next.status[i] = Status::Done;
                }
                Step::Internal => {
                    next.procs[i].advance(OpResult::None);
                }
                Step::Op(op) => {
                    let mut mem = rebuild_memory(&memory, &next.values);
                    let result = mem.apply(&op).map_err(ExploreError::Memory)?;
                    next.values = mem.snapshot().to_vec();
                    next.procs[i].advance(result);
                }
            }
            let mut next_path = path.clone();
            next_path.push(ScheduleStep::Step(ProcessId::new(i as u32)));
            stats.transitions += 1;
            stack.push((next, next_path));
        }
    }
    Ok(stats)
}

fn rebuild_memory(template: &Memory, values: &[Value]) -> Memory {
    let mut mem = template.clone();
    for (i, v) in values.iter().enumerate() {
        mem.poke(cfc_core::RegisterId::new(i as u32), *v);
    }
    mem
}

/// Statistics of a completed progress (deadlock-freedom) check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProgressStats {
    /// Distinct states in the reachability graph.
    pub states: usize,
    /// Transitions in the graph.
    pub transitions: u64,
    /// Quiescent states.
    pub terminals: usize,
}

/// Exhaustively verifies *possibility of progress*: from **every**
/// reachable state of the system, some continuation reaches quiescence
/// (all processes halted).
///
/// For one-shot mutual-exclusion clients this is deadlock freedom in the
/// classic sense — no reachable state is stuck, and no set of processes
/// can wedge the system so that nobody can ever finish. (It does not rule
/// out unfair infinite schedules that starve a process; the paper's
/// algorithms are deadlock-free, not starvation-free, and so is this
/// property.)
///
/// The check builds the full state graph, then back-propagates
/// "can reach a terminal" over reversed edges.
///
/// # Errors
///
/// Returns a [`Violation`] naming a stuck state if one exists, a
/// state-budget error for oversized systems, or a memory error.
pub fn check_progress<P>(
    memory: Memory,
    procs: Vec<P>,
    config: ExploreConfig,
) -> Result<ProgressStats, ExploreError>
where
    P: Process + Clone + Eq + Hash,
{
    use std::collections::HashMap;

    let n = procs.len();
    let root = Node {
        status: vec![Status::Running; n],
        values: memory.snapshot().to_vec(),
        procs,
        crashes_left: 0,
    };

    let mut index: HashMap<Node<P>, usize> = HashMap::new();
    let mut rev_edges: Vec<Vec<usize>> = Vec::new();
    let mut terminal: Vec<bool> = Vec::new();
    let mut queue: Vec<Node<P>> = Vec::new();

    index.insert(root.clone(), 0);
    rev_edges.push(Vec::new());
    terminal.push(false);
    queue.push(root);

    let mut transitions = 0u64;
    let mut cursor = 0usize;
    while cursor < queue.len() {
        let node = queue[cursor].clone();
        let id = cursor;
        cursor += 1;
        if index.len() > config.max_states {
            return Err(ExploreError::StateBudget(index.len()));
        }

        let runnable: Vec<usize> = (0..n)
            .filter(|&i| node.status[i] == Status::Running)
            .collect();
        if runnable.is_empty() {
            terminal[id] = true;
            continue;
        }
        for &i in &runnable {
            let mut next = node.clone();
            match next.procs[i].current() {
                Step::Halt => next.status[i] = Status::Done,
                Step::Internal => next.procs[i].advance(OpResult::None),
                Step::Op(op) => {
                    let mut mem = rebuild_memory(&memory, &next.values);
                    let result = mem.apply(&op).map_err(ExploreError::Memory)?;
                    next.values = mem.snapshot().to_vec();
                    next.procs[i].advance(result);
                }
            }
            transitions += 1;
            let next_id = match index.get(&next) {
                Some(&existing) => existing,
                None => {
                    let new_id = queue.len();
                    index.insert(next.clone(), new_id);
                    rev_edges.push(Vec::new());
                    terminal.push(false);
                    queue.push(next);
                    new_id
                }
            };
            rev_edges[next_id].push(id);
        }
    }

    // Back-propagate reachability of quiescence.
    let states = queue.len();
    let mut can_finish = terminal.clone();
    let mut work: Vec<usize> = (0..states).filter(|&i| terminal[i]).collect();
    while let Some(s) = work.pop() {
        for &pred in &rev_edges[s] {
            if !can_finish[pred] {
                can_finish[pred] = true;
                work.push(pred);
            }
        }
    }

    if let Some(stuck) = (0..states).find(|&i| !can_finish[i]) {
        return Err(ExploreError::Violation(Box::new(Violation {
            schedule: Vec::new(),
            message: format!(
                "state {stuck} of {states} cannot reach quiescence (deadlock/livelock)"
            ),
        })));
    }

    Ok(ProgressStats {
        states,
        transitions,
        terminals: terminal.iter().filter(|t| **t).count(),
    })
}

/// Replays a violating schedule on a fresh executor, returning the trace —
/// used to render counterexamples for humans.
///
/// # Errors
///
/// Propagates executor errors; a schedule obtained from [`explore`] always
/// replays cleanly.
pub fn replay<P: Process>(
    memory: Memory,
    mut procs: Vec<P>,
    schedule: &[ScheduleStep],
) -> Result<(cfc_core::Trace, Vec<P>), cfc_core::ExecError> {
    use cfc_core::{Event, EventKind, Trace};
    let mut mem = memory;
    let mut trace = Trace::new();
    for s in schedule {
        match s {
            ScheduleStep::Crash(pid) => {
                trace.push(Event {
                    pid: *pid,
                    kind: EventKind::Crash,
                });
            }
            ScheduleStep::Step(pid) => {
                let i = pid.index();
                match procs[i].current() {
                    Step::Halt => {
                        trace.push(Event {
                            pid: *pid,
                            kind: EventKind::Done {
                                output: procs[i].output(),
                            },
                        });
                    }
                    Step::Internal => {
                        procs[i].advance(OpResult::None);
                        trace.push(Event {
                            pid: *pid,
                            kind: EventKind::Internal,
                        });
                    }
                    Step::Op(op) => {
                        let result = mem.apply(&op)?;
                        procs[i].advance(result.clone());
                        trace.push(Event {
                            pid: *pid,
                            kind: EventKind::Access { op, result },
                        });
                    }
                }
            }
        }
    }
    Ok((trace, procs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_core::{Layout, Op, RegisterId};

    /// Two processes each increment a 2-bit counter once (read + write).
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct Incr {
        reg: RegisterId,
        pc: u8,
        seen: u64,
    }

    impl Process for Incr {
        fn current(&self) -> Step {
            match self.pc {
                0 => Step::Op(Op::Read(self.reg)),
                1 => Step::Op(Op::Write(self.reg, Value::new(self.seen + 1))),
                _ => Step::Halt,
            }
        }
        fn advance(&mut self, result: OpResult) {
            if self.pc == 0 {
                self.seen = result.value().raw();
            }
            self.pc += 1;
        }
    }

    fn incr_system() -> (Memory, Vec<Incr>) {
        let mut layout = Layout::new();
        let c = layout.register("c", 2, 0);
        let memory = Memory::new(layout, 2).unwrap();
        (
            memory,
            vec![
                Incr {
                    reg: c,
                    pc: 0,
                    seen: 0,
                },
                Incr {
                    reg: c,
                    pc: 0,
                    seen: 0,
                },
            ],
        )
    }

    #[test]
    fn finds_the_lost_update() {
        // The explorer must find the interleaving where both processes
        // read 0 and the counter ends at 1.
        let (memory, procs) = incr_system();
        let c = RegisterId::new(0);
        let err = explore(
            memory,
            procs,
            ExploreConfig::default(),
            |_| Ok(()),
            |view| {
                if view.memory.get(c) == Value::new(2) {
                    Ok(())
                } else {
                    Err(format!("counter ended at {}", view.memory.get(c)))
                }
            },
        )
        .unwrap_err();
        match err {
            ExploreError::Violation(v) => {
                assert!(v.message.contains("counter ended at 1"));
                assert!(!v.schedule.is_empty());
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn passes_when_property_holds() {
        // Termination with counter in {1, 2} always holds.
        let (memory, procs) = incr_system();
        let c = RegisterId::new(0);
        let stats = explore(
            memory,
            procs,
            ExploreConfig::default(),
            |_| Ok(()),
            |view| {
                let v = view.memory.get(c).raw();
                if v == 1 || v == 2 {
                    Ok(())
                } else {
                    Err(format!("impossible count {v}"))
                }
            },
        )
        .unwrap();
        assert!(stats.states > 5);
        assert!(stats.terminals >= 2);
    }

    #[test]
    fn crash_transitions_are_explored() {
        // With one crash allowed, there is a terminal state where only one
        // process incremented.
        let (memory, procs) = incr_system();
        let c = RegisterId::new(0);
        let mut saw_crashed_terminal = false;
        let _ = explore(
            memory,
            procs,
            ExploreConfig {
                max_crashes: 1,
                ..Default::default()
            },
            |_| Ok(()),
            |view| {
                if view.status.contains(&Status::Crashed) && view.memory.get(c).raw() <= 1 {
                    saw_crashed_terminal = true;
                }
                Ok(())
            },
        )
        .unwrap();
        assert!(saw_crashed_terminal);
    }

    #[test]
    fn state_budget_is_enforced() {
        let (memory, procs) = incr_system();
        let err = explore(
            memory,
            procs,
            ExploreConfig {
                max_states: 3,
                max_crashes: 0,
            },
            |_| Ok(()),
            |_| Ok(()),
        )
        .unwrap_err();
        assert!(matches!(err, ExploreError::StateBudget(_)));
    }

    #[test]
    fn replay_reproduces_the_violation() {
        let (memory, procs) = incr_system();
        let c = RegisterId::new(0);
        let err = explore(
            memory.clone(),
            procs.clone(),
            ExploreConfig::default(),
            |_| Ok(()),
            |view| {
                if view.memory.get(c) == Value::new(2) {
                    Ok(())
                } else {
                    Err("lost update".into())
                }
            },
        )
        .unwrap_err();
        let ExploreError::Violation(v) = err else {
            panic!("expected violation")
        };
        let (trace, _) = replay(memory, procs, &v.schedule).unwrap();
        assert!(trace.len() >= 4);
    }
}
