//! Exhaustive interleaving exploration for small systems, with optional
//! state-space reduction.
//!
//! The paper's model admits *every* interleaving of process steps; for
//! small `n` we can enumerate all of them. The explorer performs a
//! depth-first search over global states — process states, register
//! values, liveness statuses — with memoization, invoking a safety check
//! in every reachable state and a terminal check in every quiescent one.
//! Optionally it also branches on crash transitions, which is how
//! wait-freedom claims of the naming algorithms are validated under every
//! adversarial failure pattern.
//!
//! The DFS safety explorer ([`explore`], [`explore_sym`]), the progress
//! checker ([`check_progress`], [`check_progress_sym`]), and the
//! fair-cycle liveness engine (`crate::liveness`) are all thin clients
//! of one unified traversal driver (`GraphBuilder` in `crate::graph`,
//! configured by a `TraversalSpec`): the same successor function,
//! canonical interning, crash branching, budget accounting, and
//! ample-set selection — so a reduction is implemented (and argued
//! sound) once, and every property benefits from it.
//!
//! # State-space reduction
//!
//! Naive enumeration interleaves steps that cannot possibly influence one
//! another and distinguishes states that differ only by a permutation of
//! identical processes. Two classic, independently-toggleable reductions
//! ([`ExploreConfig::por`], [`ExploreConfig::symmetry`]) attack both
//! sources of blow-up while preserving the verified properties:
//!
//! **Ample-set partial-order reduction.** At a state, if some runnable
//! process's next step (a) has a footprint disjoint from every location
//! any *other* running process [may ever access](cfc_core::Process::may_access)
//! — so it is independent, now and forever, of all concurrent steps —
//! (b) is *invisible*: it changes neither the stepping process's section
//! nor its output (and `Halt` steps, which change only the liveness
//! status, qualify), and (c) does not close a cycle (its successor has
//! not been visited), then expanding **only** that process is sufficient:
//! every pruned interleaving reorders independent steps and reaches the
//! same states up to stuttering of the checked observation. These are the
//! classical ample-set conditions C0–C3 [CGP99, ch. 10]; condition (c) is
//! the cycle proviso that prevents a transition from being deferred
//! forever. Crash branching disables the reduction at any state that can
//! still crash (crash transitions commute with nothing).
//!
//! **Symmetry reduction.** Visited-state keys are canonicalized by
//! sorting the local states of interchangeable processes (as declared by
//! a [`SymmetryGroup`]) under a per-process fingerprint, so one orbit
//! representative stands for up to `k!` permuted states. The search still
//! walks *concrete* states — schedules remain valid un-reduced schedules
//! and every reported violation [`replay`]s against the baseline
//! semantics.
//!
//! Soundness contract for the checks (trivially met by the ready-made
//! checks in [`crate::checks`]): with `por` enabled, `state_check` must
//! depend only on the processes' sections and outputs (not raw memory or
//! liveness status); `terminal_check` may inspect everything (quiescent
//! states are preserved exactly — persistent sets preserve deadlocks).
//! With `symmetry` enabled, both checks must be invariant under
//! permutations of the declared classes. The baseline explorer (both
//! flags off, the default) has no such requirements and remains available
//! for differential testing — see `tests/reduction_equiv.rs`.
//!
//! # Reduction-aware progress checking
//!
//! [`check_progress_sym`] verifies *possibility of progress* — from every
//! reachable state, some continuation reaches quiescence — on the reduced
//! graph directly, and both reductions are sound for it:
//!
//! * **Symmetry** quotients the graph by a bisimulation (permuting a
//!   class's processes together with their statuses is an automorphism of
//!   the transition relation, and quiescence is permutation-invariant),
//!   and bisimulation preserves "can reach a quiescent state" at every
//!   node, in both directions.
//! * **Partial-order reduction** drops the invisibility condition (only
//!   the graph shape matters, not per-state observations) but keeps
//!   independence and strengthens the cycle proviso into a
//!   *fresh-successor* proviso: an ample successor must never have been
//!   interned before, so every cycle of the reduced graph contains a
//!   fully expanded state and no process is deferred forever. See the
//!   README "Verification pipeline" section for the two-direction
//!   soundness argument.
//!
//! Progress violations carry a concrete schedule to the stuck state,
//! reconstructed from predecessor edges of the state graph, which
//! [`replay`] accepts like any safety-violation schedule.

use std::fmt;
use std::hash::Hash;

use cfc_core::{Memory, OpResult, Process, ProcessId, Status, Step, SymmetryGroup, Value};

use crate::analysis::MayAccessMode;
use crate::graph::{
    canonicalize, expand_step, full_hash, AmpleMode, Engine, GraphBuilder, BuiltGraph, Node,
    Order, TraversalSpec,
};
use crate::store::{IndexMode, StoreMode};
use crate::telemetry::{self, Phase, Sample, StoreFootprint};

/// Limits and reduction switches for an exploration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Abort after visiting this many distinct (canonical) states.
    ///
    /// The budget is **inclusive** for every driver (safety DFS, progress
    /// BFS, liveness builder): a search whose reachable canonical state
    /// count is exactly `max_states` completes, and the first state
    /// beyond it aborts with [`ExploreError::StateBudget`] carrying
    /// `max_states + 1` — the count at the moment the budget broke, not
    /// however far an expansion batch happened to overshoot.
    pub max_states: usize,
    /// How many crash transitions the adversary may inject in one run.
    pub max_crashes: u32,
    /// Enable ample-set partial-order reduction (see module docs for the
    /// soundness contract). Off by default: the baseline explorer is the
    /// reference semantics.
    pub por: bool,
    /// Enable symmetry reduction: canonicalize visited-state keys under
    /// the system's [`SymmetryGroup`]. A no-op under the trivial group.
    pub symmetry: bool,
    /// How visited states are stored: [`StoreMode::Packed`] (the
    /// default) interns one bit-packed record per canonical state in an
    /// append-only arena; [`StoreMode::Boxed`] keeps the historical
    /// boxed-`Node` representation and exists for differential testing.
    /// Both modes make byte-identical search decisions — the packed
    /// codec round-trips states exactly, so freshness answers (and
    /// therefore search order, counts, and schedules) never differ.
    pub store: StoreMode,
    /// Which digest-index structure the packed visited store uses:
    /// [`IndexMode::Open`] (the default) is a single open-addressed
    /// `u32` table at ~4–6 B/state; [`IndexMode::Chained`] keeps the
    /// historical `HashMap` heads + intrusive chain as the differential
    /// oracle (`tests/index_equiv.rs`). Both resolve lookups by exact
    /// byte comparison, so search decisions never differ. Ignored in
    /// [`StoreMode::Boxed`].
    pub index: IndexMode,
    /// Resident-memory budget (in bytes) for the packed visited arena
    /// and the recorded edge arena; when the resident segments exceed
    /// it, cold segments spill to a temporary file and are read back on
    /// demand. `None` (the default) never spills. Ignored in
    /// [`StoreMode::Boxed`].
    pub spill_budget_bytes: Option<usize>,
    /// Which future-access over-approximation ample-set selection
    /// consults: [`MayAccessMode::Declared`] (the default) trusts the
    /// hand-written [`Process::may_access`] hooks;
    /// [`MayAccessMode::Automaton`] extracts each process's solo
    /// control automaton up front and uses its location-sensitive
    /// future-access sets, falling back to the declared hook for any
    /// state the automaton cannot resolve. Ignored when `por` is off.
    pub may_access: MayAccessMode,
    /// **Planted-mutant knob — leave `None` in production configs.**
    /// When set, dynamic reduction treats conflicts that go through the
    /// named register as if they never happened: the sleep machinery
    /// keeps processes asleep across such races, and
    /// [`crate::trace_causality`] drops them from the happens-before
    /// relation. This is the conflict-under-reporting bug class the
    /// dynamic-vs-static differential wall exists to catch
    /// (`tests/checker_mutations.rs`); the static modes never consult
    /// it, which is exactly why the differential kills it.
    pub drop_races_on: Option<cfc_core::RegisterId>,
    /// Print a live stderr heartbeat while this exploration runs (the
    /// `CFC_PROGRESS` environment variable turns this on globally; see
    /// [`crate::telemetry`]). Purely observational: no count, verdict,
    /// or schedule ever depends on it.
    pub progress: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_states: 2_000_000,
            max_crashes: 0,
            por: false,
            symmetry: false,
            store: StoreMode::Packed,
            index: IndexMode::Open,
            spill_budget_bytes: None,
            may_access: MayAccessMode::Declared,
            drop_races_on: None,
            progress: false,
        }
    }
}

impl ExploreConfig {
    /// The default configuration with both reductions enabled.
    pub fn reduced() -> Self {
        ExploreConfig {
            por: true,
            symmetry: true,
            ..Self::default()
        }
    }

    /// Replaces the state budget.
    #[must_use]
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// Replaces the crash budget.
    #[must_use]
    pub fn with_max_crashes(mut self, max_crashes: u32) -> Self {
        self.max_crashes = max_crashes;
        self
    }

    /// Replaces the visited-store backend.
    #[must_use]
    pub fn with_store(mut self, store: StoreMode) -> Self {
        self.store = store;
        self
    }

    /// Replaces the digest-index structure of the packed visited store.
    #[must_use]
    pub fn with_index(mut self, index: IndexMode) -> Self {
        self.index = index;
        self
    }

    /// Sets the resident-memory budget that triggers spilling of cold
    /// visited-arena segments (packed store only).
    #[must_use]
    pub fn with_spill_budget(mut self, bytes: usize) -> Self {
        self.spill_budget_bytes = Some(bytes);
        self
    }

    /// Replaces the future-access source ample-set selection consults.
    #[must_use]
    pub fn with_may_access(mut self, may_access: MayAccessMode) -> Self {
        self.may_access = may_access;
        self
    }

    /// Plants the conflict-under-reporting mutant: dynamic reduction
    /// drops observed races through the named register (test harnesses
    /// only; see [`ExploreConfig::drop_races_on`]).
    #[must_use]
    pub fn with_drop_races_on(mut self, register: cfc_core::RegisterId) -> Self {
        self.drop_races_on = Some(register);
        self
    }

    /// Enables (or disables) the live stderr heartbeat.
    #[must_use]
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }
}

/// Statistics of a completed exploration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Distinct (canonical) states visited.
    pub states: usize,
    /// Transitions executed.
    pub transitions: u64,
    /// Quiescent (terminal) states reached.
    pub terminals: usize,
    /// Enabled **transitions** not expanded because an ample subset
    /// sufficed (partial-order reduction). Each skipped transition is a
    /// successor state never generated — though distinct skipped
    /// transitions may lead to the same state, so this is an upper bound
    /// on the states pruned at these nodes.
    pub states_pruned_por: u64,
    /// States skipped because a *different* member of their symmetry
    /// orbit had already been explored (plain revisits of the same
    /// concrete state are not merges — they are deduplicated by the
    /// baseline too). Counted by **exact** comparison against the stored
    /// first visitor, so a hash collision can never miscount a merge.
    pub orbits_merged: u64,
    /// Enabled transitions skipped by dynamic sleep sets: their targets
    /// are reachable, up to commuting independent steps, through a
    /// sibling branch that was explored first. Nonzero only under
    /// [`MayAccessMode::Dynamic`] in the crash-free, symmetry-off
    /// safety DFS (see `crate::dynamic` for the gating).
    pub transitions_slept: u64,
    /// Store, index, and edge memory at the end of the search: exact
    /// bytes under [`StoreMode::Packed`] / [`IndexMode::Open`],
    /// comparable estimates for the boxed/chained oracles.
    /// `edge_bytes` is always 0 for the safety DFS, which records no
    /// graph; `spilled_buckets` is 0 unless
    /// [`ExploreConfig::spill_budget_bytes`] forced cold segments out.
    pub footprint: StoreFootprint,
    /// Wall time of the search in nanoseconds, measured by the
    /// telemetry clock — the ambient [`crate::telemetry::Telemetry`]
    /// clock if one is installed (deterministic in tests), the real
    /// monotonic clock otherwise.
    pub wall_ns: u64,
}

impl ExploreStats {
    /// Cumulative throughput over the whole search, `states / wall`
    /// (integer states-per-second; 0 when no time was observed). Equals
    /// the `states_per_sec` of the final telemetry snapshot.
    pub fn states_per_sec(&self) -> u64 {
        crate::telemetry::rate_per_sec(self.states as u64, self.wall_ns)
    }

    /// This stats value with the wall-clock field zeroed — what the
    /// differential suites compare, since two byte-identical searches
    /// still differ in elapsed time.
    #[must_use]
    pub fn sans_wall(mut self) -> Self {
        self.wall_ns = 0;
        self
    }
}

/// One scheduling decision on a violating path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleStep {
    /// The process took its next step.
    Step(ProcessId),
    /// The adversary crashed the process.
    Crash(ProcessId),
}

impl fmt::Display for ScheduleStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleStep::Step(p) => write!(f, "{p}"),
            ScheduleStep::Crash(p) => write!(f, "crash({p})"),
        }
    }
}

/// A property violation, with the schedule that reaches it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The scheduling decisions from the initial state to the violation.
    pub schedule: Vec<ScheduleStep>,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} after schedule [", self.message)?;
        for (i, s) in self.schedule.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "]")
    }
}

impl std::error::Error for Violation {}

/// The error type of an exploration: a violation, or state-space overflow.
#[derive(Clone, Debug)]
pub enum ExploreError {
    /// The property failed on some schedule.
    Violation(Box<Violation>),
    /// The state budget was exhausted before the search completed.
    StateBudget(usize),
    /// A process issued an invalid operation.
    Memory(cfc_core::MemoryError),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Violation(v) => write!(f, "{v}"),
            ExploreError::StateBudget(n) => write!(f, "state budget exhausted at {n} states"),
            ExploreError::Memory(e) => write!(f, "memory error during exploration: {e}"),
        }
    }
}

impl std::error::Error for ExploreError {}

/// A snapshot of the global state handed to property checks.
#[derive(Debug)]
pub struct StateView<'a, P> {
    /// The processes, indexed by pid.
    pub procs: &'a [P],
    /// Their liveness statuses.
    pub status: &'a [Status],
    /// The shared memory.
    pub memory: &'a Memory,
}

impl<P: Process> StateView<'_, P> {
    /// The decided outputs of halted processes.
    pub fn outputs(&self) -> Vec<Option<Value>> {
        self.procs.iter().map(Process::output).collect()
    }

    /// How many processes have decided the given output.
    pub fn count_output(&self, v: Value) -> usize {
        self.procs
            .iter()
            .filter(|p| p.output() == Some(v))
            .count()
    }
}

/// A 64-bit digest of the canonical form the symmetry-reduced explorer
/// assigns to a global state — a test/diagnostic hook, **not** the
/// literal visited-set key: the explorer keys its visited set on the
/// full canonical node (including the remaining crash budget, fixed to 0
/// here) precisely so that hash collisions can never merge unrelated
/// states.
///
/// Permuting processes within one class of `symmetry` (their states and
/// statuses together, leaving memory fixed) leaves the digest unchanged —
/// the invariant the property tests in `tests/` assert.
pub fn canonical_key<P: Process + Clone + Eq + Hash>(
    procs: &[P],
    status: &[Status],
    memory: &Memory,
    symmetry: &SymmetryGroup,
) -> u64 {
    let node = Node {
        procs: procs.to_vec(),
        values: memory.snapshot().to_vec(),
        status: status.to_vec(),
        crashes_left: 0,
    };
    let canon = canonicalize(&node, symmetry);
    full_hash(&canon)
}

/// Explores every interleaving (and crash pattern, if enabled) of the
/// processes under the trivial symmetry group, checking `state_check` in
/// every reachable state and `terminal_check` in every quiescent state.
///
/// Equivalent to [`explore_sym`] with [`SymmetryGroup::trivial`]; use
/// `explore_sym` to make [`ExploreConfig::symmetry`] effective.
///
/// Process types must be `Clone + Eq + Hash` so states can be memoized;
/// the enum-based state machines of `cfc-mutex`/`cfc-naming` all qualify.
///
/// # Errors
///
/// Returns the first violation found (with its schedule), state-budget
/// exhaustion, or an invalid memory operation.
pub fn explore<P, FS, FT>(
    memory: Memory,
    procs: Vec<P>,
    config: ExploreConfig,
    state_check: FS,
    terminal_check: FT,
) -> Result<ExploreStats, ExploreError>
where
    P: Process + Clone + Eq + Hash,
    FS: FnMut(&StateView<'_, P>) -> Result<(), String>,
    FT: FnMut(&StateView<'_, P>) -> Result<(), String>,
{
    let group = SymmetryGroup::trivial(procs.len());
    explore_sym(memory, procs, &group, config, state_check, terminal_check)
}

/// Explores every interleaving (and crash pattern, if enabled) of the
/// processes, with the reductions requested by `config` — partial-order
/// reduction via footprint independence, symmetry reduction via the given
/// group. See the module docs for the exact soundness contract on the
/// checks.
///
/// # Errors
///
/// Returns the first violation found (with its schedule, which replays
/// under the un-reduced semantics), state-budget exhaustion, or an
/// invalid memory operation.
///
/// # Panics
///
/// Panics if `symmetry` is defined over a different process count.
pub fn explore_sym<P, FS, FT>(
    memory: Memory,
    procs: Vec<P>,
    symmetry: &SymmetryGroup,
    config: ExploreConfig,
    state_check: FS,
    terminal_check: FT,
) -> Result<ExploreStats, ExploreError>
where
    P: Process + Clone + Eq + Hash,
    FS: FnMut(&StateView<'_, P>) -> Result<(), String>,
    FT: FnMut(&StateView<'_, P>) -> Result<(), String>,
{
    let spec = TraversalSpec {
        order: Order::Dfs,
        record_edges: false,
        ample_mode: AmpleMode::Safety,
        symmetry: symmetry.clone(),
        normalizer: None,
        served: None,
        crash_budget: config.max_crashes,
        phase: Phase::SafetyDfs,
    };
    let mut builder = GraphBuilder::new(memory, config, spec, procs.len());
    let t = builder.run_dfs(procs, state_check, terminal_check)?;
    Ok(ExploreStats {
        states: t.states,
        transitions: t.transitions,
        terminals: t.terminals,
        states_pruned_por: t.states_pruned_por,
        orbits_merged: t.orbits_merged,
        transitions_slept: t.transitions_slept,
        footprint: t.footprint,
        wall_ns: t.wall_ns,
    })
}

/// Statistics of a completed progress (deadlock-freedom) check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProgressStats {
    /// Distinct (canonical) states in the reachability graph.
    pub states: usize,
    /// Transitions in the graph.
    pub transitions: u64,
    /// Quiescent states.
    pub terminals: usize,
    /// Enabled transitions not expanded because a single ample process
    /// sufficed (partial-order reduction; same semantics as
    /// [`ExploreStats::states_pruned_por`]).
    pub states_pruned_por: u64,
    /// Successor states folded into an already-interned member of their
    /// symmetry orbit that differs from them as a concrete state (plain
    /// revisits of the canonical representative are not merges).
    pub orbits_merged: u64,
    /// Store, index, and edge memory of the built graph (see
    /// [`ExploreStats::footprint`]; the progress graph always records
    /// edges, so `edge_bytes` is populated).
    pub footprint: StoreFootprint,
    /// Wall time of the whole check — graph build plus back-propagation
    /// — in nanoseconds, measured by the telemetry clock (see
    /// [`ExploreStats::wall_ns`]).
    pub wall_ns: u64,
}

impl ProgressStats {
    /// Cumulative throughput over the whole check, `states / wall`
    /// (integer states-per-second; 0 when no time was observed).
    pub fn states_per_sec(&self) -> u64 {
        crate::telemetry::rate_per_sec(self.states as u64, self.wall_ns)
    }

    /// This stats value with the wall-clock field zeroed (see
    /// [`ExploreStats::sans_wall`]).
    #[must_use]
    pub fn sans_wall(mut self) -> Self {
        self.wall_ns = 0;
        self
    }
}

/// Exhaustively verifies *possibility of progress* under the trivial
/// symmetry group: from **every** reachable state of the system, some
/// continuation reaches quiescence. Equivalent to [`check_progress_sym`]
/// with [`SymmetryGroup::trivial`]; use `check_progress_sym` to make
/// [`ExploreConfig::symmetry`] effective.
///
/// # Errors
///
/// Returns a [`Violation`] with a replayable schedule to a stuck state if
/// one exists, a state-budget error for oversized systems, or a memory
/// error.
pub fn check_progress<P>(
    memory: Memory,
    procs: Vec<P>,
    config: ExploreConfig,
) -> Result<ProgressStats, ExploreError>
where
    P: Process + Clone + Eq + Hash,
{
    let group = SymmetryGroup::trivial(procs.len());
    check_progress_sym(memory, procs, &group, config)
}

/// Exhaustively verifies *possibility of progress*: from **every**
/// reachable state of the system, some continuation reaches quiescence
/// (no process still running).
///
/// For one-shot mutual-exclusion clients this is deadlock freedom in the
/// classic sense — no reachable state is stuck, and no set of processes
/// can wedge the system so that nobody can ever finish. (It does not rule
/// out unfair infinite schedules that starve a process; the paper's
/// algorithms are deadlock-free, not starvation-free, and so is this
/// property.)
///
/// The check builds the state graph breadth-first over the shared engine,
/// then back-propagates "can reach a terminal" over reversed edges. Both
/// [`ExploreConfig`] reductions apply (see the module docs for why they
/// are sound for progress): with `symmetry`, the graph is the canonical
/// quotient — one interned representative per orbit, never stored twice —
/// and with `por`, states are expanded through a single independent
/// process when the fresh-successor proviso allows.
///
/// The crash budget is honored: with `max_crashes > 0` the graph branches
/// on adversarial crash transitions exactly like [`explore_sym`], and
/// **crashed processes count as quiesced** — quiescence means no process
/// is still `Running`, so a run in which some processes crashed and all
/// others halted is a valid terminal. Partial-order reduction is
/// suspended at any state that can still crash.
///
/// # Errors
///
/// Returns a [`Violation`] naming a stuck state if one exists — its
/// schedule is a concrete path from the initial state to (an orbit
/// sibling of) the stuck state, reconstructed from predecessor edges,
/// and [`replay`] accepts it — a state-budget error for oversized
/// systems, or a memory error.
///
/// # Panics
///
/// Panics if `symmetry` is defined over a different process count.
pub fn check_progress_sym<P>(
    memory: Memory,
    procs: Vec<P>,
    symmetry: &SymmetryGroup,
    config: ExploreConfig,
) -> Result<ProgressStats, ExploreError>
where
    P: Process + Clone + Eq + Hash,
{
    let n = procs.len();
    // The outer span wraps the graph build and the back-propagation;
    // its wall time is what the returned stats report. Spans opened by
    // the builder (progress-bfs, extract-automaton) nest inside it.
    // `runtime` + ambient install means the env-hook sinks see the
    // wrapper span too, and the builder attaches nothing on top.
    let tel = telemetry::runtime(config.progress);
    let _tel_guard = telemetry::install(&tel);
    let check_span = tel.span(Phase::ProgressCheck);
    let spec = TraversalSpec {
        order: Order::Bfs,
        record_edges: true,
        ample_mode: AmpleMode::Progress,
        symmetry: symmetry.clone(),
        normalizer: None,
        served: None,
        crash_budget: config.max_crashes,
        phase: Phase::ProgressBfs,
    };
    let mut builder = GraphBuilder::new(memory, config, spec, n);
    let (g, t) = builder.build_graph(procs.clone())?;
    let mut stats = ProgressStats {
        states: t.states,
        transitions: t.transitions,
        terminals: t.terminals,
        states_pruned_por: t.states_pruned_por,
        orbits_merged: t.orbits_merged,
        footprint: t.footprint,
        wall_ns: 0, // the whole-check wall, set at the span close below
    };

    // Back-propagate reachability of quiescence over reversed edges
    // (memoized CSR: two flat arrays, not a per-call Vec<Vec>).
    let bp_span = tel.span(Phase::BackPropagation);
    let states = g.len();
    let rev_edges = g.reversed();
    let mut can_finish = g.terminal.clone();
    let mut work: Vec<usize> = (0..states).filter(|&i| g.terminal[i]).collect();
    while let Some(s) = work.pop() {
        for &pred in rev_edges.preds(s) {
            if !can_finish[pred as usize] {
                can_finish[pred as usize] = true;
                work.push(pred as usize);
            }
        }
    }
    bp_span.finish(Sample {
        states: states as u64,
        transitions: t.transitions,
        ..Sample::default()
    });

    if let Some(stuck) = (0..states).find(|&i| !can_finish[i]) {
        let stuck_count = can_finish.iter().filter(|c| !**c).count();
        let engine = builder.engine();
        let schedule = recover_schedule(engine, engine.root(procs), stuck, &g)?;
        return Err(ExploreError::Violation(Box::new(Violation {
            schedule,
            message: format!(
                "stuck state: no continuation reaches quiescence \
                 ({stuck_count} of {states} states cannot finish)"
            ),
        })));
    }

    stats.wall_ns = check_span.finish(Sample {
        states: stats.states as u64,
        transitions: stats.transitions,
        frontier: 0,
        depth: 0,
        states_pruned_por: stats.states_pruned_por,
        orbits_merged: stats.orbits_merged,
        transitions_slept: 0,
        footprint: stats.footprint,
    });
    Ok(stats)
}

/// Reconstructs a concrete, [`replay`]-able schedule from the initial
/// state to (an orbit sibling of) state `stuck` of the progress graph.
///
/// The id path comes from the creator tree (`first_pred`, whose entries
/// are strictly smaller than their children, so the chain terminates at
/// the root). Because the graph stores canonical representatives, an
/// edge `a → b` only promises that *some* step of *some* concrete member
/// of orbit `a` lands in orbit `b`; the walk below re-derives the
/// concrete witness: starting from the real initial state, it finds at
/// every hop a step (or crash) whose successor canonicalizes to the next
/// representative — one always exists, because permuting a symmetry
/// class is an automorphism of the transition relation.
fn recover_schedule<P: Process + Clone + Eq + Hash>(
    engine: &Engine<P>,
    root: Node<P>,
    stuck: usize,
    g: &BuiltGraph<P>,
) -> Result<Vec<ScheduleStep>, ExploreError> {
    let mut path: Vec<usize> = vec![stuck];
    while *path.last().expect("path is nonempty") != 0 {
        let id = *path.last().expect("path is nonempty");
        path.push(g.first_pred[id] as usize);
    }
    path.reverse();

    let n = root.status.len();
    let mut cur = root;
    let mut schedule = Vec::with_capacity(path.len() - 1);
    for &next in &path[1..] {
        let target = &g.node(next as u32);
        let mut found = None;
        for i in (0..n).filter(|&i| cur.status[i] == Status::Running) {
            let succ = expand_step(&cur, i, engine.template())?;
            if engine.matches_canonical(&succ, target) {
                found = Some((ScheduleStep::Step(ProcessId::new(i as u32)), succ));
                break;
            }
            if cur.crashes_left > 0 {
                let mut crashed = cur.clone();
                crashed.status[i] = Status::Crashed;
                crashed.crashes_left -= 1;
                if engine.matches_canonical(&crashed, target) {
                    found = Some((ScheduleStep::Crash(ProcessId::new(i as u32)), crashed));
                    break;
                }
            }
        }
        let (step, succ) =
            found.expect("every edge of the canonical quotient has a concrete witness");
        schedule.push(step);
        cur = succ;
    }
    Ok(schedule)
}

/// The final state of a replayed schedule: the trace plus everything
/// needed to re-evaluate a property in the reached state.
#[derive(Clone, Debug)]
pub struct Replayed<P> {
    /// The events of the replayed run.
    pub trace: cfc_core::Trace,
    /// The processes in their final states.
    pub procs: Vec<P>,
    /// The shared memory in its final state.
    pub memory: Memory,
    /// Each process's final liveness status.
    pub status: Vec<Status>,
}

impl<P> Replayed<P> {
    /// A [`StateView`] of the reached state, suitable for re-running the
    /// property check that reported a violation.
    pub fn view(&self) -> StateView<'_, P> {
        StateView {
            procs: &self.procs,
            status: &self.status,
            memory: &self.memory,
        }
    }
}

/// Replays a violating schedule on a fresh executor, returning the trace
/// **and the reached state** — used to render counterexamples for humans
/// and to confirm that a violation found by the *reduced* explorer
/// reproduces under the baseline, un-reduced semantics (the reductions
/// only prune which interleavings are searched; every schedule they
/// report is a plain sequence of concrete steps).
///
/// # Errors
///
/// Propagates executor errors; a schedule obtained from [`explore`],
/// [`explore_sym`], or the progress checkers always replays cleanly.
///
/// # Panics
///
/// Panics if the schedule steps a process that has already halted or
/// crashed — such schedules are never produced by the explorer.
pub fn replay<P: Process>(
    memory: Memory,
    mut procs: Vec<P>,
    schedule: &[ScheduleStep],
) -> Result<Replayed<P>, cfc_core::ExecError> {
    use cfc_core::{Event, EventKind, Trace};
    let mut mem = memory;
    let mut trace = Trace::new();
    let mut status = vec![Status::Running; procs.len()];
    for s in schedule {
        match s {
            ScheduleStep::Crash(pid) => {
                status[pid.index()] = Status::Crashed;
                trace.push(Event {
                    pid: *pid,
                    kind: EventKind::Crash,
                });
            }
            ScheduleStep::Step(pid) => {
                let i = pid.index();
                assert_eq!(
                    status[i],
                    Status::Running,
                    "schedule steps {pid}, which is no longer running"
                );
                match procs[i].current() {
                    Step::Halt => {
                        status[i] = Status::Done;
                        trace.push(Event {
                            pid: *pid,
                            kind: EventKind::Done {
                                output: procs[i].output(),
                            },
                        });
                    }
                    Step::Internal => {
                        procs[i].advance(OpResult::None);
                        trace.push(Event {
                            pid: *pid,
                            kind: EventKind::Internal,
                        });
                    }
                    Step::Op(op) => {
                        let result = mem.apply(&op)?;
                        procs[i].advance(result.clone());
                        trace.push(Event {
                            pid: *pid,
                            kind: EventKind::Access { op, result },
                        });
                    }
                }
            }
        }
    }
    Ok(Replayed {
        trace,
        procs,
        memory: mem,
        status,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_core::{Layout, Op, RegisterId};

    /// Two processes each increment a 2-bit counter once (read + write).
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct Incr {
        reg: RegisterId,
        pc: u8,
        seen: u64,
    }

    impl Process for Incr {
        fn current(&self) -> Step {
            match self.pc {
                0 => Step::Op(Op::Read(self.reg)),
                1 => Step::Op(Op::Write(self.reg, Value::new(self.seen + 1))),
                _ => Step::Halt,
            }
        }
        fn advance(&mut self, result: OpResult) {
            if self.pc == 0 {
                self.seen = result.value().raw();
            }
            self.pc += 1;
        }
    }

    fn incr_system() -> (Memory, Vec<Incr>) {
        let mut layout = Layout::new();
        let c = layout.register("c", 2, 0);
        let memory = Memory::new(layout, 2).unwrap();
        (
            memory,
            vec![
                Incr {
                    reg: c,
                    pc: 0,
                    seen: 0,
                },
                Incr {
                    reg: c,
                    pc: 0,
                    seen: 0,
                },
            ],
        )
    }

    /// A process of a deliberately deadlock-prone pair: it test-and-sets
    /// `first`, then `second` (spinning on each until acquired), then
    /// releases both and halts. Two of these with opposite lock orders
    /// can finish (one runs solo) — but once each holds its first lock,
    /// both spin forever: a reachable stuck state.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct LockGrab {
        first: RegisterId,
        second: RegisterId,
        pc: u8, // 0: TAS first, 1: TAS second, 2/3: release, 4: halt
    }

    impl Process for LockGrab {
        fn current(&self) -> Step {
            use cfc_core::BitOp;
            match self.pc {
                0 => Step::Op(Op::Bit(self.first, BitOp::TestAndSet)),
                1 => Step::Op(Op::Bit(self.second, BitOp::TestAndSet)),
                2 => Step::Op(Op::Write(self.first, Value::ZERO)),
                3 => Step::Op(Op::Write(self.second, Value::ZERO)),
                _ => Step::Halt,
            }
        }
        fn advance(&mut self, result: OpResult) {
            match self.pc {
                // Spin until the test-and-set finds the bit clear.
                0 | 1 => {
                    if result.value() == Value::ZERO {
                        self.pc += 1;
                    }
                }
                _ => self.pc += 1,
            }
        }
    }

    fn deadlock_pair() -> (Memory, Vec<LockGrab>) {
        let mut layout = Layout::new();
        let a = layout.bit("a", false);
        let b = layout.bit("b", false);
        let memory = Memory::new(layout, 1).unwrap();
        (
            memory,
            vec![
                LockGrab {
                    first: a,
                    second: b,
                    pc: 0,
                },
                LockGrab {
                    first: b,
                    second: a,
                    pc: 0,
                },
            ],
        )
    }

    /// One writer raises a flag and halts; one waiter spins until it sees
    /// the flag raised. Progress holds crash-free but fails if the writer
    /// can crash first.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct FlagWaiter {
        flag: RegisterId,
        writer: bool,
        pc: u8,
    }

    impl Process for FlagWaiter {
        fn current(&self) -> Step {
            if self.writer {
                match self.pc {
                    0 => Step::Op(Op::Write(self.flag, Value::ONE)),
                    _ => Step::Halt,
                }
            } else {
                match self.pc {
                    0 => Step::Op(Op::Read(self.flag)),
                    _ => Step::Halt,
                }
            }
        }
        fn advance(&mut self, result: OpResult) {
            // The writer advances unconditionally; the waiter only once
            // it has seen the flag raised.
            if self.writer || result.value() == Value::ONE {
                self.pc = 1;
            }
        }
    }

    fn flag_system() -> (Memory, Vec<FlagWaiter>) {
        let mut layout = Layout::new();
        let f = layout.bit("f", false);
        let memory = Memory::new(layout, 1).unwrap();
        (
            memory,
            vec![
                FlagWaiter {
                    flag: f,
                    writer: true,
                    pc: 0,
                },
                FlagWaiter {
                    flag: f,
                    writer: false,
                    pc: 0,
                },
            ],
        )
    }

    #[test]
    fn finds_the_lost_update() {
        // The explorer must find the interleaving where both processes
        // read 0 and the counter ends at 1.
        let (memory, procs) = incr_system();
        let c = RegisterId::new(0);
        let err = explore(
            memory,
            procs,
            ExploreConfig::default(),
            |_| Ok(()),
            |view| {
                if view.memory.get(c) == Value::new(2) {
                    Ok(())
                } else {
                    Err(format!("counter ended at {}", view.memory.get(c)))
                }
            },
        )
        .unwrap_err();
        match err {
            ExploreError::Violation(v) => {
                assert!(v.message.contains("counter ended at 1"));
                assert!(!v.schedule.is_empty());
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn passes_when_property_holds() {
        // Termination with counter in {1, 2} always holds.
        let (memory, procs) = incr_system();
        let c = RegisterId::new(0);
        let stats = explore(
            memory,
            procs,
            ExploreConfig::default(),
            |_| Ok(()),
            |view| {
                let v = view.memory.get(c).raw();
                if v == 1 || v == 2 {
                    Ok(())
                } else {
                    Err(format!("impossible count {v}"))
                }
            },
        )
        .unwrap();
        assert!(stats.states > 5);
        assert!(stats.terminals >= 2);
        // The baseline explorer reduces nothing.
        assert_eq!(stats.states_pruned_por, 0);
        assert_eq!(stats.orbits_merged, 0);
    }

    #[test]
    fn symmetric_increments_share_an_orbit() {
        // The two Incr processes are identical, so the full group applies:
        // states differing only by swapping them are merged, and the
        // terminal-state memory values are still all seen.
        let (memory, procs) = incr_system();
        let c = RegisterId::new(0);
        let base = explore(
            memory.clone(),
            procs.clone(),
            ExploreConfig::default(),
            |_| Ok(()),
            |_| Ok(()),
        )
        .unwrap();
        let mut counts = std::collections::BTreeSet::new();
        let reduced = explore_sym(
            memory,
            procs,
            &SymmetryGroup::full(2),
            ExploreConfig {
                symmetry: true,
                ..ExploreConfig::default()
            },
            |_| Ok(()),
            |view| {
                counts.insert(view.memory.get(c).raw());
                Ok(())
            },
        )
        .unwrap();
        assert!(reduced.states < base.states, "{reduced:?} vs {base:?}");
        assert!(reduced.orbits_merged > 0);
        // Both the lost-update (1) and clean (2) outcomes survive.
        assert_eq!(counts.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn por_preserves_terminal_outcomes() {
        // Incr ops all touch the shared counter with unknown futures, so
        // only Halt steps are ample — the reduction is modest but the
        // terminal outcomes must be identical.
        let (memory, procs) = incr_system();
        let c = RegisterId::new(0);
        let collect = |por: bool| {
            let mut counts = std::collections::BTreeSet::new();
            let stats = explore(
                memory.clone(),
                procs.clone(),
                ExploreConfig {
                    por,
                    ..ExploreConfig::default()
                },
                |_| Ok(()),
                |view| {
                    counts.insert(view.memory.get(c).raw());
                    Ok(())
                },
            )
            .unwrap();
            (stats, counts)
        };
        let (base, base_counts) = collect(false);
        let (red, red_counts) = collect(true);
        assert_eq!(base_counts, red_counts);
        assert!(red.states <= base.states);
        assert!(red.states_pruned_por > 0);
    }

    #[test]
    fn crash_transitions_are_explored() {
        // With one crash allowed, there is a terminal state where only one
        // process incremented.
        let (memory, procs) = incr_system();
        let c = RegisterId::new(0);
        let mut saw_crashed_terminal = false;
        let _ = explore(
            memory,
            procs,
            ExploreConfig {
                max_crashes: 1,
                ..Default::default()
            },
            |_| Ok(()),
            |view| {
                if view.status.contains(&Status::Crashed) && view.memory.get(c).raw() <= 1 {
                    saw_crashed_terminal = true;
                }
                Ok(())
            },
        )
        .unwrap();
        assert!(saw_crashed_terminal);
    }

    #[test]
    fn state_budget_is_enforced() {
        let (memory, procs) = incr_system();
        let err = explore(
            memory,
            procs,
            ExploreConfig::default().with_max_states(3),
            |_| Ok(()),
            |_| Ok(()),
        )
        .unwrap_err();
        assert!(matches!(err, ExploreError::StateBudget(_)));
    }

    /// The budget is inclusive for the DFS: a budget of exactly the
    /// reachable state count completes, one less fails — reporting
    /// exactly `budget + 1`, the count at the moment the budget broke.
    #[test]
    fn dfs_budget_boundary_is_inclusive() {
        let (memory, procs) = incr_system();
        let exact = explore(
            memory.clone(),
            procs.clone(),
            ExploreConfig::default(),
            |_| Ok(()),
            |_| Ok(()),
        )
        .unwrap()
        .states;
        let at = explore(
            memory.clone(),
            procs.clone(),
            ExploreConfig::default().with_max_states(exact),
            |_| Ok(()),
            |_| Ok(()),
        )
        .unwrap();
        assert_eq!(at.states, exact);
        let err = explore(
            memory,
            procs,
            ExploreConfig::default().with_max_states(exact - 1),
            |_| Ok(()),
            |_| Ok(()),
        )
        .unwrap_err();
        match err {
            ExploreError::StateBudget(n) => assert_eq!(n, exact),
            other => panic!("expected StateBudget, got {other:?}"),
        }
    }

    /// The same inclusive boundary for the BFS progress checker: the
    /// overflow is detected at the intern that breaks the budget, not
    /// after a whole expansion batch overshoots.
    #[test]
    fn bfs_budget_boundary_is_inclusive() {
        let (memory, procs) = incr_system();
        let exact = check_progress(memory.clone(), procs.clone(), ExploreConfig::default())
            .unwrap()
            .states;
        let at = check_progress(
            memory.clone(),
            procs.clone(),
            ExploreConfig::default().with_max_states(exact),
        )
        .unwrap();
        assert_eq!(at.states, exact);
        let err = check_progress(
            memory,
            procs,
            ExploreConfig::default().with_max_states(exact - 1),
        )
        .unwrap_err();
        match err {
            ExploreError::StateBudget(n) => assert_eq!(n, exact),
            other => panic!("expected StateBudget, got {other:?}"),
        }
    }

    #[test]
    fn replay_reproduces_the_violation() {
        let (memory, procs) = incr_system();
        let c = RegisterId::new(0);
        let err = explore(
            memory.clone(),
            procs.clone(),
            ExploreConfig::default(),
            |_| Ok(()),
            |view| {
                if view.memory.get(c) == Value::new(2) {
                    Ok(())
                } else {
                    Err("lost update".into())
                }
            },
        )
        .unwrap_err();
        let ExploreError::Violation(v) = err else {
            panic!("expected violation")
        };
        let replayed = replay(memory, procs, &v.schedule).unwrap();
        assert!(replayed.trace.len() >= 4);
        // The replayed final state is the violating one.
        assert_eq!(replayed.memory.get(c), Value::new(1));
        assert!(replayed.status.iter().all(|s| *s == Status::Done));
    }

    #[test]
    fn empty_schedule_replays_to_the_initial_state() {
        let (memory, procs) = incr_system();
        let replayed = replay(memory.clone(), procs.clone(), &[]).unwrap();
        assert_eq!(replayed.trace.len(), 0);
        assert_eq!(replayed.procs, procs);
        assert_eq!(replayed.memory.snapshot(), memory.snapshot());
        assert!(replayed.status.iter().all(|s| *s == Status::Running));
    }

    #[test]
    fn crash_at_the_first_step_is_replayable() {
        // A schedule may fell a process before it takes a single step;
        // the crash must be recorded, the victim's memory untouched, and
        // the survivor free to run to completion.
        let (memory, procs) = incr_system();
        let c = RegisterId::new(0);
        let p0 = cfc_core::ProcessId::new(0);
        let p1 = cfc_core::ProcessId::new(1);
        let schedule = [
            ScheduleStep::Crash(p0),
            ScheduleStep::Step(p1),
            ScheduleStep::Step(p1),
            ScheduleStep::Step(p1),
        ];
        let replayed = replay(memory, procs, &schedule).unwrap();
        assert_eq!(replayed.status, vec![Status::Crashed, Status::Done]);
        assert_eq!(replayed.memory.get(c), Value::ONE);
        assert!(matches!(
            replayed.trace.iter().next().map(|e| &e.kind),
            Some(cfc_core::EventKind::Crash)
        ));
    }

    #[test]
    fn canonical_key_is_permutation_invariant() {
        let (memory, mut procs) = incr_system();
        // Drive the processes into distinct local states.
        let mut mem = memory.clone();
        let r = mem.apply(&Op::Read(RegisterId::new(0))).unwrap();
        procs[0].advance(r);
        let group = SymmetryGroup::full(2);
        let status = [Status::Running, Status::Running];
        let k1 = canonical_key(&procs, &status, &mem, &group);
        procs.swap(0, 1);
        let k2 = canonical_key(&procs, &status, &mem, &group);
        assert_eq!(k1, k2);
        // Under the trivial group, the swap is visible.
        let trivial = SymmetryGroup::trivial(2);
        let t1 = canonical_key(&procs, &status, &mem, &trivial);
        procs.swap(0, 1);
        let t2 = canonical_key(&procs, &status, &mem, &trivial);
        assert_ne!(t1, t2);
    }

    // -----------------------------------------------------------------
    // Progress checking.
    // -----------------------------------------------------------------

    #[test]
    fn progress_holds_for_the_increment_pair() {
        let (memory, procs) = incr_system();
        let stats = check_progress(memory, procs, ExploreConfig::default()).unwrap();
        assert!(stats.states > 5);
        assert!(stats.terminals >= 1);
        assert_eq!(stats.states_pruned_por, 0);
        assert_eq!(stats.orbits_merged, 0);
    }

    #[test]
    fn progress_verdict_matches_across_reductions() {
        let (memory, procs) = incr_system();
        let base = check_progress(memory.clone(), procs.clone(), ExploreConfig::default()).unwrap();
        let red = check_progress_sym(
            memory,
            procs,
            &SymmetryGroup::full(2),
            ExploreConfig::reduced(),
        )
        .unwrap();
        assert!(red.states <= base.states);
        assert!(red.orbits_merged > 0 || red.states_pruned_por > 0);
    }

    #[test]
    fn deadlocking_pair_is_caught_with_a_replayable_schedule() {
        // Regression: progress violations used to report an empty
        // schedule ("state N of M"); they must now carry a concrete path
        // that replays to the stuck state.
        let (memory, procs) = deadlock_pair();
        let err = check_progress(memory.clone(), procs.clone(), ExploreConfig::default())
            .unwrap_err();
        let ExploreError::Violation(v) = err else {
            panic!("expected a progress violation");
        };
        assert!(v.message.contains("quiescence"), "{v}");
        assert!(!v.schedule.is_empty(), "schedule must not be empty");
        let replayed = replay(memory, procs, &v.schedule).unwrap();
        // The replayed state is genuinely wedged: both locks held, both
        // processes still running (each spinning on the other's lock).
        assert_eq!(replayed.memory.get(RegisterId::new(0)), Value::ONE);
        assert_eq!(replayed.memory.get(RegisterId::new(1)), Value::ONE);
        assert!(replayed.status.iter().all(|s| *s == Status::Running));
    }

    #[test]
    fn deadlocking_pair_is_caught_under_reduction_too() {
        let (memory, procs) = deadlock_pair();
        for config in [
            ExploreConfig {
                por: true,
                ..ExploreConfig::default()
            },
            ExploreConfig::reduced(),
        ] {
            let err =
                check_progress_sym(memory.clone(), procs.clone(), &SymmetryGroup::full(2), config)
                    .unwrap_err();
            let ExploreError::Violation(v) = err else {
                panic!("expected a progress violation");
            };
            let replayed = replay(memory.clone(), procs.clone(), &v.schedule).unwrap();
            assert_eq!(replayed.memory.get(RegisterId::new(0)), Value::ONE);
            assert_eq!(replayed.memory.get(RegisterId::new(1)), Value::ONE);
        }
    }

    #[test]
    fn crash_budget_is_honored_by_progress() {
        // Crash-free, the waiter can always finish (schedule the writer
        // first), but a crashed writer wedges it forever: the crash
        // budget must be part of the progress graph, and the violating
        // schedule must contain the crash.
        let (memory, procs) = flag_system();
        check_progress(memory.clone(), procs.clone(), ExploreConfig::default()).unwrap();
        let err = check_progress(
            memory.clone(),
            procs.clone(),
            ExploreConfig::default().with_max_crashes(1),
        )
        .unwrap_err();
        let ExploreError::Violation(v) = err else {
            panic!("expected a progress violation under crashes");
        };
        assert!(
            v.schedule
                .iter()
                .any(|s| matches!(s, ScheduleStep::Crash(p) if p.index() == 0)),
            "schedule {:?} must crash the writer",
            v.schedule
        );
        let replayed = replay(memory, procs, &v.schedule).unwrap();
        assert_eq!(replayed.status[0], Status::Crashed);
    }

    #[test]
    fn progress_budget_is_enforced() {
        let (memory, procs) = incr_system();
        let err = check_progress(memory, procs, ExploreConfig::default().with_max_states(3))
            .unwrap_err();
        assert!(matches!(err, ExploreError::StateBudget(_)));
    }
}
