//! Exhaustive interleaving exploration for small systems, with optional
//! state-space reduction.
//!
//! The paper's model admits *every* interleaving of process steps; for
//! small `n` we can enumerate all of them. The explorer performs a
//! depth-first search over global states — process states, register
//! values, liveness statuses — with memoization, invoking a safety check
//! in every reachable state and a terminal check in every quiescent one.
//! Optionally it also branches on crash transitions, which is how
//! wait-freedom claims of the naming algorithms are validated under every
//! adversarial failure pattern.
//!
//! # State-space reduction
//!
//! Naive enumeration interleaves steps that cannot possibly influence one
//! another and distinguishes states that differ only by a permutation of
//! identical processes. Two classic, independently-toggleable reductions
//! ([`ExploreConfig::por`], [`ExploreConfig::symmetry`]) attack both
//! sources of blow-up while preserving the verified properties:
//!
//! **Ample-set partial-order reduction.** At a state, if some runnable
//! process's next step (a) has a footprint disjoint from every location
//! any *other* running process [may ever access](cfc_core::Process::may_access)
//! — so it is independent, now and forever, of all concurrent steps —
//! (b) is *invisible*: it changes neither the stepping process's section
//! nor its output (and `Halt` steps, which change only the liveness
//! status, qualify), and (c) does not close a cycle (its successor has
//! not been visited), then expanding **only** that process is sufficient:
//! every pruned interleaving reorders independent steps and reaches the
//! same states up to stuttering of the checked observation. These are the
//! classical ample-set conditions C0–C3 [CGP99, ch. 10]; condition (c) is
//! the cycle proviso that prevents a transition from being deferred
//! forever. Crash branching disables the reduction at any state that can
//! still crash (crash transitions commute with nothing).
//!
//! **Symmetry reduction.** Visited-state keys are canonicalized by
//! sorting the local states of interchangeable processes (as declared by
//! a [`SymmetryGroup`]) under a per-process fingerprint, so one orbit
//! representative stands for up to `k!` permuted states. The search still
//! walks *concrete* states — schedules remain valid un-reduced schedules
//! and every reported violation [`replay`]s against the baseline
//! semantics.
//!
//! Soundness contract for the checks (trivially met by the ready-made
//! checks in [`crate::checks`]): with `por` enabled, `state_check` must
//! depend only on the processes' sections and outputs (not raw memory or
//! liveness status); `terminal_check` may inspect everything (quiescent
//! states are preserved exactly — persistent sets preserve deadlocks).
//! With `symmetry` enabled, both checks must be invariant under
//! permutations of the declared classes. The baseline explorer (both
//! flags off, the default) has no such requirements and remains available
//! for differential testing — see `tests/reduction_equiv.rs`.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};

use cfc_core::{
    Footprint, Memory, OpResult, Process, ProcessId, RegisterSet, Status, Step, SymmetryGroup,
    Value,
};

/// Limits and reduction switches for an exploration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Abort after visiting this many distinct (canonical) states.
    pub max_states: usize,
    /// How many crash transitions the adversary may inject in one run.
    pub max_crashes: u32,
    /// Enable ample-set partial-order reduction (see module docs for the
    /// soundness contract). Off by default: the baseline explorer is the
    /// reference semantics.
    pub por: bool,
    /// Enable symmetry reduction: canonicalize visited-state keys under
    /// the system's [`SymmetryGroup`]. A no-op under the trivial group.
    pub symmetry: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_states: 2_000_000,
            max_crashes: 0,
            por: false,
            symmetry: false,
        }
    }
}

impl ExploreConfig {
    /// The default configuration with both reductions enabled.
    pub fn reduced() -> Self {
        ExploreConfig {
            por: true,
            symmetry: true,
            ..Self::default()
        }
    }

    /// Replaces the state budget.
    #[must_use]
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// Replaces the crash budget.
    #[must_use]
    pub fn with_max_crashes(mut self, max_crashes: u32) -> Self {
        self.max_crashes = max_crashes;
        self
    }
}

/// Statistics of a completed exploration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Distinct (canonical) states visited.
    pub states: usize,
    /// Transitions executed.
    pub transitions: u64,
    /// Quiescent (terminal) states reached.
    pub terminals: usize,
    /// Enabled **transitions** not expanded because an ample subset
    /// sufficed (`pot` = partial-order techniques). Each skipped
    /// transition is a successor state never generated — though distinct
    /// skipped transitions may lead to the same state, so this is an
    /// upper bound on the states pruned at these nodes.
    pub states_pruned_pot: u64,
    /// States skipped because a *different* member of their symmetry
    /// orbit had already been explored (plain revisits of the same
    /// concrete state are not merges — they are deduplicated by the
    /// baseline too).
    pub orbits_merged: u64,
}

/// One scheduling decision on a violating path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleStep {
    /// The process took its next step.
    Step(ProcessId),
    /// The adversary crashed the process.
    Crash(ProcessId),
}

impl fmt::Display for ScheduleStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleStep::Step(p) => write!(f, "{p}"),
            ScheduleStep::Crash(p) => write!(f, "crash({p})"),
        }
    }
}

/// A property violation, with the schedule that reaches it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The scheduling decisions from the initial state to the violation.
    pub schedule: Vec<ScheduleStep>,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} after schedule [", self.message)?;
        for (i, s) in self.schedule.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "]")
    }
}

impl std::error::Error for Violation {}

/// The error type of an exploration: a violation, or state-space overflow.
#[derive(Clone, Debug)]
pub enum ExploreError {
    /// The property failed on some schedule.
    Violation(Box<Violation>),
    /// The state budget was exhausted before the search completed.
    StateBudget(usize),
    /// A process issued an invalid operation.
    Memory(cfc_core::MemoryError),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Violation(v) => write!(f, "{v}"),
            ExploreError::StateBudget(n) => write!(f, "state budget exhausted at {n} states"),
            ExploreError::Memory(e) => write!(f, "memory error during exploration: {e}"),
        }
    }
}

impl std::error::Error for ExploreError {}

/// A snapshot of the global state handed to property checks.
#[derive(Debug)]
pub struct StateView<'a, P> {
    /// The processes, indexed by pid.
    pub procs: &'a [P],
    /// Their liveness statuses.
    pub status: &'a [Status],
    /// The shared memory.
    pub memory: &'a Memory,
}

impl<P: Process> StateView<'_, P> {
    /// The decided outputs of halted processes.
    pub fn outputs(&self) -> Vec<Option<Value>> {
        self.procs.iter().map(Process::output).collect()
    }

    /// How many processes have decided the given output.
    pub fn count_output(&self, v: Value) -> usize {
        self.procs
            .iter()
            .filter(|p| p.output() == Some(v))
            .count()
    }
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct Node<P> {
    procs: Vec<P>,
    values: Vec<Value>,
    status: Vec<Status>,
    crashes_left: u32,
}

/// The fingerprint used to canonically order interchangeable processes:
/// the process's own [`Process::fingerprint`] if it provides one, a hash
/// of its full state otherwise, mixed with its liveness status.
fn state_fingerprint<P: Process + Hash>(p: &P, status: Status) -> u64 {
    let mut h = DefaultHasher::new();
    match p.fingerprint() {
        Some(fp) => fp.hash(&mut h),
        None => p.hash(&mut h),
    }
    status.hash(&mut h);
    h.finish()
}

fn full_hash<T: Hash>(t: &T) -> u64 {
    let mut h = DefaultHasher::new();
    t.hash(&mut h);
    h.finish()
}

/// The orbit representative of a node: within every symmetry class, the
/// (local state, status) pairs are rearranged into fingerprint order.
///
/// Sorting is *stable*, so fingerprint collisions between distinct local
/// states can only forfeit a merge, never create an unsound one: two
/// nodes canonicalize equally iff they are genuine class-respecting
/// permutations of one another.
fn canonicalize<P: Process + Clone + Hash>(node: &Node<P>, group: &SymmetryGroup) -> Node<P> {
    let mut canon = node.clone();
    for class in group.classes() {
        let mut order: Vec<usize> = class.clone();
        order.sort_by_key(|&i| state_fingerprint(&node.procs[i], node.status[i]));
        for (&dst, &src) in class.iter().zip(order.iter()) {
            if dst != src {
                canon.procs[dst] = node.procs[src].clone();
                canon.status[dst] = node.status[src];
            }
        }
    }
    canon
}

/// A 64-bit digest of the canonical form the symmetry-reduced explorer
/// assigns to a global state — a test/diagnostic hook, **not** the
/// literal visited-set key: the explorer keys its visited set on the
/// full canonical node (including the remaining crash budget, fixed to 0
/// here) precisely so that hash collisions can never merge unrelated
/// states.
///
/// Permuting processes within one class of `symmetry` (their states and
/// statuses together, leaving memory fixed) leaves the digest unchanged —
/// the invariant the property tests in `tests/` assert.
pub fn canonical_key<P: Process + Clone + Eq + Hash>(
    procs: &[P],
    status: &[Status],
    memory: &Memory,
    symmetry: &SymmetryGroup,
) -> u64 {
    let node = Node {
        procs: procs.to_vec(),
        values: memory.snapshot().to_vec(),
        status: status.to_vec(),
        crashes_left: 0,
    };
    let canon = canonicalize(&node, symmetry);
    let mut h = DefaultHasher::new();
    canon.hash(&mut h);
    h.finish()
}

/// Computes the successor of `node` when process `i` takes its next step.
fn expand_step<P: Process + Clone>(
    node: &Node<P>,
    i: usize,
    template: &Memory,
) -> Result<Node<P>, ExploreError> {
    let mut next = node.clone();
    match next.procs[i].current() {
        Step::Halt => next.status[i] = Status::Done,
        Step::Internal => next.procs[i].advance(OpResult::None),
        Step::Op(op) => {
            let mut mem = rebuild_memory(template, &next.values);
            let result = mem.apply(&op).map_err(ExploreError::Memory)?;
            next.values = mem.snapshot().to_vec();
            next.procs[i].advance(result);
        }
    }
    Ok(next)
}

/// Reused per-state scratch of the ample selection: future-access sets
/// and the successors computed while testing candidates (handed to the
/// full expansion on fallback, so no transition is computed twice).
struct AmpleScratch<P> {
    may: Vec<(bool, RegisterSet)>,
    succ: Vec<Option<Node<P>>>,
}

impl<P> AmpleScratch<P> {
    fn new(n: usize) -> Self {
        AmpleScratch {
            may: (0..n).map(|_| (false, RegisterSet::new())).collect(),
            succ: (0..n).map(|_| None).collect(),
        }
    }
}

/// Selects an ample process at `node`, leaving its (already computed)
/// successor in `scratch.succ`, or returns `None` when the state must be
/// fully expanded.
///
/// A candidate `i` is ample when its next step is
/// 1. independent of every step any *other* running process can ever
///    take — trivially so for local (`Internal`/`Halt`) steps, and via
///    disjointness of the op footprint from the others'
///    [`Process::may_access`] over-approximations otherwise (an unknown
///    over-approximation disqualifies the candidate);
/// 2. invisible: the stepping process's section and output are unchanged
///    (halting changes only the liveness status, which `state_check` must
///    not read under reduction — see the module docs);
/// 3. not closing a cycle: its successor has not been visited yet (the
///    C3 proviso — every cycle of the reduced graph thereby contains a
///    fully expanded state, so no transition is ignored forever).
fn select_ample<P: Process + Clone + Eq + Hash>(
    node: &Node<P>,
    runnable: &[usize],
    template: &Memory,
    visited: &HashMap<Node<P>, u64>,
    symmetry: &SymmetryGroup,
    use_sym: bool,
    scratch: &mut AmpleScratch<P>,
) -> Result<Option<usize>, ExploreError> {
    // Future-access over-approximations, computed once per state into the
    // reused scratch buffers.
    for &j in runnable {
        let (known, set) = &mut scratch.may[j];
        set.clear();
        *known = node.procs[j].may_access(set);
    }
    let layout = template.layout();
    'candidates: for &i in runnable {
        let step = node.procs[i].current();
        // Condition 1: independence with all concurrent futures.
        if let Step::Op(op) = &step {
            let fp = Footprint::of_op(op, layout);
            for &j in runnable {
                if j == i {
                    continue;
                }
                match &scratch.may[j] {
                    (true, set) if !fp.touches(set) => {}
                    _ => continue 'candidates,
                }
            }
        }
        // Successors computed here are kept in the scratch: if no ample
        // candidate survives, the full expansion reuses them instead of
        // recomputing.
        let succ = expand_step(node, i, template)?;
        let succ = scratch.succ[i].insert(succ);
        // Condition 2: invisibility of the step.
        if !matches!(step, Step::Halt)
            && (succ.procs[i].section() != node.procs[i].section()
                || succ.procs[i].output() != node.procs[i].output())
        {
            continue 'candidates;
        }
        // Condition 3: the cycle proviso.
        let key = if use_sym {
            canonicalize(succ, symmetry)
        } else {
            succ.clone()
        };
        if visited.contains_key(&key) {
            continue 'candidates;
        }
        return Ok(Some(i));
    }
    Ok(None)
}

/// Explores every interleaving (and crash pattern, if enabled) of the
/// processes under the trivial symmetry group, checking `state_check` in
/// every reachable state and `terminal_check` in every quiescent state.
///
/// Equivalent to [`explore_sym`] with [`SymmetryGroup::trivial`]; use
/// `explore_sym` to make [`ExploreConfig::symmetry`] effective.
///
/// Process types must be `Clone + Eq + Hash` so states can be memoized;
/// the enum-based state machines of `cfc-mutex`/`cfc-naming` all qualify.
///
/// # Errors
///
/// Returns the first violation found (with its schedule), state-budget
/// exhaustion, or an invalid memory operation.
pub fn explore<P, FS, FT>(
    memory: Memory,
    procs: Vec<P>,
    config: ExploreConfig,
    state_check: FS,
    terminal_check: FT,
) -> Result<ExploreStats, ExploreError>
where
    P: Process + Clone + Eq + Hash,
    FS: FnMut(&StateView<'_, P>) -> Result<(), String>,
    FT: FnMut(&StateView<'_, P>) -> Result<(), String>,
{
    let group = SymmetryGroup::trivial(procs.len());
    explore_sym(memory, procs, &group, config, state_check, terminal_check)
}

/// Explores every interleaving (and crash pattern, if enabled) of the
/// processes, with the reductions requested by `config` — partial-order
/// reduction via footprint independence, symmetry reduction via the given
/// group. See the module docs for the exact soundness contract on the
/// checks.
///
/// # Errors
///
/// Returns the first violation found (with its schedule, which replays
/// under the un-reduced semantics), state-budget exhaustion, or an
/// invalid memory operation.
///
/// # Panics
///
/// Panics if `symmetry` is defined over a different process count.
pub fn explore_sym<P, FS, FT>(
    memory: Memory,
    procs: Vec<P>,
    symmetry: &SymmetryGroup,
    config: ExploreConfig,
    mut state_check: FS,
    mut terminal_check: FT,
) -> Result<ExploreStats, ExploreError>
where
    P: Process + Clone + Eq + Hash,
    FS: FnMut(&StateView<'_, P>) -> Result<(), String>,
    FT: FnMut(&StateView<'_, P>) -> Result<(), String>,
{
    let n = procs.len();
    assert_eq!(
        symmetry.n(),
        n,
        "symmetry group is over {} processes, system has {n}",
        symmetry.n()
    );
    let use_sym = config.symmetry && !symmetry.is_trivial();
    let root = Node {
        status: vec![Status::Running; n],
        values: memory.snapshot().to_vec(),
        procs,
        crashes_left: config.max_crashes,
    };

    // Visited canonical states, each keyed with the hash of the concrete
    // state that first reached it — that lets the orbit-merge counter
    // tell a merge with a permuted sibling apart from a plain revisit.
    let mut visited: HashMap<Node<P>, u64> = HashMap::new();
    let mut stats = ExploreStats::default();
    let mut scratch = AmpleScratch::new(n);
    // DFS stack: (node, schedule-so-far). The schedule is stored per node
    // to report violating paths; for small systems this is affordable.
    let mut stack: Vec<(Node<P>, Vec<ScheduleStep>)> = vec![(root, Vec::new())];

    while let Some((node, path)) = stack.pop() {
        if use_sym {
            let canon = canonicalize(&node, symmetry);
            let node_hash = full_hash(&node);
            match visited.get(&canon) {
                Some(&first) => {
                    if first != node_hash {
                        stats.orbits_merged += 1;
                    }
                    continue;
                }
                None => {
                    visited.insert(canon, node_hash);
                }
            }
        } else if visited.insert(node.clone(), 0).is_some() {
            continue;
        }
        stats.states += 1;
        if stats.states > config.max_states {
            return Err(ExploreError::StateBudget(stats.states));
        }

        let mem = rebuild_memory(&memory, &node.values);
        let view = StateView {
            procs: &node.procs,
            status: &node.status,
            memory: &mem,
        };
        if let Err(message) = state_check(&view) {
            return Err(ExploreError::Violation(Box::new(Violation {
                schedule: path,
                message,
            })));
        }

        let runnable: Vec<usize> = (0..n).filter(|&i| node.status[i] == Status::Running).collect();
        if runnable.is_empty() {
            stats.terminals += 1;
            if let Err(message) = terminal_check(&view) {
                return Err(ExploreError::Violation(Box::new(Violation {
                    schedule: path,
                    message,
                })));
            }
            continue;
        }

        // Partial-order reduction: expand a single provably-sufficient
        // process when one exists. Sound only without pending crash
        // branching (a crash commutes with nothing the victim would do).
        if config.por && node.crashes_left == 0 && runnable.len() > 1 {
            let ample =
                select_ample(&node, &runnable, &memory, &visited, symmetry, use_sym, &mut scratch)?;
            if let Some(i) = ample {
                let succ = scratch.succ[i].take().expect("ample successor cached");
                for s in scratch.succ.iter_mut() {
                    *s = None;
                }
                stats.states_pruned_pot += runnable.len() as u64 - 1;
                stats.transitions += 1;
                let mut next_path = path;
                next_path.push(ScheduleStep::Step(ProcessId::new(i as u32)));
                stack.push((succ, next_path));
                continue;
            }
        }

        for &i in &runnable {
            // Crash transition.
            if node.crashes_left > 0 {
                let mut next = node.clone();
                next.status[i] = Status::Crashed;
                next.crashes_left -= 1;
                let mut next_path = path.clone();
                next_path.push(ScheduleStep::Crash(ProcessId::new(i as u32)));
                stats.transitions += 1;
                stack.push((next, next_path));
            }
            // Step transition — reusing the successor ample selection
            // already computed for this candidate, if any.
            let next = match scratch.succ[i].take() {
                Some(cached) => cached,
                None => expand_step(&node, i, &memory)?,
            };
            let mut next_path = path.clone();
            next_path.push(ScheduleStep::Step(ProcessId::new(i as u32)));
            stats.transitions += 1;
            stack.push((next, next_path));
        }
    }
    Ok(stats)
}

fn rebuild_memory(template: &Memory, values: &[Value]) -> Memory {
    let mut mem = template.clone();
    for (i, v) in values.iter().enumerate() {
        mem.poke(cfc_core::RegisterId::new(i as u32), *v);
    }
    mem
}

/// Statistics of a completed progress (deadlock-freedom) check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProgressStats {
    /// Distinct states in the reachability graph.
    pub states: usize,
    /// Transitions in the graph.
    pub transitions: u64,
    /// Quiescent states.
    pub terminals: usize,
}

/// Exhaustively verifies *possibility of progress*: from **every**
/// reachable state of the system, some continuation reaches quiescence
/// (all processes halted).
///
/// For one-shot mutual-exclusion clients this is deadlock freedom in the
/// classic sense — no reachable state is stuck, and no set of processes
/// can wedge the system so that nobody can ever finish. (It does not rule
/// out unfair infinite schedules that starve a process; the paper's
/// algorithms are deadlock-free, not starvation-free, and so is this
/// property.)
///
/// The check builds the full state graph, then back-propagates
/// "can reach a terminal" over reversed edges. It always runs un-reduced:
/// the [`ExploreConfig`] reduction flags are ignored here (the reachable
/// *sub*-graph a reduction keeps could misclassify a pruned state's
/// ability to progress).
///
/// # Errors
///
/// Returns a [`Violation`] naming a stuck state if one exists, a
/// state-budget error for oversized systems, or a memory error.
pub fn check_progress<P>(
    memory: Memory,
    procs: Vec<P>,
    config: ExploreConfig,
) -> Result<ProgressStats, ExploreError>
where
    P: Process + Clone + Eq + Hash,
{
    use std::collections::HashMap;

    let n = procs.len();
    let root = Node {
        status: vec![Status::Running; n],
        values: memory.snapshot().to_vec(),
        procs,
        crashes_left: 0,
    };

    let mut index: HashMap<Node<P>, usize> = HashMap::new();
    let mut rev_edges: Vec<Vec<usize>> = Vec::new();
    let mut terminal: Vec<bool> = Vec::new();
    let mut queue: Vec<Node<P>> = Vec::new();

    index.insert(root.clone(), 0);
    rev_edges.push(Vec::new());
    terminal.push(false);
    queue.push(root);

    let mut transitions = 0u64;
    let mut cursor = 0usize;
    while cursor < queue.len() {
        let node = queue[cursor].clone();
        let id = cursor;
        cursor += 1;
        if index.len() > config.max_states {
            return Err(ExploreError::StateBudget(index.len()));
        }

        let runnable: Vec<usize> = (0..n)
            .filter(|&i| node.status[i] == Status::Running)
            .collect();
        if runnable.is_empty() {
            terminal[id] = true;
            continue;
        }
        for &i in &runnable {
            let next = expand_step(&node, i, &memory)?;
            transitions += 1;
            let next_id = match index.get(&next) {
                Some(&existing) => existing,
                None => {
                    let new_id = queue.len();
                    index.insert(next.clone(), new_id);
                    rev_edges.push(Vec::new());
                    terminal.push(false);
                    queue.push(next);
                    new_id
                }
            };
            rev_edges[next_id].push(id);
        }
    }

    // Back-propagate reachability of quiescence.
    let states = queue.len();
    let mut can_finish = terminal.clone();
    let mut work: Vec<usize> = (0..states).filter(|&i| terminal[i]).collect();
    while let Some(s) = work.pop() {
        for &pred in &rev_edges[s] {
            if !can_finish[pred] {
                can_finish[pred] = true;
                work.push(pred);
            }
        }
    }

    if let Some(stuck) = (0..states).find(|&i| !can_finish[i]) {
        return Err(ExploreError::Violation(Box::new(Violation {
            schedule: Vec::new(),
            message: format!(
                "state {stuck} of {states} cannot reach quiescence (deadlock/livelock)"
            ),
        })));
    }

    Ok(ProgressStats {
        states,
        transitions,
        terminals: terminal.iter().filter(|t| **t).count(),
    })
}

/// The final state of a replayed schedule: the trace plus everything
/// needed to re-evaluate a property in the reached state.
#[derive(Clone, Debug)]
pub struct Replayed<P> {
    /// The events of the replayed run.
    pub trace: cfc_core::Trace,
    /// The processes in their final states.
    pub procs: Vec<P>,
    /// The shared memory in its final state.
    pub memory: Memory,
    /// Each process's final liveness status.
    pub status: Vec<Status>,
}

impl<P> Replayed<P> {
    /// A [`StateView`] of the reached state, suitable for re-running the
    /// property check that reported a violation.
    pub fn view(&self) -> StateView<'_, P> {
        StateView {
            procs: &self.procs,
            status: &self.status,
            memory: &self.memory,
        }
    }
}

/// Replays a violating schedule on a fresh executor, returning the trace
/// **and the reached state** — used to render counterexamples for humans
/// and to confirm that a violation found by the *reduced* explorer
/// reproduces under the baseline, un-reduced semantics (the reductions
/// only prune which interleavings are searched; every schedule they
/// report is a plain sequence of concrete steps).
///
/// # Errors
///
/// Propagates executor errors; a schedule obtained from [`explore`] or
/// [`explore_sym`] always replays cleanly.
///
/// # Panics
///
/// Panics if the schedule steps a process that has already halted or
/// crashed — such schedules are never produced by the explorer.
pub fn replay<P: Process>(
    memory: Memory,
    mut procs: Vec<P>,
    schedule: &[ScheduleStep],
) -> Result<Replayed<P>, cfc_core::ExecError> {
    use cfc_core::{Event, EventKind, Trace};
    let mut mem = memory;
    let mut trace = Trace::new();
    let mut status = vec![Status::Running; procs.len()];
    for s in schedule {
        match s {
            ScheduleStep::Crash(pid) => {
                status[pid.index()] = Status::Crashed;
                trace.push(Event {
                    pid: *pid,
                    kind: EventKind::Crash,
                });
            }
            ScheduleStep::Step(pid) => {
                let i = pid.index();
                assert_eq!(
                    status[i],
                    Status::Running,
                    "schedule steps {pid}, which is no longer running"
                );
                match procs[i].current() {
                    Step::Halt => {
                        status[i] = Status::Done;
                        trace.push(Event {
                            pid: *pid,
                            kind: EventKind::Done {
                                output: procs[i].output(),
                            },
                        });
                    }
                    Step::Internal => {
                        procs[i].advance(OpResult::None);
                        trace.push(Event {
                            pid: *pid,
                            kind: EventKind::Internal,
                        });
                    }
                    Step::Op(op) => {
                        let result = mem.apply(&op)?;
                        procs[i].advance(result.clone());
                        trace.push(Event {
                            pid: *pid,
                            kind: EventKind::Access { op, result },
                        });
                    }
                }
            }
        }
    }
    Ok(Replayed {
        trace,
        procs,
        memory: mem,
        status,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfc_core::{Layout, Op, RegisterId};

    /// Two processes each increment a 2-bit counter once (read + write).
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct Incr {
        reg: RegisterId,
        pc: u8,
        seen: u64,
    }

    impl Process for Incr {
        fn current(&self) -> Step {
            match self.pc {
                0 => Step::Op(Op::Read(self.reg)),
                1 => Step::Op(Op::Write(self.reg, Value::new(self.seen + 1))),
                _ => Step::Halt,
            }
        }
        fn advance(&mut self, result: OpResult) {
            if self.pc == 0 {
                self.seen = result.value().raw();
            }
            self.pc += 1;
        }
    }

    fn incr_system() -> (Memory, Vec<Incr>) {
        let mut layout = Layout::new();
        let c = layout.register("c", 2, 0);
        let memory = Memory::new(layout, 2).unwrap();
        (
            memory,
            vec![
                Incr {
                    reg: c,
                    pc: 0,
                    seen: 0,
                },
                Incr {
                    reg: c,
                    pc: 0,
                    seen: 0,
                },
            ],
        )
    }

    #[test]
    fn finds_the_lost_update() {
        // The explorer must find the interleaving where both processes
        // read 0 and the counter ends at 1.
        let (memory, procs) = incr_system();
        let c = RegisterId::new(0);
        let err = explore(
            memory,
            procs,
            ExploreConfig::default(),
            |_| Ok(()),
            |view| {
                if view.memory.get(c) == Value::new(2) {
                    Ok(())
                } else {
                    Err(format!("counter ended at {}", view.memory.get(c)))
                }
            },
        )
        .unwrap_err();
        match err {
            ExploreError::Violation(v) => {
                assert!(v.message.contains("counter ended at 1"));
                assert!(!v.schedule.is_empty());
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn passes_when_property_holds() {
        // Termination with counter in {1, 2} always holds.
        let (memory, procs) = incr_system();
        let c = RegisterId::new(0);
        let stats = explore(
            memory,
            procs,
            ExploreConfig::default(),
            |_| Ok(()),
            |view| {
                let v = view.memory.get(c).raw();
                if v == 1 || v == 2 {
                    Ok(())
                } else {
                    Err(format!("impossible count {v}"))
                }
            },
        )
        .unwrap();
        assert!(stats.states > 5);
        assert!(stats.terminals >= 2);
        // The baseline explorer reduces nothing.
        assert_eq!(stats.states_pruned_pot, 0);
        assert_eq!(stats.orbits_merged, 0);
    }

    #[test]
    fn symmetric_increments_share_an_orbit() {
        // The two Incr processes are identical, so the full group applies:
        // states differing only by swapping them are merged, and the
        // terminal-state memory values are still all seen.
        let (memory, procs) = incr_system();
        let c = RegisterId::new(0);
        let base = explore(
            memory.clone(),
            procs.clone(),
            ExploreConfig::default(),
            |_| Ok(()),
            |_| Ok(()),
        )
        .unwrap();
        let mut counts = std::collections::BTreeSet::new();
        let reduced = explore_sym(
            memory,
            procs,
            &SymmetryGroup::full(2),
            ExploreConfig {
                symmetry: true,
                ..ExploreConfig::default()
            },
            |_| Ok(()),
            |view| {
                counts.insert(view.memory.get(c).raw());
                Ok(())
            },
        )
        .unwrap();
        assert!(reduced.states < base.states, "{reduced:?} vs {base:?}");
        assert!(reduced.orbits_merged > 0);
        // Both the lost-update (1) and clean (2) outcomes survive.
        assert_eq!(counts.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn por_preserves_terminal_outcomes() {
        // Incr ops all touch the shared counter with unknown futures, so
        // only Halt steps are ample — the reduction is modest but the
        // terminal outcomes must be identical.
        let (memory, procs) = incr_system();
        let c = RegisterId::new(0);
        let collect = |por: bool| {
            let mut counts = std::collections::BTreeSet::new();
            let stats = explore(
                memory.clone(),
                procs.clone(),
                ExploreConfig {
                    por,
                    ..ExploreConfig::default()
                },
                |_| Ok(()),
                |view| {
                    counts.insert(view.memory.get(c).raw());
                    Ok(())
                },
            )
            .unwrap();
            (stats, counts)
        };
        let (base, base_counts) = collect(false);
        let (red, red_counts) = collect(true);
        assert_eq!(base_counts, red_counts);
        assert!(red.states <= base.states);
        assert!(red.states_pruned_pot > 0);
    }

    #[test]
    fn crash_transitions_are_explored() {
        // With one crash allowed, there is a terminal state where only one
        // process incremented.
        let (memory, procs) = incr_system();
        let c = RegisterId::new(0);
        let mut saw_crashed_terminal = false;
        let _ = explore(
            memory,
            procs,
            ExploreConfig {
                max_crashes: 1,
                ..Default::default()
            },
            |_| Ok(()),
            |view| {
                if view.status.contains(&Status::Crashed) && view.memory.get(c).raw() <= 1 {
                    saw_crashed_terminal = true;
                }
                Ok(())
            },
        )
        .unwrap();
        assert!(saw_crashed_terminal);
    }

    #[test]
    fn state_budget_is_enforced() {
        let (memory, procs) = incr_system();
        let err = explore(
            memory,
            procs,
            ExploreConfig::default().with_max_states(3),
            |_| Ok(()),
            |_| Ok(()),
        )
        .unwrap_err();
        assert!(matches!(err, ExploreError::StateBudget(_)));
    }

    #[test]
    fn replay_reproduces_the_violation() {
        let (memory, procs) = incr_system();
        let c = RegisterId::new(0);
        let err = explore(
            memory.clone(),
            procs.clone(),
            ExploreConfig::default(),
            |_| Ok(()),
            |view| {
                if view.memory.get(c) == Value::new(2) {
                    Ok(())
                } else {
                    Err("lost update".into())
                }
            },
        )
        .unwrap_err();
        let ExploreError::Violation(v) = err else {
            panic!("expected violation")
        };
        let replayed = replay(memory, procs, &v.schedule).unwrap();
        assert!(replayed.trace.len() >= 4);
        // The replayed final state is the violating one.
        assert_eq!(replayed.memory.get(c), Value::new(1));
        assert!(replayed.status.iter().all(|s| *s == Status::Done));
    }

    #[test]
    fn canonical_key_is_permutation_invariant() {
        let (memory, mut procs) = incr_system();
        // Drive the processes into distinct local states.
        let mut mem = memory.clone();
        let r = mem.apply(&Op::Read(RegisterId::new(0))).unwrap();
        procs[0].advance(r);
        let group = SymmetryGroup::full(2);
        let status = [Status::Running, Status::Running];
        let k1 = canonical_key(&procs, &status, &mem, &group);
        procs.swap(0, 1);
        let k2 = canonical_key(&procs, &status, &mem, &group);
        assert_eq!(k1, k2);
        // Under the trivial group, the swap is visible.
        let trivial = SymmetryGroup::trivial(2);
        let t1 = canonical_key(&procs, &status, &mem, &trivial);
        procs.swap(0, 1);
        let t2 = canonical_key(&procs, &status, &mem, &trivial);
        assert_ne!(t1, t2);
    }
}
